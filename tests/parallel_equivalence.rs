//! Serial-equivalence suite for the deterministic parallel execution
//! layer: every mapper that takes a [`Parallelism`] must return a
//! **bit-identical** mapping for every thread count, on every topology
//! family, for every estimation order. The parallel kernels are chunked
//! scans whose reductions keep the serial lowest-id tie-break, so this is
//! a hard equality — no tolerance.

use proptest::prelude::*;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use topomap::core::metrics::hop_bytes;
use topomap::core::refine::refine_mapping_with;
use topomap::netsim::trace::stencil_trace;
use topomap::prelude::*;
use topomap::taskgraph::gen;

/// A `Parallelism` that takes the threaded path even on tiny inputs
/// (the default `min_work` would route the small proptest cases to the
/// serial fallback and test nothing).
fn eager(threads: usize) -> Parallelism {
    Parallelism {
        threads: Threads::Fixed(threads),
        min_work: 1,
    }
}

fn arb_task_graph() -> impl Strategy<Value = TaskGraph> {
    (4usize..=20, 0.5f64..4.0, any::<u64>())
        .prop_map(|(n, deg, seed)| gen::random_graph(n, deg.min(n as f64 - 1.0), 1.0, 1000.0, seed))
}

/// One topology of each family under test, all with >= 25 nodes:
/// 2-D torus, hypercube, ring (GraphTopology), and a distance-cached
/// torus (CachedTopology) whose metric must match the uncached one.
fn topology_for(idx: usize, min_nodes: usize) -> Box<dyn Topology> {
    match idx {
        0 => {
            let side = (min_nodes as f64).sqrt().ceil() as usize;
            Box::new(Torus::torus_2d(side, side))
        }
        1 => {
            let dims = (min_nodes as f64).log2().ceil() as u32;
            Box::new(Hypercube::new(dims.max(1)))
        }
        2 => Box::new(GraphTopology::ring(min_nodes)),
        _ => {
            let side = (min_nodes as f64).sqrt().ceil() as usize;
            Box::new(CachedTopology::new(Torus::torus_2d(side, side)))
        }
    }
}

const ORDERS: [EstimationOrder; 3] = [
    EstimationOrder::First,
    EstimationOrder::Second,
    EstimationOrder::Third,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// TopoLB: all three estimation orders, all four topology families,
    /// thread counts {2, 8} — each bit-identical to the serial run.
    #[test]
    fn topolb_parallel_matches_serial(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        order_idx in 0usize..3,
    ) {
        let topo = topology_for(topo_idx, 25);
        let order = ORDERS[order_idx];
        let serial = TopoLb::with_parallelism(order, Parallelism::serial())
            .map(&g, topo.as_ref());
        for threads in [2, 8] {
            let par = TopoLb::with_parallelism(order, eager(threads)).map(&g, topo.as_ref());
            prop_assert_eq!(&serial, &par, "order {:?}, {} threads", order, threads);
        }
    }

    /// RefineTopoLB (windowed speculative refinement): same guarantee.
    #[test]
    fn refine_parallel_matches_serial(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        order_idx in 0usize..3,
    ) {
        let topo = topology_for(topo_idx, 25);
        let order = ORDERS[order_idx];
        let serial = RefineTopoLb::with_parallelism(
            TopoLb::with_parallelism(order, Parallelism::serial()),
            Parallelism::serial(),
        )
        .map(&g, topo.as_ref());
        for threads in [2, 8] {
            let par = RefineTopoLb::with_parallelism(
                TopoLb::with_parallelism(order, eager(threads)),
                eager(threads),
            )
            .map(&g, topo.as_ref());
            prop_assert_eq!(&serial, &par, "order {:?}, {} threads", order, threads);
        }
    }

    /// Parallel refinement is still monotone: it never increases
    /// hop-bytes, from any random start, at any thread count.
    #[test]
    fn parallel_refinement_monotone(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        seed in any::<u64>(),
        threads in 1usize..=8,
    ) {
        let topo = topology_for(topo_idx, 25);
        let mut m = RandomMap::new(seed).map(&g, topo.as_ref());
        let before = hop_bytes(&g, topo.as_ref(), &m);
        refine_mapping_with(&g, topo.as_ref(), &mut m, 3, eager(threads));
        let after = hop_bytes(&g, topo.as_ref(), &m);
        prop_assert!(after <= before + 1e-9, "{before} -> {after} at {threads} threads");
    }

    /// HierMapper: both descent schemes fan leaf sub-mappings (and the
    /// cross-leaf refinement units) onto the pool; results must be
    /// bit-identical to the serial run on every hierarchy family.
    #[test]
    fn hier_mapper_parallel_matches_serial(
        g in arb_task_graph(),
        family in 0usize..4,
        multisection in any::<bool>(),
    ) {
        // Each family pairs a machine with a hierarchy over >= 25 slots.
        let (topo, base): (Box<dyn Topology>, HierMapper) = match family {
            0 => {
                let t = Torus::torus_2d(8, 8);
                let h = HierMapper::for_torus_with(&t, &[4, 4, 4]).unwrap();
                (Box::new(t), h)
            }
            1 => {
                let t = Torus::mesh(&[6, 6]);
                let h = HierMapper::for_torus_with(&t, &[6, 6]).unwrap();
                (Box::new(t), h)
            }
            2 => {
                let ft = FatTree::new(2, 5);
                let h = HierMapper::new(Hierarchy::from_fattree(&ft));
                (Box::new(ft), h)
            }
            _ => {
                let ring = GraphTopology::ring(32);
                let h = HierMapper::new(Hierarchy::identity_over(&ring, &[4, 4, 2]).unwrap());
                (Box::new(ring), h)
            }
        };
        let mut base = base;
        if multisection {
            base.descent = Descent::Multisection;
        }
        let serial = base.clone().with_parallelism(Parallelism::serial()).map(&g, topo.as_ref());
        for threads in [2, 8] {
            let par = base.clone().with_parallelism(eager(threads)).map(&g, topo.as_ref());
            prop_assert_eq!(
                &serial, &par,
                "family {}, multisection {}, {} threads", family, multisection, threads
            );
        }
    }

    /// The geometric mappers fan out curve-key computation (SFC) and
    /// whole bisection levels (RCB) onto the pool; ordered chunk
    /// recombination keeps both bit-identical at every thread count,
    /// with real coordinates and with the BFS-synthesized fallback.
    #[test]
    fn geometric_mappers_thread_invariant(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        curve_idx in 0usize..2,
    ) {
        let topo = topology_for(topo_idx, 25);
        let curve = [Curve::Hilbert, Curve::Morton][curve_idx];
        let sfc_serial = SfcMap::with_parallelism(curve, Parallelism::serial())
            .map(&g, topo.as_ref());
        let rcb_serial = RcbMap::with_parallelism(Parallelism::serial()).map(&g, topo.as_ref());
        for threads in [2, 8] {
            let sfc = SfcMap::with_parallelism(curve, eager(threads)).map(&g, topo.as_ref());
            prop_assert_eq!(&sfc_serial, &sfc, "SFC {:?}, {} threads", curve, threads);
            let rcb = RcbMap::with_parallelism(eager(threads)).map(&g, topo.as_ref());
            prop_assert_eq!(&rcb_serial, &rcb, "RCB, {} threads", threads);
        }
    }

    /// Same guarantee on a coordinate-free workload, where both mappers
    /// run the BFS double-sweep synthesis first: synthesis is serial and
    /// deterministic, so the pool must not leak into the result.
    #[test]
    fn geometric_mappers_thread_invariant_without_coords(
        n in 8usize..=40,
        bytes in 1.0f64..1e6,
    ) {
        let g = gen::ring(n, bytes);
        let topo = topology_for(0, n.max(25));
        let sfc_serial = SfcMap::with_parallelism(Curve::Hilbert, Parallelism::serial())
            .map(&g, topo.as_ref());
        let rcb_serial = RcbMap::with_parallelism(Parallelism::serial()).map(&g, topo.as_ref());
        for threads in [2, 8] {
            prop_assert_eq!(
                &sfc_serial,
                &SfcMap::with_parallelism(Curve::Hilbert, eager(threads)).map(&g, topo.as_ref()),
                "SFC fallback, {} threads", threads
            );
            prop_assert_eq!(
                &rcb_serial,
                &RcbMap::with_parallelism(eager(threads)).map(&g, topo.as_ref()),
                "RCB fallback, {} threads", threads
            );
        }
    }

    /// The annealer and the genetic mapper fan out delta/fitness
    /// evaluation only; their search is defined by the RNG streams, so
    /// thread count must not change the result either.
    #[test]
    fn stochastic_mappers_thread_invariant(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let topo = topology_for(topo_idx, 25);
        let sa_serial = SimulatedAnnealingMap {
            par: Parallelism::serial(),
            ..SimulatedAnnealingMap::quick(seed)
        }
        .map(&g, topo.as_ref());
        let sa_par = SimulatedAnnealingMap { par: eager(4), ..SimulatedAnnealingMap::quick(seed) }
            .map(&g, topo.as_ref());
        prop_assert_eq!(&sa_serial, &sa_par);

        let ga = |par: Parallelism| GeneticMap {
            par,
            generations: 10,
            ..GeneticMap::quick(seed)
        };
        prop_assert_eq!(
            ga(Parallelism::serial()).map(&g, topo.as_ref()),
            ga(eager(4)).map(&g, topo.as_ref())
        );
    }
}

fn mapping_hash(m: &Mapping) -> u64 {
    let mut h = DefaultHasher::new();
    m.as_slice().hash(&mut h);
    h.finish()
}

/// Concurrency stress: a 32x32 stencil placed on a 32x32 torus with an
/// oversubscribed 8-thread pool, 25 times over. Every run must produce
/// the same mapping hash as the serial reference — this is the test that
/// would catch a racy reduction or a torn chunk write, because each
/// repetition re-rolls the OS scheduler's interleaving.
#[test]
fn stress_repeated_parallel_runs_are_identical() {
    let tasks = gen::stencil2d(32, 32, 1024.0, false);
    let topo = Torus::torus_2d(32, 32);
    let mapper = TopoLb::with_parallelism(EstimationOrder::Second, eager(8));

    let reference =
        TopoLb::with_parallelism(EstimationOrder::Second, Parallelism::serial()).map(&tasks, &topo);
    let want = mapping_hash(&reference);

    for run in 0..25 {
        let m = mapper.map(&tasks, &topo);
        assert_eq!(
            mapping_hash(&m),
            want,
            "run {run} diverged from the serial reference"
        );
    }
}

/// Pinned proptest regression (`workspace_properties.proptest-regressions`
/// shrank to `seed = 2883168991836340068`). The offline proptest stand-in
/// does not replay regression files, so the case is pinned here as an
/// explicit test: the seed exercises the mapper-validity and simulator
/// determinism properties it was recorded against.
#[test]
fn regression_seed_2883168991836340068() {
    const SEED: u64 = 2883168991836340068;
    let g = gen::random_graph(16, 3.0, 1.0, 1000.0, SEED);
    let topo = Torus::torus_2d(5, 5);
    for mapper in [
        Box::new(RandomMap::new(SEED)) as Box<dyn Mapper>,
        Box::new(TopoLb::default()),
        Box::new(TopoLb::new(EstimationOrder::First)),
        Box::new(TopoCentLb),
    ] {
        let m = mapper.map(&g, &topo);
        let mut seen = std::collections::HashSet::new();
        for t in 0..g.num_tasks() {
            assert!(
                seen.insert(m.proc_of(t)),
                "{} double-books a node",
                mapper.name()
            );
        }
    }

    let sg = gen::stencil2d(3, 4, 512.0, false);
    let stopo = Torus::torus_2d(4, 3);
    let tr = stencil_trace(&sg, 2, 1000);
    let m = RandomMap::new(SEED).map(&sg, &stopo);
    let cfg = NetworkConfig::default();
    let s1 = Simulation::run(&stopo, &cfg, &tr, &m);
    let s2 = Simulation::run(&stopo, &cfg, &tr, &m);
    assert_eq!(s1.completion_ns, s2.completion_ns);
    assert_eq!(
        s1.network_messages + s1.local_messages,
        (2 * sg.num_edges() * 2) as u64
    );
}

/// A saturated scenario for the contention-refinement determinism tests:
/// a 4x4 stencil randomly scattered over a 32-node torus with free
/// processors, so the loop has both swaps and migrations to choose from.
fn contention_fixture() -> (TaskGraph, Torus, Trace, NetworkConfig, Mapping) {
    let g = gen::stencil2d(4, 4, 65_536.0, false);
    let topo = Torus::torus_3d(4, 2, 4);
    let tr = stencil_trace(&g, 6, 2_000);
    let cfg = NetworkConfig::default().with_bandwidth(200e6);
    let m = RandomMap::new(11).map(&g, &topo);
    (g, topo, tr, cfg, m)
}

/// ContentionRefine fans out only the hop-bytes guard; the accept loop is
/// serial by design. The whole refinement — final mapping AND every
/// report field — must be bit-identical at 1, 2, and 8 pool threads.
#[test]
fn contention_refine_thread_invariant() {
    let (g, topo, tr, cfg, start) = contention_fixture();

    let mut results = Vec::new();
    for threads in [1usize, 2, 8] {
        let refiner = ContentionRefine {
            par: eager(threads),
            ..ContentionRefine::default()
        };
        let mut m = start.clone();
        let report = refiner.refine(&g, &topo, &mut m, contention_oracle(&topo, &cfg, &tr));
        results.push((threads, m, report));
    }
    let (_, ref_m, ref_r) = &results[0];
    assert!(ref_r.accepted > 0, "fixture must exercise the accept path");
    for (threads, m, r) in &results[1..] {
        assert_eq!(ref_m, m, "mapping diverged at {threads} threads");
        assert_eq!(ref_r, r, "report diverged at {threads} threads");
    }
}

/// Once the loop converges, running it again is the identity: zero
/// acceptances, unchanged mapping, and the same makespan it ended on.
#[test]
fn contention_refine_idempotent_after_convergence() {
    let (g, topo, tr, cfg, mut m) = contention_fixture();
    let refiner = ContentionRefine::default();

    let first = refiner.refine(&g, &topo, &mut m, contention_oracle(&topo, &cfg, &tr));
    assert!(first.final_makespan_ns <= first.initial_makespan_ns);

    let converged = m.clone();
    let second = refiner.refine(&g, &topo, &mut m, contention_oracle(&topo, &cfg, &tr));
    assert_eq!(second.accepted, 0, "converged state accepted an exchange");
    assert_eq!(m, converged, "idempotent refinement moved a task");
    assert_eq!(second.initial_makespan_ns, first.final_makespan_ns);
    assert_eq!(second.final_makespan_ns, first.final_makespan_ns);
}
