//! Degraded-machine scenarios: contention-aware refinement must route
//! load *off* failed or slow links — the regime where the hop-bytes proxy
//! is structurally blind, because the metric weights every link equally
//! while the machine does not.
//!
//! Each scenario builds a healthy hop-bytes-refined baseline, breaks the
//! router that baseline leans on hardest, and asserts the refinement loop
//! (a) improves the simulated makespan, (b) actually moves bytes off the
//! sick links, and (c) never pays more hop-bytes than its slack budget
//! allows while doing so.

use topomap::core::metrics::hop_bytes;
use topomap::netsim::config::NicModel;
use topomap::netsim::trace::stencil_trace;
use topomap::prelude::*;
use topomap::taskgraph::gen;

/// A 4x4 stencil on a 32-node torus: free processors exist, so the loop
/// can migrate tasks away from a broken router instead of just swapping.
fn fixture() -> (TaskGraph, Torus, Trace) {
    let g = gen::stencil2d(4, 4, 131_072.0, false);
    let topo = Torus::torus_3d(4, 2, 4);
    let tr = stencil_trace(&g, 12, 2_000);
    (g, topo, tr)
}

fn hb_baseline(g: &TaskGraph, topo: &Torus) -> Mapping {
    RefineTopoLb::new(TopoLb::default()).map(g, topo)
}

/// Degrade every outgoing link of the router the baseline mapping loads
/// hardest (under a clean network), returning the config and the router.
fn degrade_hottest_router(
    topo: &Torus,
    tr: &Trace,
    baseline: &Mapping,
    factor: f64,
) -> (NetworkConfig, usize) {
    let mut cfg = NetworkConfig::default().with_bandwidth(300e6);
    cfg.nic = NicModel::PerLink;
    let clean = Simulation::run_with_links(topo, &cfg, tr, baseline);
    let busiest = (0..clean.links.len())
        .max_by_key(|&i| (clean.acct.busy_ns(i), std::cmp::Reverse(i)))
        .expect("torus has links");
    let sick = clean.links[busiest].from;
    cfg.link_speed_factors = topo
        .neighbors(sick)
        .into_iter()
        .map(|n| (sick, n, factor))
        .collect();
    (cfg, sick)
}

/// Bytes the simulation pushed through the degraded (outgoing-from-sick)
/// links under `m`.
fn bytes_over_sick_links(topo: &Torus, cfg: &NetworkConfig, tr: &Trace, m: &Mapping) -> u64 {
    let rep = Simulation::run_with_links(topo, cfg, tr, m);
    (0..rep.links.len())
        .filter(|&i| {
            cfg.link_speed_factors
                .iter()
                .any(|&(f, t, _)| rep.links[i].from == f && rep.links[i].to == t)
        })
        .map(|i| rep.acct.bytes(i))
        .sum()
}

/// A router losing 90% of its outgoing bandwidth: the refinement loop
/// must beat the hop-bytes baseline's makespan AND demonstrably unload
/// the failed links.
#[test]
fn refinement_unloads_failed_router() {
    let (g, topo, tr) = fixture();
    let baseline = hb_baseline(&g, &topo);
    let (cfg, _sick) = degrade_hottest_router(&topo, &tr, &baseline, 0.1);

    let mut refined = baseline.clone();
    let report = ContentionRefine::default().refine(
        &g,
        &topo,
        &mut refined,
        contention_oracle(&topo, &cfg, &tr),
    );

    assert!(
        report.accepted > 0,
        "loop never engaged on a broken machine"
    );
    assert!(
        report.final_makespan_ns < report.initial_makespan_ns,
        "degraded-torus makespan did not improve: {} -> {}",
        report.initial_makespan_ns,
        report.final_makespan_ns
    );
    let before = bytes_over_sick_links(&topo, &cfg, &tr, &baseline);
    let after = bytes_over_sick_links(&topo, &cfg, &tr, &refined);
    assert!(
        after < before,
        "refinement left the failed links loaded: {before} -> {after} bytes"
    );
}

/// A merely *slow* router (40% bandwidth) — the softer failure mode.
/// Strict improvement is still expected here, and the loop's acceptance
/// rule guarantees the result is never worse than the baseline.
#[test]
fn refinement_improves_on_slow_router() {
    let (g, topo, tr) = fixture();
    let baseline = hb_baseline(&g, &topo);
    let (cfg, _sick) = degrade_hottest_router(&topo, &tr, &baseline, 0.4);

    let mut refined = baseline.clone();
    let report = ContentionRefine::default().refine(
        &g,
        &topo,
        &mut refined,
        contention_oracle(&topo, &cfg, &tr),
    );
    assert!(
        report.final_makespan_ns <= report.initial_makespan_ns,
        "acceptance rule violated"
    );
    assert!(
        report.final_makespan_ns < report.initial_makespan_ns,
        "slow-router makespan did not improve: {} -> {}",
        report.initial_makespan_ns,
        report.final_makespan_ns
    );
}

/// The hop-bytes guard: unloading hot links may spend proxy quality, but
/// each accepted exchange is bounded by `hb_slack`, so the end-to-end
/// regression is bounded by the compounded budget `(1 + slack)^accepted`.
#[test]
fn hop_bytes_regression_stays_within_compounded_slack() {
    let (g, topo, tr) = fixture();
    let baseline = hb_baseline(&g, &topo);
    let (cfg, _sick) = degrade_hottest_router(&topo, &tr, &baseline, 0.1);

    let refiner = ContentionRefine::default();
    let mut refined = baseline.clone();
    let report = refiner.refine(&g, &topo, &mut refined, contention_oracle(&topo, &cfg, &tr));

    let hb_before = hop_bytes(&g, &topo, &baseline);
    let hb_after = hop_bytes(&g, &topo, &refined);
    let budget = hb_before * (1.0 + refiner.hb_slack).powi(report.accepted as i32);
    assert!(
        hb_after <= budget * (1.0 + 1e-9),
        "hop-bytes {hb_after} blew the compounded slack budget {budget} \
         (start {hb_before}, {} accepted)",
        report.accepted
    );
}

/// End-to-end sanity on a healthy machine: refinement from a random
/// scatter must improve simulated completion, and the improvement
/// percentage the report computes must match its endpoints.
#[test]
fn healthy_machine_report_is_consistent() {
    let (g, topo, tr) = fixture();
    let mut cfg = NetworkConfig::default().with_bandwidth(200e6);
    cfg.nic = NicModel::PerLink;
    let mut m = RandomMap::new(5).map(&g, &topo);

    let report =
        ContentionRefine::default().refine(&g, &topo, &mut m, contention_oracle(&topo, &cfg, &tr));
    assert!(report.final_makespan_ns <= report.initial_makespan_ns);
    let expect = 100.0 * (report.initial_makespan_ns - report.final_makespan_ns) as f64
        / report.initial_makespan_ns as f64;
    assert!((report.improvement_pct() - expect).abs() < 1e-9);
    // The refined mapping replays to exactly the makespan the report claims.
    let replay = Simulation::run(&topo, &cfg, &tr, &m);
    assert_eq!(replay.completion_ns, report.final_makespan_ns);
}
