//! Integration tests encoding the paper's qualitative claims — the
//! "shape" every experiment binary must reproduce, asserted at test scale.

use topomap::prelude::*;
use topomap::taskgraph::gen;
use topomap::topology::stats;

/// §5.2.1 / Figure 1: random placement of a 2D-mesh pattern on a 2D-torus
/// costs ≈ √p/2 hops per byte.
#[test]
fn random_placement_matches_sqrt_p_over_2() {
    for side in [8usize, 16] {
        let p = side * side;
        let tasks = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);
        let measured: f64 = (0..4)
            .map(|s| hops_per_byte(&tasks, &topo, &RandomMap::new(s).map(&tasks, &topo)))
            .sum::<f64>()
            / 4.0;
        let analytic = stats::expected_random_hops_torus_2d(p);
        assert!(
            (measured - analytic).abs() < 0.2 * analytic,
            "p={p}: measured {measured}, analytic {analytic}"
        );
    }
}

/// §5.2.2 / Figure 3: on a 3D-torus the analytic value is 3·∛p/4.
#[test]
fn random_placement_matches_3d_formula() {
    let tasks = gen::stencil2d(8, 8, 1024.0, false);
    let topo = Torus::torus_3d(4, 4, 4);
    let measured: f64 = (0..4)
        .map(|s| hops_per_byte(&tasks, &topo, &RandomMap::new(s).map(&tasks, &topo)))
        .sum::<f64>()
        / 4.0;
    let analytic = stats::expected_random_hops_torus_3d(64);
    assert!(
        (measured - analytic).abs() < 0.25 * analytic,
        "measured {measured}, analytic {analytic}"
    );
}

/// Figure 1/2: TopoLB maps the 2D-mesh onto the 2D-torus optimally
/// ("TopoLB actually produces an optimal mapping in most cases").
#[test]
fn topolb_optimal_on_mesh_to_torus() {
    for side in [8usize, 12, 16] {
        let tasks = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);
        let hpb = hops_per_byte(&tasks, &topo, &TopoLb::default().map(&tasks, &topo));
        assert!(hpb <= 1.05, "side {side}: hpb {hpb}");
    }
}

/// Figure 4: the 8×8 mesh is a subgraph of the (4,4,4) torus, and TopoLB
/// finds the dilation-1 embedding.
#[test]
fn topolb_embeds_mesh_in_3d_torus_at_64() {
    let tasks = gen::stencil2d(8, 8, 1024.0, false);
    let topo = Torus::torus_3d(4, 4, 4);
    let m = TopoLb::default().map(&tasks, &topo);
    assert_eq!(hops_per_byte(&tasks, &topo, &m), 1.0);
}

/// The paper's consistent ordering: TopoLB ≤ TopoCentLB (within noise) and
/// both far below random, across workloads and topologies.
#[test]
fn strategy_ordering_holds_across_workloads() {
    let workloads: Vec<(TaskGraph, Box<dyn Topology>)> = vec![
        (
            gen::stencil2d(8, 8, 1024.0, false),
            Box::new(Torus::torus_2d(8, 8)) as Box<dyn Topology>,
        ),
        (
            gen::stencil2d(8, 8, 1024.0, true),
            Box::new(Torus::torus_3d(4, 4, 4)),
        ),
        (
            gen::random_geometric(100, 0.18, 100.0, 2048.0, 5),
            Box::new(Torus::torus_2d(10, 10)),
        ),
    ];
    for (tasks, topo) in &workloads {
        let lb = hops_per_byte(tasks, topo, &TopoLb::default().map(tasks, topo));
        let cent = hops_per_byte(tasks, topo, &TopoCentLb.map(tasks, topo));
        let rnd = hops_per_byte(tasks, topo, &RandomMap::new(1).map(tasks, topo));
        assert!(lb < 0.7 * rnd, "TopoLB {lb} vs random {rnd}");
        assert!(cent < 0.8 * rnd, "TopoCentLB {cent} vs random {rnd}");
        assert!(
            lb <= 1.25 * cent,
            "TopoLB {lb} should not trail TopoCentLB {cent} badly"
        );
    }
}

/// §5.2.3: RefineTopoLB only ever improves, and typically squeezes a few
/// percent out of TopoLB on LeanMD-like workloads.
#[test]
fn refine_improves_leanmd() {
    let p = 36;
    let tasks = gen::leanmd(
        p,
        &gen::LeanMdConfig {
            num_computes: 600,
            ..Default::default()
        },
    );
    let topo = Torus::torus_2d(6, 6);
    let part = MultilevelKWay::default().partition(&tasks, p);
    let groups = part.coalesce(&tasks);
    let base = hops_per_byte(&groups, &topo, &TopoLb::default().map(&groups, &topo));
    let refined = hops_per_byte(
        &groups,
        &topo,
        &RefineTopoLb::new(TopoLb::default()).map(&groups, &topo),
    );
    assert!(
        refined <= base + 1e-12,
        "refine must not regress: {base} -> {refined}"
    );
}

/// Table 1's premise, via the simulator: the same trace completes faster
/// under the optimal mapping than under a random one, and the gap widens
/// with message size.
#[test]
fn optimal_mapping_gap_grows_with_message_size() {
    use topomap::netsim::{bluegene, trace};
    let topo = bluegene::bluegene_machine(64, false);
    let cfg = bluegene::bluegene_config();
    let mut ratios = Vec::new();
    for bytes in [1_000.0f64, 100_000.0] {
        let tasks = gen::stencil3d(4, 4, 4, 2.0 * bytes, false);
        let tr = trace::stencil_trace(&tasks, 10, 100_000);
        let opt = Simulation::run(&topo, &cfg, &tr, &IdentityMap.map(&tasks, &topo));
        let rnd = Simulation::run(&topo, &cfg, &tr, &RandomMap::new(2).map(&tasks, &topo));
        ratios.push(rnd.completion_ns as f64 / opt.completion_ns as f64);
    }
    assert!(
        ratios[0] > 1.0,
        "random must be slower even at 1KB: {ratios:?}"
    );
    assert!(
        ratios[1] > ratios[0],
        "gap should grow with message size: {ratios:?}"
    );
}

/// §5.4: removing wraparound links (torus → mesh) hurts, and hurts random
/// placement more than TopoLB.
#[test]
fn mesh_hurts_random_more_than_topolb() {
    let tasks = gen::stencil2d(8, 8, 1024.0, false);
    let torus = Torus::torus_3d(4, 4, 4);
    let mesh = Torus::mesh_3d(4, 4, 4);
    let avg_rand = |topo: &Torus| -> f64 {
        (0..4)
            .map(|s| hops_per_byte(&tasks, topo, &RandomMap::new(s).map(&tasks, topo)))
            .sum::<f64>()
            / 4.0
    };
    let rnd_penalty = avg_rand(&mesh) - avg_rand(&torus);
    let lb_t = hops_per_byte(&tasks, &torus, &TopoLb::default().map(&tasks, &torus));
    let lb_m = hops_per_byte(&tasks, &mesh, &TopoLb::default().map(&tasks, &mesh));
    let lb_penalty = lb_m - lb_t;
    assert!(
        rnd_penalty > 0.0,
        "mesh should cost random placement extra hops"
    );
    assert!(
        lb_penalty < rnd_penalty,
        "TopoLB penalty {lb_penalty} should be below random penalty {rnd_penalty}"
    );
}
