//! Integration tests for the collective workloads and the load-drift
//! re-balancing scenario (the runtime situation the Charm++ framework —
//! and this library's RefineLB — exists for).

use topomap::lb::{replay, strategy, LbDatabase, RefineLb};
use topomap::netsim::config::NicModel;
use topomap::netsim::trace::{allreduce_trace, reduce_broadcast_trace};
use topomap::prelude::*;
use topomap::taskgraph::{gen, transform};

/// The butterfly pattern *is* the hypercube graph: TopoLB should embed it
/// at (near) dilation 1 on a hypercube machine, while any 2D-torus
/// placement must stretch its long edges.
#[test]
fn butterfly_loves_hypercubes_not_tori() {
    let tasks = gen::butterfly(32, 4096.0);
    let cube = Hypercube::new(5);
    let torus = Torus::torus_2d_for(32);
    let on_cube = hops_per_byte(&tasks, &cube, &TopoLb::default().map(&tasks, &cube));
    let on_torus = hops_per_byte(&tasks, &torus, &TopoLb::default().map(&tasks, &torus));
    assert!(on_cube <= 1.5, "butterfly on hypercube: {on_cube}");
    assert!(
        on_torus > on_cube,
        "torus ({on_torus}) cannot beat the butterfly's native host ({on_cube})"
    );
}

/// All-reduce completion: recursive doubling on a hypercube machine beats
/// the same trace on a same-size 2D torus (the P·log P wiring argument of
/// the paper's introduction).
#[test]
fn allreduce_faster_on_hypercube_than_torus() {
    // Note: a 4x4 torus *is* Q4 (C4 x C4 ≅ Q2 x Q2), so the comparison
    // needs n = 64 where the 8x8 torus genuinely differs from Q6.
    let n = 64;
    let tr = allreduce_trace(n, 5, 8192);
    tr.check_matched().unwrap();
    let mut cfg = NetworkConfig::default().with_bandwidth(200e6);
    cfg.nic = NicModel::PerLink;

    let cube = Hypercube::new(6);
    let torus = Torus::torus_2d(8, 8);
    // Identity mapping on the hypercube is the native embedding.
    let tasks = gen::butterfly(n, 8192.0);
    let cube_map = IdentityMap.map(&tasks, &cube);
    let torus_map = TopoLb::default().map(&tasks, &torus);

    let s_cube = Simulation::run(&cube, &cfg, &tr, &cube_map);
    let s_torus = Simulation::run(&torus, &cfg, &tr, &torus_map);
    assert!(
        s_cube.completion_ns < s_torus.completion_ns,
        "hypercube {} vs torus {}",
        s_cube.completion_ns,
        s_torus.completion_ns
    );
}

/// Reduce+broadcast traces run to completion on every machine family and
/// respect the tree depth in their critical path.
#[test]
fn reduction_trace_critical_path() {
    let n = 16;
    let tr = reduce_broadcast_trace(n, 1, 1024);
    tr.check_matched().unwrap();
    let tasks = gen::reduction_tree(n, 1024.0);
    let topo = Torus::torus_2d(4, 4);
    let cfg = NetworkConfig::default();
    let m = TopoLb::default().map(&tasks, &topo);
    let s = Simulation::run(&topo, &cfg, &tr, &m);
    // 4 reduction levels + 4 broadcast levels, each at least one
    // serialization (1024B at 500MB/s = 2048ns) + overhead.
    assert!(s.completion_ns >= 8 * 2048);
    assert_eq!(s.network_messages + s.local_messages, 2 * (n as u64 - 1));
}

/// The transpose *task graph* is a perfect matching (each (r,c) pairs
/// with (c,r)), so a free mapper can colocate partners at dilation 1 —
/// the bisection pain of a real transpose comes from the *fixed* grid
/// placement, which we pin with the identity mapping here.
#[test]
fn transpose_stress() {
    let tasks = gen::transpose(8, 65_536.0);
    let topo = Torus::torus_2d(8, 8);
    // Free placement: matching embeds perfectly.
    let lb = hops_per_byte(&tasks, &topo, &TopoLb::default().map(&tasks, &topo));
    assert!(lb <= 1.05, "a matching embeds at dilation ~1, got {lb}");
    let rnd = hops_per_byte(&tasks, &topo, &RandomMap::new(4).map(&tasks, &topo));
    assert!(lb < rnd, "TopoLB {lb} vs random {rnd}");
    // Pinned grid placement: (r,c) at processor (r,c) — the classic
    // transpose, paying the full across-the-diagonal distance.
    let pinned = IdentityMap.map(&tasks, &topo);
    let pinned_hpb = hops_per_byte(&tasks, &topo, &pinned);
    assert!(
        pinned_hpb > 2.0,
        "pinned transpose must pay long routes, got {pinned_hpb}"
    );
}

/// The full drift cycle: map with TopoLB, drift the loads, repair with
/// RefineLB — imbalance is fixed with few migrations and the hop-byte
/// quality of the topology-aware placement survives.
#[test]
fn load_drift_repair_cycle() {
    let g0 = gen::stencil2d(8, 8, 4096.0, false);
    let machine = Torus::torus_2d(4, 4);
    let db0 = LbDatabase::from_task_graph(&g0);
    let base = strategy::by_name("TopoLB").unwrap().assign(&db0, &machine);
    let r0 = replay::report(&db0, &machine, "t0", &base);

    // Loads drift by up to 60%; communication unchanged.
    let g1 = transform::perturb_loads(&transform::scale(&g0, 1.0, 1.0), 0.6, 99);
    let db1 = LbDatabase::from_task_graph(&g1);
    let r1 = replay::report(&db1, &machine, "t1-drifted", &base);

    let out = RefineLb {
        tolerance: 1.10,
        ..Default::default()
    }
    .rebalance(&db1, &machine, &base);
    let r2 = replay::report(&db1, &machine, "t1-refined", &out.assignment);

    assert!(
        r2.load_imbalance <= r1.load_imbalance,
        "refinement must not worsen imbalance: {} -> {}",
        r1.load_imbalance,
        r2.load_imbalance
    );
    // Placement quality stays within 2x of the original TopoLB quality.
    assert!(r2.hops_per_byte <= 2.0 * r0.hops_per_byte.max(1.0));
    // Incremental: far fewer moves than a full remap.
    let changed = base
        .proc_of_obj
        .iter()
        .zip(&out.assignment.proc_of_obj)
        .filter(|(a, b)| a != b)
        .count();
    assert!(
        changed < g0.num_tasks() / 2,
        "changed {changed} of {}",
        g0.num_tasks()
    );
}

/// Composed workloads (halo + transpose phases overlaid) still map and
/// simulate end to end.
#[test]
fn overlaid_phases_pipeline() {
    let halo = gen::stencil2d(8, 8, 2048.0, false);
    let fft = gen::transpose(8, 1024.0);
    let both = transform::overlay(&halo, &fft);
    let machine = Torus::torus_3d(4, 4, 4);
    let m = RefineTopoLb::new(TopoLb::default()).map(&both, &machine);
    let q = topomap::core::metrics::quality(&both, &machine, &m);
    assert!(q.hops_per_byte < 3.0, "overlaid hpb {}", q.hops_per_byte);
    let tr = topomap::netsim::trace::stencil_trace(&both, 5, 1_000);
    tr.check_matched().unwrap();
    let s = Simulation::run(&machine, &NetworkConfig::default(), &tr, &m);
    assert_eq!(
        s.network_messages + s.local_messages,
        2 * both.num_edges() as u64 * 5
    );
}
