//! End-to-end integration: workload generation → LB framework →
//! partitioning → mapping → network simulation, spanning every crate.

use topomap::core::pipeline::two_phase;
use topomap::lb::dump::{write_step, LbDump};
use topomap::lb::runtime::Runtime;
use topomap::lb::{replay, strategy, LbDatabase};
use topomap::netsim::{trace, Trace, TraceOp};
use topomap::prelude::*;
use topomap::taskgraph::gen;

/// Generate → measure in the mini-runtime → strategize → map → simulate:
/// the full life of an application under this library.
#[test]
fn full_stack_life_cycle() {
    let machine = Torus::torus_2d(3, 3);
    let p = machine.num_nodes();

    // 1. The application: a 9x4 stencil over-decomposed 4x.
    let app = gen::stencil2d(9, 4, 1024.0, false);

    // 2. Measure it in the instrumented runtime.
    let mut runtime = Runtime::from_task_graph(&app, p, 50.0);
    let db = runtime.run_instrumented(2);
    assert_eq!(db.num_objects(), 36);
    assert!(db.total_load() > 0.0);

    // 3. Run TopoLB strategy on the measured database.
    let topolb = strategy::by_name("TopoLB").expect("registered");
    let assignment = topolb.assign(&db, &machine);
    runtime.migrate(&assignment);

    // 4. Verify the placement beats random on the measured comm graph.
    let report = replay::report(&db, &machine, "TopoLB", &assignment);
    let random = strategy::by_name("RandomLB").unwrap();
    let rnd_report = replay::evaluate(&db, &machine, random.as_ref());
    assert!(report.hops_per_byte <= rnd_report.hops_per_byte);

    // 5. Replay the *coalesced* application through the network simulator
    //    under both placements and confirm the ordering carries to time.
    let part = MultilevelKWay::default().partition(&app, p);
    let groups = part.coalesce(&app);
    let tr = trace::stencil_trace(&groups, 30, 2_000);
    let cfg = NetworkConfig::default().with_bandwidth(100e6);
    let good = Simulation::run(
        &machine,
        &cfg,
        &tr,
        &TopoLb::default().map(&groups, &machine),
    );
    let bad = Simulation::run(
        &machine,
        &cfg,
        &tr,
        &RandomMap::new(5).map(&groups, &machine),
    );
    assert!(good.completion_ns <= bad.completion_ns);
}

/// The dump→replay path preserves every metric bit-for-bit.
#[test]
fn dump_replay_is_lossless() {
    let dir = std::env::temp_dir().join("topomap-integration-dump");
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("it");
    let g = gen::leanmd(
        16,
        &gen::LeanMdConfig {
            num_computes: 150,
            ..Default::default()
        },
    );
    let db = LbDatabase::from_task_graph(&g);
    let machine = Torus::torus_2d(4, 4);

    let direct = replay::evaluate(&db, &machine, strategy::by_name("TopoLB").unwrap().as_ref());

    write_step(
        &base,
        &LbDump {
            step: 7,
            num_procs: 16,
            database: db,
        },
    )
    .unwrap();
    let via_file = replay::simulate_step(
        &base,
        7,
        &machine,
        &[strategy::by_name("TopoLB").unwrap().as_ref()],
    )
    .unwrap();
    assert_eq!(via_file[0], direct);
    std::fs::remove_file(topomap::lb::dump::step_path(&base, 7)).ok();
}

/// Two-phase pipeline handles every partitioner/mapper combination without
/// violating coverage or injectivity, on an awkward task count (not a
/// multiple of p).
#[test]
fn two_phase_all_combinations() {
    let tasks = gen::random_geometric(95, 0.2, 10.0, 1000.0, 9);
    let machine = Torus::torus_2d(4, 3);
    let partitioners: Vec<Box<dyn Partitioner>> = vec![
        Box::new(topomap::partition::RandomPartition::new(2)),
        Box::new(GreedyLoad),
        Box::new(MultilevelKWay::default()),
    ];
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(RandomMap::new(2)),
        Box::new(TopoCentLb),
        Box::new(TopoLb::default()),
        Box::new(RefineTopoLb::new(TopoCentLb)),
    ];
    for part in &partitioners {
        for mapper in &mappers {
            let r = two_phase(&tasks, &machine, part.as_ref(), mapper.as_ref());
            let placement = r.task_placement();
            assert_eq!(placement.len(), 95);
            assert!(placement.iter().all(|&q| q < 12));
            // Group mapping must be injective over the 12 groups.
            let mut seen = [false; 12];
            for g in 0..r.group_graph.num_tasks() {
                let q = r.group_mapping.proc_of(g);
                assert!(!seen[q]);
                seen[q] = true;
            }
        }
    }
}

/// A hand-written trace with asymmetric communication exercises the
/// simulator's dependency tracking across crates.
#[test]
fn simulator_honors_cross_task_dependencies() {
    // Task 0 computes 1ms then sends to 1; task 1 forwards to 2; task 2
    // finishes. Completion must be >= 1ms + two message latencies, and
    // task ordering must hold regardless of mapping.
    let tr = Trace {
        programs: vec![
            vec![
                TraceOp::Compute { ns: 1_000_000 },
                TraceOp::Send { to: 1, bytes: 1000 },
            ],
            vec![
                TraceOp::Recv { from: 0 },
                TraceOp::Send { to: 2, bytes: 1000 },
            ],
            vec![TraceOp::Recv { from: 1 }],
        ],
    };
    tr.check_matched().unwrap();
    let machine = Torus::mesh_1d(3);
    let cfg = NetworkConfig::default();
    for mapping in [
        Mapping::new(vec![0, 1, 2], 3),
        Mapping::new(vec![2, 0, 1], 3),
        Mapping::new(vec![1, 2, 0], 3),
    ] {
        let s = Simulation::run(&machine, &cfg, &tr, &mapping);
        assert!(
            s.completion_ns >= 1_000_000,
            "chain can't finish before the compute"
        );
        assert_eq!(s.network_messages + s.local_messages, 2);
    }
}

/// Group graphs fed to the simulator through stencil traces stay
/// deadlock-free even when the partitioner produces irregular group
/// degrees.
#[test]
fn coalesced_leanmd_simulates_cleanly() {
    let p = 16;
    let tasks = gen::leanmd(
        p,
        &gen::LeanMdConfig {
            num_computes: 200,
            ..Default::default()
        },
    );
    let machine = Torus::torus_2d(4, 4);
    let r = two_phase(
        &tasks,
        &machine,
        &MultilevelKWay::default(),
        &TopoLb::default(),
    );
    let tr = trace::stencil_trace(&r.group_graph, 5, 1_000);
    tr.check_matched().unwrap();
    let s = Simulation::run(&machine, &NetworkConfig::default(), &tr, &r.group_mapping);
    assert!(s.completion_ns > 0);
    assert_eq!(
        s.network_messages + s.local_messages,
        2 * r.group_graph.num_edges() as u64 * 5
    );
}
