//! Instrumentation-invariance suite: the observability layer must be
//! **provably non-perturbing**. For every mapper, every topology family,
//! and thread counts {1, 4}, a run with recording ON must produce a
//! bit-identical result to the same run with recording OFF — and the
//! counters it emits must be internally consistent and thread-invariant.
//!
//! The recorder is process-global, so every test that toggles it holds
//! [`OBS_LOCK`] for its whole body (Rust's test harness runs tests in
//! parallel threads of one process).

use proptest::prelude::*;
use std::sync::Mutex;
use topomap::core::obs;
use topomap::netsim::config::RoutingMode;
use topomap::netsim::trace::{stencil_trace, TraceOp};
use topomap::prelude::*;
use topomap::taskgraph::gen;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with the recorder on and hand back its result plus the report.
/// Callers must hold [`OBS_LOCK`].
fn recorded<R>(f: impl FnOnce() -> R) -> (R, obs::Report) {
    obs::start();
    let r = f();
    (r, obs::finish())
}

/// A `Parallelism` that takes the threaded path even on tiny inputs.
fn eager(threads: usize) -> Parallelism {
    Parallelism {
        threads: Threads::Fixed(threads),
        min_work: 1,
    }
}

fn arb_task_graph() -> impl Strategy<Value = TaskGraph> {
    (4usize..=16, 0.5f64..4.0, any::<u64>())
        .prop_map(|(n, deg, seed)| gen::random_graph(n, deg.min(n as f64 - 1.0), 1.0, 1000.0, seed))
}

/// One topology of each family: 2-D torus, hypercube, ring
/// (GraphTopology), and a distance-cached torus (CachedTopology).
fn topology_for(idx: usize, min_nodes: usize) -> Box<dyn Topology> {
    match idx {
        0 => {
            let side = (min_nodes as f64).sqrt().ceil() as usize;
            Box::new(Torus::torus_2d(side, side))
        }
        1 => {
            let dims = (min_nodes as f64).log2().ceil() as u32;
            Box::new(Hypercube::new(dims.max(1)))
        }
        2 => Box::new(GraphTopology::ring(min_nodes)),
        _ => {
            let side = (min_nodes as f64).sqrt().ceil() as usize;
            Box::new(CachedTopology::new(Torus::torus_2d(side, side)))
        }
    }
}

/// One routed topology per family for the ledger-conservation suite (the
/// conservation law needs `RoutedTopology` — real links — not just a
/// distance metric).
fn routed_for(idx: usize, min_nodes: usize) -> Box<dyn RoutedTopology> {
    match idx {
        0 => {
            let side = (min_nodes as f64).sqrt().ceil() as usize;
            Box::new(Torus::torus_2d(side, side))
        }
        1 => {
            let dims = (min_nodes as f64).log2().ceil() as u32;
            Box::new(Hypercube::new(dims.max(1)))
        }
        2 => Box::new(GraphTopology::ring(min_nodes)),
        _ => Box::new(Dragonfly::new(4, min_nodes.div_ceil(4))),
    }
}

/// Analytic hop-bytes of a trace under a mapping: each `Send` crosses
/// exactly `distance(src_proc, dst_proc)` links under minimal routing,
/// charging its full payload on every link of the path.
fn trace_hop_bytes(tr: &Trace, topo: &dyn RoutedTopology, m: &Mapping) -> u64 {
    let mut total = 0u64;
    for (t, prog) in tr.programs.iter().enumerate() {
        for op in prog {
            if let TraceOp::Send { to, bytes } = *op {
                total += bytes * topo.distance(m.proc_of(t), m.proc_of(to)) as u64;
            }
        }
    }
    total
}

const ORDERS: [EstimationOrder; 3] = [
    EstimationOrder::First,
    EstimationOrder::Second,
    EstimationOrder::Third,
];

fn counter(r: &obs::Report, name: &str) -> u64 {
    r.counter(name).unwrap_or(0)
}

/// The TopoLB/estimation counter identities for the incremental kernels:
/// one assign per task; one row event per task-graph edge (an edge fires
/// exactly once, when its first endpoint is placed); every row event is
/// folded in full (and argmin-hit refolds only add), so the full-scan
/// count dominates the row events; and exactly one estimation kernel
/// (general f64 or uniform-integer) is selected per run.
fn check_topolb_counters(r: &obs::Report, g: &TaskGraph, order: EstimationOrder) {
    let n = g.num_tasks() as u64;
    assert_eq!(counter(r, "topolb.placements"), n);
    assert_eq!(counter(r, "estimation.assigns"), n);
    let edges = g.num_edges() as u64;
    assert_eq!(
        counter(r, "estimation.row_events"),
        edges,
        "order {order:?}"
    );
    let full = counter(r, "estimation.fest_full_scan");
    assert!(
        full >= edges,
        "full {full} < edges {edges}, order {order:?}"
    );
    if order == EstimationOrder::Third {
        // Third order refolds the whole frontier every step; the
        // incremental subtraction path never runs.
        assert_eq!(
            counter(r, "estimation.fest_incremental"),
            0,
            "third order always rescans in full"
        );
    }
    let gen_runs = counter(r, "estimation.kernel_general");
    let uni_runs = counter(r, "estimation.kernel_uniform_int");
    assert_eq!(gen_runs + uni_runs, 1, "exactly one kernel per run");
    if order == EstimationOrder::Third {
        assert_eq!(uni_runs, 0, "third order never takes the integer kernel");
    }
    assert_eq!(counter(r, &format!("topolb.order.{}", order.label())), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// TopoLB: recording ON is bit-identical to OFF at 1 and 4 threads,
    /// the estimation counters obey their closed forms, and every
    /// algorithm counter is identical across thread counts.
    #[test]
    fn topolb_recording_is_invisible(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        order_idx in 0usize..3,
    ) {
        let _l = obs_guard();
        let topo = topology_for(topo_idx, 25);
        let order = ORDERS[order_idx];

        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            let mapper = TopoLb::with_parallelism(order, eager(threads));
            obs::disable();
            let off = mapper.map(&g, topo.as_ref());
            let (on, report) = recorded(|| mapper.map(&g, topo.as_ref()));
            prop_assert_eq!(&off, &on, "ON differs from OFF at {} threads", threads);
            check_topolb_counters(&report, &g, order);
            reports.push(report);
        }
        // Thread-count invariance of the algorithm counters (the par.*
        // and *_ns counters legitimately differ).
        for name in [
            "topolb.placements",
            "estimation.assigns",
            "estimation.row_events",
            "estimation.fest_full_scan",
            "estimation.fest_incremental",
            "estimation.kernel_general",
            "estimation.kernel_uniform_int",
        ] {
            prop_assert_eq!(
                reports[0].counter(name), reports[1].counter(name),
                "counter {} depends on thread count", name
            );
        }
    }

    /// RefineTopoLB: ON == OFF, accepted + rejected == evaluated, the
    /// delta-HB trajectory has one sample per accepted exchange, and the
    /// refine counters are thread-invariant.
    #[test]
    fn refine_recording_is_invisible(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
    ) {
        let _l = obs_guard();
        let topo = topology_for(topo_idx, 25);

        let mut reports = Vec::new();
        for threads in [1usize, 4] {
            let mapper = RefineTopoLb::with_parallelism(
                TopoLb::with_parallelism(EstimationOrder::Second, eager(threads)),
                eager(threads),
            );
            obs::disable();
            let off = mapper.map(&g, topo.as_ref());
            let (on, report) = recorded(|| mapper.map(&g, topo.as_ref()));
            prop_assert_eq!(&off, &on, "ON differs from OFF at {} threads", threads);

            let acc = counter(&report, "refine.swaps_accepted");
            let rej = counter(&report, "refine.swaps_rejected");
            prop_assert_eq!(counter(&report, "refine.candidates_evaluated"), acc + rej);
            let trajectory = report.series("refine.delta_hb").map_or(0, |s| s.count);
            prop_assert_eq!(trajectory, acc, "one delta sample per acceptance");
            // Every accepted exchange strictly improves hop-bytes.
            if let Some(s) = report.series("refine.delta_hb") {
                prop_assert!(s.values.iter().all(|&d| d < 0.0), "{:?}", s.values);
            }
            reports.push(report);
        }
        for name in [
            "refine.candidates_evaluated",
            "refine.swaps_accepted",
            "refine.swaps_rejected",
            "refine.passes",
        ] {
            prop_assert_eq!(
                reports[0].counter(name), reports[1].counter(name),
                "counter {} depends on thread count", name
            );
        }
    }

    /// TopoCentLB: ON == OFF; the heap ledger is ordered
    /// stale <= pops <= pushes and places every task.
    #[test]
    fn topocentlb_recording_is_invisible(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
    ) {
        let _l = obs_guard();
        let topo = topology_for(topo_idx, 25);
        obs::disable();
        let off = TopoCentLb.map(&g, topo.as_ref());
        let (on, report) = recorded(|| TopoCentLb.map(&g, topo.as_ref()));
        prop_assert_eq!(&off, &on);
        prop_assert_eq!(counter(&report, "topocentlb.placements"), g.num_tasks() as u64);
        let pushes = counter(&report, "topocentlb.heap_pushes");
        let pops = counter(&report, "topocentlb.heap_pops");
        let stale = counter(&report, "topocentlb.stale_pops");
        prop_assert!(stale <= pops, "stale {stale} > pops {pops}");
        prop_assert!(pops <= pushes, "pops {pops} > pushes {pushes}");
    }

    /// The stochastic mappers: ON == OFF with the same seed, and the
    /// proposal/fitness ledgers balance exactly.
    #[test]
    fn stochastic_recording_is_invisible(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let _l = obs_guard();
        let topo = topology_for(topo_idx, 25);

        let sa = SimulatedAnnealingMap { par: eager(4), ..SimulatedAnnealingMap::quick(seed) };
        obs::disable();
        let off = sa.map(&g, topo.as_ref());
        let (on, report) = recorded(|| sa.map(&g, topo.as_ref()));
        prop_assert_eq!(&off, &on, "SA perturbed by recording");
        if let Some(proposals) = report.counter("anneal.proposals") {
            // (Edgeless graphs return before the search loop and emit
            // nothing — the mapping equality above still covers them.)
            let acc = counter(&report, "anneal.accepted");
            let rej = counter(&report, "anneal.rejected");
            let voided = counter(&report, "anneal.voided");
            prop_assert_eq!(acc + rej + voided, proposals, "proposal ledger leak");
            prop_assert_eq!(
                proposals,
                counter(&report, "anneal.temp_steps") * sa.moves_per_temp as u64
            );
            let hb_samples = report.series("anneal.hb").map_or(0, |s| s.count);
            prop_assert_eq!(hb_samples, counter(&report, "anneal.temp_steps"));
        }

        let ga = GeneticMap { par: eager(4), generations: 8, ..GeneticMap::quick(seed) };
        obs::disable();
        let off = ga.map(&g, topo.as_ref());
        let (on, report) = recorded(|| ga.map(&g, topo.as_ref()));
        prop_assert_eq!(&off, &on, "GA perturbed by recording");
        prop_assert_eq!(
            counter(&report, "genetic.fitness_evaluations"),
            counter(&report, "genetic.initial_pop") + counter(&report, "genetic.children_bred"),
            "every genome scored exactly once"
        );
        prop_assert_eq!(counter(&report, "genetic.generations"), 8);
        let best = report.series("genetic.best_hb").map_or(0, |s| s.count);
        prop_assert_eq!(best, 8, "one best-fitness sample per generation");
    }

    /// The baseline mappers carry no instrumentation but must still be
    /// byte-identical under recording (they share the metric kernels).
    #[test]
    fn baseline_mappers_recording_is_invisible(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let _l = obs_guard();
        let topo = topology_for(topo_idx, 25);
        for mapper in [
            Box::new(RandomMap::new(seed)) as Box<dyn Mapper>,
            Box::new(IdentityMap),
        ] {
            obs::disable();
            let off = mapper.map(&g, topo.as_ref());
            let (on, _) = recorded(|| mapper.map(&g, topo.as_ref()));
            prop_assert_eq!(&off, &on, "{} perturbed by recording", mapper.name());
        }
    }

    /// Netsim: recording must not shift a single simulated nanosecond,
    /// and the per-link byte heatmap must sum to the independently
    /// accumulated bytes x hops ledger.
    #[test]
    fn netsim_recording_is_invisible(
        rx in 2usize..=4,
        ry in 2usize..=4,
        iters in 1usize..=3,
        seed in any::<u64>(),
    ) {
        let _l = obs_guard();
        let g = gen::stencil2d(rx, ry, 2048.0, false);
        let topo = Torus::torus_2d(rx, ry);
        let m = RandomMap::new(seed).map(&g, &topo);
        let tr = stencil_trace(&g, iters, 1_000);
        let cfg = NetworkConfig::default();

        obs::disable();
        let off = Simulation::run(&topo, &cfg, &tr, &m);
        let (on, report) = recorded(|| Simulation::run(&topo, &cfg, &tr, &m));
        prop_assert_eq!(&off, &on, "simulation perturbed by recording");

        prop_assert!(counter(&report, "netsim.events") > 0);
        prop_assert_eq!(
            counter(&report, "netsim.messages.network") + counter(&report, "netsim.messages.local"),
            off.network_messages + off.local_messages
        );
        // Two independent ledgers for realized hop-bytes: per-delivery
        // (bytes x hops at delivery time) vs per-link (bytes charged on
        // each link crossed). They must agree exactly.
        let link_bytes: f64 = report
            .series("netsim.link_bytes")
            .map_or(0.0, |s| s.values.iter().sum());
        prop_assert_eq!(link_bytes as u64, counter(&report, "netsim.bytes_hops"));
        // The heatmap has one row per directed link of the machine.
        let links = report.series("netsim.link_bytes").map_or(0, |s| s.count);
        let busy = report.series("netsim.link_busy_ns").map_or(0, |s| s.count);
        prop_assert_eq!(links, busy, "heatmap series must be parallel arrays");
    }

    /// Ledger conservation, the netsim analogue of Kirchhoff's law: over
    /// arbitrary small topologies × random mappings, the per-link byte
    /// ledger of a deterministic run sums to exactly Σ bytes × distance
    /// over the trace's `Send`s — no bytes invented, none lost, every
    /// message charged on a shortest path. Minimal-adaptive routing may
    /// spread load differently but must never exceed that total (adaptive
    /// stays minimal).
    #[test]
    fn netsim_ledger_conserves_hop_bytes(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        seed in any::<u64>(),
        iters in 1usize..=3,
    ) {
        let topo = routed_for(topo_idx, g.num_tasks().max(9));
        let m = RandomMap::new(seed).map(&g, topo.as_ref());
        let tr = stencil_trace(&g, iters, 1_000);
        let analytic = trace_hop_bytes(&tr, topo.as_ref(), &m);

        let det = NetworkConfig::default();
        let rep = Simulation::run_with_links(topo.as_ref(), &det, &tr, &m);
        let ledger: u64 = rep.acct.bytes_slice().iter().sum();
        prop_assert_eq!(
            ledger, analytic,
            "deterministic routing must charge bytes x distance exactly on {}",
            topo.name()
        );
        prop_assert_eq!(ledger, rep.acct.total_bytes_hops(), "internal ledgers disagree");
        prop_assert_eq!(rep.stats.bytes_delivered, tr.total_send_bytes());
        // The ledger-keeping entry point reports the same statistics as
        // the plain one.
        prop_assert_eq!(&Simulation::run(topo.as_ref(), &det, &tr, &m), &rep.stats);

        let ada = NetworkConfig {
            routing: RoutingMode::MinimalAdaptive,
            ..NetworkConfig::default()
        };
        let arep = Simulation::run_with_links(topo.as_ref(), &ada, &tr, &m);
        let aledger: u64 = arep.acct.bytes_slice().iter().sum();
        prop_assert!(
            aledger <= analytic,
            "adaptive routing left the minimal envelope on {}: {} > {}",
            topo.name(), aledger, analytic
        );
        prop_assert_eq!(arep.stats.bytes_delivered, rep.stats.bytes_delivered);
    }
}

/// A recording session that spans several mapper runs accumulates — the
/// bench harness profiles whole experiment grids this way.
#[test]
fn counters_accumulate_across_runs_in_one_session() {
    let _l = obs_guard();
    let g = gen::stencil2d(4, 4, 100.0, false);
    let topo = Torus::torus_2d(4, 4);
    let mapper = TopoLb::default();
    let (_, report) = recorded(|| {
        mapper.map(&g, &topo);
        mapper.map(&g, &topo);
        mapper.map(&g, &topo);
    });
    assert_eq!(report.counter("topolb.placements"), Some(48));
    assert_eq!(report.counter("estimation.assigns"), Some(48));
}

/// Toggling the recorder mid-run must never corrupt a later session:
/// stale span guards from a previous generation are inert.
#[test]
fn stale_guards_from_a_previous_session_are_inert() {
    let _l = obs_guard();
    let g = gen::ring(8, 100.0);
    let topo = Torus::torus_2d(3, 3);

    obs::start();
    let _leaked = obs::span("leaked.span");
    // A fresh session begins while the guard above is still alive.
    let (_, report) = recorded(|| TopoLb::default().map(&g, &topo));
    assert!(report.find_span("leaked.span").is_none());
    assert!(report.find_span("topolb.map").is_some());
}
