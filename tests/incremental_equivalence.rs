//! Differential equivalence suite for the incremental-gain mapping
//! kernels — the pin that holds TopoLB/TopoCentLB/RefineTopoLB to their
//! defining recurrences now that the production paths are delta-updated.
//!
//! The oracles are the `#[doc(hidden)]` naive twins ([`NaiveTopoLb`],
//! [`NaiveTopoCentLb`], [`refine_mapping_naive`],
//! [`NaiveEstimationState`]): dense id-indexed tables, per-element
//! distance calls, full rescans, no row pooling, no dirty tracking, no
//! parallelism. Every property here is **bit-identical** equality — no
//! tolerance — because the fast kernels are built to replay the exact
//! float (or integer) accumulation order of the defining recurrence, not
//! merely approximate it.
//!
//! Coverage axes:
//! - mapper: TopoLB (all three estimation orders), TopoCentLB, the
//!   refinement sweep;
//! - kernel: the general f64 path (varied edge weights) and the
//!   uniform-integer path (uniform weights on distance-regular
//!   topologies) — both generated, and the dispatch itself is pinned by
//!   comparing `kernel_label()` across fast/naive;
//! - topology family: open mesh (position factor varies), 2-D torus,
//!   fat-tree hierarchy, distance-cached torus;
//! - threads: 1, 2, 8 (eager chunking so tiny cases still take the
//!   threaded path).
//!
//! Beyond end-to-end mapping equality, [`lockstep_audit`] drives the fast
//! and naive estimation states through the same placement schedule and
//! audits the full observable surface at every step — frontier
//! membership, the `(FMin, FSum)` stats pair, the gain, `fest(t, q)` for
//! every live (task, processor) pair, selection, and placement — which is
//! a superset of random mid-run checkpointing.

use proptest::prelude::*;
use topomap::core::estimation::EstimationState;
use topomap::core::estimation_naive::NaiveEstimationState;
use topomap::core::naive::{NaiveTopoCentLb, NaiveTopoLb};
use topomap::core::refine::{refine_mapping_naive, refine_mapping_with};
use topomap::prelude::*;
use topomap::taskgraph::gen;

/// A `Parallelism` that takes the threaded path even on tiny inputs.
fn eager(threads: usize) -> Parallelism {
    Parallelism {
        threads: Threads::Fixed(threads),
        min_work: 1,
    }
}

/// Random task graph; `uniform` pins every edge weight to one constant
/// (the uniform-integer kernel's precondition), varied weights force the
/// general f64 kernel.
fn arb_task_graph() -> impl Strategy<Value = TaskGraph> {
    (4usize..=20, 0.5f64..4.0, any::<u64>(), any::<bool>()).prop_map(|(n, deg, seed, uniform)| {
        let deg = deg.min(n as f64 - 1.0);
        if uniform {
            let w = 1.0 + (seed % 4096) as f64;
            gen::random_graph(n, deg, w, w, seed)
        } else {
            gen::random_graph(n, deg, 1.0, 1000.0, seed)
        }
    })
}

/// One topology per family: open mesh (the positional factor varies, so
/// even uniform weights stay on the general kernel for second order),
/// 2-D torus and its distance-cached twin (distance-regular → integer
/// kernel eligible), and a binary fat-tree (the paper's §1 hierarchy
/// contrast, also distance-regular at the leaves).
fn topology_for(idx: usize, min_nodes: usize) -> Box<dyn Topology> {
    let side = (min_nodes as f64).sqrt().ceil() as usize;
    match idx {
        0 => Box::new(Torus::mesh_2d(side, side)),
        1 => Box::new(Torus::torus_2d(side, side)),
        2 => Box::new(FatTree::new(2, 5)),
        _ => Box::new(CachedTopology::new(Torus::torus_2d(side, side))),
    }
}

const ORDERS: [EstimationOrder; 3] = [
    EstimationOrder::First,
    EstimationOrder::Second,
    EstimationOrder::Third,
];

/// Drive the fast facade and the naive oracle through the same placement
/// schedule, auditing the complete observable surface at every step.
fn lockstep_audit(g: &TaskGraph, topo: &dyn Topology, order: EstimationOrder, threads: usize) {
    let mut fast = EstimationState::with_parallelism(g, topo, order, eager(threads));
    let mut naive = NaiveEstimationState::new(g, topo, order);
    assert_eq!(
        fast.kernel_label(),
        naive.kernel_label(),
        "kernel dispatch disagrees (order {order:?})"
    );

    let n = g.num_tasks();
    let mut placed = vec![false; n];
    for step in 0..n {
        assert_eq!(fast.num_unassigned(), naive.num_unassigned(), "step {step}");
        assert_eq!(fast.num_free(), naive.num_free(), "step {step}");

        // Mid-run invariant audit over every live (task, processor) pair.
        let free: Vec<usize> = fast.free_procs().to_vec();
        for (t, &t_placed) in placed.iter().enumerate() {
            if t_placed {
                continue;
            }
            assert_eq!(
                fast.is_active(t),
                naive.is_active(t),
                "frontier membership of task {t} at step {step}"
            );
            let (gf, gn) = (fast.gain(t), naive.gain(t));
            assert_eq!(
                gf.to_bits(),
                gn.to_bits(),
                "gain({t}) at step {step}: fast {gf} vs naive {gn}"
            );
            if fast.is_active(t) {
                let (sf, sn) = (fast.stats(t), naive.stats(t));
                assert_eq!(
                    (sf.0.to_bits(), sf.1.to_bits()),
                    (sn.0.to_bits(), sn.1.to_bits()),
                    "(FMin, FSum) of task {t} at step {step}: fast {sf:?} vs naive {sn:?}"
                );
                for &q in &free {
                    let (ff, fnv) = (fast.fest(t, q), naive.fest(t, q));
                    assert_eq!(
                        ff.to_bits(),
                        fnv.to_bits(),
                        "fest({t}, {q}) at step {step}: fast {ff} vs naive {fnv}"
                    );
                }
            }
        }

        let (tf, tn) = (fast.select_task(), naive.select_task());
        assert_eq!(tf, tn, "selection at step {step}");
        let (qf, qn) = (fast.best_proc(tf), naive.best_proc(tn));
        assert_eq!(qf, qn, "placement of task {tf} at step {step}");
        fast.assign(tf, qf);
        naive.assign(tn, qn);
        placed[tf] = true;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// TopoLB: the incremental kernels (both f64 and integer) produce
    /// the oracle's mapping bit-for-bit, at every order, on every
    /// topology family, at 1/2/8 threads.
    #[test]
    fn topolb_incremental_matches_oracle(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        order_idx in 0usize..3,
    ) {
        let topo = topology_for(topo_idx, 25);
        let order = ORDERS[order_idx];
        let want = NaiveTopoLb { order }.map(&g, topo.as_ref());
        for threads in [1usize, 2, 8] {
            let got = TopoLb::with_parallelism(order, eager(threads)).map(&g, topo.as_ref());
            prop_assert_eq!(&want, &got, "order {:?}, {} threads", order, threads);
        }
    }

    /// TopoCentLB: the pooled-row incremental cost tables reproduce the
    /// dense full-rescan oracle exactly.
    #[test]
    fn topocentlb_incremental_matches_oracle(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
    ) {
        let topo = topology_for(topo_idx, 25);
        let want = NaiveTopoCentLb.map(&g, topo.as_ref());
        let got = TopoCentLb.map(&g, topo.as_ref());
        prop_assert_eq!(&want, &got);
    }

    /// RefineTopoLB's dirty-set sweep accepts the same exchanges as the
    /// naive full sweep — same final mapping, same accept count — from
    /// any random start, at every thread count.
    #[test]
    fn refine_incremental_matches_oracle(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        seed in any::<u64>(),
    ) {
        let topo = topology_for(topo_idx, 25);
        let start = RandomMap::new(seed).map(&g, topo.as_ref());
        let mut want = start.clone();
        let accepted = refine_mapping_naive(&g, topo.as_ref(), &mut want, 4);
        for threads in [1usize, 2, 8] {
            let mut got = start.clone();
            let acc = refine_mapping_with(&g, topo.as_ref(), &mut got, 4, eager(threads));
            prop_assert_eq!(acc, accepted, "accept count at {} threads", threads);
            prop_assert_eq!(&want, &got, "{} threads", threads);
        }
    }

    /// Step-by-step audit of the estimation state itself: every
    /// observable (frontier, stats, gain, fest, selection, placement)
    /// bit-matches the oracle at every placement step.
    #[test]
    fn estimation_state_lockstep_audit(
        g in arb_task_graph(),
        topo_idx in 0usize..4,
        order_idx in 0usize..3,
        threads_idx in 0usize..3,
    ) {
        let topo = topology_for(topo_idx, 25);
        lockstep_audit(&g, topo.as_ref(), ORDERS[order_idx], [1, 2, 8][threads_idx]);
    }
}

/// Pinned proptest regression (see
/// `tests/incremental_equivalence.proptest-regressions` and the
/// DESIGN.md convention note): the offline proptest stand-in does not
/// replay regression files, so the recorded seed is pinned here as an
/// explicit test. Seed 2883168991836340068 is the suite's canonical
/// shrunk case from PR 1 (`workspace_properties.proptest-regressions`),
/// re-used so the corpus stays one seed wide until a real divergence is
/// recorded.
#[test]
fn regression_seed_2883168991836340068() {
    const SEED: u64 = 2883168991836340068;
    // Varied weights → general kernel; uniform weights → integer kernel.
    let varied = gen::random_graph(16, 3.0, 1.0, 1000.0, SEED);
    let uniform = gen::random_graph(16, 3.0, 64.0, 64.0, SEED);
    for (g, label) in [(&varied, "varied"), (&uniform, "uniform")] {
        for topo_idx in 0..4 {
            let topo = topology_for(topo_idx, 25);
            for order in ORDERS {
                let want = NaiveTopoLb { order }.map(g, topo.as_ref());
                for threads in [1usize, 2, 8] {
                    let got = TopoLb::with_parallelism(order, eager(threads)).map(g, topo.as_ref());
                    assert_eq!(
                        want, got,
                        "{label} weights, topo {topo_idx}, order {order:?}, {threads} threads"
                    );
                }
                lockstep_audit(g, topo.as_ref(), order, 2);
            }
            assert_eq!(
                NaiveTopoCentLb.map(g, topo.as_ref()),
                TopoCentLb.map(g, topo.as_ref()),
                "{label} weights, topo {topo_idx}"
            );
        }
    }
}

/// The kernel dispatch predicate itself, pinned case by case: uniform
/// weights take the integer kernel exactly when the positional factor is
/// constant (first order always; second order on distance-regular
/// topologies), and varied weights or third order always stay general.
#[test]
fn kernel_dispatch_matrix() {
    let uniform = gen::stencil2d(4, 4, 256.0, false);
    let varied = gen::random_graph(16, 3.0, 1.0, 1000.0, 7);
    for (topo_idx, second_is_uniform) in [(0, false), (1, true), (2, true), (3, true)] {
        let topo = topology_for(topo_idx, 25);
        for order in ORDERS {
            let want = match order {
                EstimationOrder::First => "uniform-int",
                EstimationOrder::Second if second_is_uniform => "uniform-int",
                _ => "general",
            };
            let fast = EstimationState::new(&uniform, topo.as_ref(), order);
            assert_eq!(
                fast.kernel_label(),
                want,
                "topo {topo_idx}, order {order:?}"
            );
            let naive = NaiveEstimationState::new(&uniform, topo.as_ref(), order);
            assert_eq!(
                naive.kernel_label(),
                want,
                "naive, topo {topo_idx}, order {order:?}"
            );

            let fast = EstimationState::new(&varied, topo.as_ref(), order);
            assert_eq!(
                fast.kernel_label(),
                "general",
                "varied weights must stay general"
            );
        }
    }
}
