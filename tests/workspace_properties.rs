//! Cross-crate property-based tests: invariants that must hold for *any*
//! workload/topology/mapping combination.

use proptest::prelude::*;
use topomap::core::metrics::{hop_bytes, hops_per_byte, LinkLoads};
use topomap::core::refine::refine_mapping;
use topomap::prelude::*;
use topomap::taskgraph::gen;

fn arb_task_graph() -> impl Strategy<Value = TaskGraph> {
    (4usize..=24, 0.5f64..4.0, any::<u64>())
        .prop_map(|(n, deg, seed)| gen::random_graph(n, deg.min(n as f64 - 1.0), 1.0, 1000.0, seed))
}

fn arb_torus_for(n: usize) -> impl Strategy<Value = Torus> {
    // A torus with at least n nodes, 1-3 dims.
    (1usize..=3, any::<bool>()).prop_map(move |(dims, wrap)| {
        let side = (n as f64).powf(1.0 / dims as f64).ceil() as usize + 1;
        let d = vec![side.max(2); dims];
        Torus::new(&d, &vec![wrap; dims])
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every mapper returns an injective, covering mapping, and its
    /// hop-bytes is consistent with per-link routing loads.
    #[test]
    fn mappers_valid_and_metrics_consistent(
        g in arb_task_graph(),
        seed in any::<u64>(),
        mapper_idx in 0usize..4,
    ) {
        let n = g.num_tasks();
        let topo = Torus::torus_2d((n as f64).sqrt().ceil() as usize + 1,
                                   (n as f64).sqrt().ceil() as usize + 1);
        let mapper: Box<dyn Mapper> = match mapper_idx {
            0 => Box::new(RandomMap::new(seed)),
            1 => Box::new(TopoCentLb),
            2 => Box::new(TopoLb::default()),
            _ => Box::new(TopoLb::new(EstimationOrder::First)),
        };
        let m = mapper.map(&g, &topo);
        // Injective over tasks.
        let mut seen = std::collections::HashSet::new();
        for t in 0..n {
            prop_assert!(seen.insert(m.proc_of(t)));
        }
        // Hop-bytes equals total routed link load (shortest-path routing).
        let hb = hop_bytes(&g, &topo, &m);
        let ll = LinkLoads::compute(&g, &topo, &m);
        prop_assert!((ll.total() - hb).abs() <= 1e-6 * hb.max(1.0));
        // Hops-per-byte bounded by the diameter.
        prop_assert!(hops_per_byte(&g, &topo, &m) <= topo.diameter() as f64 + 1e-9);
    }

    /// Hop-bytes is invariant under relabeling processors by a topology
    /// automorphism (translation on a full torus).
    #[test]
    fn hop_bytes_invariant_under_torus_translation(
        g in arb_task_graph(),
        seed in any::<u64>(),
        dx in 0usize..5,
        dy in 0usize..5,
    ) {
        let n = g.num_tasks();
        let side = (n as f64).sqrt().ceil() as usize + 1;
        let topo = Torus::torus_2d(side, side);
        let m = RandomMap::new(seed).map(&g, &topo);
        let translate = |p: usize| -> usize {
            let x = (p / side + dx) % side;
            let y = (p % side + dy) % side;
            x * side + y
        };
        let shifted = Mapping::new(
            (0..n).map(|t| translate(m.proc_of(t))).collect(),
            topo.num_nodes(),
        );
        let a = hop_bytes(&g, &topo, &m);
        let b = hop_bytes(&g, &topo, &shifted);
        prop_assert!((a - b).abs() <= 1e-9 * a.max(1.0), "{a} vs {b}");
    }

    /// Refinement never increases hop-bytes, for any starting mapping.
    #[test]
    fn refinement_monotone(g in arb_task_graph(), seed in any::<u64>(), t in arb_torus_for(24)) {
        prop_assume!(t.num_nodes() >= g.num_tasks());
        let mut m = RandomMap::new(seed).map(&g, &t);
        let before = hop_bytes(&g, &t, &m);
        refine_mapping(&g, &t, &mut m, 3);
        let after = hop_bytes(&g, &t, &m);
        prop_assert!(after <= before + 1e-9);
    }

    /// The partition-coalesce pair conserves load and never increases
    /// total communication.
    #[test]
    fn coalesce_conserves_load(g in arb_task_graph(), k in 2usize..6) {
        prop_assume!(k <= g.num_tasks());
        let part = MultilevelKWay::default().partition(&g, k);
        let c = part.coalesce(&g);
        prop_assert!((c.total_vertex_weight() - g.total_vertex_weight()).abs() < 1e-9);
        prop_assert!(c.total_comm() <= g.total_comm() + 1e-9);
        prop_assert_eq!(c.num_tasks(), k);
        // Edge cut equals the coalesced graph's total communication.
        prop_assert!((part.edge_cut(&g) - c.total_comm()).abs() < 1e-9);
    }

    /// The simulator conserves messages and is deterministic, for random
    /// stencil workloads under every switching/NIC model combination.
    #[test]
    fn simulator_conserves_and_repeats(
        seed in any::<u64>(),
        wormhole in any::<bool>(),
        perlink in any::<bool>(),
        iters in 1usize..6,
    ) {
        use topomap::netsim::config::{NicModel, Switching};
        use topomap::netsim::trace::stencil_trace;
        let g = gen::stencil2d(3, 4, 512.0, false);
        let topo = Torus::torus_2d(4, 3);
        let tr = stencil_trace(&g, iters, 1000);
        let cfg = NetworkConfig {
            switching: if wormhole { Switching::Wormhole } else { Switching::CutThrough },
            nic: if perlink { NicModel::PerLink } else { NicModel::SharedChannel },
            ..Default::default()
        };
        let m = RandomMap::new(seed).map(&g, &topo);
        let s1 = Simulation::run(&topo, &cfg, &tr, &m);
        let s2 = Simulation::run(&topo, &cfg, &tr, &m);
        prop_assert_eq!(s1.completion_ns, s2.completion_ns);
        prop_assert_eq!(
            s1.network_messages + s1.local_messages,
            (2 * g.num_edges() * iters) as u64
        );
        prop_assert!(s1.max_link_utilization <= 1.0 + 1e-9);
    }

}

/// Wormhole backpressure demonstrably delays traffic behind a blocked
/// message, where cut-through absorbs it. (A *universal* "wormhole is
/// never faster" property is false — delaying one message can reorder
/// link acquisition elsewhere and shorten another path — so this pins a
/// deterministic chain instead.)
#[test]
fn wormhole_backpressure_delays_upstream_traffic() {
    use topomap::netsim::config::Switching;
    use topomap::netsim::{Trace, TraceOp};
    // Line 0-1-2-3. Message A: 0 -> 3 (uses links 0-1, 1-2, 2-3).
    // Message B: 2 -> 3 sent first, hogging link 2-3.
    // Message C: 0 -> 1 sent after A.
    // Under wormhole, A blocks at 2-3, holding 1-2 and (transitively
    // stalling at) 0-1, so C queues behind A's extended occupancy.
    let tr = Trace {
        programs: vec![
            vec![
                TraceOp::Send {
                    to: 3,
                    bytes: 50_000,
                }, // A
                TraceOp::Send {
                    to: 1,
                    bytes: 50_000,
                }, // C
            ],
            vec![TraceOp::Recv { from: 0 }],
            vec![TraceOp::Send {
                to: 3,
                bytes: 50_000,
            }], // B
            vec![TraceOp::Recv { from: 0 }, TraceOp::Recv { from: 2 }],
        ],
    };
    tr.check_matched().unwrap();
    let topo = Torus::mesh_1d(4);
    let m = Mapping::new(vec![0, 1, 2, 3], 4);
    let mut cut = NetworkConfig::default().with_bandwidth(100e6);
    cut.switching = Switching::CutThrough;
    cut.nic = topomap::netsim::config::NicModel::PerLink;
    let mut worm = cut.clone();
    worm.switching = Switching::Wormhole;
    let s_cut = Simulation::run(&topo, &cut, &tr, &m);
    let s_worm = Simulation::run(&topo, &worm, &tr, &m);
    assert!(
        s_worm.completion_ns > s_cut.completion_ns,
        "backpressure must delay the chain: wormhole {} vs cut-through {}",
        s_worm.completion_ns,
        s_cut.completion_ns
    );
}
