//! Golden-schema suite for the trace report: a pinned fixture run
//! (stencil 4x8 placed by serial second-order TopoLB on a 4x8 torus)
//! must produce a report whose *shape* — span tree, counter names and
//! deterministic values, JSON field layout, CSV row grammar — matches
//! this file exactly. Timings vary run to run; everything else is fixed,
//! and a change here is a schema break that trace consumers must hear
//! about (bump `obs::SCHEMA_VERSION`).

use std::sync::Mutex;
use topomap::core::obs;
use topomap::prelude::*;
use topomap::taskgraph::gen;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_guard() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const N_TASKS: u64 = 32;

/// The pinned fixture: every placement decision is deterministic, so the
/// report differs between runs only in nanosecond timings.
fn pinned_report() -> obs::Report {
    let g = gen::stencil2d(4, 8, 1024.0, false);
    let machine = Torus::torus_2d(4, 8);
    let mapper = TopoLb::with_parallelism(EstimationOrder::Second, Parallelism::serial());
    obs::start();
    mapper.map(&g, &machine);
    obs::finish()
}

#[test]
fn version_is_pinned() {
    assert_eq!(
        obs::SCHEMA_VERSION,
        2,
        "schema version changed: update the golden tests"
    );
    let _l = obs_guard();
    assert_eq!(pinned_report().version, obs::SCHEMA_VERSION);
}

#[test]
fn meta_describes_run_environment() {
    let _l = obs_guard();
    let r = pinned_report();
    // A serial fixture still records how it ran: resolved thread count
    // and how many cores the host offered (value varies by machine; the
    // key and its format are the schema).
    assert_eq!(r.meta("par.threads"), Some("1"));
    let cores: usize = r
        .meta("par.host_cores")
        .expect("host core count recorded")
        .parse()
        .expect("par.host_cores is an integer");
    assert!(cores >= 1);
}

#[test]
fn span_tree_matches_golden_shape() {
    let _l = obs_guard();
    let r = pinned_report();

    // Exactly one root — the mapper entry point — with the two phases of
    // the TopoLB pipeline as its only children, in execution order.
    assert_eq!(r.spans.len(), 1, "{:?}", r.span_names());
    let root = &r.spans[0];
    assert_eq!(root.name, "topolb.map");
    let phases: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(phases, ["estimation.init", "topolb.place"]);
    assert!(root.children.iter().all(|c| c.children.is_empty()));
    assert_eq!(r.span_count(), 3);

    // Timing sanity: children start inside the parent and nest within
    // its elapsed window.
    for c in &root.children {
        assert!(c.start_ns >= root.start_ns);
        assert!(c.start_ns + c.elapsed_ns <= root.start_ns + root.elapsed_ns + 1);
    }
}

#[test]
fn counters_match_golden_names_and_values() {
    let _l = obs_guard();
    let r = pinned_report();

    // The exact counter name list, sorted (the recorder guarantees the
    // order). A new probe on this code path must be added here.
    let names: Vec<&str> = r.counters.iter().map(|c| c.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "estimation.assigns",
            "estimation.fest_full_scan",
            "estimation.fest_incremental",
            "estimation.kernel_uniform_int",
            "estimation.row_events",
            "par.regions.serial",
            "par.serial_ns",
            "topolb.assign_ns",
            "topolb.order.second-order",
            "topolb.placements",
            "topolb.select_ns",
        ]
    );

    // Deterministic values: one assign per task; uniform weights on a
    // torus select the integer kernel; one row event per task-graph
    // edge (stencil 4x8: 4·7 + 3·8 = 52), and every row event is a full
    // fold, so the full-scan count at least covers the edges.
    assert_eq!(r.counter("estimation.assigns"), Some(N_TASKS));
    assert_eq!(r.counter("topolb.placements"), Some(N_TASKS));
    assert_eq!(r.counter("topolb.order.second-order"), Some(1));
    assert_eq!(r.counter("estimation.kernel_uniform_int"), Some(1));
    assert_eq!(r.counter("estimation.row_events"), Some(52));
    assert!(r.counter("estimation.fest_full_scan").unwrap() >= 52);

    // A serial run has no series and no worker counters.
    assert!(r.series.is_empty(), "{:?}", r.series);

    // Rerunning the fixture reproduces every non-timing value.
    let r2 = pinned_report();
    let stable = |r: &obs::Report| -> Vec<(String, u64)> {
        r.counters
            .iter()
            .filter(|c| !c.name.ends_with("_ns"))
            .map(|c| (c.name.clone(), c.value))
            .collect()
    };
    assert_eq!(stable(&r), stable(&r2));
    assert_eq!(r.span_names(), r2.span_names());
}

#[test]
fn json_layout_matches_golden_fields() {
    let _l = obs_guard();
    let r = pinned_report();
    let json = r.to_json();

    // Field-by-field: the four top-level keys and the per-record keys
    // the schema promises, spelled exactly.
    for key in [
        "\"version\"",
        "\"meta\"",
        "\"spans\"",
        "\"counters\"",
        "\"series\"",
        "\"name\"",
        "\"start_ns\"",
        "\"elapsed_ns\"",
        "\"children\"",
        "\"value\"",
    ] {
        assert!(
            json.contains(key),
            "trace JSON lost the {key} field:\n{json}"
        );
    }
    assert!(json.contains("\"topolb.map\""));

    // The round trip is lossless — what a consumer parses is exactly
    // what the recorder drained.
    let parsed = obs::Report::from_json(&json).expect("golden JSON parses");
    assert_eq!(parsed, r);
}

#[test]
fn csv_layout_matches_golden_rows() {
    let _l = obs_guard();
    let r = pinned_report();
    let csv = r.to_csv();
    let lines: Vec<&str> = csv.lines().collect();

    assert_eq!(lines[0], "kind,name,a,b");
    // Span rows come first, paths slash-joined in tree order.
    assert!(lines[1].starts_with("span,topolb.map,"), "{}", lines[1]);
    assert!(
        lines[2].starts_with("span,topolb.map/estimation.init,"),
        "{}",
        lines[2]
    );
    assert!(
        lines[3].starts_with("span,topolb.map/topolb.place,"),
        "{}",
        lines[3]
    );
    // Then one row per counter and one per metadata pair (meta rows come
    // last); a serial fixture has no series rows, so the line count is
    // pinned: header + 3 spans + 11 counters + 2 meta.
    assert_eq!(lines.len(), 1 + 3 + 11 + 2, "{csv}");
    assert!(
        lines[4..15].iter().all(|l| l.starts_with("counter,")),
        "{csv}"
    );
    assert!(lines[15..].iter().all(|l| l.starts_with("meta,")), "{csv}");
    assert!(csv.contains(&format!("counter,topolb.placements,{N_TASKS},\n")));
    assert!(csv.contains("counter,topolb.order.second-order,1,\n"));
    assert!(csv.contains("meta,par.threads,1,\n"), "{csv}");
}
