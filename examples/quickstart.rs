//! Quickstart: map a communicating application onto a torus machine and
//! measure how far every byte travels.
//!
//! Run: `cargo run --release --example quickstart`

use topomap::prelude::*;

fn main() {
    // The application: 256 tasks exchanging 4 KiB with their stencil
    // neighbors every iteration (a 2D Jacobi sweep).
    let tasks = topomap::taskgraph::gen::stencil2d(16, 16, 2.0 * 4096.0, false);

    // The machine: a 16x16 2D torus (256 processors).
    let machine = Torus::torus_2d(16, 16);

    println!(
        "machine: {}  (diameter {})",
        machine.name(),
        machine.diameter()
    );
    println!(
        "tasks:   {} tasks, {} edges, {:.1} KiB per iteration\n",
        tasks.num_tasks(),
        tasks.num_edges(),
        tasks.total_comm() / 1024.0
    );

    // Map with each strategy and compare hops-per-byte: the average number
    // of network links each communicated byte crosses (1.0 = every message
    // travels exactly one hop; lower = less network contention).
    let mappers: Vec<Box<dyn Mapper>> = vec![
        Box::new(RandomMap::new(2006)),
        Box::new(TopoCentLb),
        Box::new(TopoLb::default()),
        Box::new(RefineTopoLb::new(TopoLb::default())),
    ];

    println!(
        "{:<16} {:>14} {:>14}",
        "mapper", "hops-per-byte", "hop-bytes (MB)"
    );
    for mapper in &mappers {
        let mapping = mapper.map(&tasks, &machine);
        let hpb = hops_per_byte(&tasks, &machine, &mapping);
        let hb = hop_bytes(&tasks, &machine, &mapping);
        println!("{:<16} {:>14.3} {:>14.2}", mapper.name(), hpb, hb / 1e6);
    }

    println!(
        "\nA 2D mesh pattern embeds perfectly in a 2D torus, so TopoLB should\n\
         reach the ideal 1.000 while random placement pays ~sqrt(p)/2 = {:.1}.",
        (256f64).sqrt() / 2.0
    );
}
