//! A machine with a degraded link: what mapping and routing each recover.
//!
//! Real torus machines run for months with a slow cable or an
//! oversubscribed dimension. This example degrades one link of a (4,4,4)
//! torus to 10% bandwidth and compares the four combinations of
//! {random, TopoLB} × {deterministic, minimal-adaptive} routing —
//! heterogeneous capacities are exactly the setting Taura & Chien's
//! related-work scheme targets.
//!
//! Run: `cargo run --release --example degraded_machine`

use topomap::netsim::config::{NicModel, RoutingMode};
use topomap::netsim::trace;
use topomap::prelude::*;

fn main() {
    let tasks = topomap::taskgraph::gen::stencil2d(8, 8, 2.0 * 2048.0, false);
    let machine = Torus::torus_3d(4, 4, 4);
    let tr = trace::stencil_trace(&tasks, 100, 5_000);

    // Degrade a bundle of links around node 0 (a failing router linecard):
    // all six of node 0's outgoing links at 10% speed.
    let degraded: Vec<(usize, usize, f64)> = machine
        .neighbors(0)
        .into_iter()
        .map(|n| (0usize, n, 0.1))
        .collect();

    let mappings = [
        ("Random", RandomMap::new(3).map(&tasks, &machine)),
        ("TopoLB", TopoLb::default().map(&tasks, &machine)),
    ];

    println!(
        "degraded machine: {} with node 0's outgoing links at 10% bandwidth\n",
        machine.name()
    );
    println!(
        "{:<10} {:<16} {:>14} {:>14}",
        "mapping", "routing", "latency (us)", "completion ms"
    );
    for (mname, mapping) in &mappings {
        for (rname, routing) in [
            ("deterministic", RoutingMode::Deterministic),
            ("min-adaptive", RoutingMode::MinimalAdaptive),
        ] {
            let mut cfg = NetworkConfig::default().with_bandwidth(300e6);
            cfg.nic = NicModel::PerLink;
            cfg.routing = routing;
            cfg.link_speed_factors = degraded.clone();
            let s = Simulation::run(&machine, &cfg, &tr, mapping);
            println!(
                "{:<10} {:<16} {:>14.2} {:>14.2}",
                mname,
                rname,
                s.avg_latency_us(),
                s.completion_ms()
            );
        }
    }
    println!(
        "\nAdaptive routing steers around the sick router where an\n\
         equal-length alternative exists; the topology-aware mapping\n\
         shrinks the blast radius by keeping most traffic off long routes\n\
         in the first place. The two compose."
    );
}
