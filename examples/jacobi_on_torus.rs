//! An iterative stencil solver on a bandwidth-constrained torus: how much
//! wall-clock time does topology-aware mapping buy?
//!
//! Maps a 2D Jacobi application onto a 3D torus with three strategies and
//! replays the same execution trace through the packet-level network
//! simulator at several link bandwidths — the §5.3 methodology of the
//! paper, at example scale.
//!
//! Run: `cargo run --release --example jacobi_on_torus`

use topomap::netsim::{config::NicModel, trace};
use topomap::prelude::*;

fn main() {
    let iterations = 100;
    // 64 tasks, 2 KiB messages, 5 us of compute per iteration: enough
    // compute to be realistic, little enough that the network dominates.
    let tasks = topomap::taskgraph::gen::stencil2d(8, 8, 2.0 * 2048.0, false);
    let machine = Torus::torus_3d(4, 4, 4);
    let tr = trace::stencil_trace(&tasks, iterations, 5_000);
    tr.check_matched().expect("trace is self-consistent");

    let mappings = [
        ("Random", RandomMap::new(7).map(&tasks, &machine)),
        ("TopoCentLB", TopoCentLb.map(&tasks, &machine)),
        ("TopoLB", TopoLb::default().map(&tasks, &machine)),
    ];

    println!(
        "2D Jacobi, {} tasks, {iterations} iterations on {}\n",
        tasks.num_tasks(),
        machine.name()
    );
    println!(
        "{:<12} {:>10} {:>14} {:>14} {:>12}",
        "mapper", "bw MB/s", "latency us", "completion ms", "max link util"
    );
    for bw in [100.0e6, 300.0e6, 1000.0e6] {
        let mut cfg = NetworkConfig::default().with_bandwidth(bw);
        cfg.nic = NicModel::PerLink;
        for (name, mapping) in &mappings {
            let stats = Simulation::run(&machine, &cfg, &tr, mapping);
            println!(
                "{:<12} {:>10.0} {:>14.2} {:>14.2} {:>12.2}",
                name,
                bw / 1e6,
                stats.avg_latency_us(),
                stats.completion_ms(),
                stats.max_link_utilization,
            );
        }
        println!();
    }
    println!(
        "At low bandwidth the random mapping's long routes saturate shared\n\
         links and latency balloons; TopoLB's dilation-1 embedding keeps\n\
         every message on one link and degrades gracefully."
    );
}
