//! Molecular dynamics on a torus: the full two-phase pipeline of the
//! paper on an over-decomposed workload.
//!
//! A LeanMD-style simulation has far more chares (cells + cell-pair
//! computes) than processors, so mapping is two problems: (1) partition
//! the chares into p balanced groups with low cut (METIS's job), then
//! (2) place the groups on the machine so heavy communication stays on
//! short paths (TopoLB's job). This example runs both phases and shows
//! each one's contribution.
//!
//! Run: `cargo run --release --example leanmd_pipeline`

use topomap::core::pipeline::two_phase;
use topomap::partition::RandomPartition;
use topomap::prelude::*;
use topomap::taskgraph::gen::{leanmd, LeanMdConfig};
use topomap::taskgraph::stats::graph_stats;

fn main() {
    let p = 64;
    let machine = Torus::torus_2d(8, 8);
    let tasks = leanmd(p, &LeanMdConfig::default());
    let s = graph_stats(&tasks);
    println!(
        "LeanMD workload: {} chares ({} cells + {} computes), {} edges,\n\
         total per-iteration traffic {:.1} MiB, load imbalance {:.2}x\n",
        s.num_tasks,
        p,
        s.num_tasks - p,
        s.num_edges,
        s.total_comm_bytes / (1024.0 * 1024.0),
        s.load_imbalance
    );

    println!(
        "{:<32} {:>10} {:>12} {:>14}",
        "pipeline", "cut (MiB)", "imbalance", "hops-per-byte"
    );
    type Combo = (&'static str, Box<dyn Partitioner>, Box<dyn Mapper>);
    let combos: Vec<Combo> = vec![
        (
            "random / random",
            Box::new(RandomPartition::new(1)),
            Box::new(RandomMap::new(1)),
        ),
        (
            "multilevel / random",
            Box::new(MultilevelKWay::default()),
            Box::new(RandomMap::new(1)),
        ),
        (
            "multilevel / TopoCentLB",
            Box::new(MultilevelKWay::default()),
            Box::new(TopoCentLb),
        ),
        (
            "multilevel / TopoLB",
            Box::new(MultilevelKWay::default()),
            Box::new(TopoLb::default()),
        ),
        (
            "multilevel / TopoLB+Refine",
            Box::new(MultilevelKWay::default()),
            Box::new(RefineTopoLb::new(TopoLb::default())),
        ),
    ];
    for (name, partitioner, mapper) in combos {
        let r = two_phase(&tasks, &machine, partitioner.as_ref(), mapper.as_ref());
        println!(
            "{:<32} {:>10.2} {:>12.2} {:>14.3}",
            name,
            r.partition.edge_cut(&tasks) / (1024.0 * 1024.0),
            r.partition.imbalance_for(&tasks),
            r.hops_per_byte(&machine)
        );
    }

    println!(
        "\nPhase 1 (multilevel vs random partition) removes cut traffic\n\
         entirely; phase 2 (TopoLB vs random placement) shortens what\n\
         remains. Both matter — the paper's point."
    );
}
