//! The Charm++ measurement-based load-balancing workflow, end to end:
//!
//! 1. run communicating objects on worker threads with instrumentation,
//! 2. dump the measured LB database to disk (`+LBDump`),
//! 3. replay the dump offline against every registered strategy
//!    (`+LBSim`) — all strategies see the identical load scenario,
//! 4. migrate the live runtime to the winning assignment and keep going.
//!
//! Run: `cargo run --release --example charm_workflow`

use topomap::lb::dump::{read_step, write_step, LbDump};
use topomap::lb::runtime::Runtime;
use topomap::lb::{replay, strategy};
use topomap::prelude::*;

fn main() {
    let machine = Torus::torus_2d(4, 4);
    let p = machine.num_nodes();

    // An over-decomposed application: 128 objects on 16 "processors"
    // (worker threads), communicating in a 2D stencil.
    let app = topomap::taskgraph::gen::stencil2d(16, 8, 2048.0, false);
    let mut runtime = Runtime::from_task_graph(&app, p, 200.0);

    // --- 1. instrumented execution ---
    println!(
        "running {} objects on {p} workers (instrumented)...",
        app.num_tasks()
    );
    let db = runtime.run_instrumented(3);
    println!(
        "measured: total load {:.1} ms, {} comm records, {:.1} KiB traffic\n",
        db.total_load() * 1e3,
        db.comm.len(),
        db.total_bytes() / 1024.0
    );

    // --- 2. +LBDump ---
    let dir = std::env::temp_dir().join("topomap-charm-workflow");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let base = dir.join("app");
    let path = write_step(
        &base,
        &LbDump {
            step: 0,
            num_procs: p,
            database: db,
        },
    )
    .expect("dump written");
    println!("dumped LB database to {}\n", path.display());

    // --- 3. +LBSim: compare every strategy on the same scenario ---
    let dump = read_step(&base, 0).expect("dump read");
    println!(
        "{:<14} {:>14} {:>12} {:>14}",
        "strategy", "hops-per-byte", "imbalance", "hop-bytes (KB)"
    );
    let mut best: Option<(String, f64)> = None;
    for name in strategy::all_names() {
        let s = strategy::by_name(name).expect("registered");
        let report = replay::evaluate(&dump.database, &machine, s.as_ref());
        println!(
            "{:<14} {:>14.3} {:>12.2} {:>14.1}",
            report.strategy,
            report.hops_per_byte,
            report.load_imbalance,
            report.hop_bytes / 1024.0
        );
        if best
            .as_ref()
            .map(|(_, h)| report.hops_per_byte < *h)
            .unwrap_or(true)
        {
            best = Some((report.strategy.clone(), report.hops_per_byte));
        }
    }
    let (winner, hpb) = best.expect("at least one strategy");
    println!("\nwinner: {winner} (hops-per-byte {hpb:.3})");

    // --- 4. migrate and continue ---
    let assignment = strategy::by_name(&winner)
        .expect("winner registered")
        .assign(&dump.database, &machine);
    runtime.migrate(&assignment);
    let db2 = runtime.run_instrumented(2);
    println!(
        "resumed after migration: {} comm records re-measured, still {} objects",
        db2.comm.len(),
        db2.num_objects()
    );
    std::fs::remove_file(&path).ok();
}
