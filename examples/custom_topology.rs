//! Mapping onto an irregular machine: the algorithms "work for arbitrary
//! network topologies" (§3), not just tori.
//!
//! Builds a two-switch fat-node cluster as an explicit graph — two rings
//! of eight nodes bridged by a single pair of uplinks — and shows TopoLB
//! steering heavy traffic away from the bridge.
//!
//! Run: `cargo run --release --example custom_topology`

use topomap::core::metrics::LinkLoads;
use topomap::prelude::*;

fn main() {
    // Machine: nodes 0..8 form ring A, 8..16 form ring B; nodes 0 and 8
    // are the bridge (one uplink pair). A classic "two racks, thin
    // inter-rack pipe" shape.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for i in 0..8usize {
        edges.push((i, (i + 1) % 8));
        edges.push((8 + i, 8 + (i + 1) % 8));
    }
    edges.push((0, 8));
    let machine = GraphTopology::from_edges_named(16, &edges, "TwoRacks(8+8)".into());
    println!(
        "machine: {} (diameter {})\n",
        machine.name(),
        machine.diameter()
    );

    // Application: two tight 8-task cliques with one thin edge between
    // them — the communication structure *wants* to live one clique per
    // rack.
    let mut b = TaskGraph::builder(16);
    for a in 0..8usize {
        for c in (a + 1)..8 {
            b.add_comm(a, c, 10_000.0);
            b.add_comm(8 + a, 8 + c, 10_000.0);
        }
    }
    b.add_comm(0, 8, 500.0); // thin cross-traffic
    let tasks = b.build();

    // The machine is irregular, but it still *has* a hierarchy: 8 nodes
    // per rack, 2 racks. `identity_over` derives the level distances
    // from the graph metric itself (intra-rack vs cross-bridge radius),
    // and the hierarchical mapper then solves one rack at a time.
    let hier = Hierarchy::identity_over(&machine, &[8, 2]).expect("16 = 8 x 2");
    println!(
        "derived hierarchy: shape {} with level distances {}\n",
        hier.shape_spec(),
        hier.dist_spec()
    );

    for (name, mapping) in [
        ("Random", RandomMap::new(3).map(&tasks, &machine)),
        ("TopoLB", TopoLb::default().map(&tasks, &machine)),
        (
            "TopoLB+Refine",
            RefineTopoLb::new(TopoLb::default()).map(&tasks, &machine),
        ),
        ("HierMapper", HierMapper::new(hier).map(&tasks, &machine)),
    ] {
        let hpb = hops_per_byte(&tasks, &machine, &mapping);
        let loads = LinkLoads::compute(&tasks, &machine, &mapping);
        // The bridge is the pair of directed links between 0 and 8.
        let bridge: f64 = loads
            .links()
            .iter()
            .zip(loads.loads())
            .filter(|(l, _)| (l.from == 0 && l.to == 8) || (l.from == 8 && l.to == 0))
            .map(|(_, &w)| w)
            .sum();
        println!(
            "{name:<14} hops-per-byte {hpb:>6.3}   bridge traffic {:>8.1} KiB   max link {:>8.1} KiB",
            bridge / 1024.0,
            loads.max_load() / 1024.0
        );
    }

    println!(
        "\nOn this all-to-all-in-cliques pattern the greedy pass alone cannot\n\
         untangle the racks (every placement of a clique vertex looks alike\n\
         mid-stream), but the swap refiner finds the two-rack split: after\n\
         TopoLB+Refine the only bytes crossing the bridge are the\n\
         application's genuine cross-rack traffic. The hierarchical mapper\n\
         reaches the same split structurally — the rack boundary is a\n\
         partition cut, so each clique is solved inside its own rack."
    );
}
