//! Mapping-as-a-service in one file: spawn the mapping daemon on an
//! ephemeral port, submit a stencil workload over the wire, and print
//! the mapping it returns — then show the oracle cache earning its keep
//! on a second request for the same machine.
//!
//! Run: `cargo run --release --example serve_client`

use topomap::lb::LbDatabase;
use topomap::serve::proto::{MapRequest, Response};
use topomap::serve::server::{spawn_ephemeral, ServeConfig};
use topomap::serve::Client;

fn stencil_request(id: u64) -> MapRequest {
    // A 64-task 2D stencil measured into an LB database — the same
    // payload a Charm++-style load balancer would ship per step.
    let tasks = topomap::taskgraph::gen::stencil2d(8, 8, 4096.0, false);
    MapRequest {
        id,
        topology: "torus:8x8".to_string(),
        mapper: "topolb".to_string(),
        init: None,
        fast_lane: None,
        hierarchy: None,
        hier_dist: None,
        seed: 0,
        deadline_ms: Some(5_000),
        database: LbDatabase::from_task_graph(&tasks),
    }
}

fn main() {
    let handle = spawn_ephemeral(ServeConfig::default()).expect("bind ephemeral port");
    println!("server listening on {}", handle.addr());

    let mut client = Client::connect_tcp(handle.addr()).expect("connect");
    println!("ping -> protocol v{}", client.ping().expect("ping"));

    for round in 0..2 {
        match client.map(stencil_request(round)).expect("map request") {
            Response::MapOk {
                id,
                proc_of_task,
                hop_bytes,
                hops_per_byte,
                elapsed_us,
                oracle_cache_hit,
                ..
            } => {
                println!(
                    "\nrequest {id}: mapped 8x8 stencil onto torus:8x8 in {elapsed_us} us \
                     (oracle cache {})",
                    if oracle_cache_hit { "HIT" } else { "miss" }
                );
                println!("  hop-bytes:     {hop_bytes:.1}");
                println!("  hops-per-byte: {hops_per_byte:.4}");
                print!("  mapping (task -> processor):");
                for (t, p) in proc_of_task.iter().enumerate() {
                    if t % 8 == 0 {
                        print!("\n   ");
                    }
                    print!(" {t:2}->{p:2}");
                }
                println!();
            }
            other => panic!("unexpected response: {other:?}"),
        }
    }

    let stats = client.stats().expect("stats");
    println!(
        "\nserver stats: {} requests, oracle {} hit / {} miss",
        stats.requests, stats.oracle_hits, stats.oracle_misses
    );
    client.shutdown().expect("shutdown");
    let final_stats = handle.join();
    assert_eq!(final_stats.ok, 2);
    println!("server drained cleanly");
}
