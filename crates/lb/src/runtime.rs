//! An instrumented threaded mini-runtime: the measurement side of the
//! Charm++ model.
//!
//! "The Charm++ programming model involves breaking up the application
//! into a large number of communicating objects which can be freely mapped
//! to the physical processors by the runtime system. Furthermore, these
//! objects are migratable, which allows the runtime system to perform
//! dynamic load balancing based on measurement of load and communication
//! characteristics during actual execution." (§1)
//!
//! [`Runtime`] executes communicating objects on worker threads (one
//! thread = one "processor"), measures per-object compute time, records
//! every message into an [`LbDatabase`], and migrates objects when handed
//! a new assignment — objects here are plain data, so migration is a move
//! between owners (the role Charm++'s PUP framework plays for C++
//! objects).
//!
//! Message passing uses crossbeam channels and the database a
//! `parking_lot` mutex: data-race freedom by construction, per the
//! Rust-concurrency guidance this project follows.

use crate::database::LbDatabase;
use crate::strategy::LbAssignment;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::time::Instant;
use topomap_taskgraph::{TaskGraph, TaskId};

/// Per-iteration behaviour of one object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectSpec {
    /// Abstract compute work per iteration (spin-loop units).
    pub work_units: u64,
    /// Messages sent each iteration: `(destination object, bytes)`.
    pub sends: Vec<(TaskId, u64)>,
}

/// A message in flight between objects.
#[derive(Debug, Clone, Copy)]
struct ObjMessage {
    from: TaskId,
    to: TaskId,
    bytes: u64,
}

/// The mini-runtime: object specs + current object→processor assignment.
#[derive(Debug, Clone)]
pub struct Runtime {
    specs: Vec<ObjectSpec>,
    num_procs: usize,
    assignment: Vec<usize>,
}

/// Spin-loop calibration: work per `work_unit`. Small enough that tests
/// are fast, large enough that measured times order correctly.
const SPIN_PER_UNIT: u64 = 64;

#[inline]
fn spin(units: u64) -> u64 {
    let mut x = 0x9e3779b97f4a7c15u64;
    for i in 0..units * SPIN_PER_UNIT {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(i | 1);
    }
    std::hint::black_box(x)
}

impl Runtime {
    /// Create a runtime with a round-robin initial assignment (the naive
    /// placement a fresh Charm++ run starts from).
    pub fn new(specs: Vec<ObjectSpec>, num_procs: usize) -> Self {
        assert!(num_procs > 0);
        let n = specs.len();
        Runtime {
            specs,
            num_procs,
            assignment: (0..n).map(|o| o % num_procs).collect(),
        }
    }

    /// Derive object specs from a task graph: work proportional to vertex
    /// weight, one message per neighbor per iteration carrying half the
    /// edge's byte total.
    pub fn from_task_graph(g: &TaskGraph, num_procs: usize, work_scale: f64) -> Self {
        let specs = (0..g.num_tasks())
            .map(|t| ObjectSpec {
                work_units: (g.vertex_weight(t) * work_scale).round().max(1.0) as u64,
                sends: g
                    .neighbors(t)
                    .map(|(j, w)| (j, (w / 2.0).round() as u64))
                    .collect(),
            })
            .collect();
        Runtime::new(specs, num_procs)
    }

    pub fn num_objects(&self) -> usize {
        self.specs.len()
    }

    pub fn num_procs(&self) -> usize {
        self.num_procs
    }

    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Objects currently owned by each processor.
    pub fn objects_on(&self, proc: usize) -> Vec<TaskId> {
        (0..self.specs.len())
            .filter(|&o| self.assignment[o] == proc)
            .collect()
    }

    /// Migrate objects to a new assignment (the LB step's output applied;
    /// objects being plain data, migration is a move of ownership).
    pub fn migrate(&mut self, a: &LbAssignment) {
        assert_eq!(a.num_objects(), self.specs.len());
        assert!(a.proc_of_obj.iter().all(|&p| p < self.num_procs));
        self.assignment = a.proc_of_obj.clone();
    }

    /// Execute `iterations` BSP iterations on `num_procs` worker threads,
    /// measuring per-object compute time and recording all communication.
    ///
    /// Every object: compute (spin), send its messages, then receive all
    /// messages addressed to it for this iteration. Workers synchronize on
    /// a barrier between iterations.
    pub fn run_instrumented(&self, iterations: usize) -> LbDatabase {
        let n = self.specs.len();
        let db = Mutex::new(LbDatabase::new(n));

        // One channel per worker (its inbox).
        let mut senders: Vec<Sender<ObjMessage>> = Vec::with_capacity(self.num_procs);
        let mut receivers: Vec<Option<Receiver<ObjMessage>>> = Vec::with_capacity(self.num_procs);
        for _ in 0..self.num_procs {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(Some(r));
        }

        // Expected messages per worker per iteration (to know when a
        // worker's receive phase is done).
        let mut expected = vec![0usize; self.num_procs];
        for spec in &self.specs {
            for &(to, _) in &spec.sends {
                expected[self.assignment[to]] += 1;
            }
        }

        let barrier = std::sync::Barrier::new(self.num_procs);

        crossbeam::thread::scope(|scope| {
            for w in 0..self.num_procs {
                let my_objects = self.objects_on(w);
                let my_rx = receivers[w].take().expect("receiver taken once");
                let senders = senders.clone();
                let specs = &self.specs;
                let assignment = &self.assignment;
                let db = &db;
                let barrier = &barrier;
                let my_expected = expected[w];

                scope.spawn(move |_| {
                    let mut my_loads = vec![0f64; my_objects.len()];
                    // (from, to, bytes, count) accumulated locally.
                    let mut recv_log: Vec<ObjMessage> = Vec::new();

                    for _iter in 0..iterations {
                        // Compute + send phase.
                        for (i, &obj) in my_objects.iter().enumerate() {
                            let t0 = Instant::now();
                            spin(specs[obj].work_units);
                            my_loads[i] += t0.elapsed().as_secs_f64();
                            for &(to, bytes) in &specs[obj].sends {
                                senders[assignment[to]]
                                    .send(ObjMessage {
                                        from: obj,
                                        to,
                                        bytes,
                                    })
                                    .expect("worker inbox closed early");
                            }
                        }
                        // Receive phase: exactly the expected count.
                        for _ in 0..my_expected {
                            let msg = my_rx.recv().expect("message lost");
                            debug_assert_eq!(assignment[msg.to], w);
                            recv_log.push(msg);
                        }
                        barrier.wait();
                    }

                    // Commit instrumentation to the shared database.
                    let mut db = db.lock();
                    for (i, &obj) in my_objects.iter().enumerate() {
                        db.record_load(obj, my_loads[i]);
                    }
                    for m in recv_log {
                        db.record_comm(m.from, m.to, m.bytes as f64, 1);
                    }
                });
            }
        })
        .expect("worker thread panicked");

        db.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn comm_records_are_exact() {
        // A 4-ring, 3 iterations: each directed edge carries 3 messages.
        let g = gen::ring(4, 200.0); // edge weight 400 total -> 200/direction... /2 = 200
        let rt = Runtime::from_task_graph(&g, 2, 1.0);
        let db = rt.run_instrumented(3);
        assert_eq!(db.num_objects(), 4);
        // 4 tasks x 2 neighbors = 8 directed records.
        assert_eq!(db.comm.len(), 8);
        for r in &db.comm {
            assert_eq!(r.messages, 3, "{r:?}");
            assert_eq!(r.bytes, 3.0 * 200.0, "{r:?}");
        }
    }

    #[test]
    fn loads_are_measured_and_ordered() {
        // Object 0 does ~200x the work of object 1: measured load must be
        // larger despite timer noise.
        let specs = vec![
            ObjectSpec {
                work_units: 20_000,
                sends: vec![],
            },
            ObjectSpec {
                work_units: 100,
                sends: vec![],
            },
        ];
        let rt = Runtime::new(specs, 2);
        let db = rt.run_instrumented(3);
        assert!(db.loads[0] > 0.0 && db.loads[1] > 0.0);
        assert!(
            db.loads[0] > 5.0 * db.loads[1],
            "heavy {} vs light {}",
            db.loads[0],
            db.loads[1]
        );
    }

    #[test]
    fn migration_moves_ownership() {
        let g = gen::ring(6, 100.0);
        let mut rt = Runtime::from_task_graph(&g, 3, 1.0);
        assert_eq!(rt.objects_on(0), vec![0, 3]);
        rt.migrate(&LbAssignment {
            proc_of_obj: vec![0, 0, 1, 1, 2, 2],
        });
        assert_eq!(rt.objects_on(0), vec![0, 1]);
        assert_eq!(rt.objects_on(2), vec![4, 5]);
        // Still runs correctly after migration.
        let db = rt.run_instrumented(2);
        assert_eq!(db.comm.iter().map(|r| r.messages).sum::<u64>(), 2 * 12);
    }

    #[test]
    fn full_measure_balance_rerun_cycle() {
        // The complete Charm++ workflow: run, measure, strategize, migrate.
        let g = gen::stencil2d(4, 4, 512.0, false);
        let mut rt = Runtime::from_task_graph(&g, 4, 1.0);
        let db = rt.run_instrumented(2);
        let topo = topomap_topology::Torus::torus_2d(2, 2);
        let strategy = crate::strategy::by_name("TopoLB").unwrap();
        let a = strategy.assign(&db, &topo);
        rt.migrate(&a);
        let db2 = rt.run_instrumented(2);
        assert_eq!(db2.num_objects(), 16);
        // The communication structure is assignment-independent.
        assert_eq!(
            db.comm.iter().map(|r| r.messages).sum::<u64>(),
            db2.comm.iter().map(|r| r.messages).sum::<u64>()
        );
    }

    #[test]
    fn single_processor_runtime_works() {
        let g = gen::ring(3, 100.0);
        let rt = Runtime::from_task_graph(&g, 1, 1.0);
        let db = rt.run_instrumented(1);
        assert_eq!(db.comm.len(), 6);
    }
}
