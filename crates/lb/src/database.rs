//! The load-balancing database: measured per-object loads and
//! communication records, as accumulated by the Charm++ LB framework
//! during instrumented execution.

use serde::{Deserialize, Serialize};
use topomap_taskgraph::{TaskGraph, TaskId};

/// One directed communication record: `messages` messages totalling
//  `bytes` bytes from object `from` to object `to`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CommRecord {
    pub from: TaskId,
    pub to: TaskId,
    pub bytes: f64,
    pub messages: u64,
}

/// The LB database for one load-balancing step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbDatabase {
    /// Measured wall-time load per object (seconds or any consistent unit).
    pub loads: Vec<f64>,
    /// Directed communication records (merged per ordered pair).
    pub comm: Vec<CommRecord>,
    /// Optional per-object spatial coordinates (geometric workloads).
    /// Absent or `null` in pre-geometry dumps and wire requests — both
    /// load as `None`.
    pub coords: Option<Vec<[f64; 3]>>,
}

impl LbDatabase {
    /// An empty database for `n` objects.
    pub fn new(n: usize) -> Self {
        LbDatabase {
            loads: vec![0.0; n],
            comm: Vec::new(),
            coords: None,
        }
    }

    pub fn num_objects(&self) -> usize {
        self.loads.len()
    }

    /// Accumulate measured load for an object.
    pub fn record_load(&mut self, obj: TaskId, load: f64) {
        assert!(load >= 0.0 && load.is_finite());
        self.loads[obj] += load;
    }

    /// Accumulate a communication record (merged with any existing record
    /// for the same ordered pair).
    pub fn record_comm(&mut self, from: TaskId, to: TaskId, bytes: f64, messages: u64) {
        assert!(from < self.loads.len() && to < self.loads.len());
        assert!(bytes >= 0.0 && bytes.is_finite());
        if let Some(r) = self.comm.iter_mut().find(|r| r.from == from && r.to == to) {
            r.bytes += bytes;
            r.messages += messages;
        } else {
            self.comm.push(CommRecord {
                from,
                to,
                bytes,
                messages,
            });
        }
    }

    /// Total measured load.
    pub fn total_load(&self) -> f64 {
        self.loads.iter().sum()
    }

    /// Total communicated bytes (directed sum).
    pub fn total_bytes(&self) -> f64 {
        self.comm.iter().map(|r| r.bytes).sum()
    }

    /// Convert to the undirected task graph the mapping algorithms
    /// consume: vertex weights are loads, edge weights sum the bytes of
    /// both directions (the paper's model: "edges represent total
    /// communication between the tasks at the end points").
    pub fn to_task_graph(&self) -> TaskGraph {
        let mut b = TaskGraph::builder(self.num_objects());
        for (t, &l) in self.loads.iter().enumerate() {
            b.set_task_weight(t, l);
        }
        for r in &self.comm {
            b.add_comm(r.from, r.to, r.bytes);
        }
        if let Some(cs) = &self.coords {
            b.set_coords(cs.clone());
        }
        b.build()
    }

    /// Build a database directly from a task graph (uniform message
    /// counts): the inverse of [`Self::to_task_graph`], used for driving
    /// strategies from synthetic workloads.
    pub fn from_task_graph(g: &TaskGraph) -> Self {
        let mut db = LbDatabase::new(g.num_tasks());
        for t in 0..g.num_tasks() {
            db.loads[t] = g.vertex_weight(t);
        }
        for (a, b, w) in g.edges() {
            // Split the undirected total into two directed halves.
            db.comm.push(CommRecord {
                from: a,
                to: b,
                bytes: w / 2.0,
                messages: 1,
            });
            db.comm.push(CommRecord {
                from: b,
                to: a,
                bytes: w / 2.0,
                messages: 1,
            });
        }
        db.coords = g.coords().map(<[[f64; 3]]>::to_vec);
        db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn record_and_merge() {
        let mut db = LbDatabase::new(3);
        db.record_load(0, 1.5);
        db.record_load(0, 0.5);
        db.record_comm(0, 1, 100.0, 2);
        db.record_comm(0, 1, 50.0, 1);
        db.record_comm(1, 0, 25.0, 1);
        assert_eq!(db.loads[0], 2.0);
        assert_eq!(db.comm.len(), 2);
        assert_eq!(db.comm[0].bytes, 150.0);
        assert_eq!(db.comm[0].messages, 3);
        assert_eq!(db.total_bytes(), 175.0);
    }

    #[test]
    fn to_task_graph_sums_directions() {
        let mut db = LbDatabase::new(2);
        db.record_load(0, 3.0);
        db.record_load(1, 4.0);
        db.record_comm(0, 1, 100.0, 1);
        db.record_comm(1, 0, 60.0, 1);
        let g = db.to_task_graph();
        assert_eq!(g.edge_weight(0, 1), Some(160.0));
        assert_eq!(g.vertex_weight(1), 4.0);
    }

    #[test]
    fn graph_roundtrip_preserves_structure() {
        let g = gen::stencil2d(4, 4, 1000.0, false);
        let db = LbDatabase::from_task_graph(&g);
        let g2 = db.to_task_graph();
        assert_eq!(g2.num_edges(), g.num_edges());
        assert!((g2.total_comm() - g.total_comm()).abs() < 1e-9);
        assert_eq!(g2.total_vertex_weight(), g.total_vertex_weight());
    }

    #[test]
    fn serde_roundtrip() {
        let g = gen::ring(5, 100.0);
        let db = LbDatabase::from_task_graph(&g);
        let s = serde_json::to_string(&db).unwrap();
        let back: LbDatabase = serde_json::from_str(&s).unwrap();
        assert_eq!(db, back);
    }
}
