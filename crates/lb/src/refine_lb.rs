//! Incremental load refinement — Charm++'s `RefineLB` family.
//!
//! Unlike the from-scratch strategies, a refiner starts from the *current*
//! object placement and migrates as few objects as possible: it moves
//! objects off overloaded processors onto underloaded ones until every
//! processor is within `tolerance` of the average load. Among candidate
//! moves it prefers the one that adds the least hop-bytes, so refinement
//! repairs load imbalance without wrecking a topology-aware placement —
//! the role it plays after TopoLB in a long-running Charm++ application
//! whose loads drift between LB steps.

use crate::database::LbDatabase;
use crate::strategy::LbAssignment;
use topomap_topology::Topology;

/// Incremental load-balance refiner.
#[derive(Debug, Clone, Copy)]
pub struct RefineLb {
    /// A processor is overloaded when its load exceeds
    /// `tolerance × average`.
    pub tolerance: f64,
    /// Upper bound on migrations (guards pathological inputs).
    pub max_migrations: usize,
}

impl Default for RefineLb {
    fn default() -> Self {
        RefineLb {
            tolerance: 1.05,
            max_migrations: usize::MAX,
        }
    }
}

/// The result of a refinement: the new assignment plus what it cost.
#[derive(Debug, Clone)]
pub struct RefineOutcome {
    pub assignment: LbAssignment,
    /// Objects that changed processor.
    pub migrations: usize,
    /// Max processor load before/after.
    pub max_load_before: f64,
    pub max_load_after: f64,
}

impl RefineLb {
    /// Refine `current` against the measured `db` on `topo`.
    pub fn rebalance(
        &self,
        db: &LbDatabase,
        topo: &dyn Topology,
        current: &LbAssignment,
    ) -> RefineOutcome {
        let p = topo.num_nodes();
        let n = db.num_objects();
        assert_eq!(current.num_objects(), n);
        let mut proc_of = current.proc_of_obj.clone();

        let mut loads = vec![0f64; p];
        for (o, &q) in proc_of.iter().enumerate() {
            loads[q] += db.loads[o];
        }
        let total: f64 = loads.iter().sum();
        let avg = total / p as f64;
        let threshold = avg * self.tolerance;
        let max_before = loads.iter().fold(0.0f64, |m, &l| m.max(l));

        // Object communication adjacency (for hop-byte deltas).
        let graph = db.to_task_graph();

        let mut migrations = 0usize;
        while migrations < self.max_migrations {
            // Heaviest overloaded processor.
            let Some(src) = (0..p)
                .filter(|&q| loads[q] > threshold)
                .max_by(|&a, &b| loads[a].partial_cmp(&loads[b]).unwrap().then(b.cmp(&a)))
            else {
                break;
            };
            // Lightest processor.
            let dst = (0..p)
                .min_by(|&a, &b| loads[a].partial_cmp(&loads[b]).unwrap().then(a.cmp(&b)))
                .expect("p > 0");
            if dst == src {
                break;
            }
            // Candidate objects on src small enough not to overload dst;
            // pick the one whose move adds the least hop-bytes.
            let mut best: Option<(f64, usize)> = None;
            for o in 0..n {
                if proc_of[o] != src {
                    continue;
                }
                let w = db.loads[o];
                // Admissible iff the move strictly reduces the pair's
                // maximum (src sheds, dst stays below src's old load):
                // guarantees monotone progress and termination even when
                // object granularity can't fit under the threshold.
                if w <= 0.0 || loads[dst] + w >= loads[src] {
                    continue;
                }
                let delta: f64 = graph
                    .neighbors(o)
                    .map(|(u, c)| {
                        let pu = proc_of[u];
                        c * (topo.distance(dst, pu) as f64 - topo.distance(src, pu) as f64)
                    })
                    .sum();
                let better = match best {
                    None => true,
                    Some((bd, bo)) => delta < bd || (delta == bd && o < bo),
                };
                if better {
                    best = Some((delta, o));
                }
            }
            let Some((_, victim)) = best else { break };
            loads[src] -= db.loads[victim];
            loads[dst] += db.loads[victim];
            proc_of[victim] = dst;
            migrations += 1;
        }

        let max_after = loads.iter().fold(0.0f64, |m, &l| m.max(l));
        RefineOutcome {
            assignment: LbAssignment {
                proc_of_obj: proc_of,
            },
            migrations,
            max_load_before: max_before,
            max_load_after: max_after,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    fn skewed_db(n: usize) -> LbDatabase {
        let mut db = LbDatabase::new(n);
        for o in 0..n {
            db.record_load(o, 1.0 + (o % 3) as f64);
        }
        db
    }

    #[test]
    fn repairs_gross_imbalance_with_few_migrations() {
        let db = skewed_db(32);
        let topo = Torus::torus_2d(4, 4);
        // Pathological start: everything on processor 0... not allowed by
        // LbAssignment semantics? It is: assignments may colocate objects.
        let current = LbAssignment {
            proc_of_obj: vec![0; 32],
        };
        let out = RefineLb::default().rebalance(&db, &topo, &current);
        assert!(out.max_load_after < 0.2 * out.max_load_before);
        assert!(out.migrations >= 16, "migrations {}", out.migrations);
        // All objects accounted for.
        assert_eq!(out.assignment.num_objects(), 32);
    }

    #[test]
    fn no_op_when_already_balanced() {
        let mut db = LbDatabase::new(16);
        for o in 0..16 {
            db.record_load(o, 1.0);
        }
        let topo = Torus::torus_2d(4, 4);
        let current = LbAssignment {
            proc_of_obj: (0..16).collect(),
        };
        let out = RefineLb::default().rebalance(&db, &topo, &current);
        assert_eq!(out.migrations, 0);
        assert_eq!(out.assignment, current);
    }

    #[test]
    fn preserves_topology_aware_placement() {
        // Start from TopoLB; perturb one processor's load heavily; refine
        // must fix the hotspot while keeping hop-bytes near the original.
        let g = gen::stencil2d(8, 8, 2048.0, false);
        let mut db = LbDatabase::from_task_graph(&g);
        let topo = Torus::torus_2d(4, 4);
        let base = strategy::by_name("TopoLB").unwrap().assign(&db, &topo);
        // Load spike on the objects of processor 0.
        for o in 0..db.num_objects() {
            if base.proc_of_obj[o] == 0 {
                db.loads[o] *= 6.0;
            }
        }
        let out = RefineLb {
            tolerance: 1.25,
            ..Default::default()
        }
        .rebalance(&db, &topo, &base);
        assert!(out.max_load_after < out.max_load_before);
        let before = crate::replay::report(&db, &topo, "b", &base);
        let after = crate::replay::report(&db, &topo, "a", &out.assignment);
        assert!(after.load_imbalance < before.load_imbalance);
        // Migration was incremental, not a remap.
        let changed = base
            .proc_of_obj
            .iter()
            .zip(&out.assignment.proc_of_obj)
            .filter(|(a, b)| a != b)
            .count();
        assert!(changed <= db.num_objects() / 3, "changed {changed}");
        // Hop-bytes stays in the same ballpark (< 2x).
        assert!(after.hop_bytes <= 2.0 * before.hop_bytes.max(1.0));
    }

    #[test]
    fn respects_migration_cap() {
        let db = skewed_db(64);
        let topo = Torus::torus_2d(4, 4);
        let current = LbAssignment {
            proc_of_obj: vec![0; 64],
        };
        let out = RefineLb {
            max_migrations: 5,
            ..Default::default()
        }
        .rebalance(&db, &topo, &current);
        assert_eq!(out.migrations, 5);
    }
}
