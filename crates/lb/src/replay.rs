//! The `+LBSim` mechanism (§5.1): run any strategy on a dumped database
//! "sequentially in simulation mode" and study the relevant metrics —
//! without re-running the parallel program, and with every strategy seeing
//! exactly the same load scenario.

use crate::database::LbDatabase;
use crate::dump::{read_step, DumpError, LbDump};
use crate::strategy::{LbAssignment, LbStrategy};
use serde::{Deserialize, Serialize};
use std::path::Path;
use topomap_topology::Topology;

/// Metrics of one strategy applied to one load scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StrategyReport {
    pub strategy: String,
    pub num_objects: usize,
    pub num_procs: usize,
    /// Hop-bytes of the object communication graph under the assignment.
    pub hop_bytes: f64,
    /// Hop-bytes divided by total communicated bytes.
    pub hops_per_byte: f64,
    /// Max processor load over average processor load.
    pub load_imbalance: f64,
    /// Maximum processor load.
    pub max_proc_load: f64,
}

/// Apply `strategy` to `db` on `topo` and measure the result.
pub fn evaluate(db: &LbDatabase, topo: &dyn Topology, strategy: &dyn LbStrategy) -> StrategyReport {
    let assignment = strategy.assign(db, topo);
    report(db, topo, &strategy.name(), &assignment)
}

/// Measure an existing assignment against a database.
pub fn report(
    db: &LbDatabase,
    topo: &dyn Topology,
    name: &str,
    assignment: &LbAssignment,
) -> StrategyReport {
    let p = topo.num_nodes();
    assert_eq!(assignment.num_objects(), db.num_objects());

    let g = db.to_task_graph();
    let mut hop_bytes = 0.0;
    let mut total_bytes = 0.0;
    for (a, b, w) in g.edges() {
        let d = topo.distance(assignment.proc_of_obj[a], assignment.proc_of_obj[b]);
        hop_bytes += w * d as f64;
        total_bytes += w;
    }

    let mut loads = vec![0f64; p];
    for (o, &q) in assignment.proc_of_obj.iter().enumerate() {
        loads[q] += db.loads[o];
    }
    let total_load: f64 = loads.iter().sum();
    let max_load = loads.iter().fold(0.0f64, |m, &l| m.max(l));
    let avg_load = total_load / p as f64;

    StrategyReport {
        strategy: name.to_string(),
        num_objects: db.num_objects(),
        num_procs: p,
        hop_bytes,
        hops_per_byte: if total_bytes > 0.0 {
            hop_bytes / total_bytes
        } else {
            0.0
        },
        load_imbalance: if avg_load > 0.0 {
            max_load / avg_load
        } else {
            1.0
        },
        max_proc_load: max_load,
    }
}

/// Load a dumped step and evaluate several strategies on it — the full
/// `+LBSim` workflow.
pub fn simulate_step(
    base: &Path,
    step: usize,
    topo: &dyn Topology,
    strategies: &[&dyn LbStrategy],
) -> Result<Vec<StrategyReport>, DumpError> {
    let LbDump {
        num_procs,
        database,
        ..
    } = read_step(base, step)?;
    assert_eq!(
        num_procs,
        topo.num_nodes(),
        "dump was taken on a {num_procs}-processor run"
    );
    Ok(strategies
        .iter()
        .map(|s| evaluate(&database, topo, *s))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dump::{write_step, LbDump};
    use crate::strategy;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn evaluate_orders_strategies_sensibly() {
        let g = gen::stencil2d(8, 8, 1024.0, false);
        let db = LbDatabase::from_task_graph(&g);
        let topo = Torus::torus_2d(8, 8);
        let topolb = evaluate(&db, &topo, strategy::by_name("TopoLB").unwrap().as_ref());
        let random = evaluate(&db, &topo, strategy::by_name("RandomLB").unwrap().as_ref());
        assert!(topolb.hops_per_byte < random.hops_per_byte);
        assert_eq!(topolb.num_objects, 64);
        assert_eq!(topolb.num_procs, 64);
    }

    #[test]
    fn load_metrics_reflect_assignment() {
        let mut db = LbDatabase::new(4);
        for (o, l) in [(0, 1.0), (1, 1.0), (2, 1.0), (3, 5.0)] {
            db.record_load(o, l);
        }
        let topo = Torus::mesh_1d(2);
        // All on processor 0.
        let bad = LbAssignment {
            proc_of_obj: vec![0, 0, 0, 0],
        };
        let r = report(&db, &topo, "manual", &bad);
        assert_eq!(r.max_proc_load, 8.0);
        assert_eq!(r.load_imbalance, 2.0); // 8 / (8/2)
        assert_eq!(r.hop_bytes, 0.0); // everything colocated
    }

    #[test]
    fn full_dump_replay_cycle() {
        let dir = std::env::temp_dir().join("topomap-lb-replay-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("leanmd");
        let g = gen::leanmd(
            9,
            &gen::LeanMdConfig {
                num_computes: 120,
                ..Default::default()
            },
        );
        let dump = LbDump {
            step: 2,
            num_procs: 9,
            database: LbDatabase::from_task_graph(&g),
        };
        write_step(&base, &dump).unwrap();

        let topo = Torus::torus_2d(3, 3);
        let topolb = strategy::by_name("TopoLB").unwrap();
        let greedy = strategy::by_name("GreedyLB").unwrap();
        let reports = simulate_step(&base, 2, &topo, &[topolb.as_ref(), greedy.as_ref()]).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].strategy, "TopoLB");
        // Same database, same scenario: comparable on equal footing.
        assert_eq!(reports[0].num_objects, reports[1].num_objects);
        std::fs::remove_file(crate::dump::step_path(&base, 2)).ok();
    }
}
