//! The `+LBDump` mechanism (§5.1): "the runtime \[can\] log load information
//! from an actual parallel execution into a file for later analysis ...
//! A log file is generated for each of the steps specified in the range."

use crate::database::LbDatabase;
use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// One dumped load-balancing step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LbDump {
    /// The load-balancing step this database was captured at.
    pub step: usize,
    /// Number of processors the run used (for sanity checks at replay).
    pub num_procs: usize,
    pub database: LbDatabase,
}

/// Errors from dump I/O.
#[derive(Debug)]
pub enum DumpError {
    Io(std::io::Error),
    Format(serde_json::Error),
}

impl std::fmt::Display for DumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DumpError::Io(e) => write!(f, "dump I/O error: {e}"),
            DumpError::Format(e) => write!(f, "dump format error: {e}"),
        }
    }
}

impl std::error::Error for DumpError {}

impl From<std::io::Error> for DumpError {
    fn from(e: std::io::Error) -> Self {
        DumpError::Io(e)
    }
}

impl From<serde_json::Error> for DumpError {
    fn from(e: serde_json::Error) -> Self {
        DumpError::Format(e)
    }
}

/// The file a given step is dumped to: `<base>.step<k>.json`
/// (the Charm++ convention of one log file per step).
pub fn step_path(base: &Path, step: usize) -> PathBuf {
    let mut name = base
        .file_name()
        .map(|s| s.to_os_string())
        .unwrap_or_default();
    name.push(format!(".step{step}.json"));
    base.with_file_name(name)
}

/// Write one step's database (`+LBDump`).
pub fn write_step(base: &Path, dump: &LbDump) -> Result<PathBuf, DumpError> {
    let path = step_path(base, dump.step);
    let f = File::create(&path)?;
    serde_json::to_writer(BufWriter::new(f), dump)?;
    Ok(path)
}

/// Read one step's database back (`+LBDumpFile` + `+LBSim StepNum`).
pub fn read_step(base: &Path, step: usize) -> Result<LbDump, DumpError> {
    let f = File::open(step_path(base, step))?;
    Ok(serde_json::from_reader(BufReader::new(f))?)
}

/// Dump a contiguous range of steps (`+LBDumpStartStep` / `+LBDumpSteps`).
pub fn write_steps(base: &Path, dumps: &[LbDump]) -> Result<Vec<PathBuf>, DumpError> {
    dumps.iter().map(|d| write_step(base, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn step_paths() {
        let base = Path::new("/tmp/x/leanmd");
        assert_eq!(step_path(base, 3), Path::new("/tmp/x/leanmd.step3.json"));
    }

    #[test]
    fn roundtrip_multiple_steps() {
        let dir = std::env::temp_dir().join("topomap-lb-dump-test");
        std::fs::create_dir_all(&dir).unwrap();
        let base = dir.join("run");
        let dumps: Vec<LbDump> = (0..3)
            .map(|step| LbDump {
                step,
                num_procs: 8,
                database: LbDatabase::from_task_graph(&gen::ring(6 + step, 100.0)),
            })
            .collect();
        let paths = write_steps(&base, &dumps).unwrap();
        assert_eq!(paths.len(), 3);
        for (step, d) in dumps.iter().enumerate() {
            let back = read_step(&base, step).unwrap();
            assert_eq!(&back, d);
        }
        for p in paths {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn missing_step_is_error() {
        let base = std::env::temp_dir().join("no-such-dump");
        assert!(matches!(read_step(&base, 0), Err(DumpError::Io(_))));
    }
}
