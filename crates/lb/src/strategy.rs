//! Pluggable load-balancing strategies — the lineup the paper evaluates.
//!
//! A strategy consumes the LB database and the machine topology and
//! returns a complete object→processor assignment. The topology-aware
//! strategies run the paper's two-phase pipeline: multilevel partitioning
//! into `p` groups (the METIS step of §4.4) followed by the respective
//! topology-aware group mapping.

use crate::database::LbDatabase;
use topomap_core::{pipeline, LinearOrderMap, Mapper, RandomMap, RefineTopoLb, TopoCentLb, TopoLb};
use topomap_partition::{GreedyLoad, MultilevelKWay, Partitioner, RandomPartition};
use topomap_topology::{NodeId, Topology};

/// A complete object→processor assignment produced by a strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LbAssignment {
    pub proc_of_obj: Vec<NodeId>,
}

impl LbAssignment {
    pub fn num_objects(&self) -> usize {
        self.proc_of_obj.len()
    }

    /// Objects per processor.
    pub fn objects_on(&self, num_procs: usize) -> Vec<Vec<usize>> {
        let mut v = vec![Vec::new(); num_procs];
        for (o, &p) in self.proc_of_obj.iter().enumerate() {
            v[p].push(o);
        }
        v
    }
}

/// A centralized load-balancing strategy (the paper's model: strategies
/// run on the full database).
pub trait LbStrategy: Send + Sync {
    fn name(&self) -> String;

    /// Compute a new assignment of every object to a processor of `topo`.
    fn assign(&self, db: &LbDatabase, topo: &dyn Topology) -> LbAssignment;
}

/// Generic two-phase strategy: any partitioner + any mapper.
pub struct TwoPhaseStrategy<P, M> {
    pub partitioner: P,
    pub mapper: M,
    name: String,
}

impl<P: Partitioner, M: Mapper> TwoPhaseStrategy<P, M> {
    pub fn new(partitioner: P, mapper: M, name: impl Into<String>) -> Self {
        TwoPhaseStrategy {
            partitioner,
            mapper,
            name: name.into(),
        }
    }
}

impl<P, M> LbStrategy for TwoPhaseStrategy<P, M>
where
    P: Partitioner + Send + Sync,
    M: Mapper + Send + Sync,
{
    fn name(&self) -> String {
        self.name.clone()
    }

    fn assign(&self, db: &LbDatabase, topo: &dyn Topology) -> LbAssignment {
        let g = db.to_task_graph();
        let r = pipeline::two_phase(&g, topo, &self.partitioner, &self.mapper);
        LbAssignment {
            proc_of_obj: r.task_placement(),
        }
    }
}

/// Strategy registry keyed by the Charm++-style strategy name.
///
/// | name | phase 1 | phase 2 |
/// |------|---------|---------|
/// | `RandomLB` | random groups | random placement |
/// | `GreedyLB` | greedy load-only | random placement (the paper's "essentially random" baseline) |
/// | `MetisLB` | multilevel k-way | random placement (topology-oblivious but cut-aware) |
/// | `TauraChienLB` | multilevel k-way | linear-ordering placement (related work \[21\]) |
/// | `TopoCentLB` | multilevel k-way | TopoCentLB |
/// | `TopoLB` | multilevel k-way | TopoLB (second order) |
/// | `RefineTopoLB` | multilevel k-way | TopoLB + swap refinement |
pub fn by_name(name: &str) -> Option<Box<dyn LbStrategy>> {
    match name {
        "RandomLB" => Some(Box::new(TwoPhaseStrategy::new(
            RandomPartition::new(0x5eed),
            RandomMap::new(0x5eed),
            "RandomLB",
        ))),
        "GreedyLB" => Some(Box::new(TwoPhaseStrategy::new(
            GreedyLoad,
            RandomMap::new(0x9eed),
            "GreedyLB",
        ))),
        "MetisLB" => Some(Box::new(TwoPhaseStrategy::new(
            MultilevelKWay::default(),
            RandomMap::new(0x0aed),
            "MetisLB",
        ))),
        "TauraChienLB" => Some(Box::new(TwoPhaseStrategy::new(
            MultilevelKWay::default(),
            LinearOrderMap::bfs(),
            "TauraChienLB",
        ))),
        "TopoCentLB" => Some(Box::new(TwoPhaseStrategy::new(
            MultilevelKWay::default(),
            TopoCentLb,
            "TopoCentLB",
        ))),
        "TopoLB" => Some(Box::new(TwoPhaseStrategy::new(
            MultilevelKWay::default(),
            TopoLb::default(),
            "TopoLB",
        ))),
        "RefineTopoLB" => Some(Box::new(TwoPhaseStrategy::new(
            MultilevelKWay::default(),
            RefineTopoLb::new(TopoLb::default()),
            "RefineTopoLB",
        ))),
        _ => None,
    }
}

/// All registered strategy names (stable order, used by the harness).
pub fn all_names() -> &'static [&'static str] {
    &[
        "RandomLB",
        "GreedyLB",
        "MetisLB",
        "TauraChienLB",
        "TopoCentLB",
        "TopoLB",
        "RefineTopoLB",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn registry_resolves_all() {
        for name in all_names() {
            let s = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert_eq!(&s.name(), name);
        }
        assert!(by_name("NoSuchLB").is_none());
    }

    #[test]
    fn assignments_cover_all_objects() {
        let g = gen::leanmd(
            16,
            &gen::LeanMdConfig {
                num_computes: 200,
                ..Default::default()
            },
        );
        let db = LbDatabase::from_task_graph(&g);
        let topo = Torus::torus_2d(4, 4);
        for name in all_names() {
            let s = by_name(name).unwrap();
            let a = s.assign(&db, &topo);
            assert_eq!(a.num_objects(), g.num_tasks(), "{name}");
            assert!(a.proc_of_obj.iter().all(|&p| p < 16), "{name}");
            // Every processor gets some work for this over-decomposed load.
            let per_proc = a.objects_on(16);
            assert!(
                per_proc.iter().all(|v| !v.is_empty()),
                "{name} left a proc empty"
            );
        }
    }

    #[test]
    fn topolb_beats_greedylb_on_hop_bytes() {
        let g = gen::stencil2d(16, 16, 1024.0, false);
        let db = LbDatabase::from_task_graph(&g);
        let topo = Torus::torus_2d(4, 4);
        let eval = |name: &str| {
            let a = by_name(name).unwrap().assign(&db, &topo);
            // Hop-bytes of the original graph under the object placement.
            g.edges()
                .map(|(x, y, w)| w * topo.distance(a.proc_of_obj[x], a.proc_of_obj[y]) as f64)
                .sum::<f64>()
        };
        assert!(eval("TopoLB") < eval("GreedyLB"));
    }

    #[test]
    fn strategies_are_object_safe_and_shareable() {
        // The runtime hands strategies across threads: check Send+Sync.
        fn takes_sendsync<T: Send + Sync + ?Sized>(_x: &T) {}
        let s = by_name("TopoLB").unwrap();
        takes_sendsync(s.as_ref());
    }
}
