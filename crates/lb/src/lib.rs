//! # topomap-lb
//!
//! A Charm++-style dynamic load-balancing framework — the runtime substrate
//! the paper's strategies plug into (§1, §5.1).
//!
//! The Charm++ model: the application is over-decomposed into migratable
//! objects; the runtime *measures* per-object loads and communication
//! during execution, stores them in a load-balancing **database**, and
//! periodically hands that database to a pluggable **strategy** which
//! returns a new object→processor assignment.
//!
//! This crate reproduces the pieces the paper relies on:
//!
//! - [`LbDatabase`] — per-object measured loads + communication records
//!   (the "load information" of §5.1).
//! - [`strategy`] — the strategy interface and the paper's lineup:
//!   `RandomLB`, `GreedyLB`, `MetisLB` (multilevel partition, random
//!   group placement), `TopoLB`, `TopoCentLB`, `RefineTopoLB`.
//! - [`dump`] — the `+LBDump` mechanism: write the database of selected
//!   steps to JSON files for offline study.
//! - [`replay`] — the `+LBSim` mechanism: load a dump and run any strategy
//!   on it, so "different strategies can be compared on exactly the same
//!   load scenarios, which is not possible in actual execution" (§5.1).
//! - [`runtime`] — an instrumented threaded mini-runtime that actually
//!   executes communicating objects and produces a measured database
//!   (the measurement-based LB model; object migration included).
//!
//! ```
//! use topomap_lb::{strategy, LbDatabase};
//! use topomap_taskgraph::gen;
//! use topomap_topology::Torus;
//!
//! // Build a database from a known workload (or measure one with
//! // `runtime::Runtime`).
//! let g = gen::stencil2d(8, 8, 4096.0, false);
//! let db = LbDatabase::from_task_graph(&g);
//! let topo = Torus::torus_2d(8, 8);
//!
//! let topolb = strategy::by_name("TopoLB").unwrap();
//! let report = topomap_lb::replay::evaluate(&db, &topo, topolb.as_ref());
//! assert!(report.hops_per_byte < 2.0);
//! ```

pub mod database;
pub mod dump;
pub mod refine_lb;
pub mod replay;
pub mod runtime;
pub mod strategy;

pub use database::{CommRecord, LbDatabase};
pub use refine_lb::RefineLb;
pub use strategy::{LbAssignment, LbStrategy};
