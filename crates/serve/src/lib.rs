//! # topomap-serve
//!
//! Mapping-as-a-service: a persistent, concurrent mapping server with
//! oracle caching and backpressure (DESIGN.md §9).
//!
//! A long-running mapping daemon beats one-shot CLI invocations for the
//! load-balancer use case the paper targets: the expensive, purely
//! machine-dependent artifacts — the O(p²) all-pairs distance oracle and
//! the hierarchy factorization — are computed once and amortized across
//! every rebalancing step, while the workload (an
//! [`topomap_lb::LbDatabase`]) changes per request.
//!
//! The crate splits into:
//!
//! - [`proto`] — length-prefixed JSON frames, the request/response
//!   schema, and the structured error taxonomy;
//! - [`cache`] — a dependency-free LRU with hit/miss counters plus
//!   order-insensitive spec fingerprinting;
//! - [`oracle`] — the cached distance oracles ([`oracle::DistOracle`])
//!   and hierarchy plans;
//! - [`specs`] — the single parser for topology/pattern/mapper/hierarchy
//!   spec strings, shared with the CLI (which re-exports it);
//! - [`server`] — the bounded-queue worker-pool daemon with graceful
//!   drain-and-shutdown;
//! - [`client`] — a minimal blocking client.
//!
//! ```no_run
//! use topomap_serve::{client::Client, proto::MapRequest, server};
//! use topomap_lb::LbDatabase;
//!
//! let handle = server::spawn_ephemeral(server::ServeConfig::default()).unwrap();
//! let mut client = Client::connect_tcp(handle.addr()).unwrap();
//! let mut db = LbDatabase::new(2);
//! db.record_comm(0, 1, 1024.0, 1);
//! let resp = client.map(MapRequest {
//!     id: 1,
//!     topology: "torus:8x8".into(),
//!     mapper: "topolb".into(),
//!     init: None,
//!     fast_lane: None,
//!     hierarchy: None,
//!     hier_dist: None,
//!     seed: 0,
//!     deadline_ms: None,
//!     database: db,
//! });
//! println!("{resp:?}");
//! handle.join();
//! ```

pub mod cache;
pub mod client;
mod net;
pub mod oracle;
pub mod proto;
pub mod server;
pub mod specs;

pub use cache::{Fingerprint, LruCache};
pub use client::{Client, ClientError};
pub use oracle::{DistOracle, OracleCaches};
pub use proto::{
    ErrorKind, FrameError, MapRequest, Request, Response, ServerStats, MAX_FRAME_BYTES,
    PROTO_VERSION,
};
pub use server::{spawn, spawn_ephemeral, Bind, ServeConfig, ServerHandle};
