//! The mapping server: a persistent daemon that accepts framed JSON
//! requests, batches mapping jobs through a bounded queue and a fixed
//! worker pool, and amortizes topology oracles and hierarchy
//! factorizations across requests.
//!
//! ## Concurrency model
//!
//! One acceptor thread hands each connection to its own handler thread;
//! handlers do synchronous request/response framing. `Map` jobs are not
//! executed on the handler thread — they are pushed onto a **bounded**
//! queue drained by `workers` worker threads (each mapping kernel may
//! itself use `Parallelism` threads). When the queue is at its bound the
//! handler answers [`Response::Busy`] immediately: the server sheds load
//! explicitly rather than buffering without limit.
//!
//! ## Shutdown
//!
//! `ServerHandle::stop()` (or a `Shutdown` request, or SIGINT in the
//! CLI) flips one stop flag. The acceptor stops accepting, handlers
//! refuse new jobs with `ShuttingDown`, and workers finish every job
//! already queued — a drain, not an abort — before `join()` returns the
//! final stats.

use std::collections::VecDeque;
use std::net::TcpListener;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use topomap_core::{metrics, obs, Curve, Mapper, Parallelism, SfcMap};
use topomap_topology::Topology;

#[cfg(unix)]
use std::os::unix::net::UnixListener;
#[cfg(unix)]
use std::path::PathBuf;

use crate::net::Stream;
use crate::oracle::OracleCaches;
use crate::proto::{
    encode_response, write_frame, ErrorKind, FrameError, MapRequest, Request, Response,
    ServerStats, PROTO_VERSION,
};
use crate::specs::{hier_mapper_from_plan, parse_mapper_with_init};

/// How often blocked threads wake to poll the stop flag.
const POLL: Duration = Duration::from_millis(25);

/// Where the server listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// TCP `host:port`; port 0 asks the OS for an ephemeral port.
    Tcp(String),
    /// Unix-domain socket path (removed on startup and on join).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Server configuration. `Default` binds an ephemeral localhost port
/// with a small pool — every knob has a CLI flag in `topomap serve`.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    pub bind: Bind,
    /// Mapping worker threads (>= 1).
    pub workers: usize,
    /// Bound on queued (not yet running) jobs; at the bound new jobs get
    /// `Busy`.
    pub queue_cap: usize,
    /// LRU capacity for each of the oracle and hierarchy-plan caches.
    pub cache_cap: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Intra-job parallelism handed to the mapping kernels.
    pub par: Parallelism,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            workers: 2,
            queue_cap: 64,
            cache_cap: 32,
            default_deadline_ms: None,
            par: Parallelism::default(),
        }
    }
}

/// One queued mapping job: the request plus its reply channel and
/// deadline (absolute, derived at enqueue time).
struct Job {
    req: MapRequest,
    deadline: Option<Instant>,
    reply: mpsc::Sender<Response>,
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    ok: AtomicU64,
    busy: AtomicU64,
    errors: AtomicU64,
}

struct Shared {
    stop: AtomicBool,
    queue: Mutex<VecDeque<Job>>,
    queue_cap: usize,
    not_empty: Condvar,
    caches: OracleCaches,
    counters: Counters,
    par: Parallelism,
    default_deadline_ms: Option<u64>,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    fn stats(&self) -> ServerStats {
        let c = self.caches.counters();
        ServerStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            ok: self.counters.ok.load(Ordering::Relaxed),
            busy: self.counters.busy.load(Ordering::Relaxed),
            errors: self.counters.errors.load(Ordering::Relaxed),
            oracle_hits: c.oracle_hits,
            oracle_misses: c.oracle_misses,
            hier_hits: c.hier_hits,
            hier_misses: c.hier_misses,
        }
    }
}

/// The listening socket, wrapped for the two transports.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

/// Handle to a running server. Dropping the handle does NOT stop the
/// server; call [`ServerHandle::stop`] then [`ServerHandle::join`].
pub struct ServerHandle {
    addr: String,
    shared: Arc<Shared>,
    acceptor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
    #[cfg(unix)]
    unix_path: Option<PathBuf>,
}

impl ServerHandle {
    /// The bound address: `host:port` for TCP (with the real ephemeral
    /// port), the socket path for unix.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Flip the stop flag: stop accepting, refuse new jobs, let workers
    /// drain the queue.
    pub fn stop(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.not_empty.notify_all();
    }

    /// Snapshot the live counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Whether a stop was requested (by [`Self::stop`], a `Shutdown`
    /// request, or the CLI's SIGINT handler).
    pub fn stopping(&self) -> bool {
        self.shared.stopping()
    }

    /// Wait for the drain to finish and return the final stats. Implies
    /// [`Self::stop`].
    pub fn join(mut self) -> ServerStats {
        self.stop();
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        #[cfg(unix)]
        if let Some(p) = self.unix_path.take() {
            let _ = std::fs::remove_file(p);
        }
        self.shared.stats()
    }
}

/// Bind and spawn the server threads; returns once the socket is
/// listening, so the address is immediately connectable.
pub fn spawn(cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    let (listener, addr) = match &cfg.bind {
        Bind::Tcp(spec) => {
            let l = TcpListener::bind(spec.as_str())?;
            let addr = l.local_addr()?.to_string();
            l.set_nonblocking(true)?;
            (Listener::Tcp(l), addr)
        }
        #[cfg(unix)]
        Bind::Unix(path) => {
            let _ = std::fs::remove_file(path);
            let l = UnixListener::bind(path)?;
            l.set_nonblocking(true)?;
            (Listener::Unix(l), path.display().to_string())
        }
    };
    #[cfg(unix)]
    let unix_path = match &cfg.bind {
        Bind::Unix(p) => Some(p.clone()),
        _ => None,
    };

    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        queue: Mutex::new(VecDeque::new()),
        queue_cap: cfg.queue_cap,
        not_empty: Condvar::new(),
        caches: OracleCaches::new(cfg.cache_cap),
        counters: Counters::default(),
        par: cfg.par,
        default_deadline_ms: cfg.default_deadline_ms,
    });

    if obs::enabled() {
        obs::meta_set("serve.addr", &addr);
        obs::meta_set("serve.workers", &cfg.workers.max(1).to_string());
        obs::meta_set("serve.queue_cap", &cfg.queue_cap.to_string());
    }

    let workers: Vec<_> = (0..cfg.workers.max(1))
        .map(|i| {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::Builder::new()
            .name("serve-accept".to_string())
            .spawn(move || accept_loop(listener, &shared))
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        acceptor: Some(acceptor),
        workers,
        #[cfg(unix)]
        unix_path,
    })
}

fn accept_loop(listener: Listener, shared: &Arc<Shared>) {
    while !shared.stopping() {
        let accepted = match &listener {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Stream::Unix(s)),
        };
        match accepted {
            Ok(stream) => {
                let shared = Arc::clone(shared);
                // Handlers are detached: they live as long as their
                // client (or until the stop flag lets their read poll
                // expire), and hold no state the drain depends on.
                let _ = thread::Builder::new()
                    .name("serve-conn".to_string())
                    .spawn(move || handle_connection(stream, &shared));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(POLL),
            Err(_) => thread::sleep(POLL),
        }
    }
}

/// Read one frame, polling the stop flag while idle *between* frames.
/// Once a frame has begun, timeouts retry (bytes already consumed stay
/// in our buffer) so a slow client cannot corrupt framing; if the server
/// is stopping, mid-frame patience is bounded before giving up.
fn read_frame_polled(stream: &mut Stream, shared: &Shared) -> Result<Option<Vec<u8>>, FrameError> {
    use std::io::Read;
    let mut first = [0u8; 1];
    loop {
        if shared.stopping() {
            return Ok(None);
        }
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => return Err(e.into()),
        }
    }
    let mut len_buf = [first[0], 0, 0, 0];
    read_exact_retry(stream, &mut len_buf[1..], shared, 1)?;
    let declared = u32::from_be_bytes(len_buf);
    if declared > crate::proto::MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            declared,
            max: crate::proto::MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; declared as usize];
    read_exact_retry(stream, &mut payload, shared, 4)?;
    Ok(Some(payload))
}

/// `read_exact` that retries timeouts. While the server is running the
/// patience is unbounded; once it is stopping, at most ~2s more.
fn read_exact_retry(
    stream: &mut Stream,
    buf: &mut [u8],
    shared: &Shared,
    already: usize,
) -> Result<(), FrameError> {
    use std::io::Read;
    let mut got = 0;
    let mut stopping_polls = 0u32;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(FrameError::Truncated {
                    expected: already + buf.len(),
                    got: already + got,
                })
            }
            Ok(n) => got += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.stopping() {
                    stopping_polls += 1;
                    if stopping_polls > 80 {
                        return Err(FrameError::Truncated {
                            expected: already + buf.len(),
                            got: already + got,
                        });
                    }
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

fn handle_connection(mut stream: Stream, shared: &Arc<Shared>) {
    let _ = stream.set_read_timeout(Some(POLL));
    loop {
        let payload = match read_frame_polled(&mut stream, shared) {
            Ok(Some(p)) => p,
            // Clean EOF or shutdown: close the connection.
            Ok(None) => return,
            // Framing is unrecoverable (truncation, oversized, I/O):
            // drop the connection rather than guess at resync.
            Err(_) => return,
        };
        let response = match crate::proto::decode_request(&payload) {
            Ok(req) => dispatch(req, shared),
            Err(e) => Response::Error {
                id: 0,
                kind: ErrorKind::BadRequest,
                message: e.to_string(),
            },
        };
        if write_frame(&mut stream, &encode_response(&response)).is_err() {
            return;
        }
    }
}

/// Handle one decoded request on the connection thread. Control
/// requests answer inline; `Map` goes through the bounded queue.
fn dispatch(req: Request, shared: &Arc<Shared>) -> Response {
    match req {
        Request::Ping => Response::Pong {
            version: PROTO_VERSION,
            server: format!("topomap-serve/{}", env!("CARGO_PKG_VERSION")),
        },
        Request::Stats => Response::StatsOk {
            stats: shared.stats(),
        },
        Request::Shutdown => {
            shared.stop.store(true, Ordering::SeqCst);
            shared.not_empty.notify_all();
            Response::ShutdownAck
        }
        Request::Map { req } => submit_map(req, shared),
    }
}

/// Enqueue a map job (or shed it) and wait for the worker's answer.
fn submit_map(req: MapRequest, shared: &Arc<Shared>) -> Response {
    shared.counters.requests.fetch_add(1, Ordering::Relaxed);
    obs::counter_add("serve.requests", 1);
    let id = req.id;
    if shared.stopping() {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
        return Response::Error {
            id,
            kind: ErrorKind::ShuttingDown,
            message: "server is draining; no new jobs accepted".to_string(),
        };
    }
    let deadline = req
        .deadline_ms
        .or(shared.default_deadline_ms)
        .map(|ms| Instant::now() + Duration::from_millis(ms));
    let (tx, rx) = mpsc::channel();
    {
        let mut q = shared.queue.lock().unwrap();
        // Re-check under the queue lock: workers take their final
        // "queue empty + stopping" decision under this same lock, so a
        // job enqueued here is guaranteed to be drained (never orphaned
        // after the last worker exits).
        if shared.stopping() {
            drop(q);
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return Response::Error {
                id,
                kind: ErrorKind::ShuttingDown,
                message: "server is draining; no new jobs accepted".to_string(),
            };
        }
        if q.len() >= shared.queue_cap {
            drop(q);
            shared.counters.busy.fetch_add(1, Ordering::Relaxed);
            obs::counter_add("serve.busy", 1);
            return Response::Busy {
                id,
                queue_cap: shared.queue_cap,
            };
        }
        q.push_back(Job {
            req,
            deadline,
            reply: tx,
        });
    }
    shared.not_empty.notify_one();
    let response = rx.recv().unwrap_or_else(|_| Response::Error {
        id,
        kind: ErrorKind::Internal,
        message: "worker dropped the job".to_string(),
    });
    match &response {
        Response::MapOk { .. } => {
            shared.counters.ok.fetch_add(1, Ordering::Relaxed);
            obs::counter_add("serve.ok", 1);
        }
        _ => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            obs::counter_add("serve.errors", 1);
        }
    }
    response
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break Some(job);
                }
                if shared.stopping() {
                    break None;
                }
                let (guard, _) = shared.not_empty.wait_timeout(q, POLL).unwrap();
                q = guard;
            }
        };
        let Some(job) = job else { return };
        let response = run_job(&job, shared);
        // The handler may have gone away (client disconnect); the result
        // is simply dropped then.
        let _ = job.reply.send(response);
    }
}

/// Execute one mapping job on a worker thread.
fn run_job(job: &Job, shared: &Shared) -> Response {
    let id = job.req.id;
    let _root = if obs::enabled() {
        Some(obs::span(&format!("serve.request.{id}")))
    } else {
        None
    };
    if let Some(deadline) = job.deadline {
        if Instant::now() >= deadline {
            obs::counter_add("serve.deadline", 1);
            tag_request(id, "deadline");
            return Response::Error {
                id,
                kind: ErrorKind::Deadline,
                message: "deadline passed while the job was queued".to_string(),
            };
        }
    }
    match map_job(&job.req, job.deadline, shared) {
        Ok(resp) => {
            tag_request(id, "ok");
            resp
        }
        Err((kind, message)) => {
            tag_request(id, &kind.to_string());
            Response::Error { id, kind, message }
        }
    }
}

/// Tag the request id into the obs meta section (schema v2), making the
/// span tree of this request attributable from the report alone.
fn tag_request(id: u64, outcome: &str) {
    if obs::enabled() {
        obs::meta_set(&format!("serve.request.{id}"), outcome);
    }
}

/// Reject malformed wire-supplied workloads with a structured error
/// before they can trip the task-graph builder's asserts on a worker.
fn validate_database(db: &topomap_lb::LbDatabase) -> Result<(), (ErrorKind, String)> {
    let n = db.num_objects();
    let bad = |msg: String| Err((ErrorKind::BadWorkload, msg));
    for (i, &l) in db.loads.iter().enumerate() {
        if !(l >= 0.0 && l.is_finite()) {
            return bad(format!("object {i} has invalid load {l}"));
        }
    }
    for r in &db.comm {
        if r.from >= n || r.to >= n {
            return bad(format!(
                "comm record {}→{} references objects outside 0..{n}",
                r.from, r.to
            ));
        }
        if !(r.bytes >= 0.0 && r.bytes.is_finite()) {
            return bad(format!(
                "comm record {}→{} has invalid byte count {}",
                r.from, r.to, r.bytes
            ));
        }
    }
    Ok(())
}

/// Rough wall-clock estimate for a mapper spec on an n-task, p-processor
/// job, used only by the fast-lane decision. The quadratic greedy
/// mappers touch ~n·p candidate cells at a couple of nanoseconds each;
/// `refine` multiplies that by its sweep passes; the search heuristics
/// by their population/schedule factor. The near-linear lanes (sfc, rcb,
/// linear, identity, random) never trip the estimate.
fn estimated_cost(mapper: &str, n: usize, p: usize) -> Duration {
    const CELL_NS: u64 = 2;
    let cells = (n as u64).saturating_mul(p as u64);
    let ns = match mapper {
        "topolb" | "topolb-first" | "topolb-third" | "topocentlb" => cells.saturating_mul(CELL_NS),
        "refine" => cells.saturating_mul(CELL_NS * 4),
        "anneal" | "genetic" => cells.saturating_mul(CELL_NS * 8),
        _ => (n as u64).saturating_mul(200),
    };
    Duration::from_nanos(ns)
}

/// Resolve specs through the caches, run the kernel, score the mapping.
fn map_job(
    req: &MapRequest,
    deadline: Option<Instant>,
    shared: &Shared,
) -> Result<Response, (ErrorKind, String)> {
    let bad_spec = |e: String| (ErrorKind::BadSpec, e);

    let (oracle, oracle_cache_hit) = {
        let _sp = obs::span("serve.oracle");
        shared.caches.oracle(&req.topology).map_err(bad_spec)?
    };
    obs::counter_add(
        if oracle_cache_hit {
            "serve.oracle.hit"
        } else {
            "serve.oracle.miss"
        },
        1,
    );

    let hierarchical = req.hierarchy.is_some() || req.mapper == "hier";
    let (mapper, hier_cache_hit): (Box<dyn Mapper>, Option<bool>) = if hierarchical {
        if req.mapper != "hier" {
            return Err(bad_spec(format!(
                "a hierarchy selects the hierarchical mapper; drop mapper '{}' \
                 (or spell it 'hier')",
                req.mapper
            )));
        }
        let _sp = obs::span("serve.hier-plan");
        let (plan, hit) = shared
            .caches
            .hier_plan(
                &req.topology,
                &oracle,
                req.hierarchy.as_deref(),
                req.hier_dist.as_deref(),
            )
            .map_err(bad_spec)?;
        obs::counter_add(
            if hit {
                "serve.hier.hit"
            } else {
                "serve.hier.miss"
            },
            1,
        );
        (
            Box::new(hier_mapper_from_plan(&plan, shared.par)),
            Some(hit),
        )
    } else {
        if req.hier_dist.is_some() {
            return Err(bad_spec(
                "hier_dist needs a hierarchy (or mapper 'hier')".to_string(),
            ));
        }
        (
            parse_mapper_with_init(&req.mapper, req.init.as_deref(), req.seed, shared.par)
                .map_err(bad_spec)?,
            None,
        )
    };
    if hierarchical && req.init.is_some() {
        return Err(bad_spec(
            "init only applies to the 'refine' mapper, not hierarchies".to_string(),
        ));
    }

    validate_database(&req.database)?;
    let tasks = req.database.to_task_graph();
    if tasks.num_tasks() > oracle.num_nodes() {
        return Err((
            ErrorKind::BadWorkload,
            format!(
                "workload has {} tasks but machine '{}' has {} processors; \
                 partition the workload first",
                tasks.num_tasks(),
                req.topology.trim(),
                oracle.num_nodes()
            ),
        ));
    }

    // Fast lane (opt-in): a quadratic mapper that cannot finish inside
    // the remaining deadline budget is swapped for the near-linear
    // Hilbert SFC mapper — a worse-but-on-time answer instead of a
    // guaranteed Deadline error. Coordinate-bearing workloads get their
    // real geometry; others fall back to the BFS-layering embedding.
    let fast_lane_used = if req.fast_lane.unwrap_or(false) && !hierarchical {
        match deadline {
            Some(d) => {
                let remaining = d.saturating_duration_since(Instant::now());
                estimated_cost(&req.mapper, tasks.num_tasks(), oracle.num_nodes()) > remaining
            }
            None => false,
        }
    } else {
        false
    };
    let mapper: Box<dyn Mapper> = if fast_lane_used {
        obs::counter_add("serve.fast_lane", 1);
        Box::new(SfcMap::with_parallelism(Curve::Hilbert, shared.par))
    } else {
        mapper
    };

    let started = Instant::now();
    let mapping = {
        let _sp = obs::span("serve.kernel");
        catch_unwind(AssertUnwindSafe(|| mapper.map(&tasks, oracle.as_ref()))).map_err(|p| {
            let msg = p
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| p.downcast_ref::<&str>().copied())
                .unwrap_or("mapping kernel panicked");
            (ErrorKind::Internal, format!("mapping kernel failed: {msg}"))
        })?
    };
    let elapsed_us = started.elapsed().as_micros() as u64;

    let (hop_bytes, hops_per_byte) = {
        let _sp = obs::span("serve.eval");
        (
            metrics::hop_bytes(&tasks, oracle.as_ref(), &mapping),
            metrics::hops_per_byte(&tasks, oracle.as_ref(), &mapping),
        )
    };

    Ok(Response::MapOk {
        id: req.id,
        num_procs: mapping.num_procs(),
        proc_of_task: mapping.as_slice().to_vec(),
        hop_bytes,
        hops_per_byte,
        elapsed_us,
        oracle_cache_hit,
        hier_cache_hit,
        fast_lane_used: req.fast_lane.map(|requested| requested && fast_lane_used),
    })
}

/// Convenience used by tests and the bench driver: serve on an
/// ephemeral localhost TCP port.
pub fn spawn_ephemeral(mut cfg: ServeConfig) -> std::io::Result<ServerHandle> {
    cfg.bind = Bind::Tcp("127.0.0.1:0".to_string());
    spawn(cfg)
}
