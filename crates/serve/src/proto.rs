//! Wire protocol: length-prefixed JSON frames and the request/response
//! schema.
//!
//! ## Frame format
//!
//! Every message is one frame: a 4-byte **big-endian** `u32` payload
//! length followed by exactly that many bytes of UTF-8 JSON. Frames
//! larger than [`MAX_FRAME_BYTES`] are rejected *before* any allocation
//! (the reader returns [`FrameError::TooLarge`] and the connection is
//! dropped); a stream that ends mid-frame is a [`FrameError::Truncated`]
//! error, never a silent partial message.
//!
//! ## Schema
//!
//! The payload is one [`Request`] or [`Response`] in the vendored
//! serde's external-enum representation (unit variants as `"Name"`,
//! data variants as `{"Name": {..fields..}}`). The mapping payload
//! reuses [`topomap_lb::LbDatabase`] verbatim, so a dumped Charm++-style
//! LB scenario (`topomap-lb::dump`) can be submitted to the server
//! without translation.
//!
//! ## Error taxonomy
//!
//! Failures travel as `Response::Error { kind, .. }` with a closed
//! [`ErrorKind`] enum — clients can branch on the kind without parsing
//! prose. `Busy` is deliberately *not* an error: it is the backpressure
//! signal (the queue bound was hit; retry later), carried as its own
//! variant so load-shedding is distinguishable from failure.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use topomap_lb::LbDatabase;

/// Protocol version, echoed in `Pong`. Bump on breaking schema changes.
pub const PROTO_VERSION: u32 = 1;

/// Hard ceiling on one frame's payload (32 MiB). Large enough for a
/// hundreds-of-thousands-record LB database, small enough that a
/// corrupt or hostile length prefix cannot balloon server memory.
pub const MAX_FRAME_BYTES: u32 = 32 * 1024 * 1024;

/// Frame-layer failures.
#[derive(Debug)]
pub enum FrameError {
    Io(std::io::Error),
    /// Declared length exceeds [`MAX_FRAME_BYTES`].
    TooLarge {
        declared: u32,
        max: u32,
    },
    /// The stream ended before the declared payload arrived.
    Truncated {
        expected: usize,
        got: usize,
    },
    /// The payload was not valid JSON for the expected type.
    Decode(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame I/O error: {e}"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte limit")
            }
            FrameError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            FrameError::Decode(msg) => write!(f, "frame decode error: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Write one frame (length prefix + payload) and flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len()).map_err(|_| FrameError::TooLarge {
        declared: u32::MAX,
        max: MAX_FRAME_BYTES,
    })?;
    if len > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            declared: len,
            max: MAX_FRAME_BYTES,
        });
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame's payload. `Ok(None)` is a clean end-of-stream (the
/// peer closed between frames); EOF anywhere else is `Truncated`.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut len_buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut len_buf[got..])? {
            0 if got == 0 => return Ok(None),
            0 => return Err(FrameError::Truncated { expected: 4, got }),
            n => got += n,
        }
    }
    let declared = u32::from_be_bytes(len_buf);
    if declared > MAX_FRAME_BYTES {
        return Err(FrameError::TooLarge {
            declared,
            max: MAX_FRAME_BYTES,
        });
    }
    let expected = declared as usize;
    let mut payload = vec![0u8; expected];
    let mut got = 0;
    while got < expected {
        match r.read(&mut payload[got..])? {
            0 => return Err(FrameError::Truncated { expected, got }),
            n => got += n,
        }
    }
    Ok(Some(payload))
}

/// One mapping job: where to map (`topology`, optional hierarchy), how
/// (`mapper`, `seed`), the workload itself (an [`LbDatabase`], the same
/// type `topomap-lb` dumps), and an optional deadline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MapRequest {
    /// Client-chosen request id, echoed on every response to this job.
    pub id: u64,
    /// Topology spec, e.g. `torus:8x8` (see `topomap_serve::specs`).
    pub topology: String,
    /// Mapper spec, e.g. `topolb` / `refine` / `hier`.
    pub mapper: String,
    /// Warm-start spec for mapper `refine`: refine this mapper's output
    /// instead of the default cold TopoLB run (e.g. `sfc` / `rcb`).
    /// Absent on the wire = `None` (older clients stay compatible).
    pub init: Option<String>,
    /// Opt into the fast lane: when the estimated cost of the requested
    /// mapper would overrun the remaining deadline budget, the server
    /// swaps in the near-linear Hilbert SFC mapper instead of letting
    /// the job die on the deadline. Absent on the wire = off.
    pub fast_lane: Option<bool>,
    /// Hierarchy arity spec (`4:4:4`) — selects the hierarchical mapper.
    pub hierarchy: Option<String>,
    /// Per-level distance spec for the hierarchy (`1:10:100`).
    pub hier_dist: Option<String>,
    /// Seed for the randomized mappers.
    pub seed: u64,
    /// Milliseconds (from enqueue) after which the server abandons the
    /// job and answers `Error { kind: Deadline }`. `None` = no deadline.
    pub deadline_ms: Option<u64>,
    /// The measured workload (loads + communication records).
    pub database: LbDatabase,
}

/// Client → server messages.
///
/// `Map` dwarfs the control variants by design — the request body *is*
/// the workload — and boxing it would push the indirection into every
/// encode/decode site for no wire-level gain.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness + version handshake.
    Ping,
    /// Snapshot of server counters and cache statistics.
    Stats,
    /// Begin a graceful drain: in-flight jobs finish, new ones are
    /// refused, the server exits. Acknowledged with `ShutdownAck`.
    Shutdown,
    /// One mapping job.
    Map { req: MapRequest },
}

/// The structured failure taxonomy carried by `Response::Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ErrorKind {
    /// The frame decoded but was not a valid `Request`.
    BadRequest,
    /// A topology/hierarchy/mapper spec failed to parse or the specs
    /// are mutually inconsistent.
    BadSpec,
    /// The workload cannot be mapped onto the machine (e.g. more tasks
    /// than processors — pre-partition first).
    BadWorkload,
    /// The job's deadline passed before a worker could finish it.
    Deadline,
    /// The server is draining; no new jobs are accepted.
    ShuttingDown,
    /// A server-side invariant failure (worker panic, poisoned state).
    Internal,
}

impl std::fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorKind::BadRequest => "bad-request",
            ErrorKind::BadSpec => "bad-spec",
            ErrorKind::BadWorkload => "bad-workload",
            ErrorKind::Deadline => "deadline",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        };
        write!(f, "{s}")
    }
}

/// Server counters, returned by `Stats` (cache counters come from the
/// LRU caches; the rest are lifetime totals since the server started).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Map requests received (all outcomes).
    pub requests: u64,
    /// Map requests answered `MapOk`.
    pub ok: u64,
    /// Map requests shed with `Busy`.
    pub busy: u64,
    /// Map requests answered `Error` (any kind).
    pub errors: u64,
    /// Distance-oracle cache hits / misses.
    pub oracle_hits: u64,
    pub oracle_misses: u64,
    /// Hierarchy-factorization cache hits / misses.
    pub hier_hits: u64,
    pub hier_misses: u64,
}

impl ServerStats {
    /// Distance-oracle hit rate in [0, 1]; 0 when no lookups happened.
    pub fn oracle_hit_rate(&self) -> f64 {
        let total = self.oracle_hits + self.oracle_misses;
        if total == 0 {
            0.0
        } else {
            self.oracle_hits as f64 / total as f64
        }
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to `Ping`.
    Pong { version: u32, server: String },
    /// Answer to `Stats`.
    StatsOk { stats: ServerStats },
    /// Answer to `Shutdown` (sent before the drain completes).
    ShutdownAck,
    /// A completed mapping job.
    MapOk {
        id: u64,
        /// Machine size the mapping indexes into.
        num_procs: usize,
        /// Task → processor assignment.
        proc_of_task: Vec<usize>,
        /// Hop-bytes of the returned mapping.
        hop_bytes: f64,
        /// Hop-bytes normalized by total bytes.
        hops_per_byte: f64,
        /// Wall-clock of the mapping computation (not queue wait), µs.
        elapsed_us: u64,
        /// Whether the distance oracle was served from cache.
        oracle_cache_hit: bool,
        /// Whether the hierarchy factorization was served from cache
        /// (`None` for non-hierarchical mappers).
        hier_cache_hit: Option<bool>,
        /// Whether the fast lane replaced the requested mapper with the
        /// near-linear SFC mapper to meet the deadline (`None` when the
        /// job did not opt in via [`MapRequest::fast_lane`]).
        fast_lane_used: Option<bool>,
    },
    /// Backpressure: the request queue is at its bound. The job was NOT
    /// enqueued; retry later.
    Busy { id: u64, queue_cap: usize },
    /// A failed job (see [`ErrorKind`]). `id` is 0 when the failure
    /// happened before a request id could be decoded.
    Error {
        id: u64,
        kind: ErrorKind,
        message: String,
    },
}

/// Encode a request as a frame payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    serde_json::to_string(req)
        .expect("request serializes")
        .into_bytes()
}

/// Encode a response as a frame payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    serde_json::to_string(resp)
        .expect("response serializes")
        .into_bytes()
}

/// Decode a frame payload as a request.
pub fn decode_request(payload: &[u8]) -> Result<Request, FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::Decode(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Decode(e.to_string()))
}

/// Decode a frame payload as a response.
pub fn decode_response(payload: &[u8]) -> Result<Response, FrameError> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| FrameError::Decode(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Decode(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn roundtrip_req(req: &Request) -> Request {
        let mut buf = Vec::new();
        write_frame(&mut buf, &encode_request(req)).unwrap();
        let payload = read_frame(&mut Cursor::new(buf)).unwrap().unwrap();
        decode_request(&payload).unwrap()
    }

    #[test]
    fn ping_roundtrip() {
        assert_eq!(roundtrip_req(&Request::Ping), Request::Ping);
        assert_eq!(roundtrip_req(&Request::Stats), Request::Stats);
        assert_eq!(roundtrip_req(&Request::Shutdown), Request::Shutdown);
    }

    #[test]
    fn map_request_roundtrip() {
        let mut db = LbDatabase::new(3);
        db.record_load(0, 1.25);
        db.record_comm(0, 2, 512.0, 4);
        let req = Request::Map {
            req: MapRequest {
                id: 42,
                topology: "torus:2x2".into(),
                mapper: "topolb".into(),
                init: None,
                fast_lane: Some(true),
                hierarchy: None,
                hier_dist: None,
                seed: 7,
                deadline_ms: Some(250),
                database: db,
            },
        };
        assert_eq!(roundtrip_req(&req), req);
    }

    #[test]
    fn legacy_map_request_without_new_fields_decodes() {
        // A request from a pre-fast-lane client (no init/fast_lane keys)
        // must still decode, with both as None.
        let legacy = r#"{"Map":{"req":{"id":1,"topology":"torus:2x2",
            "mapper":"topolb","hierarchy":null,"hier_dist":null,"seed":0,
            "deadline_ms":null,
            "database":{"loads":[1.0,1.0],"comm":[]}}}}"#;
        match decode_request(legacy.as_bytes()).unwrap() {
            Request::Map { req } => {
                assert_eq!(req.init, None);
                assert_eq!(req.fast_lane, None);
            }
            other => panic!("expected Map, got {other:?}"),
        }
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let mut c = Cursor::new(Vec::<u8>::new());
        assert!(read_frame(&mut c).unwrap().is_none());
    }

    #[test]
    fn truncated_prefix_rejected() {
        let mut c = Cursor::new(vec![0u8, 0]);
        match read_frame(&mut c) {
            Err(FrameError::Truncated {
                expected: 4,
                got: 2,
            }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn truncated_payload_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&100u32.to_be_bytes());
        buf.extend_from_slice(&[1, 2, 3]);
        match read_frame(&mut Cursor::new(buf)) {
            Err(FrameError::Truncated {
                expected: 100,
                got: 3,
            }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frame_rejected_without_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_be_bytes());
        match read_frame(&mut Cursor::new(buf)) {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, MAX_FRAME_BYTES + 1);
                assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
        let err = write_frame(&mut Vec::new(), &vec![0u8; MAX_FRAME_BYTES as usize + 1]);
        assert!(matches!(err, Err(FrameError::TooLarge { .. })));
    }

    #[test]
    fn garbage_payload_is_decode_error() {
        assert!(matches!(
            decode_request(b"not json"),
            Err(FrameError::Decode(_))
        ));
        assert!(matches!(
            decode_response(&[0xff, 0xfe]),
            Err(FrameError::Decode(_))
        ));
    }
}
