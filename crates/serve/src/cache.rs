//! Dependency-free LRU cache and cache-key fingerprinting.
//!
//! The server amortizes two expensive artifacts across requests: the
//! O(p²) distance-oracle matrix of each topology and the hierarchy
//! factorization of each (topology, hierarchy) pair. Both are keyed by a
//! [`Fingerprint`] — a 64-bit FNV-1a hash over the *sorted* `name=value`
//! pairs of the spec, so the key is stable no matter which order a
//! client (or a future wire format) lists the fields in.
//!
//! The cache is a plain `HashMap` plus a monotonic recency stamp;
//! eviction scans for the minimum stamp. That is O(len) per insert at
//! capacity, which is the right trade for the handful-of-dozens entries
//! a mapping server holds (each worth megabytes), and it keeps the
//! structure simple enough to property-test exhaustively against a
//! reference model (`tests/cache_props.rs`).

use std::collections::HashMap;
use std::hash::Hash;

/// A 64-bit cache key derived from spec strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u64);

impl Fingerprint {
    /// Fingerprint a set of `name=value` pairs. Pairs are sorted by name
    /// (then value) before hashing, so the result does not depend on the
    /// order the caller lists the fields in; names and values are
    /// length-prefixed so concatenation ambiguities ("ab"+"c" vs
    /// "a"+"bc") cannot collide structurally.
    pub fn of_pairs(pairs: &[(&str, &str)]) -> Fingerprint {
        let mut sorted: Vec<(&str, &str)> = pairs.to_vec();
        sorted.sort_unstable();
        // FNV-1a, 64-bit.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        };
        for (name, value) in sorted {
            eat(&(name.len() as u64).to_le_bytes());
            eat(name.as_bytes());
            eat(&(value.len() as u64).to_le_bytes());
            eat(value.as_bytes());
        }
        Fingerprint(h)
    }
}

/// A least-recently-used cache with hit/miss counters.
///
/// Values are handed out by clone; callers store `Arc<V>` for anything
/// heavy. Capacity 0 degenerates to a pass-through (nothing is retained).
#[derive(Debug)]
pub struct LruCache<K: Eq + Hash + Clone, V: Clone> {
    cap: usize,
    tick: u64,
    map: HashMap<K, (V, u64)>,
    hits: u64,
    misses: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    pub fn new(cap: usize) -> Self {
        LruCache {
            cap,
            tick: 0,
            map: HashMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Look up `k`, refreshing its recency and counting a hit or miss.
    pub fn get(&mut self, k: &K) -> Option<V> {
        self.tick += 1;
        match self.map.get_mut(k) {
            Some((v, stamp)) => {
                *stamp = self.tick;
                self.hits += 1;
                Some(v.clone())
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Insert `k → v` as most-recent, evicting the least-recently-used
    /// entry if the cache is at capacity and `k` is not already present.
    pub fn insert(&mut self, k: K, v: V) {
        if self.cap == 0 {
            return;
        }
        self.tick += 1;
        if !self.map.contains_key(&k) && self.map.len() >= self.cap {
            if let Some(victim) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&victim);
            }
        }
        self.map.insert(k, (v, self.tick));
    }

    /// `get` or build-and-insert. Returns the value and whether it was a
    /// cache hit.
    pub fn get_or_insert_with(&mut self, k: K, build: impl FnOnce() -> V) -> (V, bool) {
        if let Some(v) = self.get(&k) {
            return (v, true);
        }
        let v = build();
        self.insert(k, v.clone());
        (v, false)
    }

    /// Like [`Self::get_or_insert_with`] but the builder may fail; a
    /// failed build caches nothing and counts only the miss.
    pub fn try_get_or_insert_with<E>(
        &mut self,
        k: K,
        build: impl FnOnce() -> Result<V, E>,
    ) -> Result<(V, bool), E> {
        if let Some(v) = self.get(&k) {
            return Ok((v, true));
        }
        let v = build()?;
        self.insert(k, v.clone());
        Ok((v, false))
    }

    /// Keys ordered most-recently-used first (tests and introspection).
    pub fn keys_by_recency(&self) -> Vec<K> {
        let mut entries: Vec<(&K, u64)> = self.map.iter().map(|(k, (_, s))| (k, *s)).collect();
        entries.sort_by_key(|e| std::cmp::Reverse(e.1));
        entries.into_iter().map(|(k, _)| k.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh a; b is now LRU
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b was evicted");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.len(), 2);
        assert_eq!((c.hits(), c.misses()), (3, 1)); // gets: a, b(miss), a, c
    }

    #[test]
    fn reinsert_refreshes_not_grows() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh + overwrite; b becomes LRU
        c.insert("c", 3);
        assert_eq!(c.len(), 2);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut c = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert!(c.is_empty());
        let (v, hit) = c.get_or_insert_with("a", || 7);
        assert_eq!((v, hit), (7, false));
    }

    #[test]
    fn get_or_insert_counts_hit_second_time() {
        let mut c = LruCache::new(4);
        let (v, hit) = c.get_or_insert_with("k", || 5);
        assert_eq!((v, hit), (5, false));
        let (v, hit) = c.get_or_insert_with("k", || unreachable!());
        assert_eq!((v, hit), (5, true));
    }

    #[test]
    fn failed_build_caches_nothing() {
        let mut c: LruCache<&str, i32> = LruCache::new(4);
        let r: Result<_, String> = c.try_get_or_insert_with("k", || Err("nope".into()));
        assert!(r.is_err());
        assert!(c.is_empty());
        let r: Result<_, String> = c.try_get_or_insert_with("k", || Ok(3));
        assert_eq!(r.unwrap(), (3, false));
    }

    #[test]
    fn fingerprint_ignores_pair_order() {
        let a = Fingerprint::of_pairs(&[("topology", "torus:8x8"), ("hierarchy", "4:4:4")]);
        let b = Fingerprint::of_pairs(&[("hierarchy", "4:4:4"), ("topology", "torus:8x8")]);
        assert_eq!(a, b);
        let c = Fingerprint::of_pairs(&[("topology", "torus:8x8"), ("hierarchy", "4:4:2")]);
        assert_ne!(a, c);
    }

    #[test]
    fn fingerprint_length_prefixing_blocks_concat_collisions() {
        let a = Fingerprint::of_pairs(&[("ab", "c")]);
        let b = Fingerprint::of_pairs(&[("a", "bc")]);
        assert_ne!(a, b);
    }
}
