//! Compact string specs for machines, workloads, and mappers — the ONE
//! parsing/error path shared by the CLI subcommands and the mapping
//! server (requests carry these same spec strings on the wire).
//!
//! | kind | examples |
//! |------|----------|
//! | topology | `torus:8x8`, `mesh:4x4x4`, `hypercube:6`, `ring:16`, `star:9`, `crossbar:8`, `fattree:4:3`, `dragonfly:4:8` |
//! | pattern | `stencil2d:16x16`, `stencil3d:8x8x8`, `pstencil2d:8x8` (periodic), `leanmd:64`, `ring:32`, `all2all:16`, `butterfly:64`, `transpose:8`, `sweep2d:6x6`, `tree:32`, `random:100:4` |
//! | mapper | `random`, `topolb`, `topolb-first`, `topolb-third`, `topocentlb`, `refine`, `identity`, `linear`, `anneal`, `genetic`, `hier` |

use topomap_core::{
    auto_arities, Curve, EstimationOrder, GeneticMap, HierMapper, IdentityMap, LinearOrderMap,
    Mapper, Parallelism, RandomMap, RcbMap, RefineTopoLb, SfcMap, SimulatedAnnealingMap,
    TopoCentLb, TopoLb,
};
use topomap_taskgraph::{gen, TaskGraph};
use topomap_topology::{
    Dragonfly, FatTree, GraphTopology, Hierarchy, Hypercube, NodeId, RoutedTopology, Topology,
    Torus,
};

/// Parse `AxBxC` into dimension sizes.
fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = s.split('x').map(|p| p.parse::<usize>()).collect();
    let dims = dims.map_err(|_| format!("bad dimension list '{s}'"))?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(format!("bad dimension list '{s}'"));
    }
    Ok(dims)
}

/// A parsed topology, split by capability: `simulate` needs routing,
/// `map`/`eval` only need the metric.
pub enum ParsedTopology {
    Routed(Box<dyn RoutedTopology>),
    MetricOnly(Box<dyn Topology>),
}

impl ParsedTopology {
    pub fn as_topology(&self) -> &dyn Topology {
        match self {
            ParsedTopology::Routed(t) => t,
            ParsedTopology::MetricOnly(t) => t.as_ref(),
        }
    }

    pub fn as_routed(&self) -> Result<&dyn RoutedTopology, String> {
        match self {
            ParsedTopology::Routed(t) => Ok(t.as_ref()),
            ParsedTopology::MetricOnly(t) => Err(format!(
                "topology '{}' is metric-only (no per-link routing); it cannot be simulated",
                t.name()
            )),
        }
    }
}

/// Parse a topology spec.
pub fn parse_topology(spec: &str) -> Result<ParsedTopology, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let routed = |t: Box<dyn RoutedTopology>| Ok(ParsedTopology::Routed(t));
    match kind {
        "torus" => routed(Box::new(Torus::torus(&parse_dims(rest)?))),
        "mesh" => routed(Box::new(Torus::mesh(&parse_dims(rest)?))),
        "hypercube" => {
            let d: u32 = rest
                .parse()
                .map_err(|_| format!("bad hypercube dims '{rest}'"))?;
            routed(Box::new(Hypercube::new(d)))
        }
        "ring" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad ring size '{rest}'"))?;
            routed(Box::new(GraphTopology::ring(n)))
        }
        "star" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad star size '{rest}'"))?;
            routed(Box::new(GraphTopology::star(n)))
        }
        "crossbar" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad crossbar size '{rest}'"))?;
            routed(Box::new(GraphTopology::complete(n)))
        }
        "fattree" => {
            let (a, l) = rest
                .split_once(':')
                .ok_or_else(|| format!("fattree spec is fattree:ARITY:LEVELS, got '{rest}'"))?;
            let arity: usize = a.parse().map_err(|_| "bad fattree arity".to_string())?;
            let levels: u32 = l.parse().map_err(|_| "bad fattree levels".to_string())?;
            Ok(ParsedTopology::MetricOnly(Box::new(FatTree::new(
                arity, levels,
            ))))
        }
        "dragonfly" => {
            let (g, a) = rest.split_once(':').ok_or_else(|| {
                format!("dragonfly spec is dragonfly:GROUPS:ROUTERS, got '{rest}'")
            })?;
            let groups: usize = g
                .parse()
                .map_err(|_| "bad dragonfly group count".to_string())?;
            let routers: usize = a
                .parse()
                .map_err(|_| "bad dragonfly routers-per-group".to_string())?;
            if groups == 0 || routers == 0 {
                return Err(format!("dragonfly needs positive sizes, got '{rest}'"));
            }
            routed(Box::new(Dragonfly::new(groups, routers)))
        }
        other => Err(format!(
            "unknown topology kind '{other}' \
             (try torus/mesh/hypercube/ring/star/crossbar/fattree/dragonfly)"
        )),
    }
}

/// Parse a workload pattern spec into a task graph. `bytes` scales the
/// per-message volume; `seed` feeds the random families.
pub fn parse_pattern(spec: &str, bytes: f64, seed: u64) -> Result<TaskGraph, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "stencil2d" | "pstencil2d" => {
            let d = parse_dims(rest)?;
            if d.len() != 2 {
                return Err(format!("{kind} needs WxH, got '{rest}'"));
            }
            Ok(gen::stencil2d(
                d[0],
                d[1],
                2.0 * bytes,
                kind == "pstencil2d",
            ))
        }
        "stencil3d" | "pstencil3d" => {
            let d = parse_dims(rest)?;
            if d.len() != 3 {
                return Err(format!("{kind} needs XxYxZ, got '{rest}'"));
            }
            Ok(gen::stencil3d(
                d[0],
                d[1],
                d[2],
                2.0 * bytes,
                kind == "pstencil3d",
            ))
        }
        "leanmd" => {
            let p: usize = rest
                .parse()
                .map_err(|_| format!("bad leanmd size '{rest}'"))?;
            Ok(gen::leanmd(
                p,
                &gen::LeanMdConfig {
                    coord_bytes: bytes,
                    seed,
                    ..Default::default()
                },
            ))
        }
        "ring" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad ring size '{rest}'"))?;
            Ok(gen::ring(n, bytes))
        }
        "all2all" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad all2all size '{rest}'"))?;
            Ok(gen::all_to_all(n, bytes))
        }
        "butterfly" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad butterfly size '{rest}'"))?;
            Ok(gen::butterfly(n, bytes))
        }
        "transpose" => {
            let s: usize = rest
                .parse()
                .map_err(|_| format!("bad transpose side '{rest}'"))?;
            Ok(gen::transpose(s, bytes))
        }
        "sweep2d" => {
            let d = parse_dims(rest)?;
            if d.len() != 2 {
                return Err(format!("sweep2d needs WxH, got '{rest}'"));
            }
            Ok(gen::sweep2d(d[0], d[1], bytes))
        }
        "tree" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad tree size '{rest}'"))?;
            Ok(gen::reduction_tree(n, bytes))
        }
        "random" => {
            let (n, deg) = rest
                .split_once(':')
                .ok_or_else(|| format!("random spec is random:N:AVGDEG, got '{rest}'"))?;
            let n: usize = n.parse().map_err(|_| "bad random size".to_string())?;
            let deg: f64 = deg.parse().map_err(|_| "bad random degree".to_string())?;
            Ok(gen::random_graph(n, deg, 0.5 * bytes, 1.5 * bytes, seed))
        }
        other => Err(format!("unknown pattern kind '{other}'")),
    }
}

/// Parse a `--threads` spec: `auto` (detect, overridable via the
/// `TOPOMAP_THREADS` environment variable) or a fixed positive count.
/// Every mapper produces the same result for every setting; threads only
/// change how fast it is computed.
pub fn parse_threads(spec: &str) -> Result<Parallelism, String> {
    match spec {
        "auto" => Ok(Parallelism::default()),
        n => {
            let n: usize = n
                .parse()
                .map_err(|_| format!("bad thread count '{n}' (want auto or N>=1)"))?;
            if n == 0 {
                return Err("bad thread count '0' (want auto or N>=1)".into());
            }
            Ok(Parallelism::fixed(n))
        }
    }
}

/// The reusable product of hierarchy-spec parsing: the validated
/// [`Hierarchy`] plus the machine-specific block layout (torus/mesh
/// machines get a factored `pe_order`; other machines use the identity
/// layout). Deriving this costs an O(p·levels) factorization plus, for
/// identity layouts, O(p) distance probes — the mapping server caches it
/// keyed by the (topology, hierarchy, dist) spec fingerprint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierPlan {
    pub hier: Hierarchy,
    /// Block layout for grid machines; `None` = identity layout.
    pub pe_order: Option<Vec<NodeId>>,
}

/// Derive a [`HierPlan`] from `--hierarchy H` / `--hier-dist D` specs
/// (`H` like `4:8:16`, innermost level first; omitted = auto-chosen
/// arities for the machine size). Torus/mesh machines get the block
/// layout from [`Hierarchy::factor_torus`]; any other machine uses the
/// identity layout, with level distances derived from its metric
/// ([`Hierarchy::identity_over`]) unless `dist_spec` pins them.
pub fn parse_hier_plan(
    topo_spec: &str,
    topo: &dyn Topology,
    hier_spec: Option<&str>,
    dist_spec: Option<&str>,
) -> Result<HierPlan, String> {
    let arities = match hier_spec {
        Some(h) => Hierarchy::parse_arities(h)?,
        None => auto_arities(topo.num_nodes()),
    };
    if let Some(i) = arities.iter().position(|&a| a == 0) {
        return Err(format!(
            "hierarchy level {} has zero children (every level must be >= 1)",
            i + 1
        ));
    }
    let (kind, rest) = topo_spec.split_once(':').unwrap_or((topo_spec, ""));
    if kind == "torus" || kind == "mesh" {
        let grid = if kind == "torus" {
            Torus::torus(&parse_dims(rest)?)
        } else {
            Torus::mesh(&parse_dims(rest)?)
        };
        let (hier, pe_order) = Hierarchy::factor_torus(&grid, &arities)?;
        let hier = match dist_spec {
            Some(d) => Hierarchy::try_new(arities, Hierarchy::parse_dists(d)?)?,
            None => hier,
        };
        Ok(HierPlan {
            hier,
            pe_order: Some(pe_order),
        })
    } else {
        let hier = match dist_spec {
            Some(d) => {
                let h = Hierarchy::try_new(arities, Hierarchy::parse_dists(d)?)?;
                if h.num_nodes() != topo.num_nodes() {
                    return Err(format!(
                        "hierarchy covers {} processors but the machine has {}",
                        h.num_nodes(),
                        topo.num_nodes()
                    ));
                }
                h
            }
            None => Hierarchy::identity_over(topo, &arities)?,
        };
        Ok(HierPlan {
            hier,
            pe_order: None,
        })
    }
}

/// Instantiate the hierarchical mapper from a (possibly cached) plan.
pub fn hier_mapper_from_plan(plan: &HierPlan, par: Parallelism) -> HierMapper {
    let mapper = match &plan.pe_order {
        Some(order) => HierMapper::with_layout(plan.hier.clone(), order.clone()),
        None => HierMapper::new(plan.hier.clone()),
    };
    mapper.with_parallelism(par)
}

/// Build a [`HierMapper`] from hierarchy specs: [`parse_hier_plan`] +
/// [`hier_mapper_from_plan`] in one call (the CLI path; the server
/// splits them to cache the plan).
pub fn parse_hier_mapper(
    topo_spec: &str,
    topo: &dyn Topology,
    hier_spec: Option<&str>,
    dist_spec: Option<&str>,
    par: Parallelism,
) -> Result<Box<dyn Mapper>, String> {
    let plan = parse_hier_plan(topo_spec, topo, hier_spec, dist_spec)?;
    Ok(Box::new(hier_mapper_from_plan(&plan, par)))
}

/// Resolve a mapper spec. `par` configures the deterministic parallel
/// execution layer for the mappers that support it.
pub fn parse_mapper(spec: &str, seed: u64, par: Parallelism) -> Result<Box<dyn Mapper>, String> {
    match spec {
        "random" => Ok(Box::new(RandomMap::new(seed))),
        "topolb" => Ok(Box::new(TopoLb {
            par,
            ..TopoLb::default()
        })),
        "topolb-first" => Ok(Box::new(TopoLb::with_parallelism(
            EstimationOrder::First,
            par,
        ))),
        "topolb-third" => Ok(Box::new(TopoLb::with_parallelism(
            EstimationOrder::Third,
            par,
        ))),
        "topocentlb" => Ok(Box::new(TopoCentLb)),
        "refine" => Ok(Box::new(RefineTopoLb::with_parallelism(
            TopoLb {
                par,
                ..TopoLb::default()
            },
            par,
        ))),
        "identity" => Ok(Box::new(IdentityMap)),
        "linear" => Ok(Box::new(LinearOrderMap::bfs())),
        "anneal" => Ok(Box::new(SimulatedAnnealingMap {
            par,
            ..SimulatedAnnealingMap::new(seed)
        })),
        "genetic" => Ok(Box::new(GeneticMap {
            par,
            ..GeneticMap::new(seed)
        })),
        "sfc" => Ok(Box::new(SfcMap::with_parallelism(Curve::Hilbert, par))),
        "sfc-morton" => Ok(Box::new(SfcMap::with_parallelism(Curve::Morton, par))),
        "rcb" => Ok(Box::new(RcbMap::with_parallelism(par))),
        other => Err(format!(
            "unknown mapper '{other}' (try random/topolb/topolb-first/topolb-third/\
             topocentlb/refine/identity/linear/anneal/genetic/sfc/sfc-morton/rcb)"
        )),
    }
}

/// Resolve a mapper spec with an optional warm-start: `--init I` turns
/// `refine` into a refinement of mapper `I`'s output instead of the
/// default cold TopoLB start (the near-linear geometric mappers make
/// good inits: same final quality, far fewer accepted passes). Only the
/// `refine` spec accepts an init.
pub fn parse_mapper_with_init(
    spec: &str,
    init: Option<&str>,
    seed: u64,
    par: Parallelism,
) -> Result<Box<dyn Mapper>, String> {
    match init {
        None => parse_mapper(spec, seed, par),
        Some(init_spec) => {
            if spec != "refine" {
                return Err(format!(
                    "--init only applies to the 'refine' mapper (got '{spec}')"
                ));
            }
            let inner = parse_mapper(init_spec, seed, par)
                .map_err(|e| format!("bad --init mapper: {e}"))?;
            Ok(Box::new(RefineTopoLb::with_parallelism(inner, par)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_specs_parse() {
        for (spec, n) in [
            ("torus:4x4", 16),
            ("mesh:2x3x4", 24),
            ("hypercube:5", 32),
            ("ring:7", 7),
            ("star:5", 5),
            ("crossbar:6", 6),
            ("fattree:2:3", 8),
            ("dragonfly:4:8", 32),
        ] {
            let t = parse_topology(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(t.as_topology().num_nodes(), n, "{spec}");
        }
    }

    #[test]
    fn fattree_is_metric_only() {
        let t = parse_topology("fattree:4:2").unwrap();
        assert!(t.as_routed().is_err());
        assert!(parse_topology("torus:4x4").unwrap().as_routed().is_ok());
        assert!(parse_topology("dragonfly:3:4").unwrap().as_routed().is_ok());
    }

    #[test]
    fn bad_topology_specs_rejected() {
        for spec in [
            "torus:0x4",
            "torus:",
            "nope:3",
            "hypercube:x",
            "fattree:4",
            "dragonfly:4",
            "dragonfly:0:8",
            "dragonfly:4:x",
        ] {
            assert!(parse_topology(spec).is_err(), "{spec} should fail");
        }
    }

    #[test]
    fn pattern_specs_parse() {
        for (spec, n) in [
            ("stencil2d:4x4", 16),
            ("pstencil2d:4x4", 16),
            ("stencil3d:2x2x2", 8),
            ("ring:9", 9),
            ("all2all:5", 5),
            ("butterfly:8", 8),
            ("transpose:3", 9),
            ("sweep2d:3x3", 9),
            ("tree:10", 10),
            ("random:20:3", 20),
        ] {
            let g = parse_pattern(spec, 1000.0, 1).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(g.num_tasks(), n, "{spec}");
        }
        let md = parse_pattern("leanmd:8", 1000.0, 1).unwrap();
        assert_eq!(md.num_tasks(), 3240 + 8);
    }

    #[test]
    fn periodic_vs_open_stencil_differ() {
        let open = parse_pattern("stencil2d:4x4", 1.0, 0).unwrap();
        let per = parse_pattern("pstencil2d:4x4", 1.0, 0).unwrap();
        assert!(per.num_edges() > open.num_edges());
    }

    #[test]
    fn mapper_specs_parse() {
        for spec in [
            "random",
            "topolb",
            "topolb-first",
            "topolb-third",
            "topocentlb",
            "refine",
            "identity",
            "linear",
            "anneal",
            "genetic",
            "sfc",
            "sfc-morton",
            "rcb",
        ] {
            assert!(
                parse_mapper(spec, 1, Parallelism::default()).is_ok(),
                "{spec}"
            );
        }
        assert!(parse_mapper("bogus", 1, Parallelism::default()).is_err());
    }

    #[test]
    fn init_specs_wrap_refine() {
        let par = Parallelism::default();
        // Warm-started refine names the init mapper.
        let m = parse_mapper_with_init("refine", Some("sfc"), 1, par).unwrap();
        assert_eq!(m.name(), "SFC(Hilbert)+Refine");
        let m = parse_mapper_with_init("refine", Some("rcb"), 1, par).unwrap();
        assert_eq!(m.name(), "RCB+Refine");
        // No init = the plain spec path.
        let m = parse_mapper_with_init("refine", None, 1, par).unwrap();
        assert_eq!(m.name(), "TopoLB+Refine");
        // Init only composes with refine; bad inits are reported.
        match parse_mapper_with_init("topolb", Some("sfc"), 1, par) {
            Err(e) => assert!(e.contains("refine"), "{e}"),
            Ok(_) => panic!("init on non-refine should fail"),
        }
        match parse_mapper_with_init("refine", Some("bogus"), 1, par) {
            Err(e) => assert!(e.contains("--init"), "{e}"),
            Ok(_) => panic!("bogus init should fail"),
        }
    }

    #[test]
    fn hier_mapper_specs_parse() {
        let par = Parallelism::default();
        // Torus gets a factored block layout; auto arities when omitted.
        let torus = parse_topology("torus:8x8").unwrap();
        for h in [Some("4:4:4"), Some("16:4"), None] {
            let m = parse_hier_mapper("torus:8x8", torus.as_topology(), h, None, par)
                .unwrap_or_else(|e| panic!("{h:?}: {e}"));
            assert!(m.name().starts_with("HierMapper("), "{}", m.name());
        }
        // Fat-trees (and any non-grid machine) take the identity layout.
        let ft = parse_topology("fattree:2:3").unwrap();
        let m =
            parse_hier_mapper("fattree:2:3", ft.as_topology(), Some("2:2:2"), None, par).unwrap();
        assert_eq!(m.name(), "HierMapper(2:2:2)");
        // Explicit distance ladder.
        let m = parse_hier_mapper(
            "fattree:2:3",
            ft.as_topology(),
            Some("2:2:2"),
            Some("1:10:100"),
            par,
        )
        .unwrap();
        assert_eq!(m.name(), "HierMapper(2:2:2)");
    }

    #[test]
    fn hier_plan_layouts_split_by_machine_kind() {
        let torus = parse_topology("torus:8x8").unwrap();
        let plan = parse_hier_plan("torus:8x8", torus.as_topology(), Some("4:4:4"), None).unwrap();
        assert!(plan.pe_order.is_some(), "grid machines get a block layout");
        assert_eq!(plan.hier.num_nodes(), 64);

        let ft = parse_topology("fattree:2:3").unwrap();
        let plan = parse_hier_plan("fattree:2:3", ft.as_topology(), Some("2:2:2"), None).unwrap();
        assert!(plan.pe_order.is_none(), "non-grid machines use identity");
    }

    #[test]
    fn malformed_hierarchy_specs_rejected() {
        let par = Parallelism::default();
        let torus = parse_topology("torus:8x8").unwrap();
        for (h, d, needle) in [
            // Zero-arity level.
            ("4:0:8", None, "zero children"),
            // Trailing colon.
            ("4:8:", None, "empty level"),
            // Garbage level.
            ("4:x:8", None, "not a non-negative integer"),
            // Product does not cover the machine.
            ("4:4", None, "64"),
            // Distance count mismatch.
            ("4:4:4", Some("1:10"), "distances"),
            // Decreasing distances.
            ("4:4:4", Some("10:5:1"), "non-decreasing"),
        ] {
            let err = match parse_hier_mapper("torus:8x8", torus.as_topology(), Some(h), d, par) {
                Ok(_) => panic!("H={h} D={d:?} should fail"),
                Err(e) => e,
            };
            assert!(err.contains(needle), "H={h} D={d:?}: {err}");
        }
    }

    #[test]
    fn threads_specs_parse() {
        assert!(parse_threads("auto").is_ok());
        assert!(parse_threads("1").is_ok());
        assert!(parse_threads("8").is_ok());
        for bad in ["0", "-1", "many", ""] {
            assert!(parse_threads(bad).is_err(), "'{bad}' should fail");
        }
    }
}
