//! Cached topology distance oracles and hierarchy factorizations.
//!
//! Every map request names its machine by spec string. Parsing the spec
//! is cheap, but the mapping kernels then issue O(p²)–O(p³) distance
//! queries, and a hierarchy request additionally pays an O(p·levels)
//! factorization. [`OracleCaches`] amortizes both across requests:
//!
//! * a [`DistOracle`] — a self-contained dense all-pairs distance matrix
//!   (the standalone sibling of `topomap_topology::CachedTopology`, which
//!   wraps a concrete `T`; the server needs an owned, type-erased value
//!   it can share between worker threads) — keyed by the topology-spec
//!   fingerprint;
//! * a [`HierPlan`] (validated hierarchy + machine block layout) keyed by
//!   the (topology, hierarchy, dist) spec fingerprint.
//!
//! Both caches hand out `Arc`s, so a hit costs a pointer bump while the
//! matrix itself is shared between all in-flight requests.

use std::sync::{Arc, Mutex};

use topomap_topology::{NodeId, Topology};

use crate::cache::{Fingerprint, LruCache};
use crate::specs::{parse_hier_plan, parse_topology, HierPlan};

/// A self-contained all-pairs distance oracle over `p` processors.
///
/// Implements [`Topology`] by table lookup; `distance`,
/// `sum_distance_from`, `diameter`, and `distances_into` are all O(1) or
/// a straight row gather, bit-identical to the topology it was built
/// from (the `Topology` contract requires overrides to agree exactly
/// with the defaults, so mapping through the oracle yields the same
/// result as mapping through the original machine).
#[derive(Debug, Clone)]
pub struct DistOracle {
    name: String,
    n: usize,
    dist: Vec<u32>,
    row_sums: Vec<u64>,
    diameter: u32,
    /// Per-node physical coordinates, captured only when every node of
    /// the source machine reports them (geometric mappers need the full
    /// point set or none at all).
    coords: Option<Vec<[f64; 3]>>,
}

impl DistOracle {
    /// Precompute the matrix with O(p²) `inner.distance` calls.
    pub fn build(inner: &dyn Topology) -> Self {
        let n = inner.num_nodes();
        let mut dist = vec![0u32; n * n];
        let mut row_sums = vec![0u64; n];
        let mut diameter = 0u32;
        for a in 0..n {
            let mut sum = 0u64;
            for b in 0..n {
                let d = inner.distance(a, b);
                dist[a * n + b] = d;
                sum += d as u64;
                diameter = diameter.max(d);
            }
            row_sums[a] = sum;
        }
        let coords = (0..n).map(|v| inner.node_coords(v)).collect();
        DistOracle {
            name: inner.name(),
            n,
            dist,
            row_sums,
            diameter,
            coords,
        }
    }

    /// Memory held by the oracle, in bytes.
    pub fn matrix_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<u32>()
            + self.row_sums.len() * std::mem::size_of::<u64>()
    }
}

impl Topology for DistOracle {
    fn num_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist[a * self.n + b]
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn diameter(&self) -> u32 {
        self.diameter
    }

    fn sum_distance_from(&self, node: NodeId) -> u64 {
        self.row_sums[node]
    }

    fn distances_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) {
        let row = &self.dist[from * self.n..(from + 1) * self.n];
        out.clear();
        out.extend(targets.iter().map(|&t| row[t]));
    }

    fn node_coords(&self, node: NodeId) -> Option<[f64; 3]> {
        self.coords.as_ref().map(|cs| cs[node])
    }
}

/// Cache-key derivation (documented in DESIGN.md §9): fingerprints are
/// FNV-1a over sorted, length-prefixed `name=value` pairs of the
/// *trimmed* spec strings, so key identity tracks spec identity — not
/// field order, not surrounding whitespace.
pub fn oracle_key(topo_spec: &str) -> Fingerprint {
    Fingerprint::of_pairs(&[("kind", "oracle"), ("topology", topo_spec.trim())])
}

/// Cache key for a hierarchy plan. Omitted specs hash as their semantic
/// defaults (`auto` arities, `derived` distances) — distinct from any
/// explicit spelling, which keeps an explicit `--hierarchy 4:4:4` from
/// aliasing the auto-chosen plan even when they happen to coincide.
pub fn hier_plan_key(
    topo_spec: &str,
    hier_spec: Option<&str>,
    dist_spec: Option<&str>,
) -> Fingerprint {
    Fingerprint::of_pairs(&[
        ("kind", "hier-plan"),
        ("topology", topo_spec.trim()),
        ("hierarchy", hier_spec.map_or("\u{0}auto", str::trim)),
        ("dist", dist_spec.map_or("\u{0}derived", str::trim)),
    ])
}

/// The server-side cache pair with interior locking. Lock scope covers
/// the build, so concurrent requests for the same cold key build once
/// and the rest hit.
pub struct OracleCaches {
    oracles: Mutex<LruCache<Fingerprint, Arc<DistOracle>>>,
    plans: Mutex<LruCache<Fingerprint, Arc<HierPlan>>>,
}

/// Hit/miss counters for both caches, as sampled by `Stats` requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCounters {
    pub oracle_hits: u64,
    pub oracle_misses: u64,
    pub hier_hits: u64,
    pub hier_misses: u64,
}

impl OracleCaches {
    /// `cap` bounds each cache independently (a serve deployment sees a
    /// handful of machine shapes; default 32 is generous).
    pub fn new(cap: usize) -> Self {
        OracleCaches {
            oracles: Mutex::new(LruCache::new(cap)),
            plans: Mutex::new(LruCache::new(cap)),
        }
    }

    /// Fetch (or parse + build) the distance oracle for a topology spec.
    /// Returns the oracle and whether it was a cache hit. A malformed
    /// spec caches nothing and fails with the parser's message.
    pub fn oracle(&self, topo_spec: &str) -> Result<(Arc<DistOracle>, bool), String> {
        let key = oracle_key(topo_spec);
        self.oracles
            .lock()
            .unwrap()
            .try_get_or_insert_with(key, || {
                let parsed = parse_topology(topo_spec.trim())?;
                Ok(Arc::new(DistOracle::build(parsed.as_topology())))
            })
    }

    /// Fetch (or derive) the hierarchy plan for a (topology, hierarchy,
    /// dist) spec triple, factoring over the given oracle's metric.
    pub fn hier_plan(
        &self,
        topo_spec: &str,
        oracle: &DistOracle,
        hier_spec: Option<&str>,
        dist_spec: Option<&str>,
    ) -> Result<(Arc<HierPlan>, bool), String> {
        let key = hier_plan_key(topo_spec, hier_spec, dist_spec);
        self.plans.lock().unwrap().try_get_or_insert_with(key, || {
            let plan = parse_hier_plan(
                topo_spec.trim(),
                oracle,
                hier_spec.map(str::trim),
                dist_spec.map(str::trim),
            )?;
            Ok(Arc::new(plan))
        })
    }

    /// Snapshot the hit/miss counters of both caches.
    pub fn counters(&self) -> CacheCounters {
        let o = self.oracles.lock().unwrap();
        let p = self.plans.lock().unwrap();
        CacheCounters {
            oracle_hits: o.hits(),
            oracle_misses: o.misses(),
            hier_hits: p.hits(),
            hier_misses: p.misses(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_matches_source_topology() {
        let parsed = parse_topology("torus:4x4").unwrap();
        let t = parsed.as_topology();
        let o = DistOracle::build(t);
        assert_eq!(o.num_nodes(), 16);
        assert_eq!(o.name(), t.name());
        assert_eq!(o.diameter(), t.diameter());
        for a in 0..16 {
            assert_eq!(o.sum_distance_from(a), t.sum_distance_from(a));
            for b in 0..16 {
                assert_eq!(o.distance(a, b), t.distance(a, b), "d({a},{b})");
            }
        }
        assert_eq!(o.matrix_bytes(), 16 * 16 * 4 + 16 * 8);
        // Geometry must survive the oracle: SFC/RCB mappers read node
        // coordinates through the same `Topology` handle.
        for a in 0..16 {
            assert_eq!(o.node_coords(a), t.node_coords(a), "coords({a})");
        }
        assert!(o.node_coords(5).is_some());
    }

    #[test]
    fn oracle_reports_no_coords_when_machine_has_none() {
        let parsed = parse_topology("fattree:2:3").unwrap();
        let o = DistOracle::build(parsed.as_topology());
        assert_eq!(o.node_coords(0), None);
    }

    #[test]
    fn caches_hit_on_repeat_and_share_storage() {
        let caches = OracleCaches::new(8);
        let (o1, hit1) = caches.oracle("fattree:2:3").unwrap();
        let (o2, hit2) = caches.oracle("fattree:2:3").unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&o1, &o2), "hit must share the same matrix");
        // Whitespace-insensitive keying.
        let (_, hit3) = caches.oracle("  fattree:2:3 ").unwrap();
        assert!(hit3);
        let c = caches.counters();
        assert_eq!((c.oracle_hits, c.oracle_misses), (2, 1));
    }

    #[test]
    fn bad_specs_fail_loud_and_cache_nothing() {
        let caches = OracleCaches::new(8);
        assert!(caches.oracle("nope:3").is_err());
        assert!(caches.oracle("nope:3").is_err(), "still an error on retry");
        let c = caches.counters();
        assert_eq!(c.oracle_hits, 0);

        let (o, _) = caches.oracle("torus:8x8").unwrap();
        let err = caches
            .hier_plan("torus:8x8", &o, Some("4:0:8"), None)
            .unwrap_err();
        assert!(err.contains("zero children"), "{err}");
    }

    #[test]
    fn hier_plans_key_on_all_three_specs() {
        let caches = OracleCaches::new(8);
        let (o, _) = caches.oracle("torus:8x8").unwrap();
        let (p1, hit1) = caches
            .hier_plan("torus:8x8", &o, Some("4:4:4"), None)
            .unwrap();
        let (p2, hit2) = caches
            .hier_plan("torus:8x8", &o, Some("4:4:4"), None)
            .unwrap();
        assert!(!hit1 && hit2);
        assert!(Arc::ptr_eq(&p1, &p2));
        // Auto arities are a distinct key even if they coincide in value.
        let (_, hit3) = caches.hier_plan("torus:8x8", &o, None, None).unwrap();
        assert!(!hit3);
        let (_, hit4) = caches
            .hier_plan("torus:8x8", &o, Some("4:4:4"), Some("1:2:3"))
            .unwrap();
        assert!(!hit4, "explicit dist ladder is a different plan");
    }
}
