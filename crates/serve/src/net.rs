//! Transport abstraction: one `Stream` type over TCP and (on Unix)
//! local-domain sockets, so the framing, server, and client code are
//! written once.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

#[cfg(unix)]
use std::os::unix::net::UnixStream;

/// A connected byte stream (TCP or unix-domain).
#[derive(Debug)]
pub enum Stream {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Set (or clear) the read timeout; used by the server to poll its
    /// stop flag between frames.
    pub fn set_read_timeout(&self, dur: Option<Duration>) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(dur),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(dur),
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}
