//! Minimal blocking client for the mapping server.
//!
//! One `Client` owns one connection and speaks strict request/response:
//! write a frame, read a frame. It exists so tools (the bench driver,
//! `examples/serve_client.rs`, tests) do not re-implement framing.

use std::net::{TcpStream, ToSocketAddrs};

use crate::net::Stream;
use crate::proto::{
    decode_response, encode_request, read_frame, write_frame, FrameError, MapRequest, Request,
    Response, ServerStats,
};

#[cfg(unix)]
use std::os::unix::net::UnixStream;
#[cfg(unix)]
use std::path::Path;

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    Io(std::io::Error),
    Frame(FrameError),
    /// The server closed the connection instead of answering.
    ServerClosed,
    /// The server answered, but with a variant the call cannot use
    /// (e.g. `Pong` to a `Stats` request).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O error: {e}"),
            ClientError::Frame(e) => write!(f, "client frame error: {e}"),
            ClientError::ServerClosed => write!(f, "server closed the connection"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// A blocking connection to a mapping server.
pub struct Client {
    stream: Stream,
}

impl Client {
    /// Connect over TCP (`host:port`).
    pub fn connect_tcp(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        Ok(Client {
            stream: Stream::Tcp(s),
        })
    }

    /// Connect over a unix-domain socket.
    #[cfg(unix)]
    pub fn connect_unix(path: impl AsRef<Path>) -> std::io::Result<Client> {
        Ok(Client {
            stream: Stream::Unix(UnixStream::connect(path)?),
        })
    }

    /// Send one request and wait for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &encode_request(req))?;
        match read_frame(&mut self.stream)? {
            Some(payload) => Ok(decode_response(&payload)?),
            None => Err(ClientError::ServerClosed),
        }
    }

    /// Liveness check; returns the server's protocol version.
    pub fn ping(&mut self) -> Result<u32, ClientError> {
        match self.request(&Request::Ping)? {
            Response::Pong { version, .. } => Ok(version),
            other => Err(ClientError::Protocol(format!(
                "expected Pong, got {other:?}"
            ))),
        }
    }

    /// Fetch the server's counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.request(&Request::Stats)? {
            Response::StatsOk { stats } => Ok(stats),
            other => Err(ClientError::Protocol(format!(
                "expected StatsOk, got {other:?}"
            ))),
        }
    }

    /// Submit one mapping job. The response may be `MapOk`, `Busy`, or
    /// `Error` — backpressure and failures are data, not panics.
    pub fn map(&mut self, req: MapRequest) -> Result<Response, ClientError> {
        self.request(&Request::Map { req })
    }

    /// Ask the server to drain and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(ClientError::Protocol(format!(
                "expected ShutdownAck, got {other:?}"
            ))),
        }
    }
}
