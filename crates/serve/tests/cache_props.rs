//! Property tests for the LRU cache (checked against a naive
//! recency-list model) and the spec fingerprint.

use proptest::prelude::*;
use topomap_serve::cache::{Fingerprint, LruCache};

/// Reference model: a plain vector ordered least-recent first.
struct Model {
    cap: usize,
    entries: Vec<(u32, u32)>,
}

impl Model {
    fn new(cap: usize) -> Self {
        Model {
            cap,
            entries: Vec::new(),
        }
    }

    fn get(&mut self, k: u32) -> Option<u32> {
        let pos = self.entries.iter().position(|&(key, _)| key == k)?;
        let e = self.entries.remove(pos);
        self.entries.push(e);
        Some(e.1)
    }

    fn insert(&mut self, k: u32, v: u32) {
        if self.cap == 0 {
            return;
        }
        if let Some(pos) = self.entries.iter().position(|&(key, _)| key == k) {
            self.entries.remove(pos);
        } else if self.entries.len() >= self.cap {
            self.entries.remove(0); // least-recently-used
        }
        self.entries.push((k, v));
    }

    /// Most-recently-used first, like `LruCache::keys_by_recency`.
    fn keys_by_recency(&self) -> Vec<u32> {
        self.entries.iter().rev().map(|&(k, _)| k).collect()
    }
}

/// One randomized operation: `get` (false) or `insert` (true).
fn arb_ops() -> impl Strategy<Value = Vec<(bool, u32, u32)>> {
    proptest::collection::vec((any::<bool>(), 0u32..8, any::<u32>()), 1..80)
}

/// Deterministic pseudo-random permutation of `0..n` (the vendored
/// proptest has no shuffle strategy): repeated LCG-seeded swaps.
fn permute<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut out = items.to_vec();
    let mut s = seed | 1;
    for i in (1..out.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        out.swap(i, (s >> 33) as usize % (i + 1));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every interleaving of gets and inserts leaves the cache exactly
    /// where the reference model says: same lookup results, same
    /// eviction victims, same recency order, never above capacity.
    #[test]
    fn lru_matches_reference_model(cap in 1usize..5, ops in arb_ops()) {
        let mut cache: LruCache<u32, u32> = LruCache::new(cap);
        let mut model = Model::new(cap);
        let (mut hits, mut misses) = (0u64, 0u64);
        for (is_insert, k, v) in ops {
            if is_insert {
                cache.insert(k, v);
                model.insert(k, v);
            } else {
                let got = cache.get(&k);
                prop_assert_eq!(got, model.get(k), "get({})", k);
                if got.is_some() { hits += 1 } else { misses += 1 }
            }
            prop_assert!(cache.len() <= cap, "over capacity");
            prop_assert_eq!(cache.len(), model.entries.len());
            prop_assert_eq!(cache.keys_by_recency(), model.keys_by_recency());
        }
        prop_assert_eq!((cache.hits(), cache.misses()), (hits, misses));
    }

    /// A `get` refreshes recency: afterwards the key survives exactly
    /// `cap - 1` inserts of fresh keys.
    #[test]
    fn get_refreshes_recency(cap in 2usize..6, probe in 0u32..4) {
        let mut cache: LruCache<u32, u32> = LruCache::new(cap);
        for k in 0..cap as u32 {
            cache.insert(k, k);
        }
        let probe = probe % cap as u32;
        prop_assert!(cache.get(&probe).is_some());
        // cap-1 fresh keys evict everything *except* the refreshed one.
        for k in 0..(cap - 1) as u32 {
            cache.insert(100 + k, 0);
        }
        prop_assert!(cache.get(&probe).is_some(), "refreshed key was evicted");
    }

    /// Fingerprints are invariant under any reordering of the pairs and
    /// sensitive to any single value change.
    #[test]
    fn fingerprint_stable_across_field_reordering(
        fields in proptest::collection::vec((0u32..26, 0u32..1000), 1..8),
        seed in any::<u64>(),
        victim in any::<usize>(),
    ) {
        // Synthesize distinct field names a..z with numeric values.
        let named: Vec<(String, String)> = fields
            .iter()
            .enumerate()
            .map(|(i, &(c, v))| {
                (format!("{}{}", (b'a' + c as u8) as char, i), v.to_string())
            })
            .collect();
        let as_pairs = |v: &[(String, String)]| -> Fingerprint {
            let borrowed: Vec<(&str, &str)> =
                v.iter().map(|(a, b)| (a.as_str(), b.as_str())).collect();
            Fingerprint::of_pairs(&borrowed)
        };
        let original = as_pairs(&named);
        prop_assert_eq!(as_pairs(&permute(&named, seed)), original);
        // Rotations are reorderings too.
        let mut rotated = named.clone();
        rotated.rotate_left(seed as usize % named.len().max(1));
        prop_assert_eq!(as_pairs(&rotated), original);
        // Changing one value changes the fingerprint.
        let mut tweaked = named.clone();
        let vi = victim % tweaked.len();
        tweaked[vi].1.push('x');
        prop_assert_ne!(as_pairs(&tweaked), original);
    }
}
