//! Wire-format property tests: every request/response variant survives
//! an encode → frame → unframe → decode round trip, and malformed
//! frames (truncated, oversized, garbage) are rejected loudly.

use proptest::prelude::*;
use std::io::Cursor;
use topomap_lb::LbDatabase;
use topomap_serve::proto::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    ErrorKind, FrameError, MapRequest, Request, Response, ServerStats, MAX_FRAME_BYTES,
};

const TOPOS: &[&str] = &["torus:8x8", "mesh:4x4", "fattree:2:3", "hypercube:5", ""];
const MAPPERS: &[&str] = &["topolb", "topocentlb", "refine", "hier", "bogus"];
const HIERS: &[Option<&str>] = &[None, Some("4:4:4"), Some("16:4"), Some("2:2")];
const DISTS: &[Option<&str>] = &[None, Some("1:10:100"), Some("1:2")];
const KINDS: &[ErrorKind] = &[
    ErrorKind::BadRequest,
    ErrorKind::BadSpec,
    ErrorKind::BadWorkload,
    ErrorKind::Deadline,
    ErrorKind::ShuttingDown,
    ErrorKind::Internal,
];

fn arb_db() -> proptest::strategy::BoxedStrategy<LbDatabase> {
    (1usize..16)
        .prop_flat_map(|n| {
            (
                Just(n),
                proptest::collection::vec(0.0f64..10.0, n),
                proptest::collection::vec((0usize..n, 0usize..n, 0.5f64..1e6, 1u64..100), 0..30),
            )
        })
        .prop_map(|(n, loads, comm)| {
            let mut db = LbDatabase::new(n);
            for (i, &l) in loads.iter().enumerate() {
                db.record_load(i, l);
            }
            for (a, b, bytes, msgs) in comm {
                db.record_comm(a, b, bytes, msgs);
            }
            db
        })
        .boxed()
}

fn arb_map_request() -> proptest::strategy::BoxedStrategy<MapRequest> {
    (
        (any::<u64>(), 0usize..TOPOS.len(), 0usize..MAPPERS.len()),
        (0usize..HIERS.len(), 0usize..DISTS.len(), any::<u64>()),
        (any::<bool>(), 0u64..5000),
        arb_db(),
    )
        .prop_map(
            |((id, t, m), (h, d, seed), (has_deadline, ms), database)| MapRequest {
                id,
                topology: TOPOS[t].to_string(),
                mapper: MAPPERS[m].to_string(),
                init: None,
                fast_lane: None,
                hierarchy: HIERS[h].map(str::to_string),
                hier_dist: DISTS[d].map(str::to_string),
                seed,
                deadline_ms: has_deadline.then_some(ms),
                database,
            },
        )
        .boxed()
}

fn arb_request() -> proptest::strategy::BoxedStrategy<Request> {
    (0usize..4)
        .prop_flat_map(|k| match k {
            0 => Just(Request::Ping).boxed(),
            1 => Just(Request::Stats).boxed(),
            2 => Just(Request::Shutdown).boxed(),
            _ => arb_map_request()
                .prop_map(|req| Request::Map { req })
                .boxed(),
        })
        .boxed()
}

fn arb_stats() -> proptest::strategy::BoxedStrategy<ServerStats> {
    (
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()),
    )
        .prop_map(
            |((requests, ok, busy, errors), (oh, om, hh, hm))| ServerStats {
                requests,
                ok,
                busy,
                errors,
                oracle_hits: oh,
                oracle_misses: om,
                hier_hits: hh,
                hier_misses: hm,
            },
        )
        .boxed()
}

fn arb_response() -> proptest::strategy::BoxedStrategy<Response> {
    (0usize..6)
        .prop_flat_map(|k| match k {
            0 => (any::<u32>(), 0usize..4)
                .prop_map(|(version, s)| Response::Pong {
                    version,
                    server: format!("srv-{s}"),
                })
                .boxed(),
            1 => arb_stats()
                .prop_map(|stats| Response::StatsOk { stats })
                .boxed(),
            2 => Just(Response::ShutdownAck).boxed(),
            3 => (
                (any::<u64>(), 1usize..64),
                (0.0f64..1e9, 0.0f64..8.0, any::<u64>()),
                (any::<bool>(), any::<bool>(), any::<bool>()),
            )
                .prop_flat_map(|((id, np), (hb, hpb, us), (ohit, has_hier, hhit))| {
                    // An injective prefix mapping: task t on processor t.
                    (
                        Just((id, np, hb, hpb, us, ohit)),
                        Just((has_hier, hhit)),
                        0usize..=np,
                    )
                })
                .prop_map(
                    |((id, np, hb, hpb, us, ohit), (has_hier, hhit), k)| Response::MapOk {
                        id,
                        num_procs: np,
                        proc_of_task: (0..k).collect(),
                        hop_bytes: hb,
                        hops_per_byte: hpb,
                        elapsed_us: us,
                        oracle_cache_hit: ohit,
                        hier_cache_hit: has_hier.then_some(hhit),
                        fast_lane_used: hhit.then_some(ohit),
                    },
                )
                .boxed(),
            4 => (any::<u64>(), 1usize..1000)
                .prop_map(|(id, queue_cap)| Response::Busy { id, queue_cap })
                .boxed(),
            _ => ((any::<u64>(), 0usize..KINDS.len()), 0usize..50)
                .prop_map(|((id, k), msg_len)| Response::Error {
                    id,
                    kind: KINDS[k],
                    message: "e".repeat(msg_len),
                })
                .boxed(),
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn every_request_roundtrips(req in arb_request()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &encode_request(&req)).unwrap();
        let payload = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        prop_assert_eq!(decode_request(&payload).unwrap(), req);
    }

    #[test]
    fn every_response_roundtrips(resp in arb_response()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &encode_response(&resp)).unwrap();
        let payload = read_frame(&mut Cursor::new(&buf)).unwrap().unwrap();
        prop_assert_eq!(decode_response(&payload).unwrap(), resp);
    }

    /// Cutting a valid frame anywhere — inside the prefix or inside the
    /// payload — yields `Truncated` (or a clean EOF at exactly zero
    /// bytes), never a partial message.
    #[test]
    fn truncated_frames_rejected(req in arb_request(), cut_seed in any::<u64>()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &encode_request(&req)).unwrap();
        let cut = (cut_seed as usize) % buf.len(); // strictly short of a full frame
        match read_frame(&mut Cursor::new(&buf[..cut])) {
            Ok(None) => prop_assert_eq!(cut, 0, "clean EOF only before any byte"),
            Err(FrameError::Truncated { expected, got }) => {
                prop_assert!(got < expected, "{got} < {expected}");
            }
            other => return Err(TestCaseError::fail(format!(
                "cut at {cut}: expected Truncated, got {other:?}"
            ))),
        }
    }

    /// Any declared length beyond the cap is refused before allocation,
    /// regardless of what (if anything) follows the prefix.
    #[test]
    fn oversized_frames_rejected(extra in 1u32..1000, body in 0usize..32) {
        let declared = MAX_FRAME_BYTES + extra;
        let mut buf = Vec::new();
        buf.extend_from_slice(&declared.to_be_bytes());
        buf.extend(std::iter::repeat_n(0u8, body));
        match read_frame(&mut Cursor::new(&buf)) {
            Err(FrameError::TooLarge { declared: d, max }) => {
                prop_assert_eq!(d, declared);
                prop_assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => return Err(TestCaseError::fail(format!(
                "expected TooLarge, got {other:?}"
            ))),
        }
    }

    /// Arbitrary bytes never decode into a request by accident — they
    /// either fail or re-encode to a structurally equal value.
    #[test]
    fn decode_is_total_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        match decode_request(&bytes) {
            Err(FrameError::Decode(_)) => {}
            Err(other) => return Err(TestCaseError::fail(format!(
                "unexpected error kind {other:?}"
            ))),
            Ok(req) => {
                // Freak accident of valid JSON: must re-encode losslessly.
                prop_assert_eq!(decode_request(&encode_request(&req)).unwrap(), req);
            }
        }
    }
}
