//! End-to-end server tests: real sockets, concurrent clients, and the
//! contract that served mappings are bit-identical to direct in-process
//! mapper invocations.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use topomap_core::{obs, Parallelism};
use topomap_lb::LbDatabase;
use topomap_serve::client::Client;
use topomap_serve::proto::{ErrorKind, MapRequest, Request, Response};
use topomap_serve::server::{spawn, spawn_ephemeral, Bind, ServeConfig};
use topomap_serve::specs::{
    hier_mapper_from_plan, parse_hier_plan, parse_mapper, parse_pattern, parse_topology,
};

/// A mixed request scenario and its direct (in-process) answer.
#[derive(Clone)]
struct Scenario {
    topology: &'static str,
    mapper: &'static str,
    hierarchy: Option<&'static str>,
    pattern: &'static str,
    seed: u64,
}

const SCENARIOS: &[Scenario] = &[
    Scenario {
        topology: "torus:8x8",
        mapper: "topolb",
        hierarchy: None,
        pattern: "stencil2d:8x8",
        seed: 1,
    },
    Scenario {
        topology: "torus:8x8",
        mapper: "refine",
        hierarchy: None,
        pattern: "pstencil2d:8x8",
        seed: 2,
    },
    Scenario {
        topology: "mesh:10x10",
        mapper: "topocentlb",
        hierarchy: None,
        pattern: "random:100:4",
        seed: 3,
    },
    Scenario {
        topology: "hypercube:5",
        mapper: "topolb",
        hierarchy: None,
        pattern: "all2all:32",
        seed: 4,
    },
    Scenario {
        topology: "torus:8x8",
        mapper: "hier",
        hierarchy: Some("4:4:4"),
        pattern: "butterfly:64",
        seed: 5,
    },
    Scenario {
        topology: "fattree:4:3",
        mapper: "topocentlb",
        hierarchy: None,
        pattern: "transpose:8",
        seed: 6,
    },
];

fn database_for(s: &Scenario) -> LbDatabase {
    let g = parse_pattern(s.pattern, 1024.0, s.seed).unwrap();
    LbDatabase::from_task_graph(&g)
}

fn request_for(s: &Scenario, id: u64) -> MapRequest {
    MapRequest {
        id,
        topology: s.topology.to_string(),
        mapper: s.mapper.to_string(),
        init: None,
        fast_lane: None,
        hierarchy: s.hierarchy.map(str::to_string),
        hier_dist: None,
        seed: s.seed,
        deadline_ms: None,
        database: database_for(s),
    }
}

/// The ground truth: run the same specs directly, in-process, serially
/// — no oracle, no server, `Parallelism::serial()`.
fn direct_mapping(s: &Scenario) -> Vec<usize> {
    let par = Parallelism::serial();
    let parsed = parse_topology(s.topology).unwrap();
    let topo = parsed.as_topology();
    let mapper: Box<dyn topomap_core::Mapper> = if s.mapper == "hier" {
        let plan = parse_hier_plan(s.topology, topo, s.hierarchy, None).unwrap();
        Box::new(hier_mapper_from_plan(&plan, par))
    } else {
        parse_mapper(s.mapper, s.seed, par).unwrap()
    };
    let tasks = database_for(s).to_task_graph();
    mapper.map(&tasks, topo).as_slice().to_vec()
}

#[test]
fn concurrent_clients_get_bit_identical_mappings() {
    let handle = spawn_ephemeral(ServeConfig {
        workers: 4,
        queue_cap: 256,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    let expected: Vec<Vec<usize>> = SCENARIOS.iter().map(direct_mapping).collect();

    let clients: Vec<_> = (0..8)
        .map(|c| {
            let addr = addr.clone();
            let expected = expected.clone();
            thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).unwrap();
                for round in 0..3 {
                    let si = (c + round) % SCENARIOS.len();
                    let id = (c * 100 + round) as u64;
                    match client.map(request_for(&SCENARIOS[si], id)).unwrap() {
                        Response::MapOk {
                            id: rid,
                            proc_of_task,
                            hops_per_byte,
                            ..
                        } => {
                            assert_eq!(rid, id, "response id echoes request id");
                            assert_eq!(
                                proc_of_task, expected[si],
                                "served mapping differs from direct call for {}",
                                SCENARIOS[si].pattern
                            );
                            assert!(hops_per_byte > 0.0);
                        }
                        other => panic!("client {c} round {round}: {other:?}"),
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }

    let stats = handle.join();
    assert_eq!(stats.requests, 24);
    assert_eq!(stats.ok, 24);
    assert_eq!(stats.errors, 0);
    // 6 distinct topologies (one is shared by three scenarios) → at
    // most 5 oracle misses, everything else hits.
    assert!(stats.oracle_misses <= 5, "{stats:?}");
    assert!(stats.oracle_hits >= 19, "{stats:?}");
    assert!(
        stats.hier_hits >= 1,
        "hier plan should be cached: {stats:?}"
    );
}

#[test]
fn zero_capacity_queue_sheds_every_job() {
    let handle = spawn_ephemeral(ServeConfig {
        workers: 1,
        queue_cap: 0,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect_tcp(handle.addr()).unwrap();
    match client.map(request_for(&SCENARIOS[0], 9)).unwrap() {
        Response::Busy { id, queue_cap } => {
            assert_eq!(id, 9);
            assert_eq!(queue_cap, 0);
        }
        other => panic!("expected Busy, got {other:?}"),
    }
    let stats = handle.join();
    assert_eq!(stats.busy, 1);
    assert_eq!(stats.ok, 0);
}

#[test]
fn saturated_queue_answers_busy_not_hang() {
    // 1 worker, queue of 1: with 4 clients resubmitting back-to-back,
    // at any moment at most 2 jobs can be in the system; the rest must
    // be shed with Busy immediately (not queued, not blocked).
    let handle = spawn_ephemeral(ServeConfig {
        workers: 1,
        queue_cap: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();
    let busy_seen = Arc::new(AtomicBool::new(false));

    let clients: Vec<_> = (0..4)
        .map(|c| {
            let addr = addr.clone();
            let busy_seen = Arc::clone(&busy_seen);
            thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).unwrap();
                let mut ok = 0u32;
                for i in 0..30 {
                    if busy_seen.load(Ordering::Relaxed) && ok > 0 {
                        break;
                    }
                    let resp = client
                        .map(request_for(&SCENARIOS[2], (c * 1000 + i) as u64))
                        .unwrap();
                    match resp {
                        Response::MapOk { .. } => ok += 1,
                        Response::Busy { .. } => busy_seen.store(true, Ordering::Relaxed),
                        other => panic!("unexpected {other:?}"),
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().unwrap();
    }
    assert!(
        busy_seen.load(Ordering::Relaxed),
        "4 clients against a 1-deep queue never saw Busy"
    );
    let stats = handle.join();
    assert!(stats.busy >= 1, "{stats:?}");
    assert!(stats.ok >= 1, "{stats:?}");
}

#[test]
fn shutdown_drains_inflight_jobs() {
    let handle = spawn_ephemeral(ServeConfig {
        workers: 1,
        queue_cap: 16,
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = handle.addr().to_string();

    // Client 1 submits a heavy job, then the server is told to shut
    // down while that job is queued or running.
    let heavy = Scenario {
        topology: "mesh:12x12",
        mapper: "topolb",
        hierarchy: None,
        pattern: "random:140:4",
        seed: 11,
    };
    let inflight = {
        let addr = addr.clone();
        let heavy = heavy.clone();
        thread::spawn(move || {
            let mut client = Client::connect_tcp(&addr).unwrap();
            client.map(request_for(&heavy, 501)).unwrap()
        })
    };
    // Wait until the job is inside the server (submitted, no outcome
    // yet), then begin the drain.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while handle.stats().requests == 0 && std::time::Instant::now() < deadline {
        thread::sleep(Duration::from_millis(2));
    }
    thread::sleep(Duration::from_millis(20));
    let mut admin = Client::connect_tcp(&addr).unwrap();
    admin.shutdown().unwrap();

    // The in-flight job still completes with a real answer.
    match inflight.join().unwrap() {
        Response::MapOk { id, .. } => assert_eq!(id, 501),
        other => panic!("in-flight job was dropped: {other:?}"),
    }

    // New jobs after the drain began are refused (or the connection is
    // already gone) — never silently queued.
    match admin.map(request_for(&SCENARIOS[0], 502)) {
        Ok(Response::Error { kind, .. }) => assert_eq!(kind, ErrorKind::ShuttingDown),
        Ok(other) => panic!("job accepted during drain: {other:?}"),
        Err(_) => {} // server already closed the connection
    }
    handle.join();
}

#[test]
fn zero_deadline_expires_in_queue() {
    let handle = spawn_ephemeral(ServeConfig::default()).unwrap();
    let mut client = Client::connect_tcp(handle.addr()).unwrap();
    let mut req = request_for(&SCENARIOS[0], 77);
    req.deadline_ms = Some(0);
    match client.map(req).unwrap() {
        Response::Error { id, kind, .. } => {
            assert_eq!(id, 77);
            assert_eq!(kind, ErrorKind::Deadline);
        }
        other => panic!("expected Deadline error, got {other:?}"),
    }
    let stats = handle.join();
    assert_eq!(stats.errors, 1);
}

#[test]
fn structured_errors_for_bad_specs_and_workloads() {
    let handle = spawn_ephemeral(ServeConfig::default()).unwrap();
    let mut client = Client::connect_tcp(handle.addr()).unwrap();

    let mut req = request_for(&SCENARIOS[0], 1);
    req.topology = "nope:3".to_string();
    match client.map(req).unwrap() {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::BadSpec);
            assert!(message.contains("unknown topology"), "{message}");
        }
        other => panic!("{other:?}"),
    }

    let mut req = request_for(&SCENARIOS[0], 2);
    req.mapper = "bogus".to_string();
    match client.map(req).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadSpec),
        other => panic!("{other:?}"),
    }

    // 100 tasks onto 64 processors: BadWorkload, not a worker panic.
    let mut req = request_for(&SCENARIOS[2], 3);
    req.topology = "torus:8x8".to_string();
    match client.map(req).unwrap() {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::BadWorkload);
            assert!(message.contains("partition"), "{message}");
        }
        other => panic!("{other:?}"),
    }

    // Corrupt database: out-of-range object ids.
    let mut req = request_for(&SCENARIOS[0], 4);
    req.database.comm[0].to = 10_000;
    match client.map(req).unwrap() {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::BadWorkload),
        other => panic!("{other:?}"),
    }

    // A frame that is valid JSON but not a Request: BadRequest with id 0.
    match client.request(&Request::Ping) {
        Ok(Response::Pong { .. }) => {}
        other => panic!("connection should still be usable: {other:?}"),
    }

    // The server is still healthy after all those failures.
    let stats = client.stats().unwrap();
    assert_eq!(stats.errors, 4);
    assert_eq!(stats.ok, 0);
    handle.join();
}

#[test]
fn garbage_frames_get_bad_request_then_resync() {
    use std::io::{Read, Write};
    let handle = spawn_ephemeral(ServeConfig::default()).unwrap();
    let mut raw = std::net::TcpStream::connect(handle.addr()).unwrap();

    // Well-framed garbage payload → structured BadRequest (id 0).
    let garbage = b"{\"NotARequest\":{}}";
    raw.write_all(&(garbage.len() as u32).to_be_bytes())
        .unwrap();
    raw.write_all(garbage).unwrap();
    let mut len = [0u8; 4];
    raw.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    raw.read_exact(&mut payload).unwrap();
    match topomap_serve::proto::decode_response(&payload).unwrap() {
        Response::Error { id, kind, .. } => {
            assert_eq!(id, 0);
            assert_eq!(kind, ErrorKind::BadRequest);
        }
        other => panic!("{other:?}"),
    }

    // The framing survived: the same connection still answers Ping.
    let ping = topomap_serve::proto::encode_request(&Request::Ping);
    raw.write_all(&(ping.len() as u32).to_be_bytes()).unwrap();
    raw.write_all(&ping).unwrap();
    raw.read_exact(&mut len).unwrap();
    let mut payload = vec![0u8; u32::from_be_bytes(len) as usize];
    raw.read_exact(&mut payload).unwrap();
    assert!(matches!(
        topomap_serve::proto::decode_response(&payload).unwrap(),
        Response::Pong { .. }
    ));
    handle.join();
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_like_tcp() {
    let path = std::env::temp_dir().join(format!("topomap-serve-test-{}.sock", std::process::id()));
    let handle = spawn(ServeConfig {
        bind: Bind::Unix(path.clone()),
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect_unix(&path).unwrap();
    assert_eq!(client.ping().unwrap(), topomap_serve::proto::PROTO_VERSION);
    let expected = direct_mapping(&SCENARIOS[0]);
    match client.map(request_for(&SCENARIOS[0], 11)).unwrap() {
        Response::MapOk { proc_of_task, .. } => assert_eq!(proc_of_task, expected),
        other => panic!("{other:?}"),
    }
    handle.join();
    assert!(!path.exists(), "socket file removed on join");
}

#[test]
fn fast_lane_rescues_deadline_and_warm_start_serves() {
    let handle = spawn_ephemeral(ServeConfig::default()).unwrap();
    let mut client = Client::connect_tcp(handle.addr()).unwrap();

    // 64x64 stencil = 4096 tasks on a 64x64 torus: topolb's estimated
    // n·p cost (~33ms) overruns a 20ms budget, so the opted-in fast
    // lane swaps in the near-linear SFC mapper and answers on time.
    let mut req = request_for(&SCENARIOS[0], 21);
    req.mapper = "topolb".to_string();
    req.fast_lane = Some(true);
    let g = parse_pattern("stencil2d:64x64", 1024.0, 0).unwrap();
    req.topology = "torus:64x64".to_string();
    req.database = LbDatabase::from_task_graph(&g);
    req.deadline_ms = Some(20);
    match client.map(req.clone()).unwrap() {
        Response::MapOk {
            fast_lane_used,
            hops_per_byte,
            ..
        } => {
            assert_eq!(fast_lane_used, Some(true), "lane should engage");
            // The stencil embeds perfectly under the Hilbert order.
            assert!((hops_per_byte - 1.0).abs() < 1e-9, "{hops_per_byte}");
        }
        other => panic!("fast lane should beat the deadline: {other:?}"),
    }

    // Same job without the opt-in reports None (never silently swaps).
    req.fast_lane = None;
    req.deadline_ms = Some(60_000);
    match client.map(req.clone()).unwrap() {
        Response::MapOk { fast_lane_used, .. } => assert_eq!(fast_lane_used, None),
        other => panic!("{other:?}"),
    }

    // Warm start over the wire: refine(init=sfc) matches the direct run.
    let mut warm = request_for(&SCENARIOS[0], 23);
    warm.mapper = "refine".to_string();
    warm.init = Some("sfc".to_string());
    let direct = {
        let parsed = parse_topology("torus:8x8").unwrap();
        let tasks = database_for(&SCENARIOS[0]).to_task_graph();
        let m = topomap_serve::specs::parse_mapper_with_init(
            "refine",
            Some("sfc"),
            SCENARIOS[0].seed,
            Parallelism::serial(),
        )
        .unwrap();
        topomap_core::Mapper::map(&*m, &tasks, parsed.as_topology())
            .as_slice()
            .to_vec()
    };
    match client.map(warm).unwrap() {
        Response::MapOk { proc_of_task, .. } => assert_eq!(proc_of_task, direct),
        other => panic!("{other:?}"),
    }

    // init on a non-refine mapper is a BadSpec, not a panic.
    let mut bad = request_for(&SCENARIOS[0], 24);
    bad.init = Some("sfc".to_string());
    match client.map(bad).unwrap() {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::BadSpec);
            assert!(message.contains("refine"), "{message}");
        }
        other => panic!("{other:?}"),
    }
    handle.join();
}

#[test]
fn obs_spans_are_tagged_with_request_ids() {
    obs::start();
    let handle = spawn_ephemeral(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = Client::connect_tcp(handle.addr()).unwrap();
    match client.map(request_for(&SCENARIOS[0], 424_242)).unwrap() {
        Response::MapOk { .. } => {}
        other => panic!("{other:?}"),
    }
    handle.join();
    let report = obs::finish();
    let root = report
        .find_span("serve.request.424242")
        .expect("per-request span tree");
    assert!(!root.children.is_empty(), "span tree has kernel children");
    assert_eq!(report.meta("serve.request.424242"), Some("ok"));
    assert!(report.counter("serve.requests").unwrap_or(0) >= 1);
    assert!(report.counter("serve.ok").unwrap_or(0) >= 1);
}
