//! Minimal `--flag value` argument parsing (no external dependencies).

use std::collections::HashMap;

/// Parsed `--key value` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    values: HashMap<String, String>,
}

impl Args {
    /// Parse a flat `--key value --key2 value2 ...` list. Every flag must
    /// start with `--` and take exactly one value; duplicates are
    /// rejected.
    pub fn parse(argv: &[String]) -> Result<Self, String> {
        Self::parse_with_flags(argv, &[])
    }

    /// Like [`Args::parse`], but flags named in `bool_flags` take no
    /// value: their presence stores `"true"` (query with [`Args::flag`]).
    pub fn parse_with_flags(argv: &[String], bool_flags: &[&str]) -> Result<Self, String> {
        let mut values = HashMap::new();
        let mut it = argv.iter();
        while let Some(flag) = it.next() {
            let Some(key) = flag.strip_prefix("--") else {
                return Err(format!("expected a --flag, got '{flag}'"));
            };
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            let value = if bool_flags.contains(&key) {
                "true".to_string()
            } else {
                let Some(value) = it.next() else {
                    return Err(format!("flag --{key} is missing its value"));
                };
                value.clone()
            };
            if values.insert(key.to_string(), value).is_some() {
                return Err(format!("flag --{key} given twice"));
            }
        }
        Ok(Args { values })
    }

    /// A required string flag.
    pub fn required(&self, key: &str) -> Result<&str, String> {
        self.values
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| format!("missing required flag --{key}"))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.values.get(key).map(|s| s.as_str())
    }

    /// A boolean flag (parsed via `parse_with_flags`): present or not.
    pub fn flag(&self, key: &str) -> bool {
        self.values.get(key).map(|v| v == "true").unwrap_or(false)
    }

    /// An optional parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.values.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("flag --{key}: cannot parse '{v}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_pairs() {
        let a = Args::parse(&s(&["--x", "1", "--name", "hi"])).unwrap();
        assert_eq!(a.required("x").unwrap(), "1");
        assert_eq!(a.optional("name"), Some("hi"));
        assert_eq!(a.optional("missing"), None);
        assert_eq!(a.parsed_or::<u64>("x", 9).unwrap(), 1);
        assert_eq!(a.parsed_or::<u64>("y", 9).unwrap(), 9);
    }

    #[test]
    fn rejects_bare_values() {
        assert!(Args::parse(&s(&["x", "1"])).is_err());
    }

    #[test]
    fn rejects_missing_value() {
        assert!(Args::parse(&s(&["--x"])).is_err());
    }

    #[test]
    fn rejects_duplicates() {
        assert!(Args::parse(&s(&["--x", "1", "--x", "2"])).is_err());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let a = Args::parse_with_flags(&s(&["--profile", "--x", "1"]), &["profile"]).unwrap();
        assert!(a.flag("profile"));
        assert!(!a.flag("x"), "value flags are not boolean");
        assert!(!a.flag("absent"));
        assert_eq!(a.required("x").unwrap(), "1");
        // A boolean flag at the end must not consume a value.
        let a = Args::parse_with_flags(&s(&["--x", "1", "--profile"]), &["profile"]).unwrap();
        assert!(a.flag("profile"));
        // Without registration, --profile still demands a value.
        assert!(Args::parse(&s(&["--profile"])).is_err());
    }

    #[test]
    fn bad_parse_reports_flag() {
        let a = Args::parse(&s(&["--n", "abc"])).unwrap();
        let err = a.parsed_or::<u64>("n", 0).unwrap_err();
        assert!(err.contains("--n"));
    }
}
