//! Spec-string parsing, re-exported from `topomap-serve`.
//!
//! The CLI and the mapping server accept the same compact spec strings
//! (`torus:8x8`, `stencil2d:16x16`, `topolb`, …). The single
//! implementation — one parser, one loud-error path for malformed
//! topology/hierarchy specs — lives in [`topomap_serve::specs`] so a
//! spec that parses locally parses identically on the wire; this module
//! keeps the long-standing `topomap_cli::specs` path working.

pub use topomap_serve::specs::*;
