//! Compact string specs for machines, workloads, and mappers.
//!
//! | kind | examples |
//! |------|----------|
//! | topology | `torus:8x8`, `mesh:4x4x4`, `hypercube:6`, `ring:16`, `star:9`, `crossbar:8`, `fattree:4:3` |
//! | pattern | `stencil2d:16x16`, `stencil3d:8x8x8`, `pstencil2d:8x8` (periodic), `leanmd:64`, `ring:32`, `all2all:16`, `butterfly:64`, `transpose:8`, `sweep2d:6x6`, `tree:32`, `random:100:4` |
//! | mapper | `random`, `topolb`, `topolb-first`, `topolb-third`, `topocentlb`, `refine`, `identity`, `linear`, `anneal`, `genetic` |

use topomap_core::{
    EstimationOrder, GeneticMap, IdentityMap, LinearOrderMap, Mapper, Parallelism, RandomMap,
    RefineTopoLb, SimulatedAnnealingMap, TopoCentLb, TopoLb,
};
use topomap_taskgraph::{gen, TaskGraph};
use topomap_topology::{FatTree, GraphTopology, Hypercube, RoutedTopology, Topology, Torus};

/// Parse `AxBxC` into dimension sizes.
fn parse_dims(s: &str) -> Result<Vec<usize>, String> {
    let dims: Result<Vec<usize>, _> = s.split('x').map(|p| p.parse::<usize>()).collect();
    let dims = dims.map_err(|_| format!("bad dimension list '{s}'"))?;
    if dims.is_empty() || dims.contains(&0) {
        return Err(format!("bad dimension list '{s}'"));
    }
    Ok(dims)
}

/// A parsed topology, split by capability: `simulate` needs routing,
/// `map`/`eval` only need the metric.
pub enum ParsedTopology {
    Routed(Box<dyn RoutedTopology>),
    MetricOnly(Box<dyn Topology>),
}

impl ParsedTopology {
    pub fn as_topology(&self) -> &dyn Topology {
        match self {
            ParsedTopology::Routed(t) => t,
            ParsedTopology::MetricOnly(t) => t.as_ref(),
        }
    }

    pub fn as_routed(&self) -> Result<&dyn RoutedTopology, String> {
        match self {
            ParsedTopology::Routed(t) => Ok(t.as_ref()),
            ParsedTopology::MetricOnly(t) => Err(format!(
                "topology '{}' is metric-only (no per-link routing); it cannot be simulated",
                t.name()
            )),
        }
    }
}

/// Parse a topology spec.
pub fn parse_topology(spec: &str) -> Result<ParsedTopology, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    let routed = |t: Box<dyn RoutedTopology>| Ok(ParsedTopology::Routed(t));
    match kind {
        "torus" => routed(Box::new(Torus::torus(&parse_dims(rest)?))),
        "mesh" => routed(Box::new(Torus::mesh(&parse_dims(rest)?))),
        "hypercube" => {
            let d: u32 = rest
                .parse()
                .map_err(|_| format!("bad hypercube dims '{rest}'"))?;
            routed(Box::new(Hypercube::new(d)))
        }
        "ring" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad ring size '{rest}'"))?;
            routed(Box::new(GraphTopology::ring(n)))
        }
        "star" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad star size '{rest}'"))?;
            routed(Box::new(GraphTopology::star(n)))
        }
        "crossbar" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad crossbar size '{rest}'"))?;
            routed(Box::new(GraphTopology::complete(n)))
        }
        "fattree" => {
            let (a, l) = rest
                .split_once(':')
                .ok_or_else(|| format!("fattree spec is fattree:ARITY:LEVELS, got '{rest}'"))?;
            let arity: usize = a.parse().map_err(|_| "bad fattree arity".to_string())?;
            let levels: u32 = l.parse().map_err(|_| "bad fattree levels".to_string())?;
            Ok(ParsedTopology::MetricOnly(Box::new(FatTree::new(
                arity, levels,
            ))))
        }
        other => Err(format!(
            "unknown topology kind '{other}' (try torus/mesh/hypercube/ring/star/crossbar/fattree)"
        )),
    }
}

/// Parse a workload pattern spec into a task graph. `bytes` scales the
/// per-message volume; `seed` feeds the random families.
pub fn parse_pattern(spec: &str, bytes: f64, seed: u64) -> Result<TaskGraph, String> {
    let (kind, rest) = spec.split_once(':').unwrap_or((spec, ""));
    match kind {
        "stencil2d" | "pstencil2d" => {
            let d = parse_dims(rest)?;
            if d.len() != 2 {
                return Err(format!("{kind} needs WxH, got '{rest}'"));
            }
            Ok(gen::stencil2d(
                d[0],
                d[1],
                2.0 * bytes,
                kind == "pstencil2d",
            ))
        }
        "stencil3d" | "pstencil3d" => {
            let d = parse_dims(rest)?;
            if d.len() != 3 {
                return Err(format!("{kind} needs XxYxZ, got '{rest}'"));
            }
            Ok(gen::stencil3d(
                d[0],
                d[1],
                d[2],
                2.0 * bytes,
                kind == "pstencil3d",
            ))
        }
        "leanmd" => {
            let p: usize = rest
                .parse()
                .map_err(|_| format!("bad leanmd size '{rest}'"))?;
            Ok(gen::leanmd(
                p,
                &gen::LeanMdConfig {
                    coord_bytes: bytes,
                    seed,
                    ..Default::default()
                },
            ))
        }
        "ring" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad ring size '{rest}'"))?;
            Ok(gen::ring(n, bytes))
        }
        "all2all" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad all2all size '{rest}'"))?;
            Ok(gen::all_to_all(n, bytes))
        }
        "butterfly" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad butterfly size '{rest}'"))?;
            Ok(gen::butterfly(n, bytes))
        }
        "transpose" => {
            let s: usize = rest
                .parse()
                .map_err(|_| format!("bad transpose side '{rest}'"))?;
            Ok(gen::transpose(s, bytes))
        }
        "sweep2d" => {
            let d = parse_dims(rest)?;
            if d.len() != 2 {
                return Err(format!("sweep2d needs WxH, got '{rest}'"));
            }
            Ok(gen::sweep2d(d[0], d[1], bytes))
        }
        "tree" => {
            let n: usize = rest
                .parse()
                .map_err(|_| format!("bad tree size '{rest}'"))?;
            Ok(gen::reduction_tree(n, bytes))
        }
        "random" => {
            let (n, deg) = rest
                .split_once(':')
                .ok_or_else(|| format!("random spec is random:N:AVGDEG, got '{rest}'"))?;
            let n: usize = n.parse().map_err(|_| "bad random size".to_string())?;
            let deg: f64 = deg.parse().map_err(|_| "bad random degree".to_string())?;
            Ok(gen::random_graph(n, deg, 0.5 * bytes, 1.5 * bytes, seed))
        }
        other => Err(format!("unknown pattern kind '{other}'")),
    }
}

/// Parse a `--threads` spec: `auto` (detect, overridable via the
/// `TOPOMAP_THREADS` environment variable) or a fixed positive count.
/// Every mapper produces the same result for every setting; threads only
/// change how fast it is computed.
pub fn parse_threads(spec: &str) -> Result<Parallelism, String> {
    match spec {
        "auto" => Ok(Parallelism::default()),
        n => {
            let n: usize = n
                .parse()
                .map_err(|_| format!("bad thread count '{n}' (want auto or N>=1)"))?;
            if n == 0 {
                return Err("bad thread count '0' (want auto or N>=1)".into());
            }
            Ok(Parallelism::fixed(n))
        }
    }
}

/// Resolve a mapper spec. `par` configures the deterministic parallel
/// execution layer for the mappers that support it.
pub fn parse_mapper(spec: &str, seed: u64, par: Parallelism) -> Result<Box<dyn Mapper>, String> {
    match spec {
        "random" => Ok(Box::new(RandomMap::new(seed))),
        "topolb" => Ok(Box::new(TopoLb {
            par,
            ..TopoLb::default()
        })),
        "topolb-first" => Ok(Box::new(TopoLb::with_parallelism(
            EstimationOrder::First,
            par,
        ))),
        "topolb-third" => Ok(Box::new(TopoLb::with_parallelism(
            EstimationOrder::Third,
            par,
        ))),
        "topocentlb" => Ok(Box::new(TopoCentLb)),
        "refine" => Ok(Box::new(RefineTopoLb::with_parallelism(
            TopoLb {
                par,
                ..TopoLb::default()
            },
            par,
        ))),
        "identity" => Ok(Box::new(IdentityMap)),
        "linear" => Ok(Box::new(LinearOrderMap::bfs())),
        "anneal" => Ok(Box::new(SimulatedAnnealingMap {
            par,
            ..SimulatedAnnealingMap::new(seed)
        })),
        "genetic" => Ok(Box::new(GeneticMap {
            par,
            ..GeneticMap::new(seed)
        })),
        other => Err(format!(
            "unknown mapper '{other}' (try random/topolb/topolb-first/topolb-third/\
             topocentlb/refine/identity/linear/anneal/genetic)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_specs_parse() {
        for (spec, n) in [
            ("torus:4x4", 16),
            ("mesh:2x3x4", 24),
            ("hypercube:5", 32),
            ("ring:7", 7),
            ("star:5", 5),
            ("crossbar:6", 6),
            ("fattree:2:3", 8),
        ] {
            let t = parse_topology(spec).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(t.as_topology().num_nodes(), n, "{spec}");
        }
    }

    #[test]
    fn fattree_is_metric_only() {
        let t = parse_topology("fattree:4:2").unwrap();
        assert!(t.as_routed().is_err());
        assert!(parse_topology("torus:4x4").unwrap().as_routed().is_ok());
    }

    #[test]
    fn bad_topology_specs_rejected() {
        for spec in ["torus:0x4", "torus:", "nope:3", "hypercube:x", "fattree:4"] {
            assert!(parse_topology(spec).is_err(), "{spec} should fail");
        }
    }

    #[test]
    fn pattern_specs_parse() {
        for (spec, n) in [
            ("stencil2d:4x4", 16),
            ("pstencil2d:4x4", 16),
            ("stencil3d:2x2x2", 8),
            ("ring:9", 9),
            ("all2all:5", 5),
            ("butterfly:8", 8),
            ("transpose:3", 9),
            ("sweep2d:3x3", 9),
            ("tree:10", 10),
            ("random:20:3", 20),
        ] {
            let g = parse_pattern(spec, 1000.0, 1).unwrap_or_else(|e| panic!("{spec}: {e}"));
            assert_eq!(g.num_tasks(), n, "{spec}");
        }
        let md = parse_pattern("leanmd:8", 1000.0, 1).unwrap();
        assert_eq!(md.num_tasks(), 3240 + 8);
    }

    #[test]
    fn periodic_vs_open_stencil_differ() {
        let open = parse_pattern("stencil2d:4x4", 1.0, 0).unwrap();
        let per = parse_pattern("pstencil2d:4x4", 1.0, 0).unwrap();
        assert!(per.num_edges() > open.num_edges());
    }

    #[test]
    fn mapper_specs_parse() {
        for spec in [
            "random",
            "topolb",
            "topolb-first",
            "topolb-third",
            "topocentlb",
            "refine",
            "identity",
            "linear",
            "anneal",
            "genetic",
        ] {
            assert!(
                parse_mapper(spec, 1, Parallelism::default()).is_ok(),
                "{spec}"
            );
        }
        assert!(parse_mapper("bogus", 1, Parallelism::default()).is_err());
    }

    #[test]
    fn threads_specs_parse() {
        assert!(parse_threads("auto").is_ok());
        assert!(parse_threads("1").is_ok());
        assert!(parse_threads("8").is_ok());
        for bad in ["0", "-1", "many", ""] {
            assert!(parse_threads(bad).is_err(), "'{bad}' should fail");
        }
    }
}
