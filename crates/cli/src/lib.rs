//! # topomap-cli
//!
//! The library behind the `topomap` command-line tool: spec parsing
//! (machine and workload descriptions as compact strings, shared with
//! `topomap-serve`), mapper resolution, and the five subcommands
//! (`gen`, `map`, `eval`, `simulate`, `serve`). Kept as a library so
//! every piece is unit-testable; the binary is a thin `main` that
//! forwards `std::env::args`.
//!
//! ```text
//! topomap gen      --pattern stencil2d:16x16 --bytes 4096 --out tasks.json
//! topomap map      --topology torus:8x8x8 --tasks tasks.json --mapper topolb --out m.json
//! topomap eval     --topology torus:8x8x8 --tasks tasks.json --mapping m.json
//! topomap simulate --topology torus:8x8x8 --tasks tasks.json --mapping m.json \
//!                  --iterations 200 --bandwidth-mbps 175
//! ```

pub mod args;
pub mod commands;
pub mod specs;

pub use args::Args;

/// Top-level driver; returns the process exit code.
pub fn run(argv: &[String]) -> i32 {
    match run_inner(argv) {
        Ok(output) => {
            print!("{output}");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::USAGE);
            1
        }
    }
}

/// The driver without I/O side effects on success (output returned as a
/// string, so tests can assert on it).
pub fn run_inner(argv: &[String]) -> Result<String, String> {
    let Some(cmd) = argv.first() else {
        return Err("missing subcommand".into());
    };
    let args = Args::parse_with_flags(&argv[1..], commands::BOOL_FLAGS)?;
    match cmd.as_str() {
        "gen" => commands::cmd_gen(&args),
        "map" => commands::cmd_map(&args),
        "eval" => commands::cmd_eval(&args),
        "simulate" => commands::cmd_simulate(&args),
        "serve" => commands::cmd_serve(&args),
        "help" | "--help" | "-h" => Ok(commands::USAGE.to_string()),
        other => Err(format!("unknown subcommand '{other}'")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_subcommand_is_error() {
        let argv = vec!["frobnicate".to_string()];
        assert!(run_inner(&argv).is_err());
    }

    #[test]
    fn help_prints_usage() {
        let argv = vec!["help".to_string()];
        let out = run_inner(&argv).unwrap();
        assert!(out.contains("topomap"));
        assert!(out.contains("simulate"));
    }

    #[test]
    fn missing_subcommand_is_error() {
        assert!(run_inner(&[]).is_err());
    }
}
