fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(topomap_cli::run(&argv));
}
