//! The five subcommands.

use crate::args::Args;
use crate::specs;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use topomap_core::{metrics, obs, ContentionRefine, Mapping};
use topomap_netsim::{contention_oracle, trace, NetworkConfig, Simulation};
use topomap_serve::server::{self, Bind, ServeConfig};
use topomap_taskgraph::io as tgio;

/// Boolean (value-less) flags accepted by the subcommands — the single
/// list shared by the dispatcher (`run_inner`) and the tests, so a flag
/// added for one subcommand cannot silently parse differently elsewhere.
pub const BOOL_FLAGS: &[&str] = &["profile", "refine-contention"];

pub const USAGE: &str = "\
topomap — topology-aware task mapping (IPDPS'06 reproduction)

USAGE:
  topomap gen      --pattern SPEC [--bytes N] [--seed S] --out FILE
  topomap map      --topology SPEC --tasks FILE --mapper NAME [--seed S]
                   [--init NAME] [--threads auto|N] [--out FILE] [--profile]
                   [--trace-out FILE] [--trace-format json|csv]
                   [--hierarchy A1:A2:... [--hier-dist D1:D2:...]]
  topomap eval     --topology SPEC --tasks FILE --mapping FILE
  topomap simulate --topology SPEC --tasks FILE
                   (--mapping FILE | --init NAME [--seed S])
                   [--iterations N] [--bandwidth-mbps B] [--compute-ns C]
                   [--refine-contention [--sim-iters N] [--threads auto|N]
                    [--out FILE]]
                   [--profile] [--trace-out FILE] [--trace-format json|csv]
  topomap serve    [--host H] [--port P] [--unix PATH] [--workers N]
                   [--queue N] [--cache N] [--threads auto|N]
                   [--deadline-ms MS] [--profile] [--trace-out FILE]
                   [--trace-format json|csv]
  topomap help

SPECS:
  topology: torus:8x8x8 | mesh:4x4 | hypercube:6 | ring:16 | star:9
            | crossbar:8 | fattree:ARITY:LEVELS | dragonfly:GROUPS:ROUTERS
  pattern:  stencil2d:16x16 | pstencil2d:8x8 (periodic) | stencil3d:8x8x8
            | leanmd:64 | ring:32 | all2all:16 | butterfly:64 | transpose:8
            | sweep2d:6x6 | tree:32 | random:N:AVGDEG
  mapper:   random | topolb | topolb-first | topolb-third | topocentlb
            | refine | identity | linear | anneal | genetic | hier
            | sfc | sfc-morton | rcb
  threads:  worker threads for the mapper (auto = detect; results are
            identical for every setting)
  init:     warm start. With '--mapper refine', '--init NAME' refines
            NAME's mapping instead of a cold TopoLB run (the near-linear
            geometric mappers sfc/rcb make good inits). With 'simulate
            --refine-contention', '--init NAME' computes the starting
            mapping on the spot instead of loading --mapping.
  hierarchy: --hierarchy 4:8:16 selects the hierarchical mapper (same as
            --mapper hier), decomposing the machine into blocks of 4,
            cabinets of 8x4, ... innermost level first; the product must
            equal the processor count. --hier-dist 1:10:100 pins the
            per-level distances (default: derived from the machine).
            --mapper hier alone auto-chooses the arities.

CONTENTION:
  --refine-contention  after the baseline run, iteratively refine the
            mapping against the simulator itself: find the busiest links,
            try swapping/migrating the task pairs feeding them, keep an
            exchange only when the simulated completion time strictly
            improves (hop-bytes guarded within a slack). Prints the
            refined completion time; --out FILE writes the refined
            mapping. --sim-iters N caps total simulator runs (default
            64); --threads parallelizes the hop-bytes guard (results are
            identical for every setting).

OBSERVABILITY:
  --profile            print a span/counter summary after the run
  --trace-out FILE     write the full trace report to FILE
  --trace-format FMT   trace file format: json (default) | csv

SERVE:
  topomap serve runs the persistent mapping daemon (length-prefixed JSON
  frames; see DESIGN.md §9). --port 0 picks an ephemeral port; the bound
  address is printed as 'serving on ADDR'. --unix PATH listens on a
  unix-domain socket instead. --workers bounds concurrent mapping jobs,
  --queue bounds waiting jobs (beyond it clients get Busy), --cache sizes
  the distance-oracle/hierarchy LRUs, --deadline-ms sets a default
  per-request deadline. SIGINT (or a Shutdown request) drains in-flight
  jobs and exits with a stats summary.
";

/// On-disk mapping format.
#[derive(Debug, Serialize, Deserialize)]
struct MappingFile {
    num_procs: usize,
    proc_of_task: Vec<usize>,
}

fn save_json<T: Serialize>(value: &T, path: &str) -> Result<(), String> {
    let f = std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
    serde_json::to_writer_pretty(std::io::BufWriter::new(f), value)
        .map_err(|e| format!("write {path}: {e}"))
}

fn load_mapping(path: &str) -> Result<Mapping, String> {
    let f = std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?;
    let mf: MappingFile = serde_json::from_reader(std::io::BufReader::new(f))
        .map_err(|e| format!("parse {path}: {e}"))?;
    Ok(Mapping::new(mf.proc_of_task, mf.num_procs))
}

/// Observability flags shared by `map` and `simulate`: `--profile`
/// prints a summary, `--trace-out FILE` writes the full report in
/// `--trace-format` (json|csv). Recording turns on only when at least
/// one of them is requested, so default runs pay a single atomic load.
struct ObsOpts {
    profile: bool,
    trace_out: Option<String>,
    csv: bool,
}

impl ObsOpts {
    fn from_args(args: &Args) -> Result<Self, String> {
        let csv = match args.optional("trace-format").unwrap_or("json") {
            "json" => false,
            "csv" => true,
            other => return Err(format!("flag --trace-format: unknown format '{other}'")),
        };
        Ok(ObsOpts {
            profile: args.flag("profile"),
            trace_out: args.optional("trace-out").map(|s| s.to_string()),
            csv,
        })
    }

    fn active(&self) -> bool {
        self.profile || self.trace_out.is_some()
    }

    /// Start recording if requested.
    fn begin(&self) {
        if self.active() {
            obs::start();
        }
    }

    /// Stop recording, write the trace file, and append the `--profile`
    /// summary to `out`.
    fn end(&self, out: &mut String) -> Result<(), String> {
        if !self.active() {
            return Ok(());
        }
        let report = obs::finish();
        if let Some(path) = &self.trace_out {
            let body = if self.csv {
                report.to_csv()
            } else {
                report.to_json()
            };
            std::fs::write(path, body).map_err(|e| format!("write {path}: {e}"))?;
            let _ = writeln!(out, "wrote trace {path}");
        }
        if self.profile {
            let _ = writeln!(out, "\nprofile:\n{}", report.summary());
        }
        Ok(())
    }
}

/// `topomap gen` — generate a workload task graph and write it as JSON.
pub fn cmd_gen(args: &Args) -> Result<String, String> {
    let pattern = args.required("pattern")?;
    let bytes: f64 = args.parsed_or("bytes", 1024.0)?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let out = args.required("out")?;
    let g = specs::parse_pattern(pattern, bytes, seed)?;
    tgio::save(&g, out).map_err(|e| e.to_string())?;
    Ok(format!(
        "wrote {} ({} tasks, {} edges, {:.1} KiB per iteration)\n",
        out,
        g.num_tasks(),
        g.num_edges(),
        g.total_comm() / 1024.0
    ))
}

/// `topomap map` — map a task graph onto a machine.
pub fn cmd_map(args: &Args) -> Result<String, String> {
    let obs_opts = ObsOpts::from_args(args)?;
    let topo_spec = args.required("topology")?;
    let topo = specs::parse_topology(topo_spec)?;
    let tasks = tgio::load(args.required("tasks")?).map_err(|e| e.to_string())?;
    let seed: u64 = args.parsed_or("seed", 0)?;
    let par = specs::parse_threads(args.optional("threads").unwrap_or("auto"))?;
    let hier = args.optional("hierarchy");
    let mapper = if hier.is_some() || args.optional("mapper") == Some("hier") {
        if let Some(other) = args.optional("mapper").filter(|&m| m != "hier") {
            return Err(format!(
                "--hierarchy selects the hierarchical mapper; drop '--mapper {other}' \
                 (or spell it '--mapper hier')"
            ));
        }
        if args.optional("init").is_some() {
            return Err("--init only applies to '--mapper refine'".into());
        }
        specs::parse_hier_mapper(
            topo_spec,
            topo.as_topology(),
            hier,
            args.optional("hier-dist"),
            par,
        )?
    } else {
        if args.optional("hier-dist").is_some() {
            return Err("--hier-dist needs --hierarchy (or --mapper hier)".into());
        }
        specs::parse_mapper_with_init(args.required("mapper")?, args.optional("init"), seed, par)?
    };
    let t = topo.as_topology();
    if tasks.num_tasks() > t.num_nodes() {
        return Err(format!(
            "{} tasks need partitioning onto {} processors first; \
             pre-partition with the library's two_phase pipeline",
            tasks.num_tasks(),
            t.num_nodes()
        ));
    }
    obs_opts.begin();
    let mapping = mapper.map(&tasks, t);
    let q = metrics::quality(&tasks, t, &mapping);
    let mut out = String::new();
    let _ = writeln!(out, "mapper:        {}", mapper.name());
    let _ = writeln!(out, "machine:       {}", t.name());
    let _ = writeln!(out, "hops-per-byte: {:.4}", q.hops_per_byte);
    let _ = writeln!(out, "hop-bytes:     {:.1}", q.hop_bytes);
    let _ = writeln!(out, "max dilation:  {}", q.max_dilation);
    if let Some(path) = args.optional("out") {
        save_json(
            &MappingFile {
                num_procs: t.num_nodes(),
                proc_of_task: mapping.as_slice().to_vec(),
            },
            path,
        )?;
        let _ = writeln!(out, "wrote {path}");
    }
    obs_opts.end(&mut out)?;
    Ok(out)
}

/// `topomap eval` — evaluate an existing mapping.
pub fn cmd_eval(args: &Args) -> Result<String, String> {
    let topo = specs::parse_topology(args.required("topology")?)?;
    let tasks = tgio::load(args.required("tasks")?).map_err(|e| e.to_string())?;
    let mapping = load_mapping(args.required("mapping")?)?;
    let t = topo.as_topology();
    let q = metrics::quality(&tasks, t, &mapping);
    let mut out = String::new();
    let _ = writeln!(out, "machine:          {}", t.name());
    let _ = writeln!(out, "tasks:            {}", tasks.num_tasks());
    let _ = writeln!(out, "hops-per-byte:    {:.4}", q.hops_per_byte);
    let _ = writeln!(out, "hop-bytes:        {:.1}", q.hop_bytes);
    let _ = writeln!(out, "max dilation:     {}", q.max_dilation);
    let _ = writeln!(out, "median dilation:  {}", q.median_dilation);
    let _ = writeln!(out, "local fraction:   {:.3}", q.local_fraction);
    // Per-link loads when the machine supports routing.
    if let Ok(routed) = topo.as_routed() {
        let ll = metrics::LinkLoads::compute(&tasks, routed, &mapping);
        let _ = writeln!(out, "max link load:    {:.1} bytes", ll.max_load());
        let _ = writeln!(out, "avg link load:    {:.1} bytes", ll.avg_load());
        let _ = writeln!(out, "idle links:       {:.1}%", 100.0 * ll.idle_fraction());
    }
    Ok(out)
}

/// `topomap simulate` — replay the stencil-style trace of the workload
/// through the packet simulator under the given mapping.
pub fn cmd_simulate(args: &Args) -> Result<String, String> {
    let obs_opts = ObsOpts::from_args(args)?;
    let topo = specs::parse_topology(args.required("topology")?)?;
    let routed = topo.as_routed()?;
    let tasks = tgio::load(args.required("tasks")?).map_err(|e| e.to_string())?;
    let refine_contention = args.flag("refine-contention");
    let mapping = match (args.optional("init"), args.optional("mapping")) {
        (Some(_), Some(_)) => {
            return Err(
                "--init and --mapping are mutually exclusive (the init mapper \
                 produces the starting mapping)"
                    .into(),
            )
        }
        (Some(init_spec), None) => {
            if !refine_contention {
                return Err("--init needs --refine-contention (otherwise run \
                     'topomap map' and pass its --out as --mapping)"
                    .into());
            }
            let seed: u64 = args.parsed_or("seed", 0)?;
            let par = specs::parse_threads(args.optional("threads").unwrap_or("auto"))?;
            let m = specs::parse_mapper(init_spec, seed, par)?;
            if tasks.num_tasks() > routed.num_nodes() {
                return Err(format!(
                    "{} tasks need partitioning onto {} processors first",
                    tasks.num_tasks(),
                    routed.num_nodes()
                ));
            }
            m.map(&tasks, routed)
        }
        (None, _) => load_mapping(args.required("mapping")?)?,
    };
    let iterations: usize = args.parsed_or("iterations", 100)?;
    let bandwidth_mbps: f64 = args.parsed_or("bandwidth-mbps", 500.0)?;
    let compute_ns: u64 = args.parsed_or("compute-ns", 5_000)?;
    if !refine_contention {
        if args.optional("sim-iters").is_some() {
            return Err("--sim-iters needs --refine-contention".into());
        }
        if args.optional("out").is_some() {
            return Err(
                "--out needs --refine-contention (plain simulate writes no mapping)".into(),
            );
        }
    }

    let tr = trace::stencil_trace(&tasks, iterations, compute_ns);
    tr.check_matched()
        .map_err(|(a, b)| format!("trace mismatch between {a} and {b}"))?;
    let cfg = NetworkConfig::default().with_bandwidth(bandwidth_mbps * 1e6);
    obs_opts.begin();
    let s = Simulation::run(routed, &cfg, &tr, &mapping);

    let mut out = String::new();
    let _ = writeln!(out, "machine:            {}", routed.name());
    let _ = writeln!(out, "iterations:         {iterations}");
    let _ = writeln!(out, "bandwidth:          {bandwidth_mbps} MB/s");
    let _ = writeln!(out, "completion:         {:.3} ms", s.completion_ms());
    let _ = writeln!(out, "avg msg latency:    {:.2} us", s.avg_latency_us());
    let _ = writeln!(
        out,
        "p99 msg latency:    {:.2} us",
        s.p99_latency_ns as f64 / 1e3
    );
    let _ = writeln!(out, "avg hops:           {:.3}", s.avg_hops);
    let _ = writeln!(out, "network messages:   {}", s.network_messages);
    let _ = writeln!(out, "max link util:      {:.3}", s.max_link_utilization);

    if refine_contention {
        let sim_iters: usize = args.parsed_or("sim-iters", 64)?;
        if sim_iters < 2 {
            return Err("--sim-iters must be >= 2 (one baseline + one candidate run)".into());
        }
        let par = specs::parse_threads(args.optional("threads").unwrap_or("auto"))?;
        let refiner = ContentionRefine {
            sim_budget: sim_iters,
            par,
            ..ContentionRefine::default()
        };
        let mut refined = mapping.clone();
        let report = refiner.refine(
            &tasks,
            routed,
            &mut refined,
            contention_oracle(routed, &cfg, &tr),
        );
        let _ = writeln!(
            out,
            "contention refine:  {} iters, {} sims, {} accepted",
            report.iterations, report.sims_run, report.accepted
        );
        let _ = writeln!(
            out,
            "refined completion: {:.3} ms ({:.1}% better)",
            report.final_makespan_ns as f64 / 1e6,
            report.improvement_pct()
        );
        if let Some(path) = args.optional("out") {
            save_json(
                &MappingFile {
                    num_procs: routed.num_nodes(),
                    proc_of_task: refined.as_slice().to_vec(),
                },
                path,
            )?;
            let _ = writeln!(out, "wrote {path}");
        }
    }
    obs_opts.end(&mut out)?;
    Ok(out)
}

/// Set by the SIGINT handler; polled by the serve loop.
static SIGINT_SEEN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

#[cfg(unix)]
extern "C" fn on_sigint(_sig: i32) {
    SIGINT_SEEN.store(true, std::sync::atomic::Ordering::SeqCst);
}

/// Install a SIGINT handler without a libc dependency: `signal(2)` is
/// declared directly (std already links libc on unix platforms).
#[cfg(unix)]
fn install_sigint() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    unsafe {
        signal(SIGINT, on_sigint as extern "C" fn(i32) as usize);
    }
}

#[cfg(not(unix))]
fn install_sigint() {}

/// `topomap serve` — run the persistent mapping daemon until SIGINT or
/// a `Shutdown` request, then drain and report stats.
pub fn cmd_serve(args: &Args) -> Result<String, String> {
    let obs_opts = ObsOpts::from_args(args)?;
    let bind = match args.optional("unix") {
        #[cfg(unix)]
        Some(path) => {
            if args.optional("host").is_some() || args.optional("port").is_some() {
                return Err("--unix and --host/--port are mutually exclusive".into());
            }
            Bind::Unix(std::path::PathBuf::from(path))
        }
        #[cfg(not(unix))]
        Some(_) => return Err("--unix is only supported on unix platforms".into()),
        None => {
            let host = args.optional("host").unwrap_or("127.0.0.1");
            let port: u16 = args.parsed_or("port", 0)?;
            Bind::Tcp(format!("{host}:{port}"))
        }
    };
    let cfg = ServeConfig {
        bind,
        workers: args.parsed_or("workers", 2)?,
        queue_cap: args.parsed_or("queue", 64)?,
        cache_cap: args.parsed_or("cache", 32)?,
        default_deadline_ms: match args.optional("deadline-ms") {
            Some(ms) => Some(
                ms.parse()
                    .map_err(|_| format!("bad --deadline-ms '{ms}'"))?,
            ),
            None => None,
        },
        par: specs::parse_threads(args.optional("threads").unwrap_or("auto"))?,
    };
    if cfg.workers == 0 {
        return Err("--workers must be >= 1".into());
    }

    obs_opts.begin();
    install_sigint();
    let handle = server::spawn(cfg).map_err(|e| format!("bind failed: {e}"))?;
    // Printed (and flushed) before blocking so scripts and tests can
    // discover the ephemeral port.
    println!("serving on {}", handle.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    while !SIGINT_SEEN.load(std::sync::atomic::Ordering::SeqCst) && !handle.stopping() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    let stats = handle.join();

    let mut out = String::new();
    let _ = writeln!(out, "drained; final stats:");
    let _ = writeln!(
        out,
        "  map requests:  {} (ok {}, busy {}, errors {})",
        stats.requests, stats.ok, stats.busy, stats.errors
    );
    let _ = writeln!(
        out,
        "  oracle cache:  {} hits / {} misses ({:.0}% hit rate)",
        stats.oracle_hits,
        stats.oracle_misses,
        100.0 * stats.oracle_hit_rate()
    );
    let _ = writeln!(
        out,
        "  hier cache:    {} hits / {} misses",
        stats.hier_hits, stats.hier_misses
    );
    obs_opts.end(&mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Args {
        Args::parse(&v.iter().map(|x| x.to_string()).collect::<Vec<_>>()).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("topomap-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_map_eval_simulate_roundtrip() {
        let tasks_path = tmp("tasks.json");
        let map_path = tmp("mapping.json");

        let out = cmd_gen(&args(&[
            "--pattern",
            "stencil2d:4x4",
            "--bytes",
            "2048",
            "--out",
            &tasks_path,
        ]))
        .unwrap();
        assert!(out.contains("16 tasks"));

        let out = cmd_map(&args(&[
            "--topology",
            "torus:4x4",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
            "--out",
            &map_path,
        ]))
        .unwrap();
        assert!(out.contains("hops-per-byte: 1.0000"), "{out}");

        let out = cmd_eval(&args(&[
            "--topology",
            "torus:4x4",
            "--tasks",
            &tasks_path,
            "--mapping",
            &map_path,
        ]))
        .unwrap();
        assert!(out.contains("max dilation:     1"), "{out}");

        let out = cmd_simulate(&args(&[
            "--topology",
            "torus:4x4",
            "--tasks",
            &tasks_path,
            "--mapping",
            &map_path,
            "--iterations",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("completion:"), "{out}");
        assert!(out.contains("avg hops:           1.000"), "{out}");
    }

    #[test]
    fn map_rejects_oversized_workload() {
        let tasks_path = tmp("big.json");
        cmd_gen(&args(&["--pattern", "stencil2d:5x5", "--out", &tasks_path])).unwrap();
        let err = cmd_map(&args(&[
            "--topology",
            "torus:4x4",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
        ]))
        .unwrap_err();
        assert!(err.contains("partition"), "{err}");
    }

    #[test]
    fn simulate_rejects_metric_only_topology() {
        let tasks_path = tmp("ft-tasks.json");
        let map_path = tmp("ft-map.json");
        cmd_gen(&args(&["--pattern", "stencil2d:4x4", "--out", &tasks_path])).unwrap();
        cmd_map(&args(&[
            "--topology",
            "fattree:4:2",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
            "--out",
            &map_path,
        ]))
        .unwrap();
        let err = cmd_simulate(&args(&[
            "--topology",
            "fattree:4:2",
            "--tasks",
            &tasks_path,
            "--mapping",
            &map_path,
        ]))
        .unwrap_err();
        assert!(err.contains("metric-only"), "{err}");
    }

    #[test]
    fn eval_works_on_metric_only_topology_without_link_loads() {
        let tasks_path = tmp("ft2-tasks.json");
        let map_path = tmp("ft2-map.json");
        cmd_gen(&args(&["--pattern", "ring:8", "--out", &tasks_path])).unwrap();
        cmd_map(&args(&[
            "--topology",
            "fattree:2:3",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topocentlb",
            "--out",
            &map_path,
        ]))
        .unwrap();
        let out = cmd_eval(&args(&[
            "--topology",
            "fattree:2:3",
            "--tasks",
            &tasks_path,
            "--mapping",
            &map_path,
        ]))
        .unwrap();
        assert!(out.contains("hops-per-byte"));
        assert!(
            !out.contains("max link load"),
            "no link loads for metric-only"
        );
    }

    #[test]
    fn threads_flag_does_not_change_the_mapping() {
        let tasks_path = tmp("thr-tasks.json");
        cmd_gen(&args(&["--pattern", "stencil2d:4x4", "--out", &tasks_path])).unwrap();
        let run = |threads: &str, path: &str| {
            cmd_map(&args(&[
                "--topology",
                "torus:4x4",
                "--tasks",
                &tasks_path,
                "--mapper",
                "refine",
                "--threads",
                threads,
                "--out",
                path,
            ]))
            .unwrap();
            std::fs::read_to_string(path).unwrap()
        };
        let serial = run("1", &tmp("thr-m1.json"));
        let parallel = run("4", &tmp("thr-m4.json"));
        assert_eq!(serial, parallel);

        let err = cmd_map(&args(&[
            "--topology",
            "torus:4x4",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
            "--threads",
            "zero",
        ]))
        .unwrap_err();
        assert!(err.contains("thread count"), "{err}");
    }

    #[test]
    fn hierarchy_flag_runs_hier_mapper_end_to_end() {
        let tasks_path = tmp("hier-tasks.json");
        let map_path = tmp("hier-map.json");
        cmd_gen(&args(&["--pattern", "stencil2d:8x8", "--out", &tasks_path])).unwrap();
        let out = cmd_map(&args(&[
            "--topology",
            "torus:8x8",
            "--tasks",
            &tasks_path,
            "--hierarchy",
            "4:4:4",
            "--out",
            &map_path,
        ]))
        .unwrap();
        assert!(out.contains("HierMapper(4:4:4)"), "{out}");
        assert!(out.contains("hops-per-byte: 1.0000"), "{out}");
        // `--mapper hier` with no --hierarchy auto-chooses the arities.
        let out = cmd_map(&args(&[
            "--topology",
            "torus:8x8",
            "--tasks",
            &tasks_path,
            "--mapper",
            "hier",
        ]))
        .unwrap();
        assert!(out.contains("HierMapper("), "{out}");

        // Malformed spec surfaces the parser's message.
        let err = cmd_map(&args(&[
            "--topology",
            "torus:8x8",
            "--tasks",
            &tasks_path,
            "--hierarchy",
            "4:0:8",
        ]))
        .unwrap_err();
        assert!(err.contains("zero children"), "{err}");
        // Conflicting --mapper is rejected, as is a dangling --hier-dist.
        let err = cmd_map(&args(&[
            "--topology",
            "torus:8x8",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
            "--hierarchy",
            "4:4:4",
        ]))
        .unwrap_err();
        assert!(err.contains("--mapper"), "{err}");
        let err = cmd_map(&args(&[
            "--topology",
            "torus:8x8",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
            "--hier-dist",
            "1:2:3",
        ]))
        .unwrap_err();
        assert!(err.contains("--hierarchy"), "{err}");
    }

    #[test]
    fn geometric_mappers_and_warm_start_run_end_to_end() {
        let tasks_path = tmp("geom-tasks.json");
        cmd_gen(&args(&["--pattern", "stencil2d:8x8", "--out", &tasks_path])).unwrap();
        // SFC on a matching torus embeds perfectly.
        for mapper in ["sfc", "sfc-morton", "rcb"] {
            let out = cmd_map(&args(&[
                "--topology",
                "torus:8x8",
                "--tasks",
                &tasks_path,
                "--mapper",
                mapper,
            ]))
            .unwrap();
            assert!(out.contains("hops-per-byte"), "{mapper}: {out}");
        }
        // Warm-started refine reports the init in its name.
        let out = cmd_map(&args(&[
            "--topology",
            "torus:8x8",
            "--tasks",
            &tasks_path,
            "--mapper",
            "refine",
            "--init",
            "sfc",
        ]))
        .unwrap();
        assert!(out.contains("SFC(Hilbert)+Refine"), "{out}");
        assert!(out.contains("hops-per-byte: 1.0000"), "{out}");
        // --init outside refine is rejected.
        let err = cmd_map(&args(&[
            "--topology",
            "torus:8x8",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
            "--init",
            "sfc",
        ]))
        .unwrap_err();
        assert!(err.contains("refine"), "{err}");
    }

    #[test]
    fn simulate_init_computes_starting_mapping() {
        let tasks_path = tmp("sim-init-tasks.json");
        cmd_gen(&args(&[
            "--pattern",
            "stencil2d:4x4",
            "--bytes",
            "65536",
            "--out",
            &tasks_path,
        ]))
        .unwrap();
        let base = [
            "--topology",
            "torus:4x4",
            "--tasks",
            tasks_path.as_str(),
            "--init",
            "sfc",
        ];
        // --init without --refine-contention is rejected.
        let err = cmd_simulate(&args(&base)).unwrap_err();
        assert!(err.contains("--refine-contention"), "{err}");
        // With it, the warm start feeds the contention loop directly.
        let mut full = base.to_vec();
        full.extend([
            "--iterations",
            "5",
            "--refine-contention",
            "--sim-iters",
            "8",
        ]);
        let out = cmd_simulate(&args_with_profile(&full)).unwrap();
        assert!(out.contains("contention refine:"), "{out}");
        // --init and --mapping together are rejected.
        let mut both = base.to_vec();
        both.extend(["--mapping", "/tmp/nope.json", "--refine-contention"]);
        let err = cmd_simulate(&args_with_profile(&both)).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn missing_flags_are_reported() {
        assert!(cmd_gen(&args(&["--out", "/tmp/x"])).is_err());
        assert!(cmd_map(&args(&["--topology", "torus:2x2"])).is_err());
    }

    fn args_with_profile(v: &[&str]) -> Args {
        Args::parse_with_flags(
            &v.iter().map(|x| x.to_string()).collect::<Vec<_>>(),
            BOOL_FLAGS,
        )
        .unwrap()
    }

    #[test]
    fn unknown_trace_format_is_rejected() {
        let err = cmd_map(&args(&[
            "--topology",
            "torus:2x2",
            "--tasks",
            "unused.json",
            "--mapper",
            "topolb",
            "--trace-format",
            "xml",
        ]))
        .unwrap_err();
        assert!(err.contains("trace-format"), "{err}");
    }

    #[test]
    fn simulate_refine_contention_end_to_end() {
        let tasks_path = tmp("cont-tasks.json");
        let map_path = tmp("cont-map.json");
        let refined_path = tmp("cont-refined.json");
        cmd_gen(&args(&[
            "--pattern",
            "stencil2d:4x4",
            "--bytes",
            "65536",
            "--out",
            &tasks_path,
        ]))
        .unwrap();
        cmd_map(&args(&[
            "--topology",
            "dragonfly:4:8",
            "--tasks",
            &tasks_path,
            "--mapper",
            "random",
            "--seed",
            "7",
            "--out",
            &map_path,
        ]))
        .unwrap();
        let out = cmd_simulate(&args_with_profile(&[
            "--topology",
            "dragonfly:4:8",
            "--tasks",
            &tasks_path,
            "--mapping",
            &map_path,
            "--iterations",
            "5",
            "--bandwidth-mbps",
            "100",
            "--refine-contention",
            "--sim-iters",
            "24",
            "--threads",
            "2",
            "--out",
            &refined_path,
        ]))
        .unwrap();
        assert!(out.contains("contention refine:"), "{out}");
        assert!(out.contains("refined completion:"), "{out}");
        assert!(out.contains(&format!("wrote {refined_path}")), "{out}");
        // The refined mapping is a valid input to eval/simulate again.
        let out = cmd_eval(&args(&[
            "--topology",
            "dragonfly:4:8",
            "--tasks",
            &tasks_path,
            "--mapping",
            &refined_path,
        ]))
        .unwrap();
        assert!(out.contains("hops-per-byte"), "{out}");
    }

    #[test]
    fn dangling_contention_flags_are_rejected() {
        let tasks_path = tmp("dang-tasks.json");
        let map_path = tmp("dang-map.json");
        cmd_gen(&args(&["--pattern", "stencil2d:4x4", "--out", &tasks_path])).unwrap();
        cmd_map(&args(&[
            "--topology",
            "torus:4x4",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
            "--out",
            &map_path,
        ]))
        .unwrap();
        let base = [
            "--topology",
            "torus:4x4",
            "--tasks",
            tasks_path.as_str(),
            "--mapping",
            map_path.as_str(),
        ];
        let mut with_sim_iters = base.to_vec();
        with_sim_iters.extend(["--sim-iters", "8"]);
        let err = cmd_simulate(&args(&with_sim_iters)).unwrap_err();
        assert!(err.contains("--refine-contention"), "{err}");
        let mut with_out = base.to_vec();
        with_out.extend(["--out", "/tmp/nope.json"]);
        let err = cmd_simulate(&args(&with_out)).unwrap_err();
        assert!(err.contains("--refine-contention"), "{err}");
        let mut bad_budget = base.to_vec();
        bad_budget.extend(["--refine-contention", "--sim-iters", "1"]);
        let err = cmd_simulate(&args_with_profile(&bad_budget)).unwrap_err();
        assert!(err.contains("sim-iters"), "{err}");
    }

    #[test]
    fn map_profile_writes_trace_and_summary() {
        let tasks_path = tmp("prof-tasks.json");
        let trace_json = tmp("prof-trace.json");
        let trace_csv = tmp("prof-trace.csv");
        cmd_gen(&args(&["--pattern", "stencil2d:4x4", "--out", &tasks_path])).unwrap();

        let out = cmd_map(&args_with_profile(&[
            "--topology",
            "torus:4x4",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
            "--profile",
            "--trace-out",
            &trace_json,
        ]))
        .unwrap();
        assert!(out.contains("profile:"), "{out}");
        assert!(out.contains("topolb.map"), "{out}");
        let report =
            obs::Report::from_json(&std::fs::read_to_string(&trace_json).unwrap()).unwrap();
        assert!(report.find_span("topolb.map").is_some());
        // Concurrent tests in this binary may also run mappers while the
        // global recorder is on, so assert a floor, not an exact count.
        assert!(report.counter("topolb.placements").unwrap_or(0) >= 16);

        // CSV format writes the line-oriented dump instead.
        cmd_map(&args_with_profile(&[
            "--topology",
            "torus:4x4",
            "--tasks",
            &tasks_path,
            "--mapper",
            "topolb",
            "--trace-out",
            &trace_csv,
            "--trace-format",
            "csv",
        ]))
        .unwrap();
        let csv = std::fs::read_to_string(&trace_csv).unwrap();
        assert!(csv.starts_with("kind,name,a,b"), "{csv}");
        assert!(csv.contains("counter,topolb.placements,"), "{csv}");
    }
}
