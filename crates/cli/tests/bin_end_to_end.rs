//! End-to-end tests that spawn the actual `topomap` binary.

use std::process::Command;

fn topomap(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_topomap"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("topomap-bin-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn full_workflow_through_the_binary() {
    let tasks = tmp("t.json");
    let mapping = tmp("m.json");

    let (ok, out, err) = topomap(&[
        "gen",
        "--pattern",
        "stencil2d:6x6",
        "--bytes",
        "2048",
        "--out",
        &tasks,
    ]);
    assert!(ok, "gen failed: {err}");
    assert!(out.contains("36 tasks"), "{out}");

    let (ok, out, err) = topomap(&[
        "map",
        "--topology",
        "torus:6x6",
        "--tasks",
        &tasks,
        "--mapper",
        "topolb",
        "--out",
        &mapping,
    ]);
    assert!(ok, "map failed: {err}");
    assert!(out.contains("hops-per-byte: 1.0000"), "{out}");

    let (ok, out, err) = topomap(&[
        "eval",
        "--topology",
        "torus:6x6",
        "--tasks",
        &tasks,
        "--mapping",
        &mapping,
    ]);
    assert!(ok, "eval failed: {err}");
    assert!(out.contains("local fraction:   1.000"), "{out}");

    let (ok, out, err) = topomap(&[
        "simulate",
        "--topology",
        "torus:6x6",
        "--tasks",
        &tasks,
        "--mapping",
        &mapping,
        "--iterations",
        "3",
        "--bandwidth-mbps",
        "200",
    ]);
    assert!(ok, "simulate failed: {err}");
    assert!(out.contains("network messages:   "), "{out}");
}

#[test]
fn profiled_map_and_simulate_emit_traces() {
    let tasks = tmp("prof-t.json");
    let mapping = tmp("prof-m.json");
    let map_trace = tmp("prof-map-trace.json");
    let sim_trace = tmp("prof-sim-trace.json");

    let (ok, _, err) = topomap(&["gen", "--pattern", "stencil2d:4x4", "--out", &tasks]);
    assert!(ok, "gen failed: {err}");

    let (ok, out, err) = topomap(&[
        "map",
        "--topology",
        "torus:4x4",
        "--tasks",
        &tasks,
        "--mapper",
        "refine",
        "--out",
        &mapping,
        "--profile",
        "--trace-out",
        &map_trace,
    ]);
    assert!(ok, "profiled map failed: {err}");
    assert!(out.contains("profile:"), "{out}");
    assert!(out.contains("wrote trace "), "{out}");

    let report =
        topomap_core::obs::Report::from_json(&std::fs::read_to_string(&map_trace).unwrap())
            .unwrap();
    // Refine wraps TopoLB: the tree must show the whole pipeline.
    for phase in [
        "refine.map",
        "refine.initial",
        "refine.sweep",
        "topolb.map",
        "estimation.init",
        "topolb.place",
    ] {
        assert!(report.find_span(phase).is_some(), "missing span {phase}");
    }
    assert!(report.span_count() >= 3, "span tree too shallow");
    assert!(report.counter("topolb.placements").unwrap_or(0) > 0);
    assert_eq!(
        report.counter("refine.candidates_evaluated"),
        Some(
            report.counter("refine.swaps_accepted").unwrap()
                + report.counter("refine.swaps_rejected").unwrap()
        )
    );

    let (ok, out, err) = topomap(&[
        "simulate",
        "--topology",
        "torus:4x4",
        "--tasks",
        &tasks,
        "--mapping",
        &mapping,
        "--iterations",
        "3",
        "--profile",
        "--trace-out",
        &sim_trace,
    ]);
    assert!(ok, "profiled simulate failed: {err}");
    assert!(out.contains("profile:"), "{out}");

    let report =
        topomap_core::obs::Report::from_json(&std::fs::read_to_string(&sim_trace).unwrap())
            .unwrap();
    for phase in [
        "netsim.run",
        "netsim.setup",
        "netsim.events",
        "netsim.aggregate",
    ] {
        assert!(report.find_span(phase).is_some(), "missing span {phase}");
    }
    assert!(report.counter("netsim.events").unwrap_or(0) > 0);
    // The two hop-bytes ledgers agree: per-link bytes vs per-delivery.
    let link_bytes: f64 = report
        .series("netsim.link_bytes")
        .map_or(0.0, |s| s.values.iter().sum());
    assert_eq!(
        link_bytes as u64,
        report.counter("netsim.bytes_hops").unwrap(),
        "link byte ledger must match delivered bytes x hops"
    );
}

#[test]
fn serve_subcommand_answers_requests_then_drains() {
    use std::io::{BufRead, BufReader};
    use topomap_serve::client::Client;
    use topomap_serve::proto::{MapRequest, Response};

    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_topomap"))
        .args(["serve", "--port", "0", "--workers", "2"])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("binary runs");

    // The server prints its bound address before accepting connections.
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let banner = lines
        .next()
        .expect("server printed a banner")
        .expect("banner is utf-8");
    let addr = banner
        .strip_prefix("serving on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .trim()
        .to_string();

    let mut client = Client::connect_tcp(&addr).expect("connect to spawned server");
    assert_eq!(client.ping().expect("ping"), topomap_serve::PROTO_VERSION);

    let tasks = topomap_taskgraph::gen::stencil2d(6, 6, 2048.0, false);
    let resp = client
        .map(MapRequest {
            id: 7,
            topology: "torus:6x6".to_string(),
            mapper: "topolb".to_string(),
            init: None,
            fast_lane: None,
            hierarchy: None,
            hier_dist: None,
            seed: 0,
            deadline_ms: Some(10_000),
            database: topomap_lb::LbDatabase::from_task_graph(&tasks),
        })
        .expect("map request");
    match resp {
        Response::MapOk {
            id, proc_of_task, ..
        } => {
            assert_eq!(id, 7);
            assert_eq!(proc_of_task.len(), 36);
        }
        other => panic!("expected MapOk, got {other:?}"),
    }

    client.shutdown().expect("shutdown");
    let status = child.wait().expect("server exits");
    assert!(status.success(), "serve exited nonzero");
    let rest: Vec<String> = lines.map(|l| l.unwrap()).collect();
    let tail = rest.join("\n");
    assert!(tail.contains("drained"), "missing drain summary: {tail}");
}

#[test]
fn errors_exit_nonzero_with_usage() {
    let (ok, _out, err) = topomap(&["map", "--topology", "nonsense:3"]);
    assert!(!ok);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("USAGE"), "{err}");

    let (ok, _, _) = topomap(&[]);
    assert!(!ok, "no subcommand must fail");
}

#[test]
fn help_succeeds() {
    let (ok, out, _) = topomap(&["help"]);
    assert!(ok);
    assert!(out.contains("SPECS"));
}
