//! End-to-end tests that spawn the actual `topomap` binary.

use std::process::Command;

fn topomap(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_topomap"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn tmp(name: &str) -> String {
    let dir = std::env::temp_dir().join("topomap-bin-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name).to_string_lossy().into_owned()
}

#[test]
fn full_workflow_through_the_binary() {
    let tasks = tmp("t.json");
    let mapping = tmp("m.json");

    let (ok, out, err) = topomap(&[
        "gen",
        "--pattern",
        "stencil2d:6x6",
        "--bytes",
        "2048",
        "--out",
        &tasks,
    ]);
    assert!(ok, "gen failed: {err}");
    assert!(out.contains("36 tasks"), "{out}");

    let (ok, out, err) = topomap(&[
        "map",
        "--topology",
        "torus:6x6",
        "--tasks",
        &tasks,
        "--mapper",
        "topolb",
        "--out",
        &mapping,
    ]);
    assert!(ok, "map failed: {err}");
    assert!(out.contains("hops-per-byte: 1.0000"), "{out}");

    let (ok, out, err) = topomap(&[
        "eval",
        "--topology",
        "torus:6x6",
        "--tasks",
        &tasks,
        "--mapping",
        &mapping,
    ]);
    assert!(ok, "eval failed: {err}");
    assert!(out.contains("local fraction:   1.000"), "{out}");

    let (ok, out, err) = topomap(&[
        "simulate",
        "--topology",
        "torus:6x6",
        "--tasks",
        &tasks,
        "--mapping",
        &mapping,
        "--iterations",
        "3",
        "--bandwidth-mbps",
        "200",
    ]);
    assert!(ok, "simulate failed: {err}");
    assert!(out.contains("network messages:   "), "{out}");
}

#[test]
fn errors_exit_nonzero_with_usage() {
    let (ok, _out, err) = topomap(&["map", "--topology", "nonsense:3"]);
    assert!(!ok);
    assert!(err.contains("error:"), "{err}");
    assert!(err.contains("USAGE"), "{err}");

    let (ok, _, _) = topomap(&[]);
    assert!(!ok, "no subcommand must fail");
}

#[test]
fn help_succeeds() {
    let (ok, out, _) = topomap(&["help"]);
    assert!(ok);
    assert!(out.contains("SPECS"));
}
