//! Jacobi-like stencil communication patterns.
//!
//! The paper's main micro-benchmark: "chares (or tasks) which communicate
//! in a 2D-Mesh pattern. Each chare communicates with its four neighbors
//! (three or two for boundary and corner chares)" (§5.2), plus the 3D
//! variant of the introduction's Table 1 experiment.

use crate::TaskGraph;

/// A 2D `nx × ny` stencil: each task exchanges `msg_bytes` per iteration
/// with its 4-neighborhood. With `periodic = true` the pattern wraps
/// (a 2D-torus pattern); otherwise boundary tasks have 3 and corners 2
/// neighbors, exactly the paper's benchmark.
pub fn stencil2d(nx: usize, ny: usize, msg_bytes: f64, periodic: bool) -> TaskGraph {
    stencil_nd(&[nx, ny], msg_bytes, periodic)
}

/// A 3D `nx × ny × nz` stencil with 6-neighborhood exchanges (the
/// "3D Jacobi-like program where elements are logically arranged in a
/// 3D-mesh and send messages to all its neighbours" of Table 1).
pub fn stencil3d(nx: usize, ny: usize, nz: usize, msg_bytes: f64, periodic: bool) -> TaskGraph {
    stencil_nd(&[nx, ny, nz], msg_bytes, periodic)
}

/// General N-dimensional stencil task graph.
///
/// Each undirected edge carries `2 * msg_bytes` — both endpoints send one
/// `msg_bytes` message per iteration, and task-graph edge weights represent
/// "total communication between the tasks at the end points" (§1).
pub fn stencil_nd(dims: &[usize], msg_bytes: f64, periodic: bool) -> TaskGraph {
    assert!(!dims.is_empty());
    assert!(dims.iter().all(|&d| d > 0));
    let n: usize = dims.iter().product();
    let mut b = TaskGraph::builder(n);

    // Row-major strides.
    let mut strides = vec![1usize; dims.len()];
    for d in (0..dims.len().saturating_sub(1)).rev() {
        strides[d] = strides[d + 1] * dims[d + 1];
    }

    let edge_w = 2.0 * msg_bytes;
    for id in 0..n {
        for d in 0..dims.len() {
            let x = (id / strides[d]) % dims[d];
            let nd = dims[d];
            if nd == 1 {
                continue;
            }
            // Only emit the +1 edge from each node; builder symmetrizes.
            if x + 1 < nd {
                b.add_comm(id, id + strides[d], edge_w);
            } else if periodic && nd > 2 {
                b.add_comm(id, id - (nd - 1) * strides[d], edge_w);
            }
        }
    }
    // Grid positions are the natural task coordinates (padded to 3-D);
    // higher-dimensional stencils have no 3-D embedding, so none.
    if dims.len() <= 3 {
        let coords = (0..n)
            .map(|id| {
                let mut c = [0.0f64; 3];
                for (d, cd) in c.iter_mut().enumerate().take(dims.len()) {
                    *cd = ((id / strides[d]) % dims[d]) as f64;
                }
                c
            })
            .collect();
        b.set_coords(coords);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stencil2d_boundary_degrees() {
        let g = stencil2d(4, 5, 100.0, false);
        assert_eq!(g.num_tasks(), 20);
        // Corner (0,0) -> id 0: degree 2.
        assert_eq!(g.degree(0), 2);
        // Edge (0,2) -> id 2: degree 3.
        assert_eq!(g.degree(2), 3);
        // Interior (1,2) -> id 7: degree 4.
        assert_eq!(g.degree(7), 4);
    }

    #[test]
    fn stencil2d_edge_count() {
        // nx*(ny-1) + ny*(nx-1) undirected edges for open boundaries.
        let g = stencil2d(6, 7, 1.0, false);
        assert_eq!(g.num_edges(), 6 * 6 + 7 * 5);
    }

    #[test]
    fn periodic_stencil_is_regular() {
        let g = stencil2d(4, 4, 1.0, true);
        for t in 0..16 {
            assert_eq!(g.degree(t), 4);
        }
        assert_eq!(g.num_edges(), 32);
    }

    #[test]
    fn stencil3d_interior_degree() {
        let g = stencil3d(4, 4, 4, 1.0, false);
        assert_eq!(g.num_tasks(), 64);
        // Node (1,1,1): id = 1*16 + 1*4 + 1 = 21.
        assert_eq!(g.degree(21), 6);
        // Corner (0,0,0).
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn edge_weight_is_bidirectional_volume() {
        let g = stencil2d(2, 2, 50.0, false);
        assert_eq!(g.edge_weight(0, 1), Some(100.0));
    }

    #[test]
    fn degenerate_single_row() {
        let g = stencil2d(1, 5, 1.0, false);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn periodic_two_wide_dim_not_duplicated() {
        // With size-2 periodic dimension, wrap edge equals the direct edge.
        let g = stencil2d(2, 3, 1.0, true);
        // dim0 size 2: single edge pair per column; dim1 size 3: ring.
        assert_eq!(g.degree(0), 1 + 2);
    }

    #[test]
    fn stencil_coords_are_grid_positions() {
        let g = stencil2d(4, 5, 1.0, false);
        let cs = g.coords().unwrap();
        // Row-major: id = x*5 + y.
        assert_eq!(cs[0], [0.0, 0.0, 0.0]);
        assert_eq!(cs[7], [1.0, 2.0, 0.0]);
        let g3 = stencil3d(2, 3, 4, 1.0, false);
        assert_eq!(g3.coords().unwrap()[12 + 2 * 4 + 3], [1.0, 2.0, 3.0]);
        // 4-D stencils have no 3-D embedding.
        assert!(stencil_nd(&[2, 2, 2, 2], 1.0, false).coords().is_none());
    }

    #[test]
    fn total_comm_scales_with_msg_size() {
        let g1 = stencil3d(3, 3, 3, 1.0, false);
        let g2 = stencil3d(3, 3, 3, 1024.0, false);
        assert!((g2.total_comm() / g1.total_comm() - 1024.0).abs() < 1e-9);
    }
}
