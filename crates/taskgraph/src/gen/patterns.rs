//! Simple deterministic communication patterns (ring, all-to-all).
//!
//! Used as stress inputs for the mappers and as degenerate cases for the
//! test suite: a ring embeds perfectly in any torus (hops-per-byte 1 is
//! achievable), while all-to-all admits *no* locality — every mapping has
//! the same hop-bytes on a vertex-transitive topology, which makes it a
//! sharp correctness probe for the metric code.

use crate::TaskGraph;

/// A ring of `n` tasks, each exchanging `msg_bytes` per iteration with its
/// two ring neighbors.
pub fn ring(n: usize, msg_bytes: f64) -> TaskGraph {
    assert!(n >= 2);
    let mut b = TaskGraph::builder(n);
    let w = 2.0 * msg_bytes;
    for i in 0..n {
        b.add_comm(i, (i + 1) % n, w);
    }
    b.build()
}

/// Complete communication: every pair of tasks exchanges `msg_bytes`.
pub fn all_to_all(n: usize, msg_bytes: f64) -> TaskGraph {
    assert!(n >= 2);
    let mut b = TaskGraph::builder(n);
    let w = 2.0 * msg_bytes;
    for a in 0..n {
        for bb in (a + 1)..n {
            b.add_comm(a, bb, w);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_structure() {
        let g = ring(6, 10.0);
        assert_eq!(g.num_edges(), 6);
        for t in 0..6 {
            assert_eq!(g.degree(t), 2);
            assert_eq!(g.weighted_degree(t), 40.0);
        }
    }

    #[test]
    fn ring_of_two_has_single_edge() {
        let g = ring(2, 5.0);
        assert_eq!(g.num_edges(), 1);
        // Two add_comm calls (0->1 and 1->0 wrap) merge into one edge of 2*w.
        assert_eq!(g.edge_weight(0, 1), Some(20.0));
    }

    #[test]
    fn all_to_all_structure() {
        let g = all_to_all(5, 1.0);
        assert_eq!(g.num_edges(), 10);
        for t in 0..5 {
            assert_eq!(g.degree(t), 4);
        }
        assert_eq!(g.total_comm(), 20.0);
    }
}
