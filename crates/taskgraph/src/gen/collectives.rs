//! Communication patterns of common parallel kernels beyond stencils:
//! reduction trees, butterflies (FFT / recursive-doubling collectives),
//! matrix transpose, and the Sweep3D-style wavefront pattern — the
//! workload families that dominated BG/L-era machines alongside Jacobi
//! and molecular dynamics.

use crate::TaskGraph;

/// A binomial reduction/broadcast tree over `n` tasks: task `i` exchanges
/// `msg_bytes` with `i ± 2^k` partners as in a recursive-doubling
/// reduction. Every round's pairs become task-graph edges.
pub fn reduction_tree(n: usize, msg_bytes: f64) -> TaskGraph {
    assert!(n >= 2);
    let mut b = TaskGraph::builder(n);
    let w = 2.0 * msg_bytes;
    let mut stride = 1usize;
    while stride < n {
        let mut i = 0;
        while i + stride < n {
            // In a binomial tree, the node at offset 0 of each 2*stride
            // block talks to the node at offset `stride`.
            if i % (2 * stride) == 0 {
                b.add_comm(i, i + stride, w);
            }
            i += stride;
        }
        stride *= 2;
    }
    b.build()
}

/// A butterfly (hypercube exchange) over `n = 2^k` tasks: every task
/// exchanges `msg_bytes` with each partner differing in one bit — the
/// pattern of FFTs and recursive-doubling all-reduce. Its task graph *is*
/// the hypercube, so it embeds perfectly in a [`Hypercube`] machine and
/// poorly in low-dimensional tori: a sharp stress test for mappers.
///
/// [`Hypercube`]: ../../topomap_topology/struct.Hypercube.html
pub fn butterfly(n: usize, msg_bytes: f64) -> TaskGraph {
    assert!(
        n >= 2 && n.is_power_of_two(),
        "butterfly needs a power of two"
    );
    let mut b = TaskGraph::builder(n);
    let w = 2.0 * msg_bytes;
    let mut bit = 1usize;
    while bit < n {
        for i in 0..n {
            let j = i ^ bit;
            if i < j {
                b.add_comm(i, j, w);
            }
        }
        bit <<= 1;
    }
    b.build()
}

/// The matrix-transpose pattern over a `rows × cols` process grid: task
/// `(r, c)` exchanges `msg_bytes` with task `(c, r)` (square grids only).
/// All pairs communicate simultaneously across the diagonal — a classic
/// bisection-bandwidth stress.
pub fn transpose(side: usize, msg_bytes: f64) -> TaskGraph {
    assert!(side >= 2);
    let n = side * side;
    let mut b = TaskGraph::builder(n);
    let w = 2.0 * msg_bytes;
    for r in 0..side {
        for c in (r + 1)..side {
            b.add_comm(r * side + c, c * side + r, w);
        }
    }
    b.build()
}

/// The Sweep3D wavefront pattern: a 2D process grid where each task
/// communicates with its east and south neighbors only (the transport
/// sweep's downstream dependencies), with heavier traffic than a Jacobi
/// halo. Structurally a directed wavefront; as an undirected task graph
/// it is a 2D grid minus the diagonal symmetry.
pub fn sweep2d(nx: usize, ny: usize, msg_bytes: f64) -> TaskGraph {
    assert!(nx >= 1 && ny >= 1 && nx * ny >= 2);
    let mut b = TaskGraph::builder(nx * ny);
    let w = 2.0 * msg_bytes;
    for x in 0..nx {
        for y in 0..ny {
            let id = x * ny + y;
            if x + 1 < nx {
                b.add_comm(id, id + ny, w);
            }
            if y + 1 < ny {
                b.add_comm(id, id + 1, w);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_tree_edge_count() {
        // A binomial tree over n nodes has n-1 edges.
        for n in [2usize, 8, 16, 13, 100] {
            let g = reduction_tree(n, 10.0);
            assert_eq!(g.num_edges(), n - 1, "n = {n}");
        }
    }

    #[test]
    fn reduction_tree_root_degree_is_log() {
        let g = reduction_tree(16, 1.0);
        assert_eq!(g.degree(0), 4); // partners at 1, 2, 4, 8
    }

    #[test]
    fn butterfly_is_hypercube() {
        let g = butterfly(16, 1.0);
        assert_eq!(g.num_edges(), 16 * 4 / 2);
        for t in 0..16 {
            assert_eq!(g.degree(t), 4);
            for (u, _) in g.neighbors(t) {
                assert_eq!((t ^ u).count_ones(), 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn butterfly_rejects_non_power() {
        butterfly(12, 1.0);
    }

    #[test]
    fn transpose_pairs_off_diagonal() {
        let g = transpose(4, 10.0);
        assert_eq!(g.num_tasks(), 16);
        // side*(side-1)/2 pairs.
        assert_eq!(g.num_edges(), 6);
        // Diagonal tasks don't communicate.
        for d in 0..4 {
            assert_eq!(g.degree(d * 4 + d), 0);
        }
        assert_eq!(g.edge_weight(1, 4), Some(20.0)); // (0,1) <-> (1,0)
    }

    #[test]
    fn sweep2d_structure() {
        let g = sweep2d(3, 3, 1.0);
        // Same undirected edge set as an open 3x3 stencil.
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.degree(0), 2); // corner: east + south
        assert_eq!(g.degree(4), 4); // center
    }

    #[test]
    fn butterfly_embeds_in_hypercube_not_torus() {
        // Sanity: the butterfly's ideal host is the hypercube.
        let g = butterfly(8, 1.0);
        // Total comm = 12 edges * 2.0
        assert_eq!(g.total_comm(), 24.0);
    }
}
