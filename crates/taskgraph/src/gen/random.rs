//! Seeded random task graphs.
//!
//! All generators take an explicit `u64` seed and use `StdRng`, so the same
//! inputs reproduce the same graph on every platform — experiments and
//! tests depend on this determinism.

use crate::TaskGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An Erdős–Rényi-style random task graph: `n` tasks, each of the
/// `n·avg_degree/2` undirected edges drawn uniformly (duplicates merge, so
/// the realized average degree is slightly below the target on dense
/// inputs). Edge weights are uniform in `[min_bytes, max_bytes]`, vertex
/// weights uniform in `[0.5, 1.5]`.
pub fn random_graph(
    n: usize,
    avg_degree: f64,
    min_bytes: f64,
    max_bytes: f64,
    seed: u64,
) -> TaskGraph {
    assert!(n >= 2);
    assert!(avg_degree >= 0.0 && avg_degree < n as f64);
    assert!(min_bytes <= max_bytes && min_bytes >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TaskGraph::builder(n);
    for t in 0..n {
        b.set_task_weight(t, rng.gen_range(0.5..1.5));
    }
    let m = ((n as f64) * avg_degree / 2.0).round() as usize;
    let mut placed = 0usize;
    let mut attempts = 0usize;
    while placed < m && attempts < 20 * m + 100 {
        attempts += 1;
        let a = rng.gen_range(0..n);
        let bb = rng.gen_range(0..n);
        if a == bb {
            continue;
        }
        let w = if (max_bytes - min_bytes).abs() < f64::EPSILON {
            min_bytes
        } else {
            rng.gen_range(min_bytes..max_bytes)
        };
        b.add_comm(a, bb, w);
        placed += 1;
    }
    b.build()
}

/// A random geometric task graph: `n` tasks at uniform positions in the
/// unit square, connected when within `radius`; edge weight decays
/// linearly with distance from `max_bytes` at distance 0 to `min_bytes`
/// at the cutoff. Produces the spatial locality structure typical of
/// scientific applications (and hence mappable with low hop-bytes).
pub fn random_geometric(
    n: usize,
    radius: f64,
    min_bytes: f64,
    max_bytes: f64,
    seed: u64,
) -> TaskGraph {
    assert!(n >= 2);
    assert!(radius > 0.0);
    assert!(min_bytes <= max_bytes && min_bytes >= 0.0);
    let mut rng = StdRng::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)))
        .collect();
    let mut b = TaskGraph::builder(n);
    for t in 0..n {
        b.set_task_weight(t, rng.gen_range(0.5..1.5));
    }
    for a in 0..n {
        for bb in (a + 1)..n {
            let dx = pts[a].0 - pts[bb].0;
            let dy = pts[a].1 - pts[bb].1;
            let d = (dx * dx + dy * dy).sqrt();
            if d <= radius {
                let w = max_bytes - (max_bytes - min_bytes) * (d / radius);
                b.add_comm(a, bb, w);
            }
        }
    }
    // The sampled points ARE the geometry; expose them to the SFC/RCB
    // mappers (z padded to 0 for the planar model).
    b.set_coords(pts.iter().map(|&(x, y)| [x, y, 0.0]).collect());
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let g1 = random_graph(50, 4.0, 10.0, 100.0, 42);
        let g2 = random_graph(50, 4.0, 10.0, 100.0, 42);
        assert_eq!(g1, g2);
    }

    #[test]
    fn different_seed_differs() {
        let g1 = random_graph(50, 4.0, 10.0, 100.0, 1);
        let g2 = random_graph(50, 4.0, 10.0, 100.0, 2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn approximate_degree_target() {
        let g = random_graph(200, 6.0, 1.0, 1.0, 7);
        let avg = 2.0 * g.num_edges() as f64 / g.num_tasks() as f64;
        assert!(avg > 4.5 && avg <= 6.0, "avg degree {avg}");
    }

    #[test]
    fn weights_within_bounds() {
        let g = random_graph(40, 3.0, 5.0, 9.0, 3);
        for (_, _, w) in g.edges() {
            // Merged duplicates can exceed max_bytes, but singles respect it.
            assert!(w >= 5.0);
        }
    }

    #[test]
    fn geometric_graph_is_local() {
        let g = random_geometric(100, 0.2, 1.0, 10.0, 11);
        // Determinism.
        assert_eq!(g, random_geometric(100, 0.2, 1.0, 10.0, 11));
        // Sparse: far fewer edges than complete.
        assert!(g.num_edges() < 100 * 99 / 4);
        assert!(g.num_edges() > 0);
    }

    #[test]
    fn zero_degree_graph_has_no_edges() {
        let g = random_graph(10, 0.0, 1.0, 2.0, 5);
        assert_eq!(g.num_edges(), 0);
    }
}
