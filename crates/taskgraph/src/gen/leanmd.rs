//! Synthetic LeanMD workload.
//!
//! **Substitution note (see DESIGN.md §4).** The paper's §5.2.3 maps
//! communication patterns from *LeanMD*, a Charm++ molecular-dynamics
//! mini-app, using load-database dumps from real runs at p ∈ {18, 512,
//! 1024} with a total of `3240 + p` chares. Those dumps are not available;
//! this generator reproduces the *structure* that drives Figures 5–6:
//!
//! - LeanMD (like NAMD) decomposes space into a 3D grid of **cells**
//!   (patches) holding atoms, plus **compute objects**, one per pair of
//!   cells within the interaction cutoff, that receive coordinates from
//!   both parent cells and return forces.
//! - We generate `p` cells on a balanced 3D grid and `3240` compute
//!   objects distributed over the cutoff-neighbor cell pairs (randomly,
//!   seeded), mirroring the paper's `3240 + p` chare count and its
//!   virtualization ratios (180 at p=18, ~6 at p=512, ~3 at p=1024).
//! - Cell↔compute messages carry atom coordinates/forces; per-cell atom
//!   counts are jittered ±20% so loads and volumes are inhomogeneous, as
//!   in a real MD run.
//!
//! What Figures 5–6 actually measure is hops-per-byte of the *coalesced*
//! p-group graph, which depends on the coalesced degree/locality — the
//! paper reports average coalesced degree 12.7 at p=18 (70% dense) and
//! 19.5 at p=512 (4% dense). This generator's coalesced graphs land in the
//! same regime (dense at tiny p because 180 chares per group touch almost
//! every other group; sparse and local at large p), which is the property
//! the experiment exercises.

use crate::{TaskGraph, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for the synthetic LeanMD workload.
#[derive(Debug, Clone)]
pub struct LeanMdConfig {
    /// Number of compute objects (the paper's runs had 3240).
    pub num_computes: usize,
    /// Bytes of coordinates a cell sends a compute per iteration (and the
    /// compute sends back as forces). The default, 2 KiB, is ~100 atoms of
    /// double-precision coordinates — typical for MD cell sizes.
    pub coord_bytes: f64,
    /// Relative jitter applied to per-cell atom counts (0.2 = ±20%).
    pub load_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for LeanMdConfig {
    fn default() -> Self {
        LeanMdConfig {
            num_computes: 3240,
            coord_bytes: 2048.0,
            load_jitter: 0.2,
            seed: 0x0001_ea9d,
        }
    }
}

/// Generate the synthetic LeanMD task graph for a machine of `p`
/// processors: `p` cell tasks + `cfg.num_computes` compute tasks
/// (`3240 + p` total with the default config, matching §5.2.3).
///
/// Task ids `0..p` are cells; `p..p+num_computes` are computes.
pub fn leanmd(p: usize, cfg: &LeanMdConfig) -> TaskGraph {
    assert!(p >= 2, "need at least two cells");
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ (p as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));

    // Balanced 3D cell grid with exactly p cells.
    let (cx, cy, cz) = balanced3(p);
    let dims = [cx, cy, cz];
    let strides = [cy * cz, cz, 1usize];

    // Enumerate cutoff-neighbor cell pairs: the 26-neighborhood (one-away
    // in each dimension, non-periodic — LeanMD boxes are finite).
    let mut pairs: Vec<(TaskId, TaskId)> = Vec::new();
    for id in 0..p {
        let x = id / strides[0] % dims[0];
        let y = id / strides[1] % dims[1];
        let z = id % dims[2];
        for dx in -1i64..=1 {
            for dy in -1i64..=1 {
                for dz in -1i64..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        continue;
                    }
                    let nx = x as i64 + dx;
                    let ny = y as i64 + dy;
                    let nz = z as i64 + dz;
                    if nx < 0 || ny < 0 || nz < 0 {
                        continue;
                    }
                    let (nx, ny, nz) = (nx as usize, ny as usize, nz as usize);
                    if nx >= dims[0] || ny >= dims[1] || nz >= dims[2] {
                        continue;
                    }
                    let nid = nx * strides[0] + ny * strides[1] + nz;
                    if id < nid {
                        pairs.push((id, nid));
                    }
                }
            }
        }
    }
    // Self-interactions: each cell also has a within-cell compute pair.
    for id in 0..p {
        pairs.push((id, id));
    }

    let n = p + cfg.num_computes;
    let mut b = TaskGraph::builder(n);

    // Per-cell "atom count" scale drives loads and message sizes.
    let scales: Vec<f64> = (0..p)
        .map(|_| 1.0 + rng.gen_range(-cfg.load_jitter..=cfg.load_jitter))
        .collect();

    // Cells do integration work proportional to their atoms.
    for (c, &s) in scales.iter().enumerate() {
        b.set_task_weight(c, s);
    }

    // Distribute compute objects over the pairs round-robin with random
    // start, so every pair gets ⌊k/|pairs|⌋ or ⌈k/|pairs|⌉ computes — as in
    // LeanMD, where each cell pair owns exactly its computes and the
    // virtualization ratio sets how many land per processor group.
    // Cells sit at their grid positions; computes at the midpoint of
    // their parent cells (self-pairs land on the cell itself).
    let cell_coord = |c: TaskId| -> [f64; 3] {
        [
            (c / strides[0] % dims[0]) as f64,
            (c / strides[1] % dims[1]) as f64,
            (c % dims[2]) as f64,
        ]
    };
    let mut coords: Vec<[f64; 3]> = (0..p).map(cell_coord).collect();
    coords.resize(n, [0.0; 3]);

    let offset = rng.gen_range(0..pairs.len());
    for i in 0..cfg.num_computes {
        let (ca, cb) = pairs[(offset + i) % pairs.len()];
        let t = p + i;
        let (pa, pb) = (cell_coord(ca), cell_coord(cb));
        coords[t] = [
            0.5 * (pa[0] + pb[0]),
            0.5 * (pa[1] + pb[1]),
            0.5 * (pa[2] + pb[2]),
        ];
        // Force computation cost scales with the product of atom counts.
        let cost = scales[ca] * scales[cb] * if ca == cb { 0.5 } else { 1.0 };
        b.set_task_weight(t, cost);
        // Coordinates in, forces out: traffic with each parent cell.
        let vol_a = 2.0 * cfg.coord_bytes * scales[ca];
        b.add_comm(ca, t, vol_a);
        if ca != cb {
            let vol_b = 2.0 * cfg.coord_bytes * scales[cb];
            b.add_comm(cb, t, vol_b);
        }
    }
    b.set_coords(coords);
    b.build()
}

/// Balanced 3-factorization used for the cell grid. Falls back to prime
/// `p` gracefully (a `1 × 1 × p` chain of cells is still a valid MD box).
fn balanced3(p: usize) -> (usize, usize, usize) {
    let mut best = (1usize, 1usize, p);
    let mut best_spread = p;
    let mut a = 1usize;
    while a * a * a <= p {
        if p.is_multiple_of(a) {
            let q = p / a;
            let mut bb = a;
            let mut bc = q;
            let mut x = (q as f64).sqrt() as usize + 1;
            while x >= 1 {
                if q.is_multiple_of(x) {
                    bb = x.min(q / x);
                    bc = x.max(q / x);
                    break;
                }
                x -= 1;
            }
            let lo = a.min(bb);
            let hi = bc.max(a);
            if hi - lo < best_spread {
                best_spread = hi - lo;
                best = (a, bb, bc);
            }
        }
        a += 1;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chare_count_matches_paper() {
        for p in [18usize, 512] {
            let g = leanmd(p, &LeanMdConfig::default());
            assert_eq!(g.num_tasks(), 3240 + p, "paper: 3240 + p chares");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = LeanMdConfig::default();
        assert_eq!(leanmd(64, &cfg), leanmd(64, &cfg));
    }

    #[test]
    fn computes_touch_only_parent_cells() {
        let p = 27;
        let g = leanmd(p, &LeanMdConfig::default());
        for t in p..g.num_tasks() {
            let deg = g.degree(t);
            assert!((1..=2).contains(&deg), "compute {t} has degree {deg}");
            for (nbr, _) in g.neighbors(t) {
                assert!(nbr < p, "compute neighbor must be a cell");
            }
        }
    }

    #[test]
    fn cells_communicate_only_via_computes() {
        let p = 27;
        let g = leanmd(p, &LeanMdConfig::default());
        for c in 0..p {
            for (nbr, _) in g.neighbors(c) {
                assert!(nbr >= p, "cells never talk directly");
            }
        }
    }

    #[test]
    fn all_loads_positive() {
        let g = leanmd(30, &LeanMdConfig::default());
        for t in 0..g.num_tasks() {
            assert!(g.vertex_weight(t) > 0.0);
        }
    }

    #[test]
    fn coalesced_density_regimes_match_paper() {
        // p = 18: paper reports each group talks to ~70% of groups.
        // With 3240 computes over 18 groups, the trivially-coalesced graph
        // (computes merged into parent-cell groups modulo p) must be dense.
        let p = 18;
        let g = leanmd(p, &LeanMdConfig::default());
        // Round-robin assignment: cell c -> group c, compute t -> t % p.
        let assign: Vec<usize> = (0..g.num_tasks())
            .map(|t| if t < p { t } else { t % p })
            .collect();
        let c = g.coalesce(&assign, p);
        let avg_deg = 2.0 * c.num_edges() as f64 / p as f64;
        assert!(
            avg_deg > 0.5 * (p - 1) as f64,
            "tiny-p coalesced graph should be dense, got avg degree {avg_deg}"
        );
    }

    #[test]
    fn balanced3_factorizations() {
        assert_eq!(balanced3(27), (3, 3, 3));
        assert_eq!(balanced3(64), (4, 4, 4));
        let (a, b, c) = balanced3(18);
        assert_eq!(a * b * c, 18);
        let (a, b, c) = balanced3(17); // prime
        assert_eq!(a * b * c, 17);
    }
}
