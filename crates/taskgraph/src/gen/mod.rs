//! Workload generators reproducing the paper's benchmark task graphs.

mod collectives;
mod leanmd;
mod patterns;
mod random;
mod stencil;

pub use collectives::{butterfly, reduction_tree, sweep2d, transpose};
pub use leanmd::{leanmd, LeanMdConfig};
pub use patterns::{all_to_all, ring};
pub use random::{random_geometric, random_graph};
pub use stencil::{stencil2d, stencil3d, stencil_nd};
