//! Task-graph transformations: the operations a long-running adaptive
//! application applies to its measured communication graph between load-
//! balancing steps (load drift, refinement-induced merges, composition of
//! phases).

use crate::{TaskGraph, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Scale every edge weight by `comm_factor` and every vertex weight by
/// `load_factor` (e.g. modeling a timestep change).
pub fn scale(g: &TaskGraph, load_factor: f64, comm_factor: f64) -> TaskGraph {
    assert!(load_factor >= 0.0 && comm_factor >= 0.0);
    let mut b = TaskGraph::builder(g.num_tasks());
    for t in 0..g.num_tasks() {
        b.set_task_weight(t, g.vertex_weight(t) * load_factor);
    }
    for (a, bb, w) in g.edges() {
        b.add_comm(a, bb, w * comm_factor);
    }
    if let Some(cs) = g.coords() {
        b.set_coords(cs.to_vec());
    }
    b.build()
}

/// Apply multiplicative jitter to vertex loads: each load is multiplied
/// by a factor uniform in `[1-amount, 1+amount]`. Models the load drift
/// that makes periodic re-balancing necessary (AMR refinement, particle
/// migration).
pub fn perturb_loads(g: &TaskGraph, amount: f64, seed: u64) -> TaskGraph {
    assert!((0.0..1.0).contains(&amount));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = TaskGraph::builder(g.num_tasks());
    for t in 0..g.num_tasks() {
        let f = 1.0 + rng.gen_range(-amount..=amount);
        b.set_task_weight(t, g.vertex_weight(t) * f);
    }
    for (a, bb, w) in g.edges() {
        b.add_comm(a, bb, w);
    }
    if let Some(cs) = g.coords() {
        b.set_coords(cs.to_vec());
    }
    b.build()
}

/// Disjoint union: the tasks of `b` are renumbered after those of `a`
/// (two independent application modules sharing a machine).
pub fn disjoint_union(a: &TaskGraph, b: &TaskGraph) -> TaskGraph {
    let na = a.num_tasks();
    let mut out = TaskGraph::builder(na + b.num_tasks());
    for t in 0..na {
        out.set_task_weight(t, a.vertex_weight(t));
    }
    for t in 0..b.num_tasks() {
        out.set_task_weight(na + t, b.vertex_weight(t));
    }
    for (x, y, w) in a.edges() {
        out.add_comm(x, y, w);
    }
    for (x, y, w) in b.edges() {
        out.add_comm(na + x, na + y, w);
    }
    // Geometry survives only when both modules carry it (the two
    // coordinate frames are simply juxtaposed).
    if let (Some(ca), Some(cb)) = (a.coords(), b.coords()) {
        let mut cs = ca.to_vec();
        cs.extend_from_slice(cb);
        out.set_coords(cs);
    }
    out.build()
}

/// Overlay: sum the communication of two graphs on the same task set
/// (an application with two communication phases, e.g. halo exchange +
/// transpose).
pub fn overlay(a: &TaskGraph, b: &TaskGraph) -> TaskGraph {
    assert_eq!(
        a.num_tasks(),
        b.num_tasks(),
        "overlay needs equal task sets"
    );
    let mut out = TaskGraph::builder(a.num_tasks());
    for t in 0..a.num_tasks() {
        out.set_task_weight(t, a.vertex_weight(t) + b.vertex_weight(t));
    }
    for (x, y, w) in a.edges().chain(b.edges()) {
        out.add_comm(x, y, w);
    }
    // Same task set, same geometry: prefer a's coordinates.
    if let Some(cs) = a.coords().or_else(|| b.coords()) {
        out.set_coords(cs.to_vec());
    }
    out.build()
}

/// Drop edges lighter than `threshold` bytes (focus mapping effort on the
/// heavy structure; the paper's LB framework does the same when building
/// its database from sampled communication).
pub fn prune_light_edges(g: &TaskGraph, threshold: f64) -> TaskGraph {
    let mut b = TaskGraph::builder(g.num_tasks());
    for t in 0..g.num_tasks() {
        b.set_task_weight(t, g.vertex_weight(t));
    }
    for (x, y, w) in g.edges() {
        if w >= threshold {
            b.add_comm(x, y, w);
        }
    }
    if let Some(cs) = g.coords() {
        b.set_coords(cs.to_vec());
    }
    b.build()
}

/// Relabel tasks by a permutation: `perm[old] = new`. Useful for testing
/// label-invariance of mappers and metrics.
pub fn relabel(g: &TaskGraph, perm: &[TaskId]) -> TaskGraph {
    assert_eq!(perm.len(), g.num_tasks());
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        assert!(p < perm.len() && !seen[p], "not a permutation");
        seen[p] = true;
    }
    let mut b = TaskGraph::builder(g.num_tasks());
    for (t, &new) in perm.iter().enumerate() {
        b.set_task_weight(new, g.vertex_weight(t));
    }
    for (x, y, w) in g.edges() {
        b.add_comm(perm[x], perm[y], w);
    }
    if let Some(cs) = g.coords() {
        let mut out = vec![[0.0f64; 3]; cs.len()];
        for (t, &new) in perm.iter().enumerate() {
            out[new] = cs[t];
        }
        b.set_coords(out);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn scale_scales() {
        let g = gen::ring(5, 100.0);
        let s = scale(&g, 2.0, 3.0);
        assert_eq!(s.total_vertex_weight(), 2.0 * g.total_vertex_weight());
        assert!((s.total_comm() - 3.0 * g.total_comm()).abs() < 1e-9);
        assert_eq!(s.num_edges(), g.num_edges());
    }

    #[test]
    fn perturb_keeps_structure() {
        let g = gen::stencil2d(4, 4, 10.0, false);
        let p = perturb_loads(&g, 0.3, 7);
        assert_eq!(p.num_edges(), g.num_edges());
        assert_eq!(p, perturb_loads(&g, 0.3, 7), "deterministic");
        for t in 0..16 {
            let ratio = p.vertex_weight(t) / g.vertex_weight(t);
            assert!((0.7 - 1e-9..=1.3 + 1e-9).contains(&ratio));
        }
    }

    #[test]
    fn union_offsets_ids() {
        let a = gen::ring(3, 1.0);
        let b = gen::ring(4, 2.0);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.num_tasks(), 7);
        assert_eq!(u.num_edges(), 3 + 4);
        assert_eq!(u.edge_weight(3, 4), Some(4.0)); // b's first edge
        assert_eq!(u.edge_weight(2, 3), None, "no cross edges");
    }

    #[test]
    fn overlay_sums() {
        let a = gen::ring(4, 10.0);
        let b = gen::all_to_all(4, 1.0);
        let o = overlay(&a, &b);
        // Ring edge (0,1): 20 from ring + 2 from all-to-all.
        assert_eq!(o.edge_weight(0, 1), Some(22.0));
        // Diagonal (0,2): only all-to-all.
        assert_eq!(o.edge_weight(0, 2), Some(2.0));
        assert_eq!(o.vertex_weight(0), 2.0);
    }

    #[test]
    fn prune_drops_light() {
        let mut b = TaskGraph::builder(3);
        b.add_comm(0, 1, 5.0).add_comm(1, 2, 50.0);
        let g = b.build();
        let p = prune_light_edges(&g, 10.0);
        assert_eq!(p.num_edges(), 1);
        assert_eq!(p.edge_weight(1, 2), Some(50.0));
    }

    #[test]
    fn relabel_is_isomorphism() {
        let g = gen::stencil2d(3, 3, 7.0, false);
        let perm: Vec<usize> = (0..9).map(|t| (t + 4) % 9).collect();
        let r = relabel(&g, &perm);
        assert_eq!(r.num_edges(), g.num_edges());
        assert!((r.total_comm() - g.total_comm()).abs() < 1e-9);
        // Edge (0,1) in g appears as (perm[0], perm[1]).
        assert_eq!(r.edge_weight(perm[0], perm[1]), g.edge_weight(0, 1));
    }

    #[test]
    fn transforms_carry_coords() {
        let g = gen::stencil2d(3, 3, 7.0, false);
        assert!(scale(&g, 2.0, 2.0).coords().is_some());
        assert!(perturb_loads(&g, 0.1, 1).coords().is_some());
        assert!(prune_light_edges(&g, 1.0).coords().is_some());
        assert!(overlay(&g, &g).coords().is_some());
        let u = disjoint_union(&g, &g);
        assert_eq!(u.coords().unwrap().len(), 18);
        // Union with a coordinate-free module drops geometry.
        assert!(disjoint_union(&g, &gen::ring(3, 1.0)).coords().is_none());
        // Relabel permutes positions along with ids.
        let perm: Vec<usize> = (0..9).map(|t| (t + 4) % 9).collect();
        let r = relabel(&g, &perm);
        assert_eq!(r.coords().unwrap()[perm[5]], g.coords().unwrap()[5]);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn relabel_rejects_non_permutation() {
        let g = gen::ring(3, 1.0);
        relabel(&g, &[0, 0, 1]);
    }
}
