//! Descriptive statistics over task graphs, used by the experiment harness
//! to report the same workload characteristics the paper quotes (e.g. the
//! average coalesced degree of the LeanMD graphs in §5.2.3).

use crate::TaskGraph;

/// Summary statistics of a task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub num_tasks: usize,
    pub num_edges: usize,
    /// Average vertex degree `2|E|/|V|`.
    pub avg_degree: f64,
    pub max_degree: usize,
    /// Fraction of all possible pairs that communicate.
    pub density: f64,
    pub total_comm_bytes: f64,
    pub total_load: f64,
    /// Max over min non-zero vertex weight (1.0 = perfectly uniform).
    pub load_imbalance: f64,
}

/// Compute [`GraphStats`] for a graph.
pub fn graph_stats(g: &TaskGraph) -> GraphStats {
    let n = g.num_tasks();
    let m = g.num_edges();
    let mut max_w = f64::MIN;
    let mut min_w = f64::MAX;
    for t in 0..n {
        let w = g.vertex_weight(t);
        if w > 0.0 {
            max_w = max_w.max(w);
            min_w = min_w.min(w);
        }
    }
    let load_imbalance = if min_w > 0.0 && min_w.is_finite() && max_w.is_finite() {
        max_w / min_w
    } else {
        1.0
    };
    GraphStats {
        num_tasks: n,
        num_edges: m,
        avg_degree: if n > 0 {
            2.0 * m as f64 / n as f64
        } else {
            0.0
        },
        max_degree: g.max_degree(),
        density: if n > 1 {
            m as f64 / (n as f64 * (n as f64 - 1.0) / 2.0)
        } else {
            0.0
        },
        total_comm_bytes: g.total_comm(),
        total_load: g.total_vertex_weight(),
        load_imbalance,
    }
}

/// Distribution of degrees as a histogram `hist[d] = #tasks of degree d`.
pub fn degree_histogram(g: &TaskGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for t in 0..g.num_tasks() {
        hist[g.degree(t)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stencil_stats() {
        let g = gen::stencil2d(4, 4, 100.0, true);
        let s = graph_stats(&g);
        assert_eq!(s.num_tasks, 16);
        assert_eq!(s.num_edges, 32);
        assert_eq!(s.avg_degree, 4.0);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.load_imbalance, 1.0);
        assert_eq!(s.total_comm_bytes, 32.0 * 200.0);
    }

    #[test]
    fn degree_histogram_open_stencil() {
        let g = gen::stencil2d(3, 3, 1.0, false);
        let hist = degree_histogram(&g);
        // 4 corners (deg 2), 4 edges (deg 3), 1 center (deg 4).
        assert_eq!(hist, vec![0, 0, 4, 4, 1]);
    }

    #[test]
    fn all_to_all_density_is_one() {
        let g = gen::all_to_all(6, 1.0);
        let s = graph_stats(&g);
        assert!((s.density - 1.0).abs() < 1e-12);
    }

    #[test]
    fn imbalance_tracks_weights() {
        let mut b = crate::TaskGraph::builder(3);
        b.set_task_weight(0, 1.0)
            .set_task_weight(1, 4.0)
            .set_task_weight(2, 2.0);
        let s = graph_stats(&b.build());
        assert_eq!(s.load_imbalance, 4.0);
    }
}
