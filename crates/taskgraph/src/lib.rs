//! # topomap-taskgraph
//!
//! Task graphs — the `G_t = (V_t, E_t)` of the paper — plus the workload
//! generators used throughout its evaluation.
//!
//! A task graph is a weighted undirected graph: vertices are compute
//! objects (Charm++ chares, or groups of them after coalescing) carrying a
//! computation weight, and edges carry the total bytes communicated per
//! iteration between their endpoints. The paper's process-based model has
//! no DAG dependencies — edges are symmetric communication volumes (§1).
//!
//! ## Generators
//!
//! - [`gen::stencil2d`] / [`gen::stencil3d`] — the Jacobi-like benchmark
//!   patterns of §5 (4-/6-point stencils, optionally periodic).
//! - [`gen::leanmd`] — a synthetic stand-in for the paper's LeanMD
//!   molecular-dynamics load dumps (§5.2.3); see its docs for the
//!   substitution argument.
//! - [`gen::random_graph`], [`gen::ring`], [`gen::all_to_all`] — synthetic
//!   stress patterns.
//!
//! ## Example
//!
//! ```
//! use topomap_taskgraph::gen;
//!
//! // 512 tasks communicating in an 8x8x8 3D stencil, 1 KiB per message.
//! let g = gen::stencil3d(8, 8, 8, 1024.0, false);
//! assert_eq!(g.num_tasks(), 512);
//! ```

pub mod gen;
pub mod io;
pub mod stats;
pub mod transform;

use serde::{Deserialize, Serialize};

/// Identifier of a task (a vertex of `G_t`).
pub type TaskId = usize;

/// A weighted undirected task graph in CSR form.
///
/// Construction goes through [`TaskGraphBuilder`], which accumulates
/// duplicate edge declarations (two `add_comm(a, b, …)` calls sum their
/// byte counts, matching how the Charm++ LB database merges communication
/// records).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskGraph {
    vwgt: Vec<f64>,
    xadj: Vec<usize>,
    adj: Vec<u32>,
    ewgt: Vec<f64>,
    /// Optional per-task spatial coordinates (geometric generators attach
    /// them; the SFC/RCB mappers consume them). 2-D workloads pad z = 0.
    coords: Option<Vec<[f64; 3]>>,
}

impl TaskGraph {
    /// Start building a graph with `n` tasks of unit compute weight.
    pub fn builder(n: usize) -> TaskGraphBuilder {
        TaskGraphBuilder {
            vwgt: vec![1.0; n],
            edges: Vec::new(),
            coords: None,
        }
    }

    /// Per-task spatial coordinates, if the workload carries geometry.
    pub fn coords(&self) -> Option<&[[f64; 3]]> {
        self.coords.as_deref()
    }

    /// Attach (or replace) per-task coordinates. Panics on length
    /// mismatch or non-finite components.
    pub fn with_coords(mut self, coords: Vec<[f64; 3]>) -> Self {
        validate_coords(&coords, self.num_tasks());
        self.coords = Some(coords);
        self
    }

    /// Number of tasks `|V_t|`.
    pub fn num_tasks(&self) -> usize {
        self.vwgt.len()
    }

    /// Number of undirected edges `|E_t|`.
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Compute weight of task `t`.
    pub fn vertex_weight(&self, t: TaskId) -> f64 {
        self.vwgt[t]
    }

    /// Sum of all compute weights.
    pub fn total_vertex_weight(&self) -> f64 {
        self.vwgt.iter().sum()
    }

    /// Degree of task `t` in the task graph (`δ(t)` in the paper's
    /// complexity analysis).
    pub fn degree(&self, t: TaskId) -> usize {
        self.xadj[t + 1] - self.xadj[t]
    }

    /// Maximum degree over all tasks.
    pub fn max_degree(&self) -> usize {
        (0..self.num_tasks())
            .map(|t| self.degree(t))
            .max()
            .unwrap_or(0)
    }

    /// Neighbors of `t` with edge weights (bytes).
    pub fn neighbors(&self, t: TaskId) -> impl Iterator<Item = (TaskId, f64)> + '_ {
        let lo = self.xadj[t];
        let hi = self.xadj[t + 1];
        self.adj[lo..hi]
            .iter()
            .zip(&self.ewgt[lo..hi])
            .map(|(&u, &w)| (u as TaskId, w))
    }

    /// Total communication of task `t` with all its neighbors (bytes).
    pub fn weighted_degree(&self, t: TaskId) -> f64 {
        let lo = self.xadj[t];
        let hi = self.xadj[t + 1];
        self.ewgt[lo..hi].iter().sum()
    }

    /// Every undirected edge exactly once (`a < b`), with weight.
    pub fn edges(&self) -> impl Iterator<Item = (TaskId, TaskId, f64)> + '_ {
        (0..self.num_tasks()).flat_map(move |a| {
            self.neighbors(a)
                .filter(move |&(b, _)| a < b)
                .map(move |(b, w)| (a, b, w))
        })
    }

    /// Total bytes communicated per iteration: `Σ_{e ∈ E_t} c_e`.
    pub fn total_comm(&self) -> f64 {
        self.ewgt.iter().sum::<f64>() / 2.0
    }

    /// The weight of edge `(a, b)`, or `None` if absent. O(δ(a)).
    pub fn edge_weight(&self, a: TaskId, b: TaskId) -> Option<f64> {
        self.neighbors(a).find(|&(u, _)| u == b).map(|(_, w)| w)
    }

    /// Coalesce tasks into groups according to `assignment[t] = group id`,
    /// producing a new task graph on `num_groups` vertices. Vertex weights
    /// sum; edges between distinct groups accumulate; intra-group
    /// communication disappears (it becomes processor-local, which is
    /// exactly why cut-reducing partitioners are preferred in phase 1).
    pub fn coalesce(&self, assignment: &[usize], num_groups: usize) -> TaskGraph {
        assert_eq!(assignment.len(), self.num_tasks());
        let mut b = TaskGraph::builder(num_groups);
        for g in 0..num_groups {
            b.set_task_weight(g, 0.0);
        }
        for (t, &g) in assignment.iter().enumerate() {
            assert!(g < num_groups, "group id out of range");
            b.add_task_weight(g, self.vwgt[t]);
        }
        for (a, bb, w) in self.edges() {
            let (ga, gb) = (assignment[a], assignment[bb]);
            if ga != gb {
                b.add_comm(ga, gb, w);
            }
        }
        // Geometry survives coalescing: each group sits at the
        // weight-weighted centroid of its members (plain mean when the
        // group's total weight is zero), so geometric mappers keep
        // working on pre-partitioned graphs.
        if let Some(cs) = &self.coords {
            let mut sums = vec![[0.0f64; 3]; num_groups];
            let mut wsum = vec![0.0f64; num_groups];
            let mut cnt = vec![0usize; num_groups];
            for (t, &g) in assignment.iter().enumerate() {
                let w = self.vwgt[t];
                for d in 0..3 {
                    sums[g][d] += cs[t][d] * w;
                }
                wsum[g] += w;
                cnt[g] += 1;
            }
            let mut out = vec![[0.0f64; 3]; num_groups];
            for g in 0..num_groups {
                if wsum[g] > 0.0 {
                    for d in 0..3 {
                        out[g][d] = sums[g][d] / wsum[g];
                    }
                } else if cnt[g] > 0 {
                    // Unweighted mean of member positions.
                    let mut m = [0.0f64; 3];
                    for (t, &gg) in assignment.iter().enumerate() {
                        if gg == g {
                            for d in 0..3 {
                                m[d] += cs[t][d];
                            }
                        }
                    }
                    for d in 0..3 {
                        out[g][d] = m[d] / cnt[g] as f64;
                    }
                }
            }
            b.set_coords(out);
        }
        b.build()
    }
}

/// Shared coordinate validation for the builder and `with_coords`.
fn validate_coords(coords: &[[f64; 3]], n: usize) {
    assert_eq!(
        coords.len(),
        n,
        "coords cover {} tasks but the graph has {n}",
        coords.len()
    );
    for (t, c) in coords.iter().enumerate() {
        assert!(
            c.iter().all(|v| v.is_finite()),
            "task {t} has non-finite coordinate {c:?}"
        );
    }
}

/// Incremental builder for [`TaskGraph`].
#[derive(Debug, Clone)]
pub struct TaskGraphBuilder {
    vwgt: Vec<f64>,
    edges: Vec<(u32, u32, f64)>,
    coords: Option<Vec<[f64; 3]>>,
}

impl TaskGraphBuilder {
    /// Set the compute weight of task `t`.
    pub fn set_task_weight(&mut self, t: TaskId, w: f64) -> &mut Self {
        assert!(w >= 0.0 && w.is_finite(), "invalid task weight {w}");
        self.vwgt[t] = w;
        self
    }

    /// Add to the compute weight of task `t`.
    pub fn add_task_weight(&mut self, t: TaskId, w: f64) -> &mut Self {
        assert!(w >= 0.0 && w.is_finite());
        self.vwgt[t] += w;
        self
    }

    /// Record `bytes` of communication between `a` and `b` (accumulates
    /// across calls). Self-communication is ignored — it never crosses the
    /// network.
    pub fn add_comm(&mut self, a: TaskId, b: TaskId, bytes: f64) -> &mut Self {
        assert!(
            a < self.vwgt.len() && b < self.vwgt.len(),
            "task id out of range"
        );
        assert!(
            bytes >= 0.0 && bytes.is_finite(),
            "invalid byte count {bytes}"
        );
        if a != b && bytes > 0.0 {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            self.edges.push((lo as u32, hi as u32, bytes));
        }
        self
    }

    /// Attach per-task coordinates (one `[x, y, z]` per task; 2-D
    /// workloads pad z = 0). Panics on length mismatch or non-finite
    /// components.
    pub fn set_coords(&mut self, coords: Vec<[f64; 3]>) -> &mut Self {
        validate_coords(&coords, self.vwgt.len());
        self.coords = Some(coords);
        self
    }

    /// Finalize into CSR form, merging duplicate edges.
    pub fn build(&mut self) -> TaskGraph {
        let n = self.vwgt.len();
        // Merge duplicates.
        self.edges.sort_unstable_by_key(|x| (x.0, x.1));
        let mut merged: Vec<(u32, u32, f64)> = Vec::with_capacity(self.edges.len());
        for &(a, b, w) in &self.edges {
            match merged.last_mut() {
                Some(last) if last.0 == a && last.1 == b => last.2 += w,
                _ => merged.push((a, b, w)),
            }
        }
        // Count degrees.
        let mut xadj = vec![0usize; n + 1];
        for &(a, b, _) in &merged {
            xadj[a as usize + 1] += 1;
            xadj[b as usize + 1] += 1;
        }
        for i in 0..n {
            xadj[i + 1] += xadj[i];
        }
        let m2 = merged.len() * 2;
        let mut adj = vec![0u32; m2];
        let mut ewgt = vec![0f64; m2];
        let mut cursor = xadj.clone();
        for &(a, b, w) in &merged {
            adj[cursor[a as usize]] = b;
            ewgt[cursor[a as usize]] = w;
            cursor[a as usize] += 1;
            adj[cursor[b as usize]] = a;
            ewgt[cursor[b as usize]] = w;
            cursor[b as usize] += 1;
        }
        TaskGraph {
            vwgt: std::mem::take(&mut self.vwgt),
            xadj,
            adj,
            ewgt,
            coords: self.coords.take(),
        }
    }
}

/// Plain-old-data form of a task graph for serialization (the LB dump
/// format of `topomap-lb` embeds this).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct TaskGraphData {
    pub vertex_weights: Vec<f64>,
    /// Undirected edges, each once, as `(a, b, bytes)`.
    pub edges: Vec<(usize, usize, f64)>,
    /// Optional per-task coordinates. Absent or `null` in dumps written
    /// before geometry existed — both load as `None`.
    pub coords: Option<Vec<[f64; 3]>>,
}

impl From<&TaskGraph> for TaskGraphData {
    fn from(g: &TaskGraph) -> Self {
        TaskGraphData {
            vertex_weights: g.vwgt.clone(),
            edges: g.edges().collect(),
            coords: g.coords.clone(),
        }
    }
}

impl From<&TaskGraphData> for TaskGraph {
    fn from(d: &TaskGraphData) -> Self {
        let mut b = TaskGraph::builder(d.vertex_weights.len());
        for (t, &w) in d.vertex_weights.iter().enumerate() {
            b.set_task_weight(t, w);
        }
        for &(a, bb, w) in &d.edges {
            b.add_comm(a, bb, w);
        }
        if let Some(cs) = &d.coords {
            b.set_coords(cs.clone());
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_merges_duplicates() {
        let mut b = TaskGraph::builder(3);
        b.add_comm(0, 1, 10.0)
            .add_comm(1, 0, 5.0)
            .add_comm(1, 2, 7.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(15.0));
        assert_eq!(g.edge_weight(2, 1), Some(7.0));
        assert_eq!(g.edge_weight(0, 2), None);
        assert_eq!(g.total_comm(), 22.0);
    }

    #[test]
    fn self_loops_and_zero_edges_dropped() {
        let mut b = TaskGraph::builder(2);
        b.add_comm(0, 0, 100.0).add_comm(0, 1, 0.0);
        let g = b.build();
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_comm(), 0.0);
    }

    #[test]
    fn weighted_degree_sums_incident() {
        let mut b = TaskGraph::builder(4);
        b.add_comm(0, 1, 1.0)
            .add_comm(0, 2, 2.0)
            .add_comm(0, 3, 3.0);
        let g = b.build();
        assert_eq!(g.weighted_degree(0), 6.0);
        assert_eq!(g.weighted_degree(3), 3.0);
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edges_iterate_each_once() {
        let mut b = TaskGraph::builder(3);
        b.add_comm(0, 1, 1.0)
            .add_comm(1, 2, 2.0)
            .add_comm(0, 2, 3.0);
        let g = b.build();
        let es: Vec<_> = g.edges().collect();
        assert_eq!(es.len(), 3);
        for (a, bb, _) in es {
            assert!(a < bb);
        }
    }

    #[test]
    fn vertex_weights() {
        let mut b = TaskGraph::builder(2);
        b.set_task_weight(0, 2.5)
            .add_task_weight(0, 0.5)
            .set_task_weight(1, 4.0);
        let g = b.build();
        assert_eq!(g.vertex_weight(0), 3.0);
        assert_eq!(g.total_vertex_weight(), 7.0);
    }

    #[test]
    fn coalesce_sums_weights_and_drops_internal_edges() {
        // 4 tasks: 0-1 (10), 1-2 (20), 2-3 (30); groups {0,1}, {2,3}.
        let mut b = TaskGraph::builder(4);
        b.add_comm(0, 1, 10.0)
            .add_comm(1, 2, 20.0)
            .add_comm(2, 3, 30.0);
        b.set_task_weight(3, 5.0);
        let g = b.build();
        let c = g.coalesce(&[0, 0, 1, 1], 2);
        assert_eq!(c.num_tasks(), 2);
        assert_eq!(c.num_edges(), 1);
        assert_eq!(c.edge_weight(0, 1), Some(20.0));
        assert_eq!(c.vertex_weight(0), 2.0);
        assert_eq!(c.vertex_weight(1), 6.0);
    }

    #[test]
    fn data_roundtrip() {
        let mut b = TaskGraph::builder(5);
        b.add_comm(0, 4, 8.0)
            .add_comm(2, 3, 2.0)
            .set_task_weight(1, 9.0);
        let g = b.build();
        let data = TaskGraphData::from(&g);
        let g2 = TaskGraph::from(&data);
        assert_eq!(g, g2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        TaskGraph::builder(2).add_comm(0, 2, 1.0);
    }

    #[test]
    fn coords_roundtrip_and_default_absent() {
        let mut b = TaskGraph::builder(2);
        b.add_comm(0, 1, 3.0);
        b.set_coords(vec![[0.0, 1.0, 2.0], [3.0, 4.0, 5.0]]);
        let g = b.build();
        assert_eq!(g.coords().unwrap()[1], [3.0, 4.0, 5.0]);
        let data = TaskGraphData::from(&g);
        assert_eq!(TaskGraph::from(&data), g);
        // Coordinate-free graphs report None both ways.
        let g2 = TaskGraph::builder(2).build();
        assert!(g2.coords().is_none());
        assert!(TaskGraphData::from(&g2).coords.is_none());
    }

    #[test]
    fn with_coords_attaches() {
        let g = TaskGraph::builder(2)
            .build()
            .with_coords(vec![[1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]);
        assert_eq!(g.coords().unwrap().len(), 2);
    }

    #[test]
    #[should_panic(expected = "coords cover")]
    fn coords_length_mismatch_panics() {
        TaskGraph::builder(3).set_coords(vec![[0.0; 3]]);
    }

    #[test]
    fn coalesce_propagates_weighted_centroids() {
        let mut b = TaskGraph::builder(4);
        b.add_comm(0, 2, 1.0);
        b.set_task_weight(0, 1.0)
            .set_task_weight(1, 3.0)
            .set_task_weight(2, 2.0)
            .set_task_weight(3, 2.0);
        b.set_coords(vec![
            [0.0, 0.0, 0.0],
            [4.0, 0.0, 0.0],
            [0.0, 2.0, 0.0],
            [0.0, 6.0, 0.0],
        ]);
        let g = b.build();
        let c = g.coalesce(&[0, 0, 1, 1], 2);
        let cs = c.coords().unwrap();
        // Group 0: (1*0 + 3*4)/4 = 3 on x; group 1: (2*2 + 2*6)/4 = 4 on y.
        assert_eq!(cs[0], [3.0, 0.0, 0.0]);
        assert_eq!(cs[1], [0.0, 4.0, 0.0]);
        // Coordinate-free input stays coordinate-free.
        let plain = TaskGraph::builder(4).build().coalesce(&[0, 0, 1, 1], 2);
        assert!(plain.coords().is_none());
    }

    #[test]
    fn empty_graph_is_fine() {
        let g = TaskGraph::builder(0).build();
        assert_eq!(g.num_tasks(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_comm(), 0.0);
    }
}
