//! Task-graph (de)serialization.
//!
//! Mirrors the Charm++ `+LBDump` mechanism's role for this crate: graphs
//! can be written to JSON files and replayed later, so mapping strategies
//! are compared "on exactly the same load scenarios" (§5.1).

use crate::{TaskGraph, TaskGraphData};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors from task-graph I/O.
#[derive(Debug)]
pub enum IoError {
    Io(std::io::Error),
    Format(serde_json::Error),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "I/O error: {e}"),
            IoError::Format(e) => write!(f, "format error: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Format(e)
    }
}

/// Serialize a task graph to a JSON writer.
pub fn write_json<W: Write>(g: &TaskGraph, w: W) -> Result<(), IoError> {
    serde_json::to_writer(w, &TaskGraphData::from(g))?;
    Ok(())
}

/// Deserialize a task graph from a JSON reader.
pub fn read_json<R: Read>(r: R) -> Result<TaskGraph, IoError> {
    let data: TaskGraphData = serde_json::from_reader(r)?;
    Ok(TaskGraph::from(&data))
}

/// Write a task graph to a file.
pub fn save<P: AsRef<Path>>(g: &TaskGraph, path: P) -> Result<(), IoError> {
    let f = File::create(path)?;
    write_json(g, BufWriter::new(f))
}

/// Load a task graph from a file.
pub fn load<P: AsRef<Path>>(path: P) -> Result<TaskGraph, IoError> {
    let f = File::open(path)?;
    read_json(BufReader::new(f))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn json_roundtrip_in_memory() {
        let g = gen::stencil2d(4, 4, 128.0, false);
        let mut buf = Vec::new();
        write_json(&g, &mut buf).unwrap();
        let g2 = read_json(buf.as_slice()).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn file_roundtrip() {
        let g = gen::random_graph(30, 3.0, 1.0, 100.0, 99);
        let dir = std::env::temp_dir().join("topomap-taskgraph-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.json");
        save(&g, &path).unwrap();
        let g2 = load(&path).unwrap();
        assert_eq!(g, g2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn coords_roundtrip_and_legacy_dumps_load() {
        // stencil2d carries coordinates; they survive the JSON roundtrip.
        let g = gen::stencil2d(3, 4, 64.0, false);
        assert!(g.coords().is_some());
        let mut buf = Vec::new();
        write_json(&g, &mut buf).unwrap();
        assert_eq!(read_json(buf.as_slice()).unwrap(), g);
        // A pre-geometry dump (no "coords" key) still loads, as None.
        let legacy = r#"{"vertex_weights":[1.0,1.0],"edges":[[0,1,8.0]]}"#;
        let g2 = read_json(legacy.as_bytes()).unwrap();
        assert!(g2.coords().is_none());
        assert_eq!(g2.num_edges(), 1);
        // Coordinate-free graphs serialize coords as null and reload
        // as None.
        let mut buf = Vec::new();
        write_json(&g2, &mut buf).unwrap();
        assert!(String::from_utf8(buf).unwrap().contains("\"coords\":null"));
    }

    #[test]
    fn malformed_json_is_format_error() {
        let err = read_json("not json".as_bytes()).unwrap_err();
        assert!(matches!(err, IoError::Format(_)));
        assert!(err.to_string().contains("format error"));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load("/nonexistent/path/g.json").unwrap_err();
        assert!(matches!(err, IoError::Io(_)));
    }
}
