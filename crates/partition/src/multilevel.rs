//! Multilevel k-way partitioner — the METIS substitute.
//!
//! Follows the scheme of Karypis & Kumar (the paper's refs [13–15]):
//!
//! 1. **Coarsening**: repeatedly contract a heavy-edge matching until the
//!    graph is small (≤ `coarsen_to × k` vertices) or contraction stalls.
//!    Matching prefers the heaviest incident edge, so the strongest
//!    communication gets hidden inside coarse vertices early.
//! 2. **Initial partitioning**: greedy graph growing on the coarsest
//!    graph — seed a region with the highest-connectivity unassigned
//!    vertex, grow by strongest connection until the load target is met,
//!    repeat for each part.
//! 3. **Uncoarsening + refinement**: project the partition back level by
//!    level, running FM-style boundary refinement at each level: move
//!    boundary vertices to the neighboring part with maximal cut gain,
//!    subject to the balance constraint.
//!
//! The result is the paper's phase-1 input: p balanced groups with low
//! inter-group communication.

use crate::{Partition, Partitioner};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use topomap_taskgraph::TaskGraph;

/// METIS-style multilevel k-way partitioner.
#[derive(Debug, Clone)]
pub struct MultilevelKWay {
    /// Stop coarsening once the graph has at most `coarsen_to * k` vertices.
    pub coarsen_to: usize,
    /// Allowed imbalance: max part load ≤ `balance_tolerance ×` average.
    pub balance_tolerance: f64,
    /// FM refinement passes per level.
    pub refine_passes: usize,
    /// Seed for tie-breaking orders in matching and refinement.
    pub seed: u64,
}

impl Default for MultilevelKWay {
    fn default() -> Self {
        MultilevelKWay {
            coarsen_to: 15,
            balance_tolerance: 1.05,
            refine_passes: 4,
            seed: 0xC0FFEE,
        }
    }
}

impl Partitioner for MultilevelKWay {
    fn partition(&self, g: &TaskGraph, k: usize) -> Partition {
        assert!(k > 0);
        let n = g.num_tasks();
        if k == 1 {
            return Partition::new(vec![0; n], 1);
        }
        if k >= n {
            return Partition::new((0..n).collect(), k);
        }

        let mut rng = StdRng::seed_from_u64(self.seed);

        // --- Coarsening phase ---
        let mut levels: Vec<TaskGraph> = vec![g.clone()];
        let mut maps: Vec<Vec<usize>> = Vec::new(); // fine vertex -> coarse vertex
        let target = (self.coarsen_to * k).max(2 * k);
        loop {
            let cur = levels.last().unwrap();
            if cur.num_tasks() <= target {
                break;
            }
            let (map, coarse_n) = heavy_edge_matching(cur, &mut rng);
            // Stall detection: require at least 10% shrinkage.
            if coarse_n as f64 > cur.num_tasks() as f64 * 0.9 {
                break;
            }
            let coarse = cur.coalesce_keep_loops(&map, coarse_n);
            maps.push(map);
            levels.push(coarse);
        }

        // --- Initial partitioning on the coarsest graph ---
        let coarsest = levels.last().unwrap();
        let mut assignment = greedy_graph_growing(coarsest, k, &mut rng);
        refine(
            coarsest,
            &mut assignment,
            k,
            self.balance_tolerance,
            self.refine_passes,
        );

        // --- Uncoarsening + refinement ---
        for level in (0..maps.len()).rev() {
            let fine = &levels[level];
            let map = &maps[level];
            let mut fine_assignment = vec![0usize; fine.num_tasks()];
            for v in 0..fine.num_tasks() {
                fine_assignment[v] = assignment[map[v]];
            }
            assignment = fine_assignment;
            refine(
                fine,
                &mut assignment,
                k,
                self.balance_tolerance,
                self.refine_passes,
            );
        }

        Partition::new(assignment, k)
    }

    fn name(&self) -> &'static str {
        "MultilevelKWay"
    }
}

/// Extension used internally: coalesce *keeping* total vertex weights but
/// dropping intra-group edges is what `TaskGraph::coalesce` does already —
/// for coarsening we also want it (internal edge weight is irrelevant to
/// the cut). This trait exists so the main `coalesce` keeps its public
/// contract.
trait CoalesceExt {
    fn coalesce_keep_loops(&self, map: &[usize], n: usize) -> TaskGraph;
}

impl CoalesceExt for TaskGraph {
    fn coalesce_keep_loops(&self, map: &[usize], n: usize) -> TaskGraph {
        self.coalesce(map, n)
    }
}

/// Heavy-edge matching: returns (fine→coarse map, #coarse vertices).
///
/// Vertices are visited in a random order; an unmatched vertex matches its
/// unmatched neighbor with the heaviest connecting edge (ties → lower id).
fn heavy_edge_matching(g: &TaskGraph, rng: &mut StdRng) -> (Vec<usize>, usize) {
    let n = g.num_tasks();
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut mate = vec![usize::MAX; n];
    for &v in &order {
        if mate[v] != usize::MAX {
            continue;
        }
        let mut best: Option<(f64, usize)> = None;
        for (u, w) in g.neighbors(v) {
            if mate[u] != usize::MAX || u == v {
                continue;
            }
            let better = match best {
                None => true,
                Some((bw, bu)) => w > bw || (w == bw && u < bu),
            };
            if better {
                best = Some((w, u));
            }
        }
        match best {
            Some((_, u)) => {
                mate[v] = u;
                mate[u] = v;
            }
            None => mate[v] = v, // stays single
        }
    }
    // Number coarse vertices.
    let mut map = vec![usize::MAX; n];
    let mut next = 0usize;
    for v in 0..n {
        if map[v] != usize::MAX {
            continue;
        }
        map[v] = next;
        let m = mate[v];
        if m != v && m != usize::MAX {
            map[m] = next;
        }
        next += 1;
    }
    (map, next)
}

/// Greedy graph growing: grow `k` regions to the average load target.
fn greedy_graph_growing(g: &TaskGraph, k: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = g.num_tasks();
    let total: f64 = g.total_vertex_weight();
    let target = total / k as f64;
    let mut assignment = vec![usize::MAX; n];
    let mut conn = vec![0f64; n]; // connectivity of unassigned vertex to current region

    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);

    for part in 0..k.saturating_sub(1) {
        conn.iter_mut().for_each(|c| *c = 0.0);
        let mut load = 0f64;
        let mut frontier: Vec<usize> = Vec::new();

        while load < target {
            if frontier.is_empty() {
                // (Re-)seed: unassigned vertex with max weighted degree —
                // strongest communicator. Re-seeding when the frontier is
                // exhausted keeps a part growing even if its connected
                // region ran dry (otherwise parts strand at one vertex on
                // graphs like LeanMD's cell/compute bipartite structure
                // and the remainder collapses into the last part).
                let seed = order
                    .iter()
                    .copied()
                    .filter(|&v| assignment[v] == usize::MAX)
                    .max_by(|&a, &b| {
                        g.weighted_degree(a)
                            .partial_cmp(&g.weighted_degree(b))
                            .unwrap()
                            .then(b.cmp(&a))
                    });
                let Some(seed) = seed else { break };
                conn[seed] = f64::INFINITY;
                frontier.push(seed);
            }
            // Take the frontier vertex with max connection to the region.
            let Some((idx, &v)) = frontier
                .iter()
                .enumerate()
                .max_by(|(_, &a), (_, &b)| conn[a].partial_cmp(&conn[b]).unwrap().then(b.cmp(&a)))
            else {
                break;
            };
            frontier.swap_remove(idx);
            if assignment[v] != usize::MAX {
                continue;
            }
            assignment[v] = part;
            load += g.vertex_weight(v);
            for (u, w) in g.neighbors(v) {
                if assignment[u] == usize::MAX {
                    if conn[u] == 0.0 {
                        frontier.push(u);
                    }
                    conn[u] += w;
                }
            }
        }
    }
    // Remainder goes to the last part.
    for a in assignment.iter_mut().take(n) {
        if *a == usize::MAX {
            *a = k - 1;
        }
    }
    assignment
}

/// FM-style boundary refinement: greedy single-vertex moves that reduce the
/// cut (or, at zero gain, improve balance), subject to the balance bound.
fn refine(
    g: &TaskGraph,
    assignment: &mut [usize],
    k: usize,
    balance_tolerance: f64,
    passes: usize,
) {
    let n = g.num_tasks();
    let total = g.total_vertex_weight();
    let avg = total / k as f64;
    let max_load = avg * balance_tolerance;

    let mut loads = vec![0f64; k];
    for v in 0..n {
        loads[assignment[v]] += g.vertex_weight(v);
    }

    // Per-vertex scratch: connection weight to each part (sparse touch-list).
    let mut conn = vec![0f64; k];
    let mut touched: Vec<usize> = Vec::with_capacity(8);

    for _ in 0..passes {
        let mut moved = 0usize;
        for v in 0..n {
            let cur = assignment[v];
            // Compute connections to parts of neighbors.
            touched.clear();
            for (u, w) in g.neighbors(v) {
                let pu = assignment[u];
                if conn[pu] == 0.0 {
                    touched.push(pu);
                }
                conn[pu] += w;
            }
            // Best alternative part among neighbor parts.
            let mut best: Option<(f64, usize)> = None;
            for &p in &touched {
                if p == cur {
                    continue;
                }
                let gain = conn[p] - conn[cur];
                let better = match best {
                    None => true,
                    Some((bg, bp)) => gain > bg || (gain == bg && p < bp),
                };
                if better {
                    best = Some((gain, p));
                }
            }
            if let Some((gain, p)) = best {
                let w = g.vertex_weight(v);
                let fits = loads[p] + w <= max_load;
                // Never empty a part entirely (k-way partition must stay k-way
                // when k <= n): moving the last vertex out is forbidden.
                let keeps_nonempty = loads[cur] - w > 0.0 || w == 0.0;
                let improves_balance = loads[p] + w < loads[cur];
                // Balance repair: while the source part is over the bound,
                // accept moves that shed load even at negative cut gain.
                let repair = loads[cur] > max_load && improves_balance && loads[p] + w <= max_load;
                if keeps_nonempty
                    && ((gain > 0.0 && fits) || (gain == 0.0 && improves_balance) || repair)
                {
                    assignment[v] = p;
                    loads[cur] -= w;
                    loads[p] += w;
                    moved += 1;
                }
            }
            // Reset scratch.
            for &p in &touched {
                conn[p] = 0.0;
            }
        }
        if moved == 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn covers_all_and_in_range() {
        let g = gen::random_graph(120, 5.0, 1.0, 100.0, 3);
        let p = MultilevelKWay::default().partition(&g, 8);
        assert_eq!(p.num_tasks(), 120);
        assert!(p.assignment().iter().all(|&x| x < 8));
        assert!(p.part_sizes().iter().all(|&s| s > 0), "no empty parts");
    }

    #[test]
    fn balanced_on_uniform_stencil() {
        let g = gen::stencil2d(16, 16, 1024.0, false);
        let p = MultilevelKWay::default().partition(&g, 16);
        assert!(
            p.imbalance_for(&g) <= 1.30,
            "imbalance {}",
            p.imbalance_for(&g)
        );
    }

    #[test]
    fn beats_random_cut_substantially() {
        let g = gen::stencil2d(16, 16, 1.0, false);
        let ml = MultilevelKWay::default().partition(&g, 8);
        let rnd = crate::RandomPartition::new(7).partition(&g, 8);
        let (mc, rc) = (ml.edge_cut(&g), rnd.edge_cut(&g));
        assert!(
            mc < 0.5 * rc,
            "multilevel cut {mc} should be far below random cut {rc}"
        );
    }

    #[test]
    fn k_equals_one_and_k_ge_n() {
        let g = gen::ring(6, 1.0);
        let p1 = MultilevelKWay::default().partition(&g, 1);
        assert!(p1.assignment().iter().all(|&x| x == 0));
        let p6 = MultilevelKWay::default().partition(&g, 6);
        let mut seen = p6.assignment().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, (0..6).collect::<Vec<_>>(), "k == n gives singletons");
        let p9 = MultilevelKWay::default().partition(&g, 9);
        assert_eq!(p9.num_parts(), 9);
    }

    #[test]
    fn deterministic() {
        let g = gen::random_graph(80, 4.0, 1.0, 10.0, 11);
        let ml = MultilevelKWay::default();
        assert_eq!(ml.partition(&g, 5), ml.partition(&g, 5));
    }

    #[test]
    fn matching_is_valid() {
        let g = gen::stencil2d(6, 6, 1.0, false);
        let mut rng = StdRng::seed_from_u64(1);
        let (map, cn) = heavy_edge_matching(&g, &mut rng);
        assert!((18..=36).contains(&cn));
        // Each coarse vertex has 1 or 2 fine vertices.
        let mut counts = vec![0usize; cn];
        for &c in &map {
            counts[c] += 1;
        }
        assert!(counts.iter().all(|&c| c == 1 || c == 2));
    }

    #[test]
    fn handles_disconnected_graph() {
        // Two disjoint rings: partitioner must still cover everything.
        let mut b = topomap_taskgraph::TaskGraph::builder(12);
        for i in 0..6usize {
            b.add_comm(i, (i + 1) % 6, 2.0);
            b.add_comm(6 + i, 6 + (i + 1) % 6, 2.0);
        }
        let g = b.build();
        let p = MultilevelKWay::default().partition(&g, 2);
        assert_eq!(p.num_tasks(), 12);
        assert!(p.imbalance() <= 1.5);
    }

    #[test]
    fn leanmd_partition_quality() {
        let g = gen::leanmd(64, &gen::LeanMdConfig::default());
        let p = MultilevelKWay::default().partition(&g, 64);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
        let rnd = crate::RandomPartition::new(1).partition(&g, 64);
        assert!(p.edge_cut(&g) < rnd.edge_cut(&g));
    }
}
