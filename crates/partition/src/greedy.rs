//! GreedyLB-style load-only partitioning.
//!
//! The paper notes that "some of the dynamic load balancing strategies of
//! Charm++ like GreedyLB are suitable for partitioning" (§4.4) and uses
//! GreedyLB as the "essentially random placement" baseline in the network
//! simulations (§5.3). GreedyLB is the classic longest-processing-time
//! heuristic: process tasks in decreasing load order, always assigning to
//! the currently least-loaded group.

use crate::{Partition, Partitioner};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use topomap_taskgraph::TaskGraph;

/// Longest-processing-time-first load balancing (communication-oblivious).
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyLoad;

impl Partitioner for GreedyLoad {
    fn partition(&self, g: &TaskGraph, k: usize) -> Partition {
        assert!(k > 0);
        let n = g.num_tasks();
        // Decreasing load; ties broken by task id for determinism.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            g.vertex_weight(b)
                .partial_cmp(&g.vertex_weight(a))
                .unwrap()
                .then(a.cmp(&b))
        });

        // Min-heap of (load, part). f64 keyed via ordered bits (loads are
        // non-negative finite, so the bit pattern orders correctly).
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
            (0..k).map(|p| Reverse((0u64, p))).collect();
        let mut assignment = vec![0usize; n];
        for t in order {
            let Reverse((load_bits, part)) = heap.pop().expect("k > 0");
            assignment[t] = part;
            let new_load = f64::from_bits(load_bits) + g.vertex_weight(t);
            heap.push(Reverse((new_load.to_bits(), part)));
        }
        Partition::new(assignment, k)
    }

    fn name(&self) -> &'static str {
        "GreedyLoad"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn balances_uniform_loads_perfectly() {
        let g = gen::stencil2d(8, 8, 1.0, false); // 64 unit-weight tasks
        let p = GreedyLoad.partition(&g, 8);
        assert_eq!(p.part_sizes(), vec![8; 8]);
        assert_eq!(p.imbalance(), 1.0);
    }

    #[test]
    fn lpt_quality_bound_on_skewed_loads() {
        // LPT guarantees makespan <= 4/3 OPT; check a generous bound.
        let mut b = topomap_taskgraph::TaskGraph::builder(10);
        for (t, w) in [
            (0, 10.0),
            (1, 9.0),
            (2, 8.0),
            (3, 7.0),
            (4, 6.0),
            (5, 5.0),
            (6, 4.0),
            (7, 3.0),
            (8, 2.0),
            (9, 1.0),
        ] {
            b.set_task_weight(t, w);
        }
        let g = b.build();
        let p = GreedyLoad.partition(&g, 3);
        let loads = p.part_loads(&g);
        let max = loads.iter().fold(0.0f64, |m, &l| m.max(l));
        // total = 55, perfect = 18.33; LPT achieves <= 4/3 * ceil.
        assert!(max <= 55.0 / 3.0 * 4.0 / 3.0 + 1e-9, "max load {max}");
    }

    #[test]
    fn deterministic() {
        let g = gen::random_graph(60, 4.0, 1.0, 10.0, 5);
        assert_eq!(GreedyLoad.partition(&g, 7), GreedyLoad.partition(&g, 7));
    }

    #[test]
    fn more_parts_than_tasks_leaves_empties() {
        let g = gen::ring(3, 1.0);
        let p = GreedyLoad.partition(&g, 5);
        let sizes = p.part_sizes();
        assert_eq!(sizes.iter().sum::<usize>(), 3);
        assert_eq!(sizes.iter().filter(|&&s| s == 0).count(), 2);
    }

    #[test]
    fn single_part() {
        let g = gen::ring(5, 1.0);
        let p = GreedyLoad.partition(&g, 1);
        assert!(p.assignment().iter().all(|&x| x == 0));
    }
}
