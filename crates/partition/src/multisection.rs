//! K-way multisection down an explicit hardware hierarchy.
//!
//! Generalizes recursive bisection: for a hierarchy `H = a1:a2:…:al`
//! (innermost first) with level distances `D = d1:…:dl`, the task graph is
//! split top-down — first into `al` parts, each of those into `a(l-1)`
//! parts, and so on down to level 2 — leaving *leaf groups* of at most
//! `a1` tasks, one per innermost container. Because the outermost (most
//! expensive, largest `d`) cuts are minimized first and each finer cut
//! only redistributes weight *within* one container, the recursion greedily
//! minimizes the `d`-weighted cut `Σ w(e) · d(level(e))` that lower-bounds
//! the hop-bytes of any mapping respecting the hierarchy.
//!
//! Every per-group split uses the compactness-oriented [`GreedyGrow`]
//! partitioner on the induced subgraph, followed by an exact capacity fix-up
//! ([`enforce_capacities`]) so that each child container is left with no
//! more tasks than it has processors — the invariant that keeps the
//! recursion feasible at every level.
//!
//! Leaf group ids follow the hierarchy's mixed radix: splitting group `G`
//! at level `i` into parts `j` yields children `G · ai + j`, which after
//! the full descent makes leaf id `g` exactly the index of the `g`-th
//! innermost container (processors `[g·a1, (g+1)·a1)` in hierarchy
//! position space).

use crate::{GreedyGrow, Partition, Partitioner};
use topomap_taskgraph::{TaskGraph, TaskId};

/// Top-down k-way multisection over hierarchy arities (innermost first).
#[derive(Debug, Clone)]
pub struct Multisection {
    /// Branching factors, innermost first: `arities[0] = a1` is the leaf
    /// capacity; levels `1..` are split top-down.
    pub arities: Vec<usize>,
}

impl Multisection {
    pub fn new(arities: Vec<usize>) -> Self {
        assert!(!arities.is_empty(), "at least one hierarchy level");
        assert!(arities.iter().all(|&a| a > 0), "zero-arity level");
        Multisection { arities }
    }

    /// Number of leaf groups = Π arities\[1..\].
    pub fn leaf_groups(&self) -> usize {
        self.arities[1..].iter().product()
    }

    /// Tasks a leaf group can hold (= processors per innermost container).
    pub fn leaf_capacity(&self) -> usize {
        self.arities[0]
    }

    /// Processors per level-`level` container (0-based: `block(0) = a1`).
    fn block(&self, level: usize) -> usize {
        self.arities[..=level].iter().product()
    }

    /// Split every current group at `level` (a 0-based index into
    /// `arities`, `1 <= level < arities.len()`) into `arities[level]`
    /// parts of at most `block(level-1)` tasks each. `group_of` must hold
    /// ids `< num_groups`; returns the refined ids `parent · a + part`.
    ///
    /// Deterministic: groups are processed in id order and each split
    /// depends only on that group's induced subgraph.
    pub fn split_level(
        &self,
        g: &TaskGraph,
        group_of: &[usize],
        num_groups: usize,
        level: usize,
    ) -> Vec<usize> {
        assert!(level >= 1 && level < self.arities.len());
        let a = self.arities[level];
        let capacity = self.block(level - 1);
        let n = g.num_tasks();
        let mut members: Vec<Vec<TaskId>> = vec![Vec::new(); num_groups];
        for (t, &gid) in group_of.iter().enumerate() {
            members[gid].push(t);
        }
        let mut out = vec![usize::MAX; n];
        // Scratch local-index table, reset after each group.
        let mut local_of = vec![usize::MAX; n];
        for (gid, ms) in members.iter().enumerate() {
            if ms.is_empty() {
                continue;
            }
            let local = if a == 1 {
                vec![0usize; ms.len()]
            } else {
                for (i, &t) in ms.iter().enumerate() {
                    local_of[t] = i;
                }
                let mut sub = TaskGraph::builder(ms.len());
                for (i, &t) in ms.iter().enumerate() {
                    sub.set_task_weight(i, g.vertex_weight(t));
                    for (u, w) in g.neighbors(t) {
                        let j = local_of[u];
                        if j != usize::MAX && i < j {
                            sub.add_comm(i, j, w);
                        }
                    }
                }
                let sub = sub.build();
                let splitter = GreedyGrow::with_capacity(capacity);
                let mut assignment = splitter.partition(&sub, a).assignment().to_vec();
                enforce_capacities(&sub, &mut assignment, a, capacity);
                for &t in ms {
                    local_of[t] = usize::MAX;
                }
                assignment
            };
            for (i, &t) in ms.iter().enumerate() {
                out[t] = gid * a + local[i];
            }
        }
        out
    }

    /// Run the full top-down descent and return the leaf-group partition
    /// (ids `< leaf_groups()`, sizes `<= leaf_capacity()`).
    pub fn leaf_partition(&self, g: &TaskGraph) -> Partition {
        let n = g.num_tasks();
        let p: usize = self.arities.iter().product();
        assert!(n <= p, "{n} tasks exceed {p} hierarchy processors");
        let mut group_of = vec![0usize; n];
        let mut num_groups = 1usize;
        for level in (1..self.arities.len()).rev() {
            group_of = self.split_level(g, &group_of, num_groups, level);
            num_groups *= self.arities[level];
        }
        Partition::new(group_of, num_groups)
    }
}

impl Partitioner for Multisection {
    fn partition(&self, g: &TaskGraph, k: usize) -> Partition {
        assert_eq!(
            k,
            self.leaf_groups(),
            "Multisection produces exactly its leaf-group count"
        );
        self.leaf_partition(g)
    }

    fn name(&self) -> &'static str {
        "Multisection"
    }
}

/// Rebalance group sizes to at most `capacity` members each, moving
/// boundary tasks with minimal cut damage into under-full groups.
/// Deterministic (lowest-id tie-breaks throughout).
pub fn enforce_capacities(
    tasks: &TaskGraph,
    assignment: &mut [usize],
    num_groups: usize,
    capacity: usize,
) {
    let n = assignment.len();
    let mut sizes = vec![0usize; num_groups];
    for &g in assignment.iter() {
        sizes[g] += 1;
    }
    while let Some(over) = (0..num_groups).find(|&g| sizes[g] > capacity) {
        // Receiving group: most under-full (ties -> lowest id).
        let under = (0..num_groups)
            .filter(|&g| sizes[g] < capacity)
            .min_by_key(|&g| (sizes[g], g))
            .expect("total tasks <= total capacity");
        // Evict the member of `over` with the smallest connection to it
        // net of its connection to `under` (least cut damage).
        let victim = (0..n)
            .filter(|&t| assignment[t] == over)
            .min_by(|&a, &b| {
                let cost = |t: TaskId| -> f64 {
                    tasks
                        .neighbors(t)
                        .map(|(u, w)| {
                            if assignment[u] == over {
                                w
                            } else if assignment[u] == under {
                                -w
                            } else {
                                0.0
                            }
                        })
                        .sum()
                };
                cost(a).partial_cmp(&cost(b)).unwrap().then(a.cmp(&b))
            })
            .expect("over-full group is non-empty");
        assignment[victim] = under;
        sizes[over] -= 1;
        sizes[under] += 1;
    }
}

/// The `d`-weighted cut of a leaf assignment: every edge is charged the
/// level distance of its endpoints' lowest common container (`dists[0]`
/// for an intra-leaf edge — its endpoints still occupy distinct
/// processors of one innermost block). This is the quantity the top-down
/// multisection greedily minimizes, and a lower bound on the hop-bytes of
/// any hierarchy-respecting mapping.
pub fn weighted_leaf_cut(
    g: &TaskGraph,
    leaf_of: &[usize],
    arities: &[usize],
    dists: &[u32],
) -> f64 {
    g.edges()
        .map(|(a, b, w)| {
            let (mut x, mut y) = (leaf_of[a], leaf_of[b]);
            let mut level = 0usize;
            while x != y {
                level += 1;
                x /= arities[level];
                y /= arities[level];
            }
            w * dists[level] as f64
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn leaf_partition_respects_capacities_and_radix() {
        let g = gen::stencil2d(8, 8, 1024.0, false);
        let ms = Multisection::new(vec![4, 4, 4]);
        assert_eq!(ms.leaf_groups(), 16);
        assert_eq!(ms.leaf_capacity(), 4);
        let part = ms.leaf_partition(&g);
        assert_eq!(part.num_parts(), 16);
        let sizes = part.part_sizes();
        assert!(sizes.iter().all(|&s| s <= 4), "{sizes:?}");
        assert_eq!(sizes.iter().sum::<usize>(), 64);
        // Full graph on a full hierarchy: every leaf exactly full.
        assert!(sizes.iter().all(|&s| s == 4), "{sizes:?}");
    }

    #[test]
    fn descent_is_deterministic() {
        let g = gen::random_graph(50, 3.0, 1.0, 500.0, 42);
        let ms = Multisection::new(vec![2, 4, 8]);
        let a = ms.leaf_partition(&g);
        let b = ms.leaf_partition(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn nested_groups_are_consistent_across_levels() {
        // Tasks sharing a leaf must share every coarser container: the
        // digits of the leaf id encode the full path.
        let g = gen::stencil2d(4, 8, 1.0, false);
        let ms = Multisection::new(vec![2, 4, 4]);
        let part = ms.leaf_partition(&g);
        // Re-run only the top split and check it matches the top digit.
        let top = ms.split_level(&g, &[0; 32], 1, 2);
        for (t, &digit) in top.iter().enumerate() {
            assert_eq!(part.part_of(t) / 4, digit, "task {t}");
        }
    }

    #[test]
    fn weighted_cut_beats_scattered_assignment() {
        let g = gen::stencil2d(8, 8, 1024.0, false);
        let arities = [4usize, 4, 4];
        let dists = [1u32, 3, 6];
        let ms = Multisection::new(arities.to_vec());
        let part = ms.leaf_partition(&g);
        let good = weighted_leaf_cut(&g, part.assignment(), &arities, &dists);
        // Round-robin scattering: same capacities, no locality.
        let scattered: Vec<usize> = (0..64).map(|t| t % 16).collect();
        let bad = weighted_leaf_cut(&g, &scattered, &arities, &dists);
        assert!(
            good < 0.7 * bad,
            "multisection cut {good} vs scattered {bad}"
        );
    }

    #[test]
    fn capacity_enforcement_exact() {
        let tasks = gen::random_graph(40, 3.0, 1.0, 100.0, 4);
        let mut assignment = vec![0usize; 40]; // everything in group 0
        enforce_capacities(&tasks, &mut assignment, 4, 10);
        let mut sizes = vec![0usize; 4];
        for &g in &assignment {
            sizes[g] += 1;
        }
        assert_eq!(sizes, vec![10, 10, 10, 10]);
    }

    #[test]
    fn fewer_tasks_than_processors() {
        let g = gen::ring(10, 100.0);
        let ms = Multisection::new(vec![4, 2, 4]);
        let part = ms.leaf_partition(&g);
        assert_eq!(part.num_tasks(), 10);
        assert!(part.part_sizes().iter().all(|&s| s <= 4));
    }

    #[test]
    fn single_level_hierarchy_is_one_group() {
        let g = gen::ring(6, 1.0);
        let ms = Multisection::new(vec![8]);
        let part = ms.leaf_partition(&g);
        assert_eq!(part.num_parts(), 1);
        assert!(part.assignment().iter().all(|&x| x == 0));
    }

    #[test]
    fn partitioner_trait_roundtrip() {
        let g = gen::stencil2d(4, 4, 1.0, false);
        let ms = Multisection::new(vec![2, 2, 4]);
        let part = Partitioner::partition(&ms, &g, 8);
        assert_eq!(part.num_parts(), 8);
        assert_eq!(Partitioner::name(&ms), "Multisection");
    }
}
