//! Seeded random partitioning — the n-tasks-onto-k-groups analogue of the
//! paper's "random placement" baseline.

use crate::{Partition, Partitioner};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use topomap_taskgraph::TaskGraph;

/// Assign tasks to groups by a random permutation, keeping group *sizes*
/// balanced (each group receives `⌈n/k⌉` or `⌊n/k⌋` tasks) — random in
/// placement but not pathological in load, like scattering chares round-
/// robin over a shuffled processor list.
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomPartition {
    pub seed: u64,
}

impl RandomPartition {
    pub fn new(seed: u64) -> Self {
        RandomPartition { seed }
    }
}

impl Partitioner for RandomPartition {
    fn partition(&self, g: &TaskGraph, k: usize) -> Partition {
        assert!(k > 0);
        let n = g.num_tasks();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut order: Vec<usize> = (0..n).collect();
        order.shuffle(&mut rng);
        let mut assignment = vec![0usize; n];
        for (i, &t) in order.iter().enumerate() {
            assignment[t] = i % k;
        }
        Partition::new(assignment, k)
    }

    fn name(&self) -> &'static str {
        "Random"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn sizes_balanced() {
        let g = gen::stencil2d(10, 10, 1.0, false);
        let p = RandomPartition::new(3).partition(&g, 7);
        let sizes = p.part_sizes();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = gen::ring(20, 1.0);
        let a = RandomPartition::new(9).partition(&g, 4);
        let b = RandomPartition::new(9).partition(&g, 4);
        let c = RandomPartition::new(10).partition(&g, 4);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_cut_is_high() {
        // A random partition of a stencil should cut far more than a
        // contiguous block partition: sanity-check the baseline is bad.
        let g = gen::stencil2d(8, 8, 1.0, false);
        let rnd = RandomPartition::new(1).partition(&g, 4);
        let blocks = Partition::new((0..64).map(|t| t / 16).collect(), 4);
        assert!(rnd.edge_cut(&g) > blocks.edge_cut(&g));
    }
}
