//! # topomap-partition
//!
//! Graph partitioners for the first phase of the paper's two-phased
//! mapping approach (§4): "the partitioning phase involves partitioning
//! the objects (oblivious to network-topology) into p groups", balancing
//! compute load and — for the cut-reducing partitioners — keeping heavily
//! communicating objects in the same group.
//!
//! The paper uses METIS (or Charm++'s topology-oblivious strategies like
//! GreedyLB) for this phase. This crate provides both substitutes:
//!
//! - [`MultilevelKWay`] — a METIS-style multilevel k-way partitioner:
//!   heavy-edge-matching coarsening, greedy graph-growing initial
//!   partitioning, and FM-style boundary refinement under a balance
//!   constraint.
//! - [`GreedyLoad`] — GreedyLB's algorithm: sort tasks by load, place each
//!   on the currently least-loaded group (communication-oblivious).
//! - [`RandomPartition`] — seeded random assignment.
//!
//! ```
//! use topomap_partition::{MultilevelKWay, Partitioner};
//! use topomap_taskgraph::gen;
//!
//! let g = gen::stencil2d(16, 16, 1024.0, false);
//! let part = MultilevelKWay::default().partition(&g, 8);
//! assert_eq!(part.num_parts(), 8);
//! assert!(part.imbalance() < 1.15); // near-balanced group sizes
//! ```

mod bisection;
mod greedy;
pub mod greedygrow;
mod multilevel;
pub mod multisection;
mod random;

pub use bisection::RecursiveBisection;
pub use greedy::GreedyLoad;
pub use greedygrow::GreedyGrow;
pub use multilevel::MultilevelKWay;
pub use multisection::{enforce_capacities, weighted_leaf_cut, Multisection};
pub use random::RandomPartition;

use topomap_taskgraph::TaskGraph;

/// A k-way partition of a task graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    assignment: Vec<usize>,
    k: usize,
}

impl Partition {
    /// Wrap an assignment vector. Panics if any part id is `>= k`.
    pub fn new(assignment: Vec<usize>, k: usize) -> Self {
        assert!(k > 0);
        assert!(assignment.iter().all(|&p| p < k), "part id out of range");
        Partition { assignment, k }
    }

    /// `part_of[t]` = the group task `t` belongs to.
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    pub fn part_of(&self, task: usize) -> usize {
        self.assignment[task]
    }

    pub fn num_parts(&self) -> usize {
        self.k
    }

    pub fn num_tasks(&self) -> usize {
        self.assignment.len()
    }

    /// Number of tasks in each part.
    pub fn part_sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.k];
        for &p in &self.assignment {
            s[p] += 1;
        }
        s
    }

    /// Per-part compute loads for the weights in `g`.
    pub fn part_loads(&self, g: &TaskGraph) -> Vec<f64> {
        assert_eq!(g.num_tasks(), self.assignment.len());
        let mut loads = vec![0f64; self.k];
        for (t, &p) in self.assignment.iter().enumerate() {
            loads[p] += g.vertex_weight(t);
        }
        loads
    }

    /// Max part load over average part load (1.0 = perfect balance),
    /// under the compute weights in `g`.
    pub fn imbalance_for(&self, g: &TaskGraph) -> f64 {
        let loads = self.part_loads(g);
        let total: f64 = loads.iter().sum();
        if total == 0.0 {
            return 1.0;
        }
        let avg = total / self.k as f64;
        loads.iter().fold(0.0f64, |m, &l| m.max(l)) / avg
    }

    /// Unit-weight imbalance: max part *size* over average part size.
    pub fn imbalance(&self) -> f64 {
        let sizes = self.part_sizes();
        let avg = self.assignment.len() as f64 / self.k as f64;
        if avg == 0.0 {
            return 1.0;
        }
        sizes.iter().fold(0.0f64, |m, &s| m.max(s as f64)) / avg
    }

    /// Total weight of edges crossing between parts ("inter-partition
    /// communication", the quantity cut-reducing phase-1 partitioners
    /// minimize).
    pub fn edge_cut(&self, g: &TaskGraph) -> f64 {
        assert_eq!(g.num_tasks(), self.assignment.len());
        g.edges()
            .filter(|&(a, b, _)| self.assignment[a] != self.assignment[b])
            .map(|(_, _, w)| w)
            .sum()
    }

    /// Coalesce the graph along this partition (phase-1 output → the
    /// p-node group graph that gets mapped in phase 2).
    pub fn coalesce(&self, g: &TaskGraph) -> TaskGraph {
        g.coalesce(&self.assignment, self.k)
    }
}

/// A topology-oblivious partitioner: splits `n` tasks into `k` groups.
pub trait Partitioner {
    /// Partition `g` into `k` groups. Implementations must return a
    /// partition where every group id is `< k`; groups may be empty only
    /// when `k > g.num_tasks()`.
    fn partition(&self, g: &TaskGraph, k: usize) -> Partition;

    /// Name for experiment output.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn partition_accessors() {
        let p = Partition::new(vec![0, 1, 0, 2], 3);
        assert_eq!(p.num_parts(), 3);
        assert_eq!(p.num_tasks(), 4);
        assert_eq!(p.part_of(2), 0);
        assert_eq!(p.part_sizes(), vec![2, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_part_id_rejected() {
        Partition::new(vec![0, 3], 3);
    }

    #[test]
    fn edge_cut_counts_crossing_only() {
        let g = gen::ring(4, 10.0); // edges of weight 20 each
                                    // Parts {0,1} {2,3}: edges 1-2 and 3-0 cross.
        let p = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(p.edge_cut(&g), 40.0);
        // All in one part: no cut.
        let p1 = Partition::new(vec![0, 0, 0, 0], 1);
        assert_eq!(p1.edge_cut(&g), 0.0);
    }

    #[test]
    fn imbalance_unit_weights() {
        let p = Partition::new(vec![0, 0, 0, 1], 2);
        assert_eq!(p.imbalance(), 1.5);
        let balanced = Partition::new(vec![0, 0, 1, 1], 2);
        assert_eq!(balanced.imbalance(), 1.0);
    }

    #[test]
    fn part_loads_use_graph_weights() {
        let mut b = topomap_taskgraph::TaskGraph::builder(3);
        b.set_task_weight(0, 1.0)
            .set_task_weight(1, 2.0)
            .set_task_weight(2, 3.0);
        let g = b.build();
        let p = Partition::new(vec![0, 1, 1], 2);
        assert_eq!(p.part_loads(&g), vec![1.0, 5.0]);
        assert!((p.imbalance_for(&g) - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn coalesce_through_partition() {
        let g = gen::stencil2d(4, 4, 1.0, false);
        let assignment: Vec<usize> = (0..16).map(|t| t / 4).collect();
        let p = Partition::new(assignment, 4);
        let c = p.coalesce(&g);
        assert_eq!(c.num_tasks(), 4);
        assert_eq!(c.total_vertex_weight(), 16.0);
    }
}
