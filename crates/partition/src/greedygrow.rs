//! Seeded greedy graph growing (GGGP): a fast k-way partitioner that
//! grows all `k` parts in lockstep from well-separated seeds.
//!
//! Multilevel schemes optimize raw edge cut, which tolerates long, ragged
//! parts; for the hierarchical mapper what matters is that parts are
//! *compact* (small diameter in the task graph), because each part must
//! then fit a compact processor block. Lockstep region growing from
//! farthest-point seeds yields Voronoi-like compact cells at near-linear
//! cost:
//!
//! 1. Seed part 0 at the heaviest vertex; every further seed is the
//!    vertex with maximum BFS hop distance to all previous seeds
//!    (farthest-point sampling).
//! 2. Grow all parts simultaneously: repeatedly assign the (vertex, part)
//!    pair with the strongest attraction — total edge weight from the
//!    vertex to the part's current members — subject to per-part
//!    capacity. Disconnected leftovers go to the first part with room.
//!
//! Fully deterministic: attraction ties break on lowest vertex id, then
//! lowest part id.

use crate::{Partition, Partitioner};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use topomap_taskgraph::{TaskGraph, TaskId};

/// Greedy lockstep graph-growing partitioner.
#[derive(Debug, Clone, Default)]
pub struct GreedyGrow {
    /// Hard per-part size cap. `None` = `ceil(n / k)` (near-perfect
    /// balance).
    pub capacity: Option<usize>,
}

impl GreedyGrow {
    pub fn new() -> Self {
        GreedyGrow::default()
    }

    /// Cap every part at `capacity` members (`k · capacity` must cover
    /// the graph).
    pub fn with_capacity(capacity: usize) -> Self {
        GreedyGrow {
            capacity: Some(capacity),
        }
    }
}

/// Heap entry ordered by (gain, Reverse(vertex), Reverse(part)) so the
/// max-heap pops the strongest attraction with lowest-id tie-breaks.
/// Gains are finite and non-negative, so `partial_cmp` never fails.
struct Entry {
    gain: f64,
    task: Reverse<TaskId>,
    part: Reverse<usize>,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.gain == other.gain && self.task == other.task && self.part == other.part
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.gain
            .partial_cmp(&other.gain)
            .expect("finite gains")
            .then(self.task.cmp(&other.task))
            .then(self.part.cmp(&other.part))
    }
}

impl Partitioner for GreedyGrow {
    fn partition(&self, g: &TaskGraph, k: usize) -> Partition {
        let n = g.num_tasks();
        assert!(k > 0);
        if k == 1 || n == 0 {
            return Partition::new(vec![0; n], k);
        }
        let capacity = self.capacity.unwrap_or(n.div_ceil(k)).max(1);
        assert!(
            capacity * k >= n,
            "capacity {capacity} x {k} parts cannot hold {n} tasks"
        );

        // --- farthest-point seeds ---
        let wdeg = |t: TaskId| -> f64 { g.neighbors(t).map(|(_, w)| w).sum() };
        let first = (0..n)
            .max_by(|&a, &b| wdeg(a).partial_cmp(&wdeg(b)).unwrap().then(b.cmp(&a)))
            .unwrap();
        let mut seeds = Vec::with_capacity(k.min(n));
        let mut dist = vec![u32::MAX; n];
        let mut queue = VecDeque::new();
        let absorb = |s: TaskId, dist: &mut Vec<u32>, queue: &mut VecDeque<TaskId>| {
            dist[s] = 0;
            queue.push_back(s);
            while let Some(t) = queue.pop_front() {
                for (u, _) in g.neighbors(t) {
                    if dist[u] > dist[t] + 1 {
                        dist[u] = dist[t] + 1;
                        queue.push_back(u);
                    }
                }
            }
        };
        absorb(first, &mut dist, &mut queue);
        seeds.push(first);
        while seeds.len() < k.min(n) {
            // Farthest vertex from the seed set; unreachable (MAX) wins,
            // ties on lowest id.
            let s = (0..n)
                .filter(|&t| dist[t] > 0 || !seeds.contains(&t))
                .max_by(|&a, &b| dist[a].cmp(&dist[b]).then(b.cmp(&a)))
                .unwrap();
            if dist[s] == 0 {
                break; // graph smaller than it looks (duplicate seeds)
            }
            absorb(s, &mut dist, &mut queue);
            seeds.push(s);
        }

        // --- lockstep growth ---
        let mut part = vec![usize::MAX; n];
        let mut sizes = vec![0usize; k];
        let mut gain = vec![0f64; n * k];
        let mut heap: BinaryHeap<Entry> = BinaryHeap::new();
        let assign = |t: TaskId,
                      p: usize,
                      part: &mut Vec<usize>,
                      sizes: &mut Vec<usize>,
                      gain: &mut Vec<f64>,
                      heap: &mut BinaryHeap<Entry>| {
            part[t] = p;
            sizes[p] += 1;
            for (u, w) in g.neighbors(t) {
                if part[u] == usize::MAX {
                    gain[u * k + p] += w;
                    heap.push(Entry {
                        gain: gain[u * k + p],
                        task: Reverse(u),
                        part: Reverse(p),
                    });
                }
            }
        };
        for (p, &s) in seeds.iter().enumerate() {
            assign(s, p, &mut part, &mut sizes, &mut gain, &mut heap);
        }
        while let Some(e) = heap.pop() {
            let (t, p) = (e.task.0, e.part.0);
            // Lazy heap: skip stale entries and full parts.
            if part[t] != usize::MAX || e.gain != gain[t * k + p] || sizes[p] >= capacity {
                continue;
            }
            assign(t, p, &mut part, &mut sizes, &mut gain, &mut heap);
        }
        // Disconnected leftovers: first part with room.
        for t in 0..n {
            if part[t] == usize::MAX {
                let p = (0..k).find(|&p| sizes[p] < capacity).expect("capacity");
                assign(t, p, &mut part, &mut sizes, &mut gain, &mut heap);
            }
        }
        Partition::new(part, k)
    }

    fn name(&self) -> &'static str {
        "GreedyGrow"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn covers_all_tasks_within_capacity() {
        let g = gen::stencil2d(8, 8, 1.0, false);
        let part = GreedyGrow::new().partition(&g, 4);
        assert_eq!(part.num_parts(), 4);
        assert_eq!(part.part_sizes().iter().sum::<usize>(), 64);
        assert!(part.part_sizes().iter().all(|&s| s <= 16));
    }

    #[test]
    fn parts_are_compact_on_stencil() {
        // Each part's bounding box should be near sqrt(n/k)-sized, not a
        // long strip: area of the box stays within 2.5x the part size.
        let g = gen::stencil2d(16, 16, 1.0, false);
        let part = GreedyGrow::new().partition(&g, 4);
        for p in 0..4 {
            let members: Vec<usize> = (0..256).filter(|&t| part.part_of(t) == p).collect();
            let (mut x0, mut x1, mut y0, mut y1) = (usize::MAX, 0, usize::MAX, 0);
            for &t in &members {
                let (x, y) = (t % 16, t / 16);
                x0 = x0.min(x);
                x1 = x1.max(x);
                y0 = y0.min(y);
                y1 = y1.max(y);
            }
            let area = (x1 - x0 + 1) * (y1 - y0 + 1);
            assert!(
                area <= members.len() * 3,
                "part {p}: {} members in {area} box",
                members.len()
            );
        }
    }

    #[test]
    fn deterministic() {
        let g = gen::random_graph(60, 3.0, 1.0, 100.0, 7);
        let a = GreedyGrow::new().partition(&g, 5);
        let b = GreedyGrow::new().partition(&g, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn explicit_capacity_is_respected() {
        let g = gen::ring(10, 1.0);
        let part = GreedyGrow::with_capacity(4).partition(&g, 3);
        assert!(part.part_sizes().iter().all(|&s| s <= 4));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn insufficient_capacity_rejected() {
        let g = gen::ring(10, 1.0);
        GreedyGrow::with_capacity(2).partition(&g, 3);
    }

    #[test]
    fn handles_disconnected_graphs() {
        // Two disjoint rings; every task still gets a part.
        let mut b = TaskGraph::builder(8);
        for i in 0..4 {
            b.add_comm(i, (i + 1) % 4, 1.0);
            b.add_comm(4 + i, 4 + (i + 1) % 4, 1.0);
        }
        let g = b.build();
        let part = GreedyGrow::new().partition(&g, 2);
        assert_eq!(part.part_sizes(), vec![4, 4]);
    }

    #[test]
    fn k_exceeding_n_leaves_empty_parts() {
        let g = gen::ring(3, 1.0);
        let part = GreedyGrow::new().partition(&g, 5);
        assert_eq!(part.num_tasks(), 3);
        assert!(part.part_sizes().iter().all(|&s| s <= 1));
    }
}
