//! Recursive bisection partitioning.
//!
//! The classic alternative to direct k-way partitioning (and the engine
//! behind the ARM scheme of Ercal, Ramanujam & Sadayappan the paper cites
//! [7]): repeatedly split the vertex set in two with a balanced, low-cut
//! bisection until `k` parts exist. Each bisection here is a BFS-grown
//! half (seeded at a peripheral vertex) polished with the same FM-style
//! boundary refinement the multilevel partitioner uses.
//!
//! Supports any `k` (not just powers of two) by splitting weights
//! proportionally: a part destined to hold `k_left` of `k` leaves gets
//! `k_left / k` of the load.

use crate::{Partition, Partitioner};
use rand::rngs::StdRng;
use rand::SeedableRng;
use topomap_taskgraph::TaskGraph;

/// Recursive-bisection partitioner.
#[derive(Debug, Clone)]
pub struct RecursiveBisection {
    /// FM passes per bisection.
    pub refine_passes: usize,
    /// Seed for tie-breaking.
    pub seed: u64,
}

impl Default for RecursiveBisection {
    fn default() -> Self {
        RecursiveBisection {
            refine_passes: 4,
            seed: 0xB15EC7,
        }
    }
}

impl Partitioner for RecursiveBisection {
    fn partition(&self, g: &TaskGraph, k: usize) -> Partition {
        assert!(k > 0);
        let n = g.num_tasks();
        if k == 1 {
            return Partition::new(vec![0; n], 1);
        }
        if k >= n {
            return Partition::new((0..n).collect(), k);
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut assignment = vec![0usize; n];
        let all: Vec<usize> = (0..n).collect();
        let mut next_part = 0usize;
        self.split(g, &all, k, &mut assignment, &mut next_part, &mut rng);
        Partition::new(assignment, k)
    }

    fn name(&self) -> &'static str {
        "RecursiveBisection"
    }
}

impl RecursiveBisection {
    /// Recursively split `members` into `k` parts, writing final part ids
    /// via `next_part`.
    fn split(
        &self,
        g: &TaskGraph,
        members: &[usize],
        k: usize,
        assignment: &mut [usize],
        next_part: &mut usize,
        rng: &mut StdRng,
    ) {
        if k == 1 {
            let id = *next_part;
            *next_part += 1;
            for &v in members {
                assignment[v] = id;
            }
            return;
        }
        let k_left = k / 2;
        let k_right = k - k_left;
        let total: f64 = members.iter().map(|&v| g.vertex_weight(v)).sum();
        let target_left = total * k_left as f64 / k as f64;

        let (left, right) = bisect(g, members, target_left, self.refine_passes, rng);
        self.split(g, &left, k_left, assignment, next_part, rng);
        self.split(g, &right, k_right, assignment, next_part, rng);
    }
}

/// Grow a BFS region from a peripheral seed until `target_left` load is
/// collected, then run boundary refinement between the halves.
fn bisect(
    g: &TaskGraph,
    members: &[usize],
    target_left: f64,
    passes: usize,
    rng: &mut StdRng,
) -> (Vec<usize>, Vec<usize>) {
    use rand::Rng;
    let in_set: std::collections::HashSet<usize> = members.iter().copied().collect();
    let mut side = std::collections::HashMap::<usize, bool>::new(); // true = left

    // Peripheral seed: BFS from a random member, take the farthest vertex.
    let start = members[rng.gen_range(0..members.len())];
    let seed = bfs_farthest(g, start, &in_set);

    // Grow the left half by strongest connection (greedy graph growing).
    let mut conn = std::collections::HashMap::<usize, f64>::new();
    let mut frontier: Vec<usize> = vec![seed];
    conn.insert(seed, f64::INFINITY);
    let mut load = 0.0;
    let mut unseen: std::collections::HashSet<usize> = in_set.clone();
    while load < target_left {
        // Re-seed if the frontier dries up (disconnected member set).
        if frontier.is_empty() {
            match unseen.iter().copied().min() {
                Some(s) => {
                    conn.insert(s, f64::INFINITY);
                    frontier.push(s);
                }
                None => break,
            }
        }
        let (idx, &v) = frontier
            .iter()
            .enumerate()
            .max_by(|(_, &a), (_, &b)| conn[&a].partial_cmp(&conn[&b]).unwrap().then(b.cmp(&a)))
            .expect("frontier non-empty");
        frontier.swap_remove(idx);
        if !unseen.remove(&v) {
            continue;
        }
        side.insert(v, true);
        load += g.vertex_weight(v);
        for (u, w) in g.neighbors(v) {
            if unseen.contains(&u) {
                let e = conn.entry(u).or_insert(0.0);
                if *e == 0.0 {
                    frontier.push(u);
                }
                *e += w;
            }
        }
    }
    for &v in members {
        side.entry(v).or_insert(false);
    }

    // FM-style boundary refinement between the two halves, keeping the
    // load split within 10% of the target.
    let total: f64 = members.iter().map(|&v| g.vertex_weight(v)).sum();
    let mut left_load: f64 = members
        .iter()
        .filter(|&&v| side[&v])
        .map(|&v| g.vertex_weight(v))
        .sum();
    let lo = (target_left - 0.1 * total).max(0.0);
    let hi = target_left + 0.1 * total;
    for _ in 0..passes {
        let mut moved = false;
        for &v in members {
            let cur_left = side[&v];
            let mut to_left = 0.0;
            let mut to_right = 0.0;
            for (u, w) in g.neighbors(v) {
                if let Some(&s) = side.get(&u) {
                    if s {
                        to_left += w;
                    } else {
                        to_right += w;
                    }
                }
            }
            let w = g.vertex_weight(v);
            let gain = if cur_left {
                to_right - to_left
            } else {
                to_left - to_right
            };
            let new_left = if cur_left {
                left_load - w
            } else {
                left_load + w
            };
            if gain > 0.0 && new_left >= lo && new_left <= hi {
                side.insert(v, !cur_left);
                left_load = new_left;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    let mut left = Vec::new();
    let mut right = Vec::new();
    for &v in members {
        if side[&v] {
            left.push(v);
        } else {
            right.push(v);
        }
    }
    // Degenerate guard: never return an empty half (k-way needs both).
    if left.is_empty() {
        left.push(right.pop().expect("members non-empty"));
    } else if right.is_empty() {
        right.push(left.pop().expect("members non-empty"));
    }
    (left, right)
}

/// The member vertex farthest (in hops within the member-induced
/// subgraph) from `start`; falls back to `start` for singletons.
fn bfs_farthest(g: &TaskGraph, start: usize, in_set: &std::collections::HashSet<usize>) -> usize {
    let mut dist = std::collections::HashMap::<usize, u32>::new();
    let mut queue = std::collections::VecDeque::new();
    dist.insert(start, 0);
    queue.push_back(start);
    let mut far = (start, 0u32);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d > far.1 || (d == far.1 && v < far.0) {
            far = (v, d);
        }
        for (u, _) in g.neighbors(v) {
            if in_set.contains(&u) && !dist.contains_key(&u) {
                dist.insert(u, d + 1);
                queue.push_back(u);
            }
        }
    }
    far.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn covers_and_balances_power_of_two() {
        let g = gen::stencil2d(8, 8, 1.0, false);
        let p = RecursiveBisection::default().partition(&g, 8);
        assert_eq!(p.num_tasks(), 64);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
        assert!(p.imbalance() <= 1.4, "imbalance {}", p.imbalance());
    }

    #[test]
    fn handles_non_power_of_two_k() {
        let g = gen::stencil2d(9, 7, 1.0, false);
        let p = RecursiveBisection::default().partition(&g, 5);
        assert_eq!(p.num_parts(), 5);
        let sizes = p.part_sizes();
        assert!(sizes.iter().all(|&s| s > 0), "{sizes:?}");
        // 63 tasks over 5 parts: sizes should be near 12-13.
        assert!(sizes.iter().all(|&s| (8..=18).contains(&s)), "{sizes:?}");
    }

    #[test]
    fn cut_beats_random() {
        let g = gen::stencil2d(10, 10, 1.0, false);
        let rb = RecursiveBisection::default().partition(&g, 4);
        let rnd = crate::RandomPartition::new(3).partition(&g, 4);
        assert!(rb.edge_cut(&g) < 0.6 * rnd.edge_cut(&g));
    }

    #[test]
    fn deterministic() {
        let g = gen::random_graph(50, 4.0, 1.0, 10.0, 8);
        let rb = RecursiveBisection::default();
        assert_eq!(rb.partition(&g, 6), rb.partition(&g, 6));
    }

    #[test]
    fn k_edge_cases() {
        let g = gen::ring(5, 1.0);
        assert!(RecursiveBisection::default()
            .partition(&g, 1)
            .assignment()
            .iter()
            .all(|&x| x == 0));
        let p = RecursiveBisection::default().partition(&g, 5);
        let mut ids = p.assignment().to_vec();
        ids.sort_unstable();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn disconnected_graph_survives() {
        let mut b = topomap_taskgraph::TaskGraph::builder(10);
        for i in 0..5usize {
            b.add_comm(i, (i + 1) % 5, 1.0);
        }
        // vertices 5..10 are isolated
        let g = b.build();
        let p = RecursiveBisection::default().partition(&g, 3);
        assert_eq!(p.num_tasks(), 10);
        assert!(p.part_sizes().iter().all(|&s| s > 0));
    }
}
