//! Network hardware parameters.

use serde::{Deserialize, Serialize};

/// Switching discipline of the simulated routers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq, Default)]
pub enum Switching {
    /// Virtual cut-through with ample buffering: a blocked message is
    /// absorbed by the switch and frees its upstream link after one
    /// serialization time.
    CutThrough,
    /// Wormhole switching with minimal buffering (BlueGene-style): a
    /// message blocked at a busy link keeps its upstream link occupied
    /// until it advances — backpressure chains are what make congestion
    /// collapse dramatic for long-route (random) mappings in §5.3.
    #[default]
    Wormhole,
}

/// How a node's NIC couples tasks to the network.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq, Default)]
pub enum NicModel {
    /// One shared injection channel and one shared ejection channel per
    /// node, each at link bandwidth: all of a node's outgoing (incoming)
    /// messages serialize through it. Models BG/L co-processor mode,
    /// where the compute CPU packetizes every message (the regime of
    /// Table 1 and the §5.4 hardware runs).
    #[default]
    SharedChannel,
    /// Each network port injects/ejects independently; serialization
    /// happens only on the wire FIFOs themselves. Models a router-centric
    /// network simulator like BigNetSim (the regime of §5.3).
    PerLink,
}

/// Route selection discipline.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq, Default)]
pub enum RoutingMode {
    /// Deterministic shortest paths (dimension-ordered e-cube on
    /// tori/meshes) — what BlueGene's default mode and the paper's
    /// simulations use.
    #[default]
    Deterministic,
    /// Minimal-adaptive: at each hop, take the productive link that frees
    /// earliest. Still shortest-path; spreads load over equivalent routes
    /// (models adaptive virtual-channel selection).
    MinimalAdaptive,
}

/// Parameters of the simulated interconnect.
///
/// The defaults are generic "mid-2000s torus machine" values; the
/// BlueGene-flavored presets live in [`crate::bluegene`]. The §5.3
/// experiments sweep `link_bandwidth` from 100 MB/s to 1 GB/s ("channel
/// bandwidth in 100s of MB/s").
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct NetworkConfig {
    /// Per-direction link bandwidth in bytes per second.
    pub link_bandwidth: f64,
    /// Router/switch latency per hop in nanoseconds (head advance time).
    pub hop_latency_ns: u64,
    /// Sender-side software overhead per message in nanoseconds (the CPU
    /// is busy for this long per send).
    pub send_overhead_ns: u64,
    /// Delivery latency for messages between tasks on the *same*
    /// processor, in nanoseconds (a memcpy, no network involvement).
    pub local_latency_ns: u64,
    /// Router switching discipline.
    pub switching: Switching,
    /// NIC coupling model.
    pub nic: NicModel,
    /// Route selection discipline.
    pub routing: RoutingMode,
    /// Per-link relative speed factors `(from, to, factor)`. Links not
    /// listed run at `link_bandwidth`; factor 0.5 halves that directed
    /// link's bandwidth (degraded cable, oversubscribed uplink — the
    /// heterogeneous-capacity setting of Taura & Chien, the paper's ref
    /// \[21\]). Factors must be positive.
    pub link_speed_factors: Vec<(usize, usize, f64)>,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            link_bandwidth: 500.0e6, // 500 MB/s
            hop_latency_ns: 100,
            send_overhead_ns: 1_000,
            local_latency_ns: 500,
            switching: Switching::default(),
            nic: NicModel::default(),
            routing: RoutingMode::default(),
            link_speed_factors: Vec::new(),
        }
    }
}

impl NetworkConfig {
    /// Same config with a different bandwidth (for the §5.3 sweeps).
    pub fn with_bandwidth(mut self, bytes_per_s: f64) -> Self {
        assert!(bytes_per_s > 0.0);
        self.link_bandwidth = bytes_per_s;
        self
    }

    /// Serialization time of `bytes` on one link, in nanoseconds
    /// (rounded up so zero-byte messages still take nonzero slots).
    pub fn serialization_ns(&self, bytes: u64) -> u64 {
        ((bytes as f64) * 1e9 / self.link_bandwidth).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_time() {
        let cfg = NetworkConfig::default().with_bandwidth(1e9); // 1 GB/s
        assert_eq!(cfg.serialization_ns(1000), 1000); // 1000 B at 1B/ns
        assert_eq!(cfg.serialization_ns(1), 1);
        let slow = cfg.clone().with_bandwidth(100e6); // 100 MB/s = 0.1 B/ns
        assert_eq!(slow.serialization_ns(1000), 10_000);
    }

    #[test]
    fn bandwidth_sweep_builder() {
        let cfg = NetworkConfig::default();
        let c2 = cfg.clone().with_bandwidth(2e8);
        assert_eq!(c2.link_bandwidth, 2e8);
        assert_eq!(c2.hop_latency_ns, cfg.hop_latency_ns);
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = NetworkConfig::default();
        let s = serde_json::to_string(&cfg).unwrap();
        let back: NetworkConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(cfg, back);
    }
}
