//! BlueGene/L-flavored machine presets (§5.4 of the paper).
//!
//! **Substitution note (DESIGN.md §4).** The paper's §5.4 runs on real
//! BlueGene hardware (and its Charm++ emulator); we drive the same
//! benchmark through the packet simulator configured with BG/L-like
//! constants: 3D torus/mesh, ~175 MB/s per link direction, sub-µs per-hop
//! router latency. Relative behaviour between mappings — which is all the
//! paper's Figures 10–11 compare — depends on hop counts and contention,
//! both of which the simulator models.

use crate::config::NetworkConfig;
use topomap_topology::Torus;

/// BG/L torus link bandwidth per direction: 175 MB/s (2 bits per cycle at
/// 700 MHz).
pub const BGL_LINK_BANDWIDTH: f64 = 175.0e6;

/// BG/L per-hop router latency (~100 ns including link traversal).
pub const BGL_HOP_LATENCY_NS: u64 = 100;

/// Sender software overhead per message (~2 µs MPI-level overhead).
pub const BGL_SEND_OVERHEAD_NS: u64 = 2_000;

/// Intra-node delivery latency.
pub const BGL_LOCAL_LATENCY_NS: u64 = 500;

/// The BG/L-like network configuration.
pub fn bluegene_config() -> NetworkConfig {
    NetworkConfig {
        link_bandwidth: BGL_LINK_BANDWIDTH,
        hop_latency_ns: BGL_HOP_LATENCY_NS,
        send_overhead_ns: BGL_SEND_OVERHEAD_NS,
        local_latency_ns: BGL_LOCAL_LATENCY_NS,
        switching: crate::config::Switching::Wormhole,
        nic: crate::config::NicModel::SharedChannel,
        routing: crate::config::RoutingMode::Deterministic,
        link_speed_factors: Vec::new(),
    }
}

/// A BlueGene partition of `p` nodes "configured as either a 3D-Mesh or a
/// 3D-Torus" (§5.4), using the most cubic factorization of `p`.
pub fn bluegene_machine(p: usize, torus: bool) -> Torus {
    if torus {
        Torus::torus_3d_for(p)
    } else {
        let t = Torus::torus_3d_for(p);
        Torus::mesh(t.dims())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_topology::Topology;

    #[test]
    fn machine_shapes() {
        let t = bluegene_machine(512, true);
        assert_eq!(t.num_nodes(), 512);
        assert_eq!(t.dims(), &[8, 8, 8]);
        assert!(t.is_full_torus());
        let m = bluegene_machine(512, false);
        assert!(!m.is_full_torus());
        assert_eq!(m.dims(), &[8, 8, 8]);
    }

    #[test]
    fn mesh_diameter_exceeds_torus() {
        let t = bluegene_machine(64, true);
        let m = bluegene_machine(64, false);
        assert!(m.diameter() > t.diameter());
    }

    #[test]
    fn config_constants() {
        let cfg = bluegene_config();
        assert_eq!(cfg.link_bandwidth, 175.0e6);
        // 100 KB message serialization ≈ 585 µs at 175 MB/s.
        let ser = cfg.serialization_ns(100 * 1024);
        assert!((ser as f64 - 102400.0 * 1e9 / 175e6).abs() < 2.0);
    }
}
