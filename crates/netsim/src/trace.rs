//! Application traces: per-task operation sequences replayed by the
//! simulator while honoring dependencies.
//!
//! This mirrors the paper's §5.3 methodology: "event traces contain
//! timestamps for message sending and entry point initiation.
//! Event-dependency information is also available ... so that these
//! timestamps can be corrected depending on the network being simulated
//! while honoring event ordering." Here a trace carries the *structure*
//! (op order and dependencies); the simulator computes all timing from the
//! network model.

use serde::{Deserialize, Serialize};
use topomap_taskgraph::{TaskGraph, TaskId};

/// One operation in a task's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Busy-compute for the given number of nanoseconds.
    Compute { ns: u64 },
    /// Send `bytes` to task `to` (asynchronous; costs the sender only the
    /// configured software overhead).
    Send { to: TaskId, bytes: u64 },
    /// Block until one more message from task `from` has been received
    /// than this task has consumed so far.
    Recv { from: TaskId },
}

/// A complete application trace: one op sequence per task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub programs: Vec<Vec<TraceOp>>,
}

impl Trace {
    pub fn num_tasks(&self) -> usize {
        self.programs.len()
    }

    /// Total bytes sent across the whole trace.
    pub fn total_send_bytes(&self) -> u64 {
        self.programs
            .iter()
            .flatten()
            .map(|op| match op {
                TraceOp::Send { bytes, .. } => *bytes,
                _ => 0,
            })
            .sum()
    }

    /// Total number of messages in the trace.
    pub fn num_messages(&self) -> usize {
        self.programs
            .iter()
            .flatten()
            .filter(|op| matches!(op, TraceOp::Send { .. }))
            .count()
    }

    /// Sanity-check that every `Send` has a matching `Recv` (per ordered
    /// pair of tasks), so replay cannot deadlock on missing messages.
    /// Returns the first mismatched pair if any.
    pub fn check_matched(&self) -> Result<(), (TaskId, TaskId)> {
        use std::collections::HashMap;
        let mut sends: HashMap<(TaskId, TaskId), i64> = HashMap::new();
        for (t, prog) in self.programs.iter().enumerate() {
            for op in prog {
                match *op {
                    TraceOp::Send { to, .. } => *sends.entry((t, to)).or_insert(0) += 1,
                    TraceOp::Recv { from } => *sends.entry((from, t)).or_insert(0) -= 1,
                    TraceOp::Compute { .. } => {}
                }
            }
        }
        for (&pair, &bal) in &sends {
            if bal != 0 {
                return Err(pair);
            }
        }
        Ok(())
    }
}

/// Build the paper's iterative stencil benchmark as a trace: in each
/// iteration every task computes for `compute_ns`, sends one message to
/// each task-graph neighbor (half the edge weight — edge weights are
/// bidirectional totals), then waits for one message from each neighbor.
///
/// Sends precede receives within an iteration, so the program is
/// deadlock-free; a task can run at most one iteration ahead of its
/// neighbors, exactly like a real Jacobi sweep.
pub fn stencil_trace(tasks: &TaskGraph, iterations: usize, compute_ns: u64) -> Trace {
    let n = tasks.num_tasks();
    let mut programs = Vec::with_capacity(n);
    for t in 0..n {
        let nbrs: Vec<(TaskId, u64)> = tasks
            .neighbors(t)
            .map(|(j, w)| (j, (w / 2.0).round() as u64))
            .collect();
        let mut prog = Vec::with_capacity(iterations * (1 + 2 * nbrs.len()));
        for _ in 0..iterations {
            prog.push(TraceOp::Compute { ns: compute_ns });
            for &(j, bytes) in &nbrs {
                prog.push(TraceOp::Send { to: j, bytes });
            }
            for &(j, _) in &nbrs {
                prog.push(TraceOp::Recv { from: j });
            }
        }
        programs.push(prog);
    }
    Trace { programs }
}

/// A ping-pong trace between two tasks (`rounds` round trips of `bytes`),
/// useful for calibrating the latency model.
pub fn pingpong_trace(num_tasks: usize, a: TaskId, b: TaskId, rounds: usize, bytes: u64) -> Trace {
    assert!(a < num_tasks && b < num_tasks && a != b);
    let mut programs = vec![Vec::new(); num_tasks];
    for _ in 0..rounds {
        programs[a].push(TraceOp::Send { to: b, bytes });
        programs[a].push(TraceOp::Recv { from: b });
        programs[b].push(TraceOp::Recv { from: a });
        programs[b].push(TraceOp::Send { to: a, bytes });
    }
    Trace { programs }
}

/// A personalized all-to-all (MPI_Alltoall) trace: in each of `rounds`
/// phases every task sends `bytes` to every other task and receives from
/// all of them. The bisection-bandwidth stress collective.
pub fn alltoall_trace(num_tasks: usize, rounds: usize, bytes: u64) -> Trace {
    assert!(num_tasks >= 2);
    let mut programs = vec![Vec::new(); num_tasks];
    for _ in 0..rounds {
        for (t, prog) in programs.iter_mut().enumerate() {
            for peer in 0..num_tasks {
                if peer != t {
                    prog.push(TraceOp::Send { to: peer, bytes });
                }
            }
            for peer in 0..num_tasks {
                if peer != t {
                    prog.push(TraceOp::Recv { from: peer });
                }
            }
        }
    }
    Trace { programs }
}

/// A recursive-doubling all-reduce trace over `n = 2^k` tasks: `log2 n`
/// rounds in which each task exchanges `bytes` with the partner differing
/// in bit `k` — the classic latency-optimal collective. Each round fully
/// synchronizes partner pairs, so the simulated completion time exposes
/// how the mapping stretches the butterfly's long exchanges.
pub fn allreduce_trace(num_tasks: usize, rounds: usize, bytes: u64) -> Trace {
    assert!(num_tasks >= 2 && num_tasks.is_power_of_two());
    let mut programs = vec![Vec::new(); num_tasks];
    for _ in 0..rounds {
        let mut bit = 1usize;
        while bit < num_tasks {
            for (t, prog) in programs.iter_mut().enumerate() {
                let partner = t ^ bit;
                prog.push(TraceOp::Send { to: partner, bytes });
                prog.push(TraceOp::Recv { from: partner });
            }
            bit <<= 1;
        }
    }
    Trace { programs }
}

/// A binomial-tree reduction trace: leaves send up, parents combine and
/// forward, the root ends holding the result; then a broadcast unwinds
/// back down. `rounds` repetitions.
pub fn reduce_broadcast_trace(num_tasks: usize, rounds: usize, bytes: u64) -> Trace {
    assert!(num_tasks >= 2);
    let mut programs = vec![Vec::new(); num_tasks];
    for _ in 0..rounds {
        // Reduction: in pass k, node i with i % 2^(k+1) == 2^k sends to
        // i - 2^k.
        let mut stride = 1usize;
        while stride < num_tasks {
            for t in 0..num_tasks {
                if t % (2 * stride) == stride {
                    let parent = t - stride;
                    programs[t].push(TraceOp::Send { to: parent, bytes });
                    programs[parent].push(TraceOp::Recv { from: t });
                }
            }
            stride *= 2;
        }
        // Broadcast: unwind in reverse order.
        stride /= 2;
        while stride >= 1 {
            for t in 0..num_tasks {
                if t % (2 * stride) == 0 && t + stride < num_tasks {
                    let child = t + stride;
                    programs[t].push(TraceOp::Send { to: child, bytes });
                    programs[child].push(TraceOp::Recv { from: t });
                }
            }
            if stride == 1 {
                break;
            }
            stride /= 2;
        }
    }
    Trace { programs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;

    #[test]
    fn stencil_trace_shape() {
        let g = gen::stencil2d(3, 3, 2000.0, false);
        let tr = stencil_trace(&g, 5, 1000);
        assert_eq!(tr.num_tasks(), 9);
        // Center task: 5 iters x (1 compute + 4 sends + 4 recvs).
        assert_eq!(tr.programs[4].len(), 5 * 9);
        // Corner: degree 2.
        assert_eq!(tr.programs[0].len(), 5 * 5);
        assert!(tr.check_matched().is_ok());
    }

    #[test]
    fn stencil_trace_bytes_per_message() {
        let g = gen::stencil2d(2, 2, 2000.0, false); // edge weight 4000 total
        let tr = stencil_trace(&g, 1, 0);
        for op in tr.programs.iter().flatten() {
            if let TraceOp::Send { bytes, .. } = op {
                assert_eq!(*bytes, 2000, "per-direction message is half the edge");
            }
        }
        assert_eq!(tr.num_messages(), 4 * 2); // 4 edges, both directions
        assert_eq!(tr.total_send_bytes(), 8 * 2000);
    }

    #[test]
    fn unmatched_trace_detected() {
        let tr = Trace {
            programs: vec![
                vec![TraceOp::Send { to: 1, bytes: 10 }],
                vec![], // missing Recv
            ],
        };
        assert_eq!(tr.check_matched(), Err((0, 1)));
    }

    #[test]
    fn pingpong_matched() {
        let tr = pingpong_trace(4, 0, 3, 10, 1024);
        assert!(tr.check_matched().is_ok());
        assert_eq!(tr.num_messages(), 20);
    }

    #[test]
    fn alltoall_trace_matched_and_counts() {
        let tr = alltoall_trace(5, 2, 256);
        assert!(tr.check_matched().is_ok());
        assert_eq!(tr.num_messages(), 2 * 5 * 4);
        assert_eq!(tr.total_send_bytes(), (2 * 5 * 4 * 256) as u64);
    }

    #[test]
    fn allreduce_trace_matched_and_log_rounds() {
        let tr = allreduce_trace(8, 1, 512);
        assert!(tr.check_matched().is_ok());
        // 3 rounds x 8 tasks x 1 send each.
        assert_eq!(tr.num_messages(), 24);
        // Every program alternates Send/Recv with the same partner.
        for (t, prog) in tr.programs.iter().enumerate() {
            for pair in prog.chunks(2) {
                match pair {
                    [TraceOp::Send { to, .. }, TraceOp::Recv { from }] => {
                        assert_eq!(to, from);
                        assert_eq!((t ^ to).count_ones(), 1);
                    }
                    other => panic!("unexpected ops {other:?}"),
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "power_of_two")]
    fn allreduce_requires_power_of_two() {
        allreduce_trace(6, 1, 1);
    }

    #[test]
    fn reduce_broadcast_matched() {
        for n in [2usize, 4, 8, 16, 7, 12] {
            let tr = reduce_broadcast_trace(n, 2, 100);
            assert!(tr.check_matched().is_ok(), "n = {n}");
            // Reduction + broadcast over a binomial tree: 2(n-1) messages
            // per round for power-of-two n.
            if n.is_power_of_two() {
                assert_eq!(tr.num_messages(), 2 * 2 * (n - 1), "n = {n}");
            }
        }
    }

    #[test]
    fn trace_serde_roundtrip() {
        let g = gen::ring(4, 100.0);
        let tr = stencil_trace(&g, 2, 500);
        let s = serde_json::to_string(&tr).unwrap();
        let back: Trace = serde_json::from_str(&s).unwrap();
        assert_eq!(tr, back);
    }
}
