//! The discrete-event simulation engine.
//!
//! Messages advance hop by hop; the outgoing link at each hop is chosen
//! at simulation time, which supports both deterministic dimension-ordered
//! routing and minimal-adaptive routing (pick the productive link that
//! frees earliest — modeling adaptive virtual-channel selection).

use crate::config::{NetworkConfig, NicModel, RoutingMode, Switching};
use crate::stats::{LinkAccounting, SimStats};
use crate::trace::{Trace, TraceOp};
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};
use topomap_core::contention::SimObservation;
use topomap_core::{obs, Mapping};
use topomap_taskgraph::TaskId;
use topomap_topology::{Link, NodeId, RoutedTopology};

/// Event kinds processed by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EventKind {
    /// A task resumes executing its program (after compute or unblock).
    Resume { task: TaskId },
    /// A message head is at a node, ready to cross its next link.
    Hop { msg: usize },
    /// A message head reaches the destination's ejection (reception)
    /// channel.
    Eject { msg: usize },
    /// A message's last byte reaches its destination NIC.
    Deliver { msg: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct EventEntry {
    time: u64,
    seq: u64,
    kind: EventKind,
}

impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // (time, seq) total order — seq makes simulation fully
        // deterministic under simultaneous events.
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// An in-flight message.
#[derive(Debug)]
struct Msg {
    src: TaskId,
    dst: TaskId,
    bytes: u64,
    inject_ns: u64,
    /// Destination processor (cached from the mapping).
    dst_proc: NodeId,
    /// Node the head currently occupies.
    cur: NodeId,
    /// The link the head most recently crossed (for wormhole
    /// backpressure), as an index into `links`.
    prev_link: Option<u32>,
    hops: u32,
    /// Earliest time the message's last byte can exist at the head's
    /// position: `max_k (start_k + ser_k)` over links crossed so far.
    /// With uniform link speeds this is just the last link's completion;
    /// with degraded links the slowest link dominates.
    tail_ready: u64,
}

#[derive(Debug, Default)]
struct TaskState {
    pc: usize,
    /// Messages received but not yet consumed, per source task.
    avail: HashMap<TaskId, u32>,
    /// Source this task's current `Recv` is blocked on, if any.
    blocked_on: Option<TaskId>,
    finished_at: Option<u64>,
}

/// One complete simulation run.
pub struct Simulation;

/// A simulation's aggregate statistics plus the per-link ledger it
/// accumulated. `links` is the ledger's index space — the deterministic
/// [`RoutedTopology::links`] order — so `acct.busy_ns(i)` is the busy time
/// of `links[i]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    pub stats: SimStats,
    pub links: Vec<Link>,
    pub acct: LinkAccounting,
}

impl Simulation {
    /// Replay `trace` on `topo` under `mapping` with network parameters
    /// `cfg`; returns aggregate statistics.
    ///
    /// Panics if the trace deadlocks (a `Recv` that no `Send` satisfies) —
    /// use [`Trace::check_matched`] to validate traces up front.
    pub fn run(
        topo: &dyn RoutedTopology,
        cfg: &NetworkConfig,
        trace: &Trace,
        mapping: &Mapping,
    ) -> SimStats {
        Self::run_with_links(topo, cfg, trace, mapping).stats
    }

    /// [`Simulation::run`], but keep the per-link accounting ledger instead
    /// of dropping it after the aggregate statistics are computed. This is
    /// what contention-aware consumers (hot-link identification, ledger
    /// conservation checks) read.
    pub fn run_with_links(
        topo: &dyn RoutedTopology,
        cfg: &NetworkConfig,
        trace: &Trace,
        mapping: &Mapping,
    ) -> SimReport {
        let _run_span = obs::span("netsim.run");
        let engine = {
            let _setup_span = obs::span("netsim.setup");
            Engine::new(topo, cfg, trace, mapping)
        };
        engine.run_report()
    }
}

/// Build the simulate-closure that [`topomap_core::contention::ContentionRefine`]
/// consumes: each call replays `trace` under the candidate mapping and
/// returns the makespan plus the per-link busy/byte ledger in
/// `topo.links()` order. Lives here rather than in `topomap-core` because
/// the crate dependency points netsim → core.
pub fn contention_oracle<'a>(
    topo: &'a dyn RoutedTopology,
    cfg: &'a NetworkConfig,
    trace: &'a Trace,
) -> impl FnMut(&Mapping) -> SimObservation + 'a {
    move |m: &Mapping| {
        let report = Simulation::run_with_links(topo, cfg, trace, m);
        SimObservation {
            makespan_ns: report.stats.completion_ns,
            link_busy_ns: report.acct.busy_slice().to_vec(),
            link_bytes: report.acct.bytes_slice().to_vec(),
            queue_wait_ns: report.acct.queue_wait_ns(),
        }
    }
}

struct Engine<'a> {
    topo: &'a dyn RoutedTopology,
    cfg: &'a NetworkConfig,
    trace: &'a Trace,
    mapping: &'a Mapping,
    events: BinaryHeap<Reverse<EventEntry>>,
    seq: u64,
    links: Vec<Link>,
    link_index: HashMap<Link, u32>,
    /// Time each directed link becomes free.
    link_free: Vec<u64>,
    /// Per-link busy time, bytes, and queueing (utilization stats and
    /// the contention heatmap export).
    acct: LinkAccounting,
    /// Relative speed factor per link (1.0 = nominal bandwidth).
    link_speed: Vec<f64>,
    /// Per-processor NIC injection channel (SharedChannel model).
    inject_free: Vec<u64>,
    /// Per-processor NIC ejection channel (SharedChannel model).
    eject_free: Vec<u64>,
    msgs: Vec<Msg>,
    tasks: Vec<TaskState>,
    nbr_buf: Vec<NodeId>,
    // Statistics accumulators.
    latencies: Vec<u64>,
    local_delivered: u64,
    bytes_delivered: u64,
    hop_sum: u64,
    /// Σ bytes × hops over delivered network messages — accumulated at
    /// delivery, independently of the per-link ledger, so the two can be
    /// cross-checked (Σ link bytes must equal this).
    bytes_hops: u64,
    last_time: u64,
}

impl<'a> Engine<'a> {
    fn new(
        topo: &'a dyn RoutedTopology,
        cfg: &'a NetworkConfig,
        trace: &'a Trace,
        mapping: &'a Mapping,
    ) -> Self {
        assert_eq!(
            trace.num_tasks(),
            mapping.num_tasks(),
            "trace and mapping disagree on task count"
        );
        assert_eq!(
            mapping.num_procs(),
            topo.num_nodes(),
            "mapping and topology disagree on processor count"
        );
        let links = topo.links();
        let link_index: HashMap<Link, u32> = links
            .iter()
            .enumerate()
            .map(|(i, &l)| (l, i as u32))
            .collect();
        let n_links = links.len();
        let mut link_speed = vec![1.0f64; n_links];
        for &(from, to, factor) in &cfg.link_speed_factors {
            assert!(factor > 0.0, "link speed factor must be positive");
            let l = Link::new(from, to);
            let li = *link_index
                .get(&l)
                .unwrap_or_else(|| panic!("speed factor for nonexistent link {l:?}"));
            link_speed[li as usize] = factor;
        }
        Engine {
            topo,
            cfg,
            trace,
            mapping,
            events: BinaryHeap::new(),
            seq: 0,
            links,
            link_index,
            link_free: vec![0; n_links],
            acct: LinkAccounting::new(n_links),
            link_speed,
            inject_free: vec![0; topo.num_nodes()],
            eject_free: vec![0; topo.num_nodes()],
            msgs: Vec::new(),
            tasks: (0..trace.num_tasks())
                .map(|_| TaskState::default())
                .collect(),
            nbr_buf: Vec::new(),
            latencies: Vec::new(),
            local_delivered: 0,
            bytes_delivered: 0,
            hop_sum: 0,
            bytes_hops: 0,
            last_time: 0,
        }
    }

    fn push(&mut self, time: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.events.push(Reverse(EventEntry { time, seq, kind }));
    }

    fn run_report(mut self) -> SimReport {
        let events_span = obs::span("netsim.events");
        // Kick off every task at t = 0.
        for t in 0..self.trace.num_tasks() {
            self.push(0, EventKind::Resume { task: t });
        }

        let mut events_processed = 0u64;
        while let Some(Reverse(ev)) = self.events.pop() {
            events_processed += 1;
            self.last_time = ev.time;
            match ev.kind {
                EventKind::Resume { task } => self.advance(task, ev.time),
                EventKind::Hop { msg } => self.handle_hop(msg, ev.time),
                EventKind::Eject { msg } => self.handle_eject(msg, ev.time),
                EventKind::Deliver { msg } => self.handle_deliver(msg, ev.time),
            }
        }
        drop(events_span);
        let _agg_span = obs::span("netsim.aggregate");
        obs::counter_add("netsim.events", events_processed);

        // Deadlock / starvation check: every task must have finished.
        let stuck: Vec<usize> = self
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, s)| s.finished_at.is_none())
            .map(|(t, _)| t)
            .collect();
        assert!(
            stuck.is_empty(),
            "simulation ended with unfinished tasks {stuck:?} (unmatched Recv?)"
        );

        let completion_ns = self
            .tasks
            .iter()
            .map(|s| s.finished_at.unwrap())
            .max()
            .unwrap_or(0);

        let delivered = self.latencies.len() as u64;
        if obs::enabled() {
            obs::counter_add("netsim.messages.network", delivered);
            obs::counter_add("netsim.messages.local", self.local_delivered);
            obs::counter_add("netsim.bytes_delivered", self.bytes_delivered);
            obs::counter_add("netsim.bytes_hops", self.bytes_hops);
            obs::counter_add("netsim.queue_events", self.acct.queue_events());
            obs::counter_add("netsim.queue_wait_ns", self.acct.queue_wait_ns());
            // Contention heatmap: one observation per directed link, in
            // `RoutedTopology::links()` order.
            obs::series_extend(
                "netsim.link_bytes",
                self.acct.bytes_slice().iter().map(|&b| b as f64),
            );
            obs::series_extend(
                "netsim.link_busy_ns",
                self.acct.busy_slice().iter().map(|&b| b as f64),
            );
        }
        self.latencies.sort_unstable();
        let pct = |q: f64| -> u64 {
            if self.latencies.is_empty() {
                0
            } else {
                let idx = ((self.latencies.len() - 1) as f64 * q).round() as usize;
                self.latencies[idx]
            }
        };
        let stats = SimStats {
            completion_ns,
            network_messages: delivered,
            local_messages: self.local_delivered,
            bytes_delivered: self.bytes_delivered,
            avg_latency_ns: if delivered > 0 {
                self.latencies.iter().sum::<u64>() as f64 / delivered as f64
            } else {
                0.0
            },
            p50_latency_ns: pct(0.50),
            p95_latency_ns: pct(0.95),
            p99_latency_ns: pct(0.99),
            max_latency_ns: self.latencies.last().copied().unwrap_or(0),
            avg_hops: if delivered > 0 {
                self.hop_sum as f64 / delivered as f64
            } else {
                0.0
            },
            max_link_utilization: self.acct.max_utilization(completion_ns),
            avg_link_utilization: self.acct.avg_utilization(completion_ns),
            used_links: self.acct.used_links(),
            total_links: self.links.len(),
        };
        SimReport {
            stats,
            links: self.links,
            acct: self.acct,
        }
    }

    /// Run task `task`'s program from its current pc, starting at `now`,
    /// until it blocks (compute or recv) or finishes.
    fn advance(&mut self, task: TaskId, now: u64) {
        let mut now = now;
        loop {
            let Some(&op) = self.trace.programs[task].get(self.tasks[task].pc) else {
                if self.tasks[task].finished_at.is_none() {
                    self.tasks[task].finished_at = Some(now);
                }
                return;
            };
            match op {
                TraceOp::Compute { ns } => {
                    self.tasks[task].pc += 1;
                    self.push(now + ns, EventKind::Resume { task });
                    return;
                }
                TraceOp::Send { to, bytes } => {
                    self.tasks[task].pc += 1;
                    now += self.cfg.send_overhead_ns;
                    self.inject(task, to, bytes, now);
                }
                TraceOp::Recv { from } => {
                    let avail = self.tasks[task].avail.entry(from).or_insert(0);
                    if *avail > 0 {
                        *avail -= 1;
                        self.tasks[task].pc += 1;
                    } else {
                        self.tasks[task].blocked_on = Some(from);
                        return;
                    }
                }
            }
        }
    }

    /// Put a message on the wire (or the local loopback) at `time`.
    fn inject(&mut self, src: TaskId, dst: TaskId, bytes: u64, time: u64) {
        let (ps, pd) = (self.mapping.proc_of(src), self.mapping.proc_of(dst));
        let id = self.msgs.len();
        self.msgs.push(Msg {
            src,
            dst,
            bytes,
            inject_ns: time,
            dst_proc: pd,
            cur: ps,
            prev_link: None,
            hops: 0,
            tail_ready: 0,
        });
        if ps == pd {
            self.push(
                time + self.cfg.local_latency_ns,
                EventKind::Deliver { msg: id },
            );
        } else {
            let start = match self.cfg.nic {
                NicModel::SharedChannel => {
                    // The sending NIC streams outgoing messages into the
                    // network one at a time at link bandwidth.
                    let ser = self.cfg.serialization_ns(bytes);
                    let s = time.max(self.inject_free[ps]);
                    self.inject_free[ps] = s + ser;
                    s
                }
                // Per-port injection: the first link's FIFO serializes.
                NicModel::PerLink => time,
            };
            self.push(start, EventKind::Hop { msg: id });
        }
    }

    /// Choose the outgoing link for `msg` at its current node.
    fn choose_next(&mut self, msg: usize) -> NodeId {
        let m = &self.msgs[msg];
        match self.cfg.routing {
            RoutingMode::Deterministic => self.topo.next_hop(m.cur, m.dst_proc),
            RoutingMode::MinimalAdaptive => {
                // Among productive links, take the one that frees
                // earliest (ties -> lowest neighbor id): a proxy for
                // adaptive output-queue selection in real routers.
                let (cur, dst) = (m.cur, m.dst_proc);
                let mut nbrs = std::mem::take(&mut self.nbr_buf);
                self.topo.productive_neighbors_into(cur, dst, &mut nbrs);
                let next = nbrs
                    .iter()
                    .copied()
                    .min_by_key(|&v| {
                        let li = self.link_index[&Link::new(cur, v)] as usize;
                        (self.link_free[li], v)
                    })
                    .expect("at least one productive neighbor");
                self.nbr_buf = nbrs;
                next
            }
        }
    }

    /// Serialization time of `bytes` on a specific (possibly degraded)
    /// link.
    #[inline]
    fn link_ser(&self, li: usize, bytes: u64) -> u64 {
        let speed = self.link_speed[li];
        if speed == 1.0 {
            self.cfg.serialization_ns(bytes)
        } else {
            ((bytes as f64) * 1e9 / (self.cfg.link_bandwidth * speed)).ceil() as u64
        }
    }

    /// The head of `msg` is at a node: reserve the next link FIFO, then
    /// forward the head (cut-through) toward the destination.
    fn handle_hop(&mut self, msg: usize, now: u64) {
        let next = self.choose_next(msg);
        let m = &self.msgs[msg];
        let li = self.link_index[&Link::new(m.cur, next)] as usize;
        let prev = m.prev_link;
        let ser = self.link_ser(li, m.bytes);
        let start = now.max(self.link_free[li]);
        self.link_free[li] = start + ser;
        self.acct.on_transfer(li, ser, m.bytes, start - now);
        // Wormhole backpressure: while this message waited for (and now
        // streams over) the current link, its body kept the upstream link
        // occupied — the tail leaves that link only at `start + ser`.
        if self.cfg.switching == Switching::Wormhole {
            if let Some(pl) = prev {
                let pl = pl as usize;
                let extended = start + ser;
                if extended > self.link_free[pl] {
                    self.acct.extend_busy(pl, extended - self.link_free[pl]);
                    self.link_free[pl] = extended;
                }
            }
        }
        let head_out = start + self.cfg.hop_latency_ns;
        let m = &mut self.msgs[msg];
        m.cur = next;
        m.prev_link = Some(li as u32);
        m.hops += 1;
        m.tail_ready = m.tail_ready.max(start + ser);
        if next == m.dst_proc {
            self.push(head_out, EventKind::Eject { msg });
        } else {
            self.push(head_out, EventKind::Hop { msg });
        }
    }

    /// The head reaches the destination's reception channel: messages
    /// converging on one node from several links drain serially
    /// (SharedChannel) or per final link (PerLink).
    fn handle_eject(&mut self, msg: usize, now: u64) {
        let m = &self.msgs[msg];
        let pd = m.dst_proc;
        let last_link = m.prev_link;
        let ser = self.cfg.serialization_ns(m.bytes);
        let start = match self.cfg.nic {
            NicModel::SharedChannel => {
                let s = now.max(self.eject_free[pd]);
                self.eject_free[pd] = s + ser;
                s
            }
            // Per-port ejection: the final link already serialized the
            // body; delivery completes one serialization after the head.
            NicModel::PerLink => now,
        };
        // Backpressure into the final link while waiting for the NIC.
        if self.cfg.switching == Switching::Wormhole {
            if let Some(ll) = last_link {
                let ll = ll as usize;
                let extended = start + ser;
                if extended > self.link_free[ll] {
                    self.acct.extend_busy(ll, extended - self.link_free[ll]);
                    self.link_free[ll] = extended;
                }
            }
        }
        // Delivery completes when the NIC has drained the message AND the
        // slowest link on the route has pushed the last byte through.
        let tail_ready = self.msgs[msg].tail_ready;
        self.push((start + ser).max(tail_ready), EventKind::Deliver { msg });
    }

    fn handle_deliver(&mut self, msg: usize, now: u64) {
        let (src, dst, bytes, inject_ns, hops) = {
            let m = &self.msgs[msg];
            (m.src, m.dst, m.bytes, m.inject_ns, m.hops)
        };
        if hops > 0 {
            self.latencies.push(now - inject_ns);
            self.hop_sum += hops as u64;
            self.bytes_hops += bytes * hops as u64;
        } else {
            self.local_delivered += 1;
        }
        self.bytes_delivered += bytes;

        let st = &mut self.tasks[dst];
        *st.avail.entry(src).or_insert(0) += 1;
        if st.blocked_on == Some(src) {
            st.blocked_on = None;
            self.advance(dst, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{pingpong_trace, stencil_trace};
    use topomap_core::{Mapper, Mapping, RandomMap, TopoLb};
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    fn cfg() -> NetworkConfig {
        NetworkConfig {
            link_bandwidth: 1e9, // 1 B/ns
            hop_latency_ns: 100,
            send_overhead_ns: 1000,
            local_latency_ns: 500,
            switching: Switching::CutThrough,
            nic: NicModel::SharedChannel,
            routing: RoutingMode::Deterministic,
            link_speed_factors: Vec::new(),
        }
    }

    #[test]
    fn pingpong_latency_matches_model() {
        // Two tasks on adjacent processors of a 1D mesh, one round trip.
        let topo = Torus::mesh_1d(2);
        let tr = pingpong_trace(2, 0, 1, 1, 1000);
        let m = Mapping::new(vec![0, 1], 2);
        let s = Simulation::run(&topo, &cfg(), &tr, &m);
        // One-way latency: 1 hop => hop_latency + serialization = 100 + 1000.
        assert_eq!(s.network_messages, 2);
        assert_eq!(s.avg_latency_ns, 1100.0);
        assert_eq!(s.avg_hops, 1.0);
        assert_eq!(s.p50_latency_ns, 1100);
        assert_eq!(s.p99_latency_ns, 1100);
        // Completion: overhead + latency, twice.
        assert_eq!(s.completion_ns, 4200);
    }

    #[test]
    fn multihop_latency_adds_hops() {
        // Tasks at the two ends of a 4-node 1D mesh: 3 hops.
        let topo = Torus::mesh_1d(4);
        let tr = pingpong_trace(2, 0, 1, 1, 1000);
        let m = Mapping::new(vec![0, 3], 4);
        let s = Simulation::run(&topo, &cfg(), &tr, &m);
        // Uncontended cut-through: 3 * hop_latency + serialization.
        assert_eq!(s.avg_latency_ns, (3 * 100 + 1000) as f64);
        assert_eq!(s.avg_hops, 3.0);
    }

    #[test]
    fn compute_only_trace_uses_no_network() {
        let topo = Torus::mesh_1d(2);
        let m = Mapping::new(vec![0], 2);
        let tr1 = Trace {
            programs: vec![vec![TraceOp::Compute { ns: 777 }]],
        };
        let s = Simulation::run(&topo, &cfg(), &tr1, &m);
        assert_eq!(s.network_messages, 0);
        assert_eq!(s.completion_ns, 777);
    }

    #[test]
    fn contention_serializes_shared_link() {
        // Three senders at one end of a 1D mesh all send to the far node
        // through the same final link: deliveries must serialize.
        let topo = Torus::mesh_1d(4);
        let tr = Trace {
            programs: vec![
                vec![TraceOp::Send {
                    to: 3,
                    bytes: 10_000,
                }],
                vec![TraceOp::Send {
                    to: 3,
                    bytes: 10_000,
                }],
                vec![TraceOp::Send {
                    to: 3,
                    bytes: 10_000,
                }],
                vec![
                    TraceOp::Recv { from: 0 },
                    TraceOp::Recv { from: 1 },
                    TraceOp::Recv { from: 2 },
                ],
            ],
        };
        let m = Mapping::new(vec![0, 1, 2, 3], 4);
        let s = Simulation::run(&topo, &cfg(), &tr, &m);
        // Link 2->3 carries 30_000 bytes at 1 B/ns.
        assert!(s.completion_ns >= 30_000, "completion {}", s.completion_ns);
        assert_eq!(s.network_messages, 3);
        assert!(s.max_latency_ns > 20_000);
        assert!(s.p99_latency_ns >= s.p50_latency_ns);
    }

    #[test]
    fn stencil_runs_to_completion_and_is_deterministic() {
        let tasks = gen::stencil2d(4, 4, 4096.0, false);
        let topo = Torus::torus_2d(4, 4);
        let tr = stencil_trace(&tasks, 10, 2_000);
        let m = TopoLb::default().map(&tasks, &topo);
        let s1 = Simulation::run(&topo, &cfg(), &tr, &m);
        let s2 = Simulation::run(&topo, &cfg(), &tr, &m);
        assert_eq!(s1.completion_ns, s2.completion_ns);
        assert_eq!(s1.network_messages, s2.network_messages);
        assert_eq!(s1.network_messages + s1.local_messages, 2 * 24 * 10);
    }

    #[test]
    fn good_mapping_beats_random_under_tight_bandwidth() {
        let tasks = gen::stencil2d(4, 4, 100_000.0, false);
        let topo = Torus::torus_3d(4, 2, 2);
        let tr = stencil_trace(&tasks, 20, 1_000);
        let tight = cfg().with_bandwidth(100e6); // 100 MB/s
        let good = Simulation::run(&topo, &tight, &tr, &TopoLb::default().map(&tasks, &topo));
        let bad = Simulation::run(&topo, &tight, &tr, &RandomMap::new(9).map(&tasks, &topo));
        assert!(
            good.completion_ns < bad.completion_ns,
            "TopoLB {} should beat random {}",
            good.completion_ns,
            bad.completion_ns
        );
        assert!(good.avg_latency_ns < bad.avg_latency_ns);
    }

    #[test]
    fn avg_hops_matches_metric_hops() {
        // With a uniform stencil every message is the same size, so the
        // simulator's average hops equals the mapping's hops-per-byte.
        let tasks = gen::stencil2d(4, 4, 8192.0, true);
        let topo = Torus::torus_2d(4, 4);
        let m = RandomMap::new(4).map(&tasks, &topo);
        let tr = stencil_trace(&tasks, 3, 100);
        let s = Simulation::run(&topo, &cfg(), &tr, &m);
        let hpb = topomap_core::metrics::hops_per_byte(&tasks, &topo, &m);
        assert!(
            (s.avg_hops - hpb).abs() < 1e-9,
            "sim hops {} vs metric {hpb}",
            s.avg_hops
        );
    }

    #[test]
    #[should_panic(expected = "unfinished tasks")]
    fn deadlocked_trace_panics() {
        let topo = Torus::mesh_1d(2);
        let tr = Trace {
            programs: vec![vec![TraceOp::Recv { from: 1 }], vec![]],
        };
        let m = Mapping::new(vec![0, 1], 2);
        Simulation::run(&topo, &cfg(), &tr, &m);
    }

    #[test]
    fn utilization_bounds() {
        let tasks = gen::stencil2d(4, 4, 50_000.0, true);
        let topo = Torus::torus_2d(4, 4);
        let tr = stencil_trace(&tasks, 10, 100);
        let m = RandomMap::new(2).map(&tasks, &topo);
        let s = Simulation::run(&topo, &cfg().with_bandwidth(200e6), &tr, &m);
        assert!(s.max_link_utilization <= 1.0 + 1e-9);
        assert!(s.avg_link_utilization <= s.max_link_utilization);
        assert!(s.used_links <= s.total_links);
        assert!(s.used_links > 0);
    }

    #[test]
    fn adaptive_routing_still_minimal() {
        // Adaptive routes must use exactly distance(src, dst) hops.
        let topo = Torus::torus_2d(4, 4);
        let tasks = gen::stencil2d(4, 4, 4096.0, true);
        let m = RandomMap::new(8).map(&tasks, &topo);
        let tr = stencil_trace(&tasks, 2, 100);
        let mut acfg = cfg();
        acfg.routing = RoutingMode::MinimalAdaptive;
        let s = Simulation::run(&topo, &acfg, &tr, &m);
        let hpb = topomap_core::metrics::hops_per_byte(&tasks, &topo, &m);
        assert!(
            (s.avg_hops - hpb).abs() < 1e-9,
            "adaptive must stay minimal: {} vs {hpb}",
            s.avg_hops
        );
    }

    #[test]
    fn adaptive_routing_relieves_contention() {
        // Many sources funnel to one destination region under random
        // mapping on a torus: spreading over productive links must not be
        // slower than deterministic DOR, and typically helps.
        let tasks = gen::stencil2d(4, 4, 65_536.0, true);
        let topo = Torus::torus_2d(4, 4);
        let m = RandomMap::new(6).map(&tasks, &topo);
        let tr = stencil_trace(&tasks, 10, 500);
        let mut det = cfg().with_bandwidth(100e6);
        det.nic = NicModel::PerLink;
        let mut ada = det.clone();
        ada.routing = RoutingMode::MinimalAdaptive;
        let s_det = Simulation::run(&topo, &det, &tr, &m);
        let s_ada = Simulation::run(&topo, &ada, &tr, &m);
        assert!(
            (s_ada.completion_ns as f64) < 1.15 * s_det.completion_ns as f64,
            "adaptive {} should not lose badly to deterministic {}",
            s_ada.completion_ns,
            s_det.completion_ns
        );
    }

    #[test]
    fn adaptive_is_deterministic_too() {
        let tasks = gen::stencil2d(4, 4, 4096.0, false);
        let topo = Torus::torus_3d(4, 2, 2);
        let m = RandomMap::new(3).map(&tasks, &topo);
        let tr = stencil_trace(&tasks, 5, 100);
        let mut acfg = cfg();
        acfg.routing = RoutingMode::MinimalAdaptive;
        let s1 = Simulation::run(&topo, &acfg, &tr, &m);
        let s2 = Simulation::run(&topo, &acfg, &tr, &m);
        assert_eq!(s1, s2);
    }

    #[test]
    fn degraded_link_slows_serialization() {
        // A 2-node mesh whose single forward link runs at 10% speed.
        let topo = Torus::mesh_1d(2);
        let tr = pingpong_trace(2, 0, 1, 1, 1000);
        let m = Mapping::new(vec![0, 1], 2);
        let mut slow = cfg();
        slow.link_speed_factors = vec![(0, 1, 0.1)];
        let s = Simulation::run(&topo, &slow, &tr, &m);
        // Forward message: the 10_000ns slow-link serialization dominates
        // (hop latency and NIC drain pipeline behind it). Return message
        // unaffected: 100 (hop) + 1000 (ser). Mean = 5550.
        assert_eq!(s.avg_latency_ns, (10_000 + 1_100) as f64 / 2.0);
    }

    #[test]
    #[should_panic(expected = "nonexistent link")]
    fn speed_factor_for_missing_link_rejected() {
        let topo = Torus::mesh_1d(2);
        let tr = pingpong_trace(2, 0, 1, 1, 10);
        let m = Mapping::new(vec![0, 1], 2);
        let mut bad = cfg();
        bad.link_speed_factors = vec![(0, 5, 0.5)];
        Simulation::run(&topo, &bad, &tr, &m);
    }

    #[test]
    fn adaptive_routing_avoids_degraded_link() {
        // A 4-ring: 0 -> 2 has two equal-length routes (via 1 or via 3).
        // Degrade 0->1 badly: deterministic DOR is pinned to one side and
        // may pay 20x serialization; adaptive routing sends at most one
        // message over the slow link (the second sees it busy).
        let topo = Torus::torus_1d(4);
        let tr = Trace {
            programs: vec![
                vec![
                    TraceOp::Send {
                        to: 1,
                        bytes: 100_000,
                    },
                    TraceOp::Send {
                        to: 1,
                        bytes: 100_000,
                    },
                ],
                vec![TraceOp::Recv { from: 0 }, TraceOp::Recv { from: 0 }],
                vec![],
                vec![],
            ],
        };
        // Task 0 on proc 0, task 1 on proc 2 (the antipode).
        let m = Mapping::new(vec![0, 2, 1, 3], 4);
        let mut det = cfg();
        det.nic = NicModel::PerLink;
        det.link_speed_factors = vec![(0, 1, 0.05)];
        let mut ada = det.clone();
        ada.routing = RoutingMode::MinimalAdaptive;
        let s_det = Simulation::run(&topo, &det, &tr, &m);
        let s_ada = Simulation::run(&topo, &ada, &tr, &m);
        assert!(
            s_ada.completion_ns <= s_det.completion_ns,
            "adaptive {} vs deterministic {}",
            s_ada.completion_ns,
            s_det.completion_ns
        );
    }
}
