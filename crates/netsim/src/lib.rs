//! # topomap-netsim
//!
//! A discrete-event interconnection-network simulator — the substitute for
//! BigNetSim (Zheng et al., the paper's ref \[23\]) used in §5.3 to show
//! that hop-byte reductions translate into lower message latencies and
//! execution times under bandwidth constraints.
//!
//! ## Model
//!
//! - **Links**: every directed link of a
//!   [`RoutedTopology`](topomap_topology::RoutedTopology) is an
//!   independent FIFO channel of finite bandwidth. A message occupies a
//!   link for its serialization time `bytes / bandwidth`.
//! - **Routing**: the topology's deterministic shortest-path routes
//!   (dimension-ordered on tori/meshes).
//! - **Switching**: virtual cut-through. The message head advances one
//!   `hop_latency` after securing each link; the body pipelines behind it;
//!   the final link's serialization completes delivery. Under contention
//!   a message waits in FIFO order for each link to free — this queueing
//!   is what makes random placement collapse at low bandwidth (Fig. 7/9).
//! - **Applications**: per-task op traces ([`Trace`]: compute / send /
//!   recv), replayed while honoring dependencies — the same "event
//!   timestamps are corrected depending on the network being simulated
//!   while honoring event ordering" methodology as the paper's trace-driven
//!   BigNetSim runs.
//!
//! Time is in integer nanoseconds; the event queue breaks ties by sequence
//! number, so simulations are exactly reproducible.
//!
//! ## Example
//!
//! ```
//! use topomap_core::{Mapper, TopoLb, RandomMap};
//! use topomap_netsim::{NetworkConfig, Simulation, trace};
//! use topomap_taskgraph::gen;
//! use topomap_topology::Torus;
//!
//! let tasks = gen::stencil2d(4, 4, 10_000.0, false);
//! let topo = Torus::torus_3d(4, 2, 2);
//! let cfg = NetworkConfig::default();
//! let tr = trace::stencil_trace(&tasks, 20, 5_000);
//!
//! let good = Simulation::run(&topo, &cfg, &tr, &TopoLb::default().map(&tasks, &topo));
//! let bad = Simulation::run(&topo, &cfg, &tr, &RandomMap::new(7).map(&tasks, &topo));
//! assert!(good.completion_ns <= bad.completion_ns);
//! ```

pub mod bluegene;
pub mod config;
pub mod sim;
pub mod stats;
pub mod trace;

pub use config::NetworkConfig;
pub use sim::{contention_oracle, SimReport, Simulation};
pub use stats::SimStats;
pub use trace::{Trace, TraceOp};
