//! Aggregate results of a simulation run — the observables of the paper's
//! §5.3 plots (average message latency, total execution time) plus link
//! utilization detail.

use serde::{Deserialize, Serialize};

/// Statistics from one [`crate::Simulation::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Time at which the last task finished, in nanoseconds (the paper's
    /// "total time for execution").
    pub completion_ns: u64,
    /// Messages that crossed the network (source and destination on
    /// different processors).
    pub network_messages: u64,
    /// Messages delivered between colocated tasks.
    pub local_messages: u64,
    pub bytes_delivered: u64,
    /// Mean network-message latency in nanoseconds (the paper's "average
    /// message time").
    pub avg_latency_ns: f64,
    /// Median network-message latency.
    pub p50_latency_ns: u64,
    /// 95th-percentile network-message latency.
    pub p95_latency_ns: u64,
    /// 99th-percentile network-message latency.
    pub p99_latency_ns: u64,
    pub max_latency_ns: u64,
    /// Mean hops per network message.
    pub avg_hops: f64,
    /// Busy fraction of the busiest link.
    pub max_link_utilization: f64,
    /// Mean busy fraction over all links.
    pub avg_link_utilization: f64,
    /// Links that carried at least one message.
    pub used_links: usize,
    pub total_links: usize,
}

impl SimStats {
    /// Average message latency in microseconds (the paper's plot unit).
    pub fn avg_latency_us(&self) -> f64 {
        self.avg_latency_ns / 1_000.0
    }

    /// Completion time in milliseconds.
    pub fn completion_ms(&self) -> f64 {
        self.completion_ns as f64 / 1e6
    }

    /// Completion time in seconds.
    pub fn completion_s(&self) -> f64 {
        self.completion_ns as f64 / 1e9
    }
}

/// Per-link accounting for one simulation run: busy time, bytes carried,
/// and head-of-line queueing. Indexed by link id — the position of the
/// directed link in `RoutedTopology::links()` order.
///
/// This is the ledger behind every contention claim: link utilization in
/// [`SimStats`] and the per-link heatmap the observability layer exports.
/// Bytes are charged once per link a message crosses, so the sum over
/// links equals Σ message bytes × hops — the simulator's realized
/// hop-bytes, cross-checkable against the analytic metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkAccounting {
    busy_ns: Vec<u64>,
    bytes: Vec<u64>,
    queue_events: u64,
    queue_wait_ns: u64,
}

impl LinkAccounting {
    pub fn new(num_links: usize) -> Self {
        LinkAccounting {
            busy_ns: vec![0; num_links],
            bytes: vec![0; num_links],
            queue_events: 0,
            queue_wait_ns: 0,
        }
    }

    /// Record a message body crossing link `li`: `ser_ns` of busy time,
    /// `bytes` carried, and `wait_ns` the head queued behind earlier
    /// traffic before the link accepted it (0 = no contention).
    pub fn on_transfer(&mut self, li: usize, ser_ns: u64, bytes: u64, wait_ns: u64) {
        self.busy_ns[li] += ser_ns;
        self.bytes[li] += bytes;
        if wait_ns > 0 {
            self.queue_events += 1;
            self.queue_wait_ns += wait_ns;
        }
    }

    /// Extend link `li`'s busy time without new bytes — wormhole
    /// backpressure holding a message body on an upstream link.
    pub fn extend_busy(&mut self, li: usize, extra_ns: u64) {
        self.busy_ns[li] += extra_ns;
    }

    pub fn num_links(&self) -> usize {
        self.busy_ns.len()
    }

    pub fn busy_ns(&self, li: usize) -> u64 {
        self.busy_ns[li]
    }

    pub fn bytes(&self, li: usize) -> u64 {
        self.bytes[li]
    }

    pub fn busy_slice(&self) -> &[u64] {
        &self.busy_ns
    }

    pub fn bytes_slice(&self) -> &[u64] {
        &self.bytes
    }

    /// Links that were ever busy.
    pub fn used_links(&self) -> usize {
        self.busy_ns.iter().filter(|&&b| b > 0).count()
    }

    pub fn max_busy_ns(&self) -> u64 {
        self.busy_ns.iter().copied().max().unwrap_or(0)
    }

    pub fn total_busy_ns(&self) -> u64 {
        self.busy_ns.iter().sum()
    }

    /// Σ over links of bytes carried = Σ over messages of bytes × hops.
    pub fn total_bytes_hops(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Transfers that queued behind earlier traffic.
    pub fn queue_events(&self) -> u64 {
        self.queue_events
    }

    /// Total head-of-line wait across all queued transfers.
    pub fn queue_wait_ns(&self) -> u64 {
        self.queue_wait_ns
    }

    /// Busy fraction of the busiest link over a run of `horizon_ns`.
    pub fn max_utilization(&self, horizon_ns: u64) -> f64 {
        if horizon_ns == 0 {
            0.0
        } else {
            self.max_busy_ns() as f64 / horizon_ns as f64
        }
    }

    /// Mean busy fraction over *all* links (idle links count).
    pub fn avg_utilization(&self, horizon_ns: u64) -> f64 {
        if horizon_ns == 0 || self.busy_ns.is_empty() {
            0.0
        } else {
            self.total_busy_ns() as f64 / (horizon_ns as f64 * self.busy_ns.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let s = SimStats {
            completion_ns: 2_500_000_000,
            network_messages: 10,
            local_messages: 0,
            bytes_delivered: 100,
            avg_latency_ns: 12_345.0,
            p50_latency_ns: 10_000,
            p95_latency_ns: 40_000,
            p99_latency_ns: 45_000,
            max_latency_ns: 50_000,
            avg_hops: 2.0,
            max_link_utilization: 0.5,
            avg_link_utilization: 0.1,
            used_links: 4,
            total_links: 8,
        };
        assert!((s.avg_latency_us() - 12.345).abs() < 1e-12);
        assert!((s.completion_ms() - 2500.0).abs() < 1e-9);
        assert!((s.completion_s() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn link_accounting_starts_empty() {
        let a = LinkAccounting::new(4);
        assert_eq!(a.num_links(), 4);
        assert_eq!(a.used_links(), 0);
        assert_eq!(a.max_busy_ns(), 0);
        assert_eq!(a.total_busy_ns(), 0);
        assert_eq!(a.total_bytes_hops(), 0);
        assert_eq!(a.queue_events(), 0);
        assert_eq!(a.queue_wait_ns(), 0);
        assert_eq!(a.max_utilization(1_000), 0.0);
        assert_eq!(a.avg_utilization(1_000), 0.0);
    }

    #[test]
    fn transfers_accumulate_per_link() {
        let mut a = LinkAccounting::new(3);
        a.on_transfer(0, 100, 1_000, 0);
        a.on_transfer(0, 50, 500, 25);
        a.on_transfer(2, 300, 3_000, 0);
        assert_eq!(a.busy_ns(0), 150);
        assert_eq!(a.bytes(0), 1_500);
        assert_eq!(a.busy_ns(1), 0);
        assert_eq!(a.busy_ns(2), 300);
        assert_eq!(a.used_links(), 2);
        assert_eq!(a.max_busy_ns(), 300);
        assert_eq!(a.total_busy_ns(), 450);
        assert_eq!(a.total_bytes_hops(), 4_500);
        assert_eq!(a.busy_slice(), &[150, 0, 300]);
        assert_eq!(a.bytes_slice(), &[1_500, 0, 3_000]);
    }

    #[test]
    fn queueing_counts_only_contended_transfers() {
        let mut a = LinkAccounting::new(2);
        a.on_transfer(0, 10, 100, 0); // uncontended: no queue event
        a.on_transfer(0, 10, 100, 40);
        a.on_transfer(1, 10, 100, 60);
        assert_eq!(a.queue_events(), 2);
        assert_eq!(a.queue_wait_ns(), 100);
    }

    #[test]
    fn backpressure_extends_busy_without_bytes() {
        let mut a = LinkAccounting::new(2);
        a.on_transfer(0, 100, 1_000, 0);
        a.extend_busy(0, 70);
        assert_eq!(a.busy_ns(0), 170);
        assert_eq!(
            a.bytes(0),
            1_000,
            "backpressure must not double-count bytes"
        );
        // A link extended but never crossed still counts as used.
        a.extend_busy(1, 5);
        assert_eq!(a.used_links(), 2);
    }

    #[test]
    fn utilization_fractions() {
        let mut a = LinkAccounting::new(4);
        a.on_transfer(0, 500, 1, 0);
        a.on_transfer(1, 250, 1, 0);
        // horizon 1000ns: max = 0.5, avg = 750 / 4000.
        assert!((a.max_utilization(1_000) - 0.5).abs() < 1e-12);
        assert!((a.avg_utilization(1_000) - 0.1875).abs() < 1e-12);
        // Degenerate horizons are defined as zero, not NaN.
        assert_eq!(a.max_utilization(0), 0.0);
        assert_eq!(a.avg_utilization(0), 0.0);
        assert_eq!(LinkAccounting::new(0).avg_utilization(100), 0.0);
    }

    #[test]
    fn bytes_sum_equals_bytes_times_hops() {
        // Simulate one 4096-byte message crossing 3 links and one
        // 100-byte message crossing 1 link: Σ link bytes = Σ bytes·hops.
        let mut a = LinkAccounting::new(5);
        for li in 0..3 {
            a.on_transfer(li, 4_096, 4_096, 0);
        }
        a.on_transfer(4, 100, 100, 0);
        assert_eq!(a.total_bytes_hops(), 4_096 * 3 + 100);
    }
}
