//! Aggregate results of a simulation run — the observables of the paper's
//! §5.3 plots (average message latency, total execution time) plus link
//! utilization detail.

use serde::{Deserialize, Serialize};

/// Statistics from one [`crate::Simulation::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Time at which the last task finished, in nanoseconds (the paper's
    /// "total time for execution").
    pub completion_ns: u64,
    /// Messages that crossed the network (source and destination on
    /// different processors).
    pub network_messages: u64,
    /// Messages delivered between colocated tasks.
    pub local_messages: u64,
    pub bytes_delivered: u64,
    /// Mean network-message latency in nanoseconds (the paper's "average
    /// message time").
    pub avg_latency_ns: f64,
    /// Median network-message latency.
    pub p50_latency_ns: u64,
    /// 95th-percentile network-message latency.
    pub p95_latency_ns: u64,
    /// 99th-percentile network-message latency.
    pub p99_latency_ns: u64,
    pub max_latency_ns: u64,
    /// Mean hops per network message.
    pub avg_hops: f64,
    /// Busy fraction of the busiest link.
    pub max_link_utilization: f64,
    /// Mean busy fraction over all links.
    pub avg_link_utilization: f64,
    /// Links that carried at least one message.
    pub used_links: usize,
    pub total_links: usize,
}

impl SimStats {
    /// Average message latency in microseconds (the paper's plot unit).
    pub fn avg_latency_us(&self) -> f64 {
        self.avg_latency_ns / 1_000.0
    }

    /// Completion time in milliseconds.
    pub fn completion_ms(&self) -> f64 {
        self.completion_ns as f64 / 1e6
    }

    /// Completion time in seconds.
    pub fn completion_s(&self) -> f64 {
        self.completion_ns as f64 / 1e9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let s = SimStats {
            completion_ns: 2_500_000_000,
            network_messages: 10,
            local_messages: 0,
            bytes_delivered: 100,
            avg_latency_ns: 12_345.0,
            p50_latency_ns: 10_000,
            p95_latency_ns: 40_000,
            p99_latency_ns: 45_000,
            max_latency_ns: 50_000,
            avg_hops: 2.0,
            max_link_utilization: 0.5,
            avg_link_utilization: 0.1,
            used_links: 4,
            total_links: 8,
        };
        assert!((s.avg_latency_us() - 12.345).abs() < 1e-12);
        assert!((s.completion_ms() - 2500.0).abs() < 1e-9);
        assert!((s.completion_s() - 2.5).abs() < 1e-12);
    }
}
