//! Criterion: estimation-order ablation — the §4.4 trade-off between the
//! second-order (O(p·|Et|)) and third-order (O(p³)) schemes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topomap_core::{EstimationOrder, Mapper, Parallelism, TopoLb};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

fn bench_orders(c: &mut Criterion) {
    let mut group = c.benchmark_group("estimation_order");
    group.sample_size(10);
    for side in [8usize, 12, 16] {
        let p = side * side;
        let tasks = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);
        for order in [
            EstimationOrder::First,
            EstimationOrder::Second,
            EstimationOrder::Third,
        ] {
            group.bench_with_input(BenchmarkId::new(order.label(), p), &p, |b, _| {
                b.iter(|| TopoLb::new(order).map(&tasks, &topo))
            });
        }
    }
    group.finish();
}

/// Thread-count scaling of the estimation loop itself, per order. The
/// third-order scheme has the most parallel work per placement (a full
/// machine-sized distance column), so it scales best when cores exist.
fn bench_par_vs_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_vs_serial");
    group.sample_size(10);
    let side = 16usize;
    let tasks = gen::stencil2d(side, side, 1024.0, false);
    let topo = Torus::torus_2d(side, side);
    for order in [
        EstimationOrder::First,
        EstimationOrder::Second,
        EstimationOrder::Third,
    ] {
        for threads in [1usize, 2, 4] {
            let lb = TopoLb::with_parallelism(order, Parallelism::fixed(threads));
            group.bench_with_input(
                BenchmarkId::new(format!("{}-t{}", order.label(), threads), side * side),
                &threads,
                |b, _| b.iter(|| lb.map(&tasks, &topo)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_orders, bench_par_vs_serial);
criterion_main!(benches);
