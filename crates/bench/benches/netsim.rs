//! Criterion: network-simulator event throughput (the BigNetSim-substitute
//! cost that bounds the §5.3 sweeps).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topomap_core::{Mapper, RandomMap, TopoLb};
use topomap_netsim::{trace, NetworkConfig, Simulation};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

fn bench_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netsim");
    group.sample_size(10);
    let tasks = gen::stencil2d(8, 8, 8192.0, false);
    let topo = Torus::torus_3d(4, 4, 4);
    let tr = trace::stencil_trace(&tasks, 50, 5_000);
    let good = TopoLb::default().map(&tasks, &topo);
    let bad = RandomMap::new(3).map(&tasks, &topo);
    for (name, mapping) in [("TopoLB", &good), ("Random", &bad)] {
        for bw in [100.0e6, 1000.0e6] {
            let cfg = NetworkConfig::default().with_bandwidth(bw);
            group.bench_with_input(
                BenchmarkId::new(name, format!("{}MBps", bw / 1e6)),
                &cfg,
                |b, cfg| b.iter(|| Simulation::run(&topo, cfg, &tr, mapping)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
