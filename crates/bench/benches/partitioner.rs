//! Criterion: phase-1 partitioner cost on the LeanMD-style workload
//! (the METIS step of §4.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topomap_partition::{GreedyLoad, MultilevelKWay, Partitioner, RandomPartition};
use topomap_taskgraph::gen;

fn bench_partitioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("partitioner");
    group.sample_size(10);
    for p in [32usize, 128] {
        let g = gen::leanmd(p, &gen::LeanMdConfig::default());
        group.bench_with_input(BenchmarkId::new("MultilevelKWay", p), &p, |b, &p| {
            b.iter(|| MultilevelKWay::default().partition(&g, p))
        });
        group.bench_with_input(BenchmarkId::new("GreedyLoad", p), &p, |b, &p| {
            b.iter(|| GreedyLoad.partition(&g, p))
        });
        group.bench_with_input(BenchmarkId::new("Random", p), &p, |b, &p| {
            b.iter(|| RandomPartition::new(1).partition(&g, p))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_partitioners);
criterion_main!(benches);
