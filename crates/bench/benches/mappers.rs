//! Criterion: mapper runtime scaling (the §4.4 complexity claims —
//! TopoLB second order ≈ O(p²) in practice, TopoCentLB O(p·|Et|)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topomap_core::naive::NaiveTopoLb;
use topomap_core::{
    metrics, EstimationOrder, HierMapper, Mapper, Mapping, Parallelism, RandomMap, RefineTopoLb,
    TopoCentLb, TopoLb,
};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

fn bench_mappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper_runtime");
    group.sample_size(10);
    for side in [8usize, 16, 24] {
        let p = side * side;
        let tasks = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);
        group.bench_with_input(BenchmarkId::new("TopoLB", p), &p, |b, _| {
            b.iter(|| TopoLb::default().map(&tasks, &topo))
        });
        group.bench_with_input(BenchmarkId::new("TopoCentLB", p), &p, |b, _| {
            b.iter(|| TopoCentLb.map(&tasks, &topo))
        });
        group.bench_with_input(BenchmarkId::new("Random", p), &p, |b, _| {
            b.iter(|| RandomMap::new(1).map(&tasks, &topo))
        });
        group.bench_with_input(BenchmarkId::new("TopoLB+Refine", p), &p, |b, _| {
            b.iter(|| RefineTopoLb::new(TopoLb::default()).map(&tasks, &topo))
        });
        // Hierarchical (semi-distributed) multisection variant: the §6
        // future-work scalability point.
        let hier = HierMapper::for_torus(&topo).expect("factorable torus");
        group.bench_with_input(BenchmarkId::new("HierMapper", p), &p, |b, _| {
            b.iter(|| hier.map(&tasks, &topo))
        });
    }
    group.finish();
}

/// Thread-count scaling of the deterministic parallel layer. Results are
/// bit-identical across rows (see `tests/parallel_equivalence.rs`); only
/// wall-clock should move. On a single-core host the >1-thread rows just
/// pay the fork-join overhead — the speedup needs real cores.
fn bench_par_vs_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_vs_serial");
    group.sample_size(10);
    let side = 24usize;
    let tasks = gen::stencil2d(side, side, 1024.0, false);
    let topo = Torus::torus_2d(side, side);
    for threads in [1usize, 2, 4] {
        let par = Parallelism::fixed(threads);
        let lb = TopoLb::with_parallelism(EstimationOrder::Second, par);
        group.bench_with_input(
            BenchmarkId::new("TopoLB-second", threads),
            &threads,
            |b, _| b.iter(|| lb.map(&tasks, &topo)),
        );
        let refine = RefineTopoLb::with_parallelism(
            TopoLb::with_parallelism(EstimationOrder::Second, par),
            par,
        );
        group.bench_with_input(
            BenchmarkId::new("TopoLB+Refine", threads),
            &threads,
            |b, _| b.iter(|| refine.map(&tasks, &topo)),
        );
    }
    // The batch metric API on a population-sized set of mappings.
    let maps: Vec<Mapping> = (0..48)
        .map(|s| RandomMap::new(s).map(&tasks, &topo))
        .collect();
    for threads in [1usize, 2, 4] {
        let par = Parallelism::fixed(threads);
        group.bench_with_input(
            BenchmarkId::new("hop_bytes_many", threads),
            &threads,
            |b, _| b.iter(|| metrics::hop_bytes_many(&tasks, &topo, &maps, par)),
        );
    }
    group.finish();
}

/// A 2D stencil whose edge weights vary per edge: defeats the
/// uniform-weight detection, pinning the run to the general f64 kernel
/// (the pre-integer production path) for old-vs-new comparison.
fn stencil2d_varied(nx: usize, ny: usize) -> topomap_taskgraph::TaskGraph {
    let mut b = topomap_taskgraph::TaskGraph::builder(nx * ny);
    let id = |x: usize, y: usize| x * ny + y;
    for x in 0..nx {
        for y in 0..ny {
            let w = |k: usize| 1024.0 + ((id(x, y) * 31 + k * 17) % 997) as f64;
            if x + 1 < nx {
                b.add_comm(id(x, y), id(x + 1, y), w(1));
            }
            if y + 1 < ny {
                b.add_comm(id(x, y), id(x, y + 1), w(2));
            }
        }
    }
    b.build()
}

/// Large-machine kernel comparison — the quadratic-cliff rows. Three
/// kernels on the same 1024- and 4096-processor torus problems:
/// - `TopoLB-int`: uniform weights route to the incremental
///   uniform-integer kernel (the new fast path);
/// - `TopoLB-f64`: varied weights route to the incremental general
///   kernel (what every run paid before integer dispatch);
/// - `TopoLB-naive`: the dense full-rescan oracle, 1024 nodes only (at
///   4096 one iteration takes minutes — the cliff the others avoid).
fn bench_kernel_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_scaling");
    group.sample_size(5);
    for side in [32usize, 64] {
        let p = side * side;
        let uniform = gen::stencil2d(side, side, 1024.0, true);
        let varied = stencil2d_varied(side, side);
        let topo = Torus::torus_2d(side, side);
        let lb = TopoLb::new(EstimationOrder::Second);
        group.bench_with_input(BenchmarkId::new("TopoLB-int", p), &p, |b, _| {
            b.iter(|| lb.map(&uniform, &topo))
        });
        group.bench_with_input(BenchmarkId::new("TopoLB-f64", p), &p, |b, _| {
            b.iter(|| lb.map(&varied, &topo))
        });
        if side == 32 {
            group.sample_size(2);
            group.bench_with_input(BenchmarkId::new("TopoLB-naive", p), &p, |b, _| {
                b.iter(|| NaiveTopoLb::default().map(&uniform, &topo))
            });
            group.sample_size(5);
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_mappers,
    bench_par_vs_serial,
    bench_kernel_scaling
);
criterion_main!(benches);
