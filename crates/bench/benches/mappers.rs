//! Criterion: mapper runtime scaling (the §4.4 complexity claims —
//! TopoLB second order ≈ O(p²) in practice, TopoCentLB O(p·|Et|)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topomap_core::{HierarchicalTopoLb, Mapper, RandomMap, RefineTopoLb, TopoCentLb, TopoLb};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

fn bench_mappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper_runtime");
    group.sample_size(10);
    for side in [8usize, 16, 24] {
        let p = side * side;
        let tasks = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);
        group.bench_with_input(BenchmarkId::new("TopoLB", p), &p, |b, _| {
            b.iter(|| TopoLb::default().map(&tasks, &topo))
        });
        group.bench_with_input(BenchmarkId::new("TopoCentLB", p), &p, |b, _| {
            b.iter(|| TopoCentLb.map(&tasks, &topo))
        });
        group.bench_with_input(BenchmarkId::new("Random", p), &p, |b, _| {
            b.iter(|| RandomMap::new(1).map(&tasks, &topo))
        });
        group.bench_with_input(BenchmarkId::new("TopoLB+Refine", p), &p, |b, _| {
            b.iter(|| RefineTopoLb::new(TopoLb::default()).map(&tasks, &topo))
        });
        // Hierarchical (semi-distributed) variant with 4x4-node blocks:
        // the §6 future-work scalability point.
        let hier = HierarchicalTopoLb::new(vec![side / 4, side / 4]);
        group.bench_with_input(BenchmarkId::new("HierTopoLB", p), &p, |b, _| {
            b.iter(|| hier.map_torus(&tasks, &topo))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mappers);
criterion_main!(benches);
