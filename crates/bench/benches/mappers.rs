//! Criterion: mapper runtime scaling (the §4.4 complexity claims —
//! TopoLB second order ≈ O(p²) in practice, TopoCentLB O(p·|Et|)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use topomap_core::{
    metrics, EstimationOrder, HierarchicalTopoLb, Mapper, Mapping, Parallelism, RandomMap,
    RefineTopoLb, TopoCentLb, TopoLb,
};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

fn bench_mappers(c: &mut Criterion) {
    let mut group = c.benchmark_group("mapper_runtime");
    group.sample_size(10);
    for side in [8usize, 16, 24] {
        let p = side * side;
        let tasks = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);
        group.bench_with_input(BenchmarkId::new("TopoLB", p), &p, |b, _| {
            b.iter(|| TopoLb::default().map(&tasks, &topo))
        });
        group.bench_with_input(BenchmarkId::new("TopoCentLB", p), &p, |b, _| {
            b.iter(|| TopoCentLb.map(&tasks, &topo))
        });
        group.bench_with_input(BenchmarkId::new("Random", p), &p, |b, _| {
            b.iter(|| RandomMap::new(1).map(&tasks, &topo))
        });
        group.bench_with_input(BenchmarkId::new("TopoLB+Refine", p), &p, |b, _| {
            b.iter(|| RefineTopoLb::new(TopoLb::default()).map(&tasks, &topo))
        });
        // Hierarchical (semi-distributed) variant with 4x4-node blocks:
        // the §6 future-work scalability point.
        let hier = HierarchicalTopoLb::new(vec![side / 4, side / 4]);
        group.bench_with_input(BenchmarkId::new("HierTopoLB", p), &p, |b, _| {
            b.iter(|| hier.map_torus(&tasks, &topo))
        });
    }
    group.finish();
}

/// Thread-count scaling of the deterministic parallel layer. Results are
/// bit-identical across rows (see `tests/parallel_equivalence.rs`); only
/// wall-clock should move. On a single-core host the >1-thread rows just
/// pay the fork-join overhead — the speedup needs real cores.
fn bench_par_vs_serial(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_vs_serial");
    group.sample_size(10);
    let side = 24usize;
    let tasks = gen::stencil2d(side, side, 1024.0, false);
    let topo = Torus::torus_2d(side, side);
    for threads in [1usize, 2, 4] {
        let par = Parallelism::fixed(threads);
        let lb = TopoLb::with_parallelism(EstimationOrder::Second, par);
        group.bench_with_input(
            BenchmarkId::new("TopoLB-second", threads),
            &threads,
            |b, _| b.iter(|| lb.map(&tasks, &topo)),
        );
        let refine = RefineTopoLb::with_parallelism(
            TopoLb::with_parallelism(EstimationOrder::Second, par),
            par,
        );
        group.bench_with_input(
            BenchmarkId::new("TopoLB+Refine", threads),
            &threads,
            |b, _| b.iter(|| refine.map(&tasks, &topo)),
        );
    }
    // The batch metric API on a population-sized set of mappings.
    let maps: Vec<Mapping> = (0..48)
        .map(|s| RandomMap::new(s).map(&tasks, &topo))
        .collect();
    for threads in [1usize, 2, 4] {
        let par = Parallelism::fixed(threads);
        group.bench_with_input(
            BenchmarkId::new("hop_bytes_many", threads),
            &threads,
            |b, _| b.iter(|| metrics::hop_bytes_many(&tasks, &topo, &maps, par)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mappers, bench_par_vs_serial);
criterion_main!(benches);
