//! # topomap-bench
//!
//! The experiment harness: one binary per table/figure of the paper
//! (see DESIGN.md §3 for the index), plus shared reporting utilities.
//!
//! Every binary prints the same rows/series the paper reports, in plain
//! aligned text (machine-greppable, human-readable). Absolute values
//! differ from the paper's 2006 hardware; the reproduced quantity is the
//! shape: who wins, by what rough factor, where crossovers fall.
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `exp_table1` | Table 1 (Jacobi, optimal vs random, message-size sweep) |
//! | `exp_fig1_2` | Figures 1–2 (2D-mesh → 2D-torus hops-per-byte) |
//! | `exp_fig3_4` | Figures 3–4 (2D-mesh → 3D-torus hops-per-byte) |
//! | `exp_fig5_6` | Figures 5–6 (LeanMD on 2D/3D tori) |
//! | `exp_fig7_8` | Figures 7–8 (message latency vs bandwidth) |
//! | `exp_fig9`   | Figure 9 (completion time vs bandwidth) |
//! | `exp_fig10_11` | Figures 10–11 (BlueGene 3D-torus/mesh iteration times) |
//! | `exp_ablation` | our ablations (estimation order, refine passes, partitioner) |
//! | `exp_profile` | profiled smoke run: stamps `PROFILE_*.json` traces |
//! | `run_all`    | everything above in sequence |

use std::fmt::Write as _;

/// Format and print an aligned table with a title.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("{}", render_table(title, headers, rows));
}

/// Render an aligned table (exposed separately for tests and file output).
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width mismatch in table '{title}'");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "\n== {title} ==");
    let mut line = String::new();
    for (i, h) in headers.iter().enumerate() {
        let _ = write!(line, "{:>w$}  ", h, w = widths[i]);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate() {
            let _ = write!(line, "{:>w$}  ", cell, w = widths[i]);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    out
}

/// Fixed-precision float formatting for table cells.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Human time formatting: picks ms or s.
pub fn fmt_time_ns(ns: u64) -> String {
    let ms = ns as f64 / 1e6;
    if ms >= 1000.0 {
        format!("{:.2}s", ms / 1000.0)
    } else {
        format!("{ms:.2}ms")
    }
}

/// Parse a `--full` flag from argv: experiments default to scaled-down
/// iteration counts on laptop hardware and use the paper's full counts
/// with `--full`.
pub fn full_mode() -> bool {
    std::env::args().any(|a| a == "--full")
}

/// Relative change `(from -> to)` in percent, negative = reduction.
pub fn pct_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        return 0.0;
    }
    (to - from) / from * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let s = render_table(
            "T",
            &["p", "value"],
            &[
                vec!["64".into(), "1.00".into()],
                vec!["4096".into(), "12.34".into()],
            ],
        );
        assert!(s.contains("== T =="));
        assert!(s.contains("4096"));
        // Columns right-aligned: "  64" under "   p"? p width = 4.
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines.iter().any(|l| l.trim_start().starts_with("64")));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn ragged_rows_rejected() {
        render_table("T", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(fmt_time_ns(1_500_000), "1.50ms");
        assert_eq!(fmt_time_ns(2_500_000_000), "2.50s");
        assert_eq!(pct_change(10.0, 7.0), -30.0);
        assert_eq!(pct_change(0.0, 5.0), 0.0);
    }
}
