//! Figures 7–8: average message latency vs channel bandwidth for a
//! 2D-mesh benchmark on a 64-node (4,4,4) 3D-torus.
//!
//! The paper's §5.3 BigNetSim study: "in the case of a random placement,
//! the average latency increases dramatically as congestion sets in due to
//! a reduction in bandwidth. TopoCentLB can tolerate a further reduction
//! in network bandwidth while TopoLB is the most resilient."
//! GreedyLB plays the random-placement role.
//!
//! Figure 7 sweeps 100 MB/s – 1 GB/s; Figure 8 is the zoom over the
//! uncongested region (400 MB/s – 1 GB/s here).
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_fig7_8 [--full]`

use topomap_bench::{f2, full_mode, print_table};
use topomap_core::{Mapper, RandomMap, TopoCentLb, TopoLb};
use topomap_netsim::{config::NicModel, trace, NetworkConfig, Simulation};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

fn main() {
    let iterations = if full_mode() { 500 } else { 200 };
    // 8x8 2D-mesh pattern, 4 KiB messages, light compute (the paper keeps
    // "the amount of computation low so that communication is a
    // significant factor").
    let tasks = gen::stencil2d(8, 8, 2.0 * 2048.0, false);
    let topo = Torus::torus_3d(4, 4, 4);
    let tr = trace::stencil_trace(&tasks, iterations, 5_000);

    let random = RandomMap::new(1).map(&tasks, &topo); // GreedyLB-equivalent placement
    let cent = TopoCentLb.map(&tasks, &topo);
    let lb = TopoLb::default().map(&tasks, &topo);

    let mut rows = Vec::new();
    for bw_100mb in 1..=10u32 {
        let mut cfg = NetworkConfig::default().with_bandwidth(bw_100mb as f64 * 100.0e6);
        cfg.nic = NicModel::PerLink; // BigNetSim-style router-centric model (see DESIGN.md)
        let s_rnd = Simulation::run(&topo, &cfg, &tr, &random);
        let s_cent = Simulation::run(&topo, &cfg, &tr, &cent);
        let s_lb = Simulation::run(&topo, &cfg, &tr, &lb);
        rows.push(vec![
            bw_100mb.to_string(),
            f2(s_rnd.avg_latency_us()),
            f2(s_cent.avg_latency_us()),
            f2(s_lb.avg_latency_us()),
        ]);
        eprintln!("[fig7] {bw_100mb}00 MB/s done");
    }

    print_table(
        "Figure 7: 2D-mesh on 64-node 3D-torus — average message latency (us)",
        &[
            "BW (100s of MB/s)",
            "Random (GreedyLB)",
            "TopoCentLB",
            "TopoLB",
        ],
        &rows,
    );
    let zoom: Vec<Vec<String>> = rows.iter().skip(3).cloned().collect();
    print_table(
        "Figure 8 (zoom): un-congested region (>= 400 MB/s)",
        &[
            "BW (100s of MB/s)",
            "Random (GreedyLB)",
            "TopoCentLB",
            "TopoLB",
        ],
        &zoom,
    );
}
