//! Figures 1–2: 2D-mesh communication pattern mapped onto a 2D-torus.
//!
//! Figure 1 compares Random placement (with the analytic expectation
//! `√p/2`), TopoLB, and TopoCentLB on hops-per-byte as the machine grows;
//! Figure 2 is the zoomed TopoLB-vs-TopoCentLB comparison, where TopoLB
//! reaches the ideal value 1 in most cases.
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_fig1_2 [--full]`

use topomap_bench::{f2, f3, full_mode, print_table};
use topomap_core::{metrics, Mapper, Mapping, Parallelism, RandomMap, TopoCentLb, TopoLb};
use topomap_taskgraph::gen;
use topomap_topology::{stats, Torus};

fn main() {
    // Perfect squares so the task mesh matches the torus shape, as in the
    // paper's benchmark ("the number of tasks created is the same as the
    // number of processors").
    let mut sides: Vec<usize> = vec![8, 16, 24, 32, 48, 64];
    if full_mode() {
        sides.push(76); // p = 5776, the paper's ~6000-processor end
    }

    let mut rows = Vec::new();
    let mut zoom_rows = Vec::new();
    for side in sides {
        let p = side * side;
        let tasks = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);

        // Random: average over seeds (the paper plots one draw; averaging
        // just smooths the comparison with the analytic value). The seed
        // draws are scored as one parallel batch.
        let seeds = 3;
        let maps: Vec<Mapping> = (0..seeds)
            .map(|s| RandomMap::new(s).map(&tasks, &topo))
            .collect();
        let rand_hpb: f64 = metrics::hop_bytes_many(&tasks, &topo, &maps, Parallelism::default())
            .iter()
            .sum::<f64>()
            / (seeds as f64 * tasks.total_comm());
        let analytic = stats::expected_random_hops_torus_2d(p);

        let cent = metrics::hops_per_byte(&tasks, &topo, &TopoCentLb.map(&tasks, &topo));
        let lb = metrics::hops_per_byte(&tasks, &topo, &TopoLb::default().map(&tasks, &topo));

        rows.push(vec![
            p.to_string(),
            f2(rand_hpb),
            f2(analytic),
            f3(cent),
            f3(lb),
            "1.000".to_string(),
        ]);
        zoom_rows.push(vec![
            p.to_string(),
            f3(lb),
            f3(cent),
            f2(100.0 * (cent / lb - 1.0)),
        ]);
        eprintln!("[fig1] p = {p} done");
    }

    print_table(
        "Figure 1: 2D-mesh pattern on 2D-torus — average hops per byte",
        &[
            "p",
            "Random",
            "E[hops]=sqrt(p)/2",
            "TopoCentLB",
            "TopoLB",
            "Ideal",
        ],
        &rows,
    );
    print_table(
        "Figure 2 (zoom): TopoLB vs TopoCentLB",
        &["p", "TopoLB", "TopoCentLB", "TopoCentLB excess %"],
        &zoom_rows,
    );
}
