//! Table 1: time for 200 iterations of a 3D Jacobi-like program under the
//! optimal mapping vs a random mapping, for message sizes 1KB–1MB.
//!
//! 512 elements in an 8×8×8 3D-mesh pattern on 512 processors connected
//! as an 8×8×8 3D-mesh (the paper's BlueGene prototype setup), driven
//! through the packet simulator with BG/L-like constants. The optimal
//! mapping is "a simple isomorphism mapping" — the identity.
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_table1 [--full]`

use topomap_bench::{f2, fmt_time_ns, full_mode, print_table};
use topomap_core::{IdentityMap, Mapper, RandomMap};
use topomap_netsim::{bluegene, trace, Simulation};
use topomap_taskgraph::gen;

fn main() {
    let iterations = if full_mode() { 200 } else { 50 };
    let msg_sizes: &[(u64, &str)] = &[
        (1 << 10, "1KB"),
        (10 << 10, "10KB"),
        (100 << 10, "100KB"),
        (500 << 10, "500KB"),
        (1 << 20, "1MB"),
    ];

    let topo = bluegene::bluegene_machine(512, false); // 3D-mesh, as Table 1
                                                       // Calibration against the paper's absolute row heights: its optimal-
                                                       // mapping time at 1KB is ~235us/iteration, which on early BG/L is
                                                       // dominated by per-message MPI software overhead and the Jacobi
                                                       // compute, not by wire time. We model that with ~10us of sender
                                                       // overhead per message and ~150us of compute per iteration; the
                                                       // network parameters stay the BG/L link constants.
    let mut cfg = bluegene::bluegene_config();
    cfg.send_overhead_ns = 10_000;
    let compute_ns = 150_000;

    let mut rows = Vec::new();
    for &(bytes, label) in msg_sizes {
        // Edge weight = total of the bidirectional exchange = 2 * msg.
        let tasks = gen::stencil3d(8, 8, 8, 2.0 * bytes as f64, false);
        let tr = trace::stencil_trace(&tasks, iterations, compute_ns);

        let opt = Simulation::run(&topo, &cfg, &tr, &IdentityMap.map(&tasks, &topo));
        let rnd = Simulation::run(&topo, &cfg, &tr, &RandomMap::new(1).map(&tasks, &topo));

        rows.push(vec![
            label.to_string(),
            fmt_time_ns(rnd.completion_ns),
            fmt_time_ns(opt.completion_ns),
            f2(rnd.completion_ns as f64 / opt.completion_ns as f64),
        ]);
        eprintln!("[table1] {label} done");
    }

    print_table(
        &format!("Table 1: {iterations} iterations of 3D-Jacobi on 512-proc 3D-mesh (BG/L-like)"),
        &[
            "Message Size",
            "Random Mapping",
            "Optimal Mapping",
            "Random/Optimal",
        ],
        &rows,
    );
    println!(
        "\nPaper (200 iters, real BlueGene): ratios grow from 1.2x at 1KB to\n\
         ~2.6x at 1MB as contention dominates. The reproduced ratios should\n\
         show the same monotone growth with message size."
    );
}
