//! Contention-refinement gate: hop-bytes-refined vs contention-refined
//! mappings, judged by the simulator's completion time.
//!
//! Hop-bytes is the paper's proxy for contention; `ContentionRefine`
//! optimizes the real thing (simulated makespan read off the per-link
//! ledger). The gate exercises the regimes where the proxy is blind:
//!
//! - **degraded-torus** (the saturated-scenario row): a (4,4,8) torus
//!   whose busiest router loses 90% of its outgoing bandwidth. Hop-bytes
//!   cannot see link speeds, so the refined-hop-bytes mapping keeps
//!   streaming through the sick router; contention refinement migrates
//!   the affected tasks onto the machine's free processors.
//! - **dragonfly-global**: an all-to-all workload on a dragonfly, where
//!   many same-router-index flows share single global channels and
//!   hop-bytes ties hide large differences in global-link sharing.
//! - **saturated-torus**: a transpose pattern at low bandwidth on a 2D
//!   torus — long-haul flows overlap on central links.
//!
//! Checks (fatal, so CI runs this binary as a gate):
//! - on every row, contention-refined makespan <= hop-bytes-refined
//!   makespan (the loop only ever accepts strict improvements);
//! - on the degraded-torus row, the improvement is >= 5%;
//! - the profiled run records `contention.sims > 0` and a
//!   `contention.refine` span, stamped as `PROFILE_contention.json`.
//!
//! Results land in `BENCH_contention.json`.
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_contention [--threads N]`

use serde::Serialize;
use topomap_bench::print_table;
use topomap_core::metrics::hops_per_byte;
use topomap_core::{obs, ContentionRefine, Mapper, Mapping, Parallelism, RefineTopoLb, TopoLb};
use topomap_netsim::config::NicModel;
use topomap_netsim::{contention_oracle, trace, NetworkConfig, Simulation, Trace};
use topomap_taskgraph::{gen, TaskGraph};
use topomap_topology::{Dragonfly, RoutedTopology, Torus};

#[derive(Serialize)]
struct Row {
    scenario: String,
    machine: String,
    tasks: usize,
    hb_makespan_ms: f64,
    contention_makespan_ms: f64,
    improvement_pct: f64,
    iterations: usize,
    sims_run: usize,
    accepted: usize,
    hb_hpb: f64,
    contention_hpb: f64,
}

#[derive(Serialize)]
struct ContentionBench {
    schema: u32,
    threads: usize,
    rows: Vec<Row>,
    profiled_sims: u64,
}

fn threads_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or(1)
}

struct Scenario {
    name: &'static str,
    tasks: TaskGraph,
    topo: Box<dyn RoutedTopology>,
    tr: Trace,
    cfg: NetworkConfig,
}

/// The degraded-torus scenario degrades the busiest router *of the
/// hop-bytes-refined mapping*, so the baseline provably suffers — the
/// realistic "failing linecard under the hottest router" case.
fn degraded_torus(par: Parallelism) -> Scenario {
    let tasks = gen::stencil2d(8, 8, 2.0 * 65_536.0, false);
    let topo = Torus::torus_3d(4, 4, 8);
    let tr = trace::stencil_trace(&tasks, 20, 5_000);
    let mut cfg = NetworkConfig::default().with_bandwidth(300e6);
    cfg.nic = NicModel::PerLink;

    let hb = hb_refined(&tasks, &topo, par);
    let clean = Simulation::run_with_links(&topo, &cfg, &tr, &hb);
    let busiest = (0..clean.links.len())
        .max_by_key(|&i| (clean.acct.busy_ns(i), std::cmp::Reverse(i)))
        .expect("torus has links");
    let sick = clean.links[busiest].from;
    cfg.link_speed_factors = topo
        .neighbors(sick)
        .into_iter()
        .map(|n| (sick, n, 0.1))
        .collect();
    Scenario {
        name: "degraded-torus",
        tasks,
        topo: Box::new(topo),
        tr,
        cfg,
    }
}

fn dragonfly_global() -> Scenario {
    let tasks = gen::all_to_all(16, 65_536.0);
    let topo = Dragonfly::new(4, 8);
    let tr = trace::stencil_trace(&tasks, 10, 5_000);
    let mut cfg = NetworkConfig::default().with_bandwidth(200e6);
    cfg.nic = NicModel::PerLink;
    Scenario {
        name: "dragonfly-global",
        tasks,
        topo: Box::new(topo),
        tr,
        cfg,
    }
}

fn saturated_torus() -> Scenario {
    let tasks = gen::transpose(6, 65_536.0);
    let topo = Torus::torus_2d(8, 8);
    let tr = trace::stencil_trace(&tasks, 10, 5_000);
    let mut cfg = NetworkConfig::default().with_bandwidth(150e6);
    cfg.nic = NicModel::PerLink;
    Scenario {
        name: "saturated-torus",
        tasks,
        topo: Box::new(topo),
        tr,
        cfg,
    }
}

fn hb_refined(tasks: &TaskGraph, topo: &dyn RoutedTopology, par: Parallelism) -> Mapping {
    RefineTopoLb::with_parallelism(
        TopoLb {
            par,
            ..TopoLb::default()
        },
        par,
    )
    .map(tasks, topo)
}

fn run_scenario(sc: &Scenario, par: Parallelism) -> Row {
    let topo = sc.topo.as_ref();
    let hb = hb_refined(&sc.tasks, topo, par);
    let hb_stats = Simulation::run(topo, &sc.cfg, &sc.tr, &hb);

    let mut refined = hb.clone();
    let refiner = ContentionRefine {
        max_iters: 24,
        sim_budget: 120,
        par,
        ..ContentionRefine::default()
    };
    let report = refiner.refine(
        &sc.tasks,
        topo,
        &mut refined,
        contention_oracle(topo, &sc.cfg, &sc.tr),
    );
    assert_eq!(
        report.initial_makespan_ns, hb_stats.completion_ns,
        "{}: oracle and Simulation::run disagree on the baseline",
        sc.name
    );

    Row {
        scenario: sc.name.to_string(),
        machine: topo.name(),
        tasks: sc.tasks.num_tasks(),
        hb_makespan_ms: hb_stats.completion_ns as f64 / 1e6,
        contention_makespan_ms: report.final_makespan_ns as f64 / 1e6,
        improvement_pct: report.improvement_pct(),
        iterations: report.iterations,
        sims_run: report.sims_run,
        accepted: report.accepted,
        hb_hpb: hops_per_byte(&sc.tasks, topo, &hb),
        contention_hpb: hops_per_byte(&sc.tasks, topo, &refined),
    }
}

fn main() {
    let threads = threads_arg();
    let par = Parallelism::fixed(threads);

    let scenarios = [degraded_torus(par), dragonfly_global(), saturated_torus()];
    let rows: Vec<Row> = scenarios.iter().map(|sc| run_scenario(sc, par)).collect();

    // Profiled re-run of the gated scenario: prove the loop records its
    // spans/counters, stamped for the CI artifact.
    let sc = &scenarios[0];
    obs::start();
    let mut m = hb_refined(&sc.tasks, sc.topo.as_ref(), par);
    let refiner = ContentionRefine {
        max_iters: 24,
        sim_budget: 120,
        par,
        ..ContentionRefine::default()
    };
    refiner.refine(
        &sc.tasks,
        sc.topo.as_ref(),
        &mut m,
        contention_oracle(sc.topo.as_ref(), &sc.cfg, &sc.tr),
    );
    let report = obs::finish();
    let profiled_sims = report.counter("contention.sims").unwrap_or(0);
    assert!(
        profiled_sims > 0,
        "profiled refine recorded no contention.sims"
    );
    assert!(
        report.find_span("contention.refine").is_some(),
        "profiled refine recorded no contention.refine span"
    );
    std::fs::write("PROFILE_contention.json", report.to_json())
        .unwrap_or_else(|e| panic!("write PROFILE_contention.json: {e}"));

    print_table(
        &format!("Hop-bytes-refined vs contention-refined makespan ({threads} thread(s))"),
        &[
            "scenario",
            "machine",
            "hb ms",
            "contention ms",
            "gain",
            "sims",
            "accepted",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scenario.clone(),
                    r.machine.clone(),
                    format!("{:.2}", r.hb_makespan_ms),
                    format!("{:.2}", r.contention_makespan_ms),
                    format!("{:.1}%", r.improvement_pct),
                    format!("{}", r.sims_run),
                    format!("{}", r.accepted),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let bench = ContentionBench {
        schema: 1,
        threads,
        rows,
        profiled_sims,
    };
    std::fs::write(
        "BENCH_contention.json",
        serde_json::to_string_pretty(&bench).expect("serialize BENCH_contention"),
    )
    .unwrap_or_else(|e| panic!("write BENCH_contention.json: {e}"));

    for r in &bench.rows {
        assert!(
            r.contention_makespan_ms <= r.hb_makespan_ms + 1e-9,
            "{}: contention-refined {:.3} ms worse than hop-bytes-refined {:.3} ms",
            r.scenario,
            r.contention_makespan_ms,
            r.hb_makespan_ms
        );
    }
    let degraded = &bench.rows[0];
    assert!(
        degraded.improvement_pct >= 5.0,
        "degraded-torus row gained only {:.2}% (< 5%)",
        degraded.improvement_pct
    );
    println!("\nContention refinement gate PASSED (BENCH_contention.json).");
}
