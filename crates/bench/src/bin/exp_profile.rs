//! Profiled smoke run: exercise every mapper family and one simulator
//! run with the observability layer armed, validate the reports (span
//! tree with at least three phases, non-zero counters), and stamp them
//! as `PROFILE_<name>.json` next to the `BENCH_*.json` baselines.
//!
//! This is the bench-side consumer of `topomap_core::obs`: the perf PRs
//! that the ROADMAP queues up will diff these profiles to see where a
//! change moved time, the same way BENCH_*.json anchors wall-clock.
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_profile [--full]`

use topomap_bench::{fmt_time_ns, full_mode, print_table};
use topomap_core::obs;
use topomap_core::{
    EstimationOrder, GeneticMap, Mapper, RefineTopoLb, SimulatedAnnealingMap, TopoCentLb, TopoLb,
};
use topomap_netsim::{trace, NetworkConfig, Simulation};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

/// Root span's elapsed time, as the run's wall-clock estimate.
fn root_elapsed_ns(report: &obs::Report) -> u64 {
    report.spans.iter().map(|s| s.elapsed_ns).sum()
}

/// The acceptance gate: a usable profile has a span tree of >= 3 phases
/// and at least one non-zero counter.
fn validate(name: &str, report: &obs::Report) {
    assert!(
        report.span_count() >= 3,
        "{name}: span tree too shallow: {:?}",
        report.span_names()
    );
    assert!(
        report.counters.iter().any(|c| c.value > 0),
        "{name}: all counters zero"
    );
}

fn stamp(name: &str, report: &obs::Report) -> String {
    let path = format!("PROFILE_{name}.json");
    std::fs::write(&path, report.to_json()).unwrap_or_else(|e| panic!("write {path}: {e}"));
    path
}

fn main() {
    let side = if full_mode() { 16 } else { 8 };
    let tasks = gen::stencil2d(side, side, 2048.0, false);
    let topo = Torus::torus_2d(side, side);

    let mappers: Vec<(&str, Box<dyn Mapper>)> = vec![
        ("TopoLB", Box::new(TopoLb::new(EstimationOrder::Second))),
        ("TopoCentLB", Box::new(TopoCentLb)),
        (
            "TopoLB-Refine",
            Box::new(RefineTopoLb::new(TopoLb::new(EstimationOrder::Second))),
        ),
        ("SimAnneal", Box::new(SimulatedAnnealingMap::quick(1))),
        ("Genetic", Box::new(GeneticMap::quick(1))),
    ];

    let mut rows = Vec::new();
    for (name, mapper) in &mappers {
        obs::start();
        let mapping = mapper.map(&tasks, &topo);
        let report = obs::finish();
        validate(name, &report);
        let path = stamp(name, &report);
        rows.push(vec![
            name.to_string(),
            report.span_count().to_string(),
            report.counters.len().to_string(),
            fmt_time_ns(root_elapsed_ns(&report)),
            path,
        ]);
        drop(mapping);
    }

    // One profiled simulator run over the TopoLB placement: the
    // contention heatmap (per-link bytes/busy series) rides in the trace.
    let mapping = TopoLb::default().map(&tasks, &topo);
    let tr = trace::stencil_trace(&tasks, if full_mode() { 100 } else { 20 }, 5_000);
    let cfg = NetworkConfig::default().with_bandwidth(500.0e6);
    obs::start();
    let stats = Simulation::run(&topo, &cfg, &tr, &mapping);
    let report = obs::finish();
    validate("netsim", &report);
    assert!(
        report.series("netsim.link_bytes").is_some(),
        "netsim profile lost its contention heatmap"
    );
    let path = stamp("netsim", &report);
    rows.push(vec![
        "netsim".to_string(),
        report.span_count().to_string(),
        report.counters.len().to_string(),
        fmt_time_ns(root_elapsed_ns(&report)),
        path,
    ]);

    print_table(
        "Profiled smoke run (stencil on 2D torus, recording armed)",
        &["run", "spans", "counters", "wall", "profile"],
        &rows,
    );
    println!(
        "\nSimulated completion under the profiled TopoLB mapping: {:.3} ms;\n\
         every report validated (>= 3 phases, non-zero counters) and written\n\
         next to the BENCH_*.json baselines.",
        stats.completion_ms()
    );
}
