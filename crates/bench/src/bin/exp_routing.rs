//! Routing-vs-mapping ablation: does adaptive routing substitute for
//! topology-aware mapping?
//!
//! The paper argues contention must be attacked at placement time. A
//! natural objection: "just route adaptively". This experiment runs the
//! §5.3 workload under deterministic dimension-ordered routing and under
//! minimal-adaptive routing, for random and TopoLB mappings: adaptive
//! routing recovers some of random placement's loss (it spreads load over
//! equivalent shortest paths) but cannot recover the hop count itself —
//! hop-bytes is routing-invariant — so mapping remains the first-order
//! lever.
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_routing [--full]`

use topomap_bench::{f2, full_mode, print_table};
use topomap_core::{Mapper, RandomMap, TopoLb};
use topomap_netsim::config::{NicModel, RoutingMode};
use topomap_netsim::{trace, NetworkConfig, Simulation};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

fn main() {
    let iterations = if full_mode() { 500 } else { 150 };
    let tasks = gen::stencil2d(8, 8, 2.0 * 2048.0, false);
    let topo = Torus::torus_3d(4, 4, 4);
    let tr = trace::stencil_trace(&tasks, iterations, 5_000);

    let mappings = [
        ("Random", RandomMap::new(1).map(&tasks, &topo)),
        ("TopoLB", TopoLb::default().map(&tasks, &topo)),
    ];

    let mut rows = Vec::new();
    for bw_100mb in [1u32, 2, 5, 10] {
        for (mname, mapping) in &mappings {
            let mut cells = vec![format!("{bw_100mb}"), mname.to_string()];
            let mut completions = Vec::new();
            for routing in [RoutingMode::Deterministic, RoutingMode::MinimalAdaptive] {
                let mut cfg = NetworkConfig::default().with_bandwidth(bw_100mb as f64 * 100.0e6);
                cfg.nic = NicModel::PerLink;
                cfg.routing = routing;
                let s = Simulation::run(&topo, &cfg, &tr, mapping);
                cells.push(f2(s.avg_latency_us()));
                cells.push(f2(s.completion_ms()));
                completions.push(s.completion_ns as f64);
            }
            cells.push(f2(100.0 * (1.0 - completions[1] / completions[0])));
            rows.push(cells);
        }
        eprintln!("[routing] {bw_100mb}00 MB/s done");
    }

    print_table(
        "Routing ablation: DOR vs minimal-adaptive (2D-mesh on (4,4,4) torus)",
        &[
            "BW (100s MB/s)",
            "mapping",
            "DOR lat us",
            "DOR compl ms",
            "Adaptive lat us",
            "Adaptive compl ms",
            "adaptive gain %",
        ],
        &rows,
    );
    println!(
        "\nAdaptive routing trims random placement's queueing but leaves its\n\
         hop count (and hence aggregate link load) untouched; TopoLB under\n\
         plain DOR still beats random placement under adaptive routing —\n\
         mapping and routing are complements, with mapping the bigger lever."
    );
}
