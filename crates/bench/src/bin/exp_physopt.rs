//! Heuristics vs. physical optimization — the paper's framing claim.
//!
//! §1: "Though physical optimization algorithms produce high-quality
//! solutions (better than heuristic algorithms), they tend to be very
//! slow. Their execution times are unacceptable in a practical scenario
//! for large data sets ... Heuristic algorithms, on the other hand, are
//! much faster and suitable for real-world parallel applications."
//!
//! This binary quantifies that trade-off on this implementation: solution
//! quality (hops-per-byte) and wall time for TopoCentLB / TopoLB /
//! TopoLB+Refine vs simulated annealing (Bollinger & Midkiff family) and
//! a genetic algorithm (Arunkumar & Chockalingam family).
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_physopt [--full]`

use std::time::Instant;
use topomap_bench::{f3, full_mode, print_table};
use topomap_core::{
    metrics, GeneticMap, Mapper, RandomMap, RefineTopoLb, SimulatedAnnealingMap, TopoCentLb, TopoLb,
};
use topomap_taskgraph::gen;
use topomap_topology::{Topology, Torus};

fn main() {
    let sides: &[usize] = if full_mode() {
        &[8, 12, 16, 24]
    } else {
        &[8, 12, 16]
    };

    for &side in sides {
        let p = side * side;
        let workloads: Vec<(&str, topomap_taskgraph::TaskGraph)> = vec![
            ("2D stencil", gen::stencil2d(side, side, 1024.0, false)),
            (
                "geometric",
                gen::random_geometric(p, 1.6 / side as f64, 100.0, 2048.0, 11),
            ),
        ];
        let topo = Torus::torus_2d(side, side);

        for (wname, tasks) in &workloads {
            let mappers: Vec<Box<dyn Mapper>> = vec![
                Box::new(RandomMap::new(1)),
                Box::new(TopoCentLb),
                Box::new(TopoLb::default()),
                Box::new(RefineTopoLb::new(TopoLb::default())),
                Box::new(SimulatedAnnealingMap::new(1)),
                Box::new(GeneticMap::new(1)),
            ];
            let mut rows = Vec::new();
            for mapper in &mappers {
                let t0 = Instant::now();
                let m = mapper.map(tasks, &topo);
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                rows.push(vec![
                    mapper.name(),
                    f3(metrics::hops_per_byte(tasks, &topo, &m)),
                    format!("{dt:.1}"),
                ]);
            }
            print_table(
                &format!("{wname}, p = {p} on {}", topo.name()),
                &["mapper", "hops-per-byte", "time (ms)"],
                &rows,
            );
        }
    }
    println!(
        "\nThe paper's §1 claim, quantified: annealing/genetic search reach\n\
         (or approach) heuristic quality only at orders of magnitude more\n\
         time, and fall behind as p grows with these budgets — heuristics\n\
         are the practical choice inside a runtime system."
    );
}
