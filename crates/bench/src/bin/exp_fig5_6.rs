//! Figures 5–6: LeanMD communication patterns mapped onto 2D and 3D tori.
//!
//! The full two-phase pipeline of §4.4: the (synthetic) LeanMD task graph
//! of `3240 + p` chares is coalesced to `p` groups with the multilevel
//! partitioner (METIS substitute), then the group graph is mapped with
//! Random / TopoCentLB / TopoLB / TopoLB+RefineTopoLB.
//!
//! Paper reference points (p = 512, 2D torus): TopoLB −34% vs random,
//! TopoCentLB −30%; RefineTopoLB a further ~12%; 3D torus ~40% total.
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_fig5_6 [--full]`

use topomap_bench::{f2, full_mode, print_table};
use topomap_core::{pipeline::two_phase, Mapper, RandomMap, RefineTopoLb, TopoCentLb, TopoLb};
use topomap_partition::MultilevelKWay;
use topomap_taskgraph::{gen, stats::graph_stats};
use topomap_topology::{Topology, Torus};

fn run_family(title: &str, make_topo: &dyn Fn(usize) -> Torus, ps: &[usize]) {
    let mut rows = Vec::new();
    for &p in ps {
        let topo = make_topo(p);
        if topo.num_nodes() != p {
            continue;
        }
        let tasks = gen::leanmd(p, &gen::LeanMdConfig::default());
        let partitioner = MultilevelKWay::default();

        // One shared phase-1 partition per machine size, so every mapper
        // sees the identical group graph (the paper's §5.1 methodology).
        let base = two_phase(&tasks, &topo, &partitioner, &RandomMap::new(17));
        let groups = &base.group_graph;
        let gstats = graph_stats(groups);

        let hpb = |mapper: &dyn Mapper| {
            let m = mapper.map(groups, &topo);
            topomap_core::metrics::hops_per_byte(groups, &topo, &m)
        };

        let rand = hpb(&RandomMap::new(17));
        let cent = hpb(&TopoCentLb);
        let lb = hpb(&TopoLb::default());
        let refined = hpb(&RefineTopoLb::new(TopoLb::default()));

        rows.push(vec![
            p.to_string(),
            (tasks.num_tasks()).to_string(),
            f2(gstats.avg_degree),
            f2(rand),
            f2(cent),
            f2(lb),
            f2(refined),
            f2(100.0 * (1.0 - lb / rand)),
            f2(100.0 * (1.0 - refined / lb)),
        ]);
        eprintln!("[{title}] p = {p} done");
    }
    print_table(
        title,
        &[
            "p",
            "chares",
            "grp deg",
            "Random",
            "TopoCentLB",
            "TopoLB",
            "TopoLB+Refine",
            "TopoLB red. %",
            "Refine extra %",
        ],
        &rows,
    );
}

fn main() {
    let mut ps: Vec<usize> = vec![18, 64, 128, 256, 512];
    if full_mode() {
        ps.push(1024);
    }
    run_family(
        "Figure 5: LeanMD on 2D-tori — average hops per byte",
        &Torus::torus_2d_for,
        &ps,
    );
    run_family(
        "Figure 6: LeanMD on 3D-tori — average hops per byte",
        &Torus::torus_3d_for,
        &ps,
    );
}
