//! Hierarchical-mapping gate: `HierMapper` (recursive
//! partition-and-map over the explicit hardware hierarchy, leaf
//! sub-mappings fanned onto the pool) against the flat incremental
//! TopoLB kernel it decomposes.
//!
//! The claim under test is the PR's headline: at 4096 processors the
//! hierarchical mapper must finish in at most **one third** of the flat
//! incremental TopoLB wall-clock at the same thread count, while
//! landing hop-bytes within **15%** of the flat TopoLB+Refine
//! pipeline's quality. A 16384-processor smoke run holds the
//! super-linear tail to a host-relative budget (the naive 576-node
//! oracle is the unit of "pre-optimization work", as in `exp_scaling`).
//!
//! Checks (all fatal, so CI runs this binary as a gate):
//! - `hier(4096) <= flat_topolb(4096) / 3` (best-of-3 wall both sides);
//! - `hpb(hier) <= 1.15 * hpb(TopoLB+Refine)` at 1024 and 4096;
//! - `hier(16384) <= 6x` the naive-576 unit;
//! - the profiled 4096 run records `par.regions.parallel > 0` when the
//!   pool has more than one thread (the leaf phase really fanned out),
//!   stamped as `PROFILE_hier_4096.json`.
//!
//! Results land in `BENCH_hier.json` (one serde-serialized document).
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_hier [--threads N]`

use serde::Serialize;
use std::time::Instant;
use topomap_bench::{f3, print_table};
use topomap_core::metrics::hops_per_byte;
use topomap_core::naive::NaiveTopoLb;
use topomap_core::{
    obs, EstimationOrder, HierMapper, Mapper, Mapping, Parallelism, RefineTopoLb, TopoLb,
};
use topomap_taskgraph::{gen, TaskGraph};
use topomap_topology::Torus;

/// Best-of-3 wall-clock of one mapper run (single-shot timings on a
/// shared host drift by 2x; the floor is the stable statistic).
fn best_of_3(f: impl Fn() -> Mapping) -> (f64, Mapping) {
    let mut best = f64::INFINITY;
    let mut m = f();
    for _ in 0..2 {
        let t0 = Instant::now();
        let cand = f();
        if t0.elapsed().as_secs_f64() < best {
            best = t0.elapsed().as_secs_f64();
            m = cand;
        }
    }
    let t0 = Instant::now();
    let cand = f();
    let secs = t0.elapsed().as_secs_f64();
    if secs < best {
        best = secs;
        m = cand;
    }
    (best, m)
}

#[derive(Serialize)]
struct SizeRecord {
    p: usize,
    threads: usize,
    flat_topolb_ms: f64,
    hier_ms: f64,
    speedup: f64,
    flat_refine_hpb: f64,
    hier_hpb: f64,
    hpb_ratio: f64,
}

#[derive(Serialize)]
struct HierBench {
    schema: u32,
    threads: usize,
    sizes: Vec<SizeRecord>,
    smoke_16384_ms: f64,
    naive_576_unit_ms: f64,
    parallel_regions: u64,
}

fn threads_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or(1)
}

fn stencil_case(side: usize) -> (TaskGraph, Torus) {
    (
        gen::stencil2d(side, side, 1024.0, true),
        Torus::torus_2d(side, side),
    )
}

fn main() {
    let threads = threads_arg();
    let par = Parallelism::fixed(threads);
    let mut rows = Vec::new();
    let mut sizes = Vec::new();

    for side in [32usize, 64] {
        let p = side * side;
        let (tasks, topo) = stencil_case(side);

        let flat = TopoLb::with_parallelism(EstimationOrder::Second, par);
        let (flat_secs, _) = best_of_3(|| flat.map(&tasks, &topo));

        let hier = HierMapper::for_torus(&topo)
            .expect("square torus factors")
            .with_parallelism(par);
        let (hier_secs, hier_m) = best_of_3(|| hier.map(&tasks, &topo));

        // Quality baseline: the full flat pipeline (TopoLB + windowed
        // refinement). One run — this is a quality bar, not a timing.
        let refine = RefineTopoLb::with_parallelism(
            TopoLb::with_parallelism(EstimationOrder::Second, par),
            par,
        );
        let refine_hpb = hops_per_byte(&tasks, &topo, &refine.map(&tasks, &topo));
        let hier_hpb = hops_per_byte(&tasks, &topo, &hier_m);

        rows.push(vec![
            format!("{p}"),
            format!("{:.3} ms", flat_secs * 1e3),
            format!("{:.3} ms", hier_secs * 1e3),
            format!("{:.2}x", flat_secs / hier_secs),
            f3(refine_hpb),
            f3(hier_hpb),
            f3(hier_hpb / refine_hpb),
        ]);
        sizes.push(SizeRecord {
            p,
            threads,
            flat_topolb_ms: flat_secs * 1e3,
            hier_ms: hier_secs * 1e3,
            speedup: flat_secs / hier_secs,
            flat_refine_hpb: refine_hpb,
            hier_hpb,
            hpb_ratio: hier_hpb / refine_hpb,
        });
    }

    // Host-relative work unit, same anchor as exp_scaling: the dense
    // naive oracle on 576 nodes.
    let (tasks, topo) = stencil_case(24);
    let naive = NaiveTopoLb::default();
    let (unit, _) = best_of_3(|| naive.map(&tasks, &topo));

    // 16384-processor smoke: one level further up than the gate sizes.
    let (tasks, topo) = stencil_case(128);
    let hier = HierMapper::for_torus(&topo)
        .expect("square torus factors")
        .with_parallelism(par);
    let (smoke_secs, smoke_m) = best_of_3(|| hier.map(&tasks, &topo));
    let smoke_hpb = hops_per_byte(&tasks, &topo, &smoke_m);

    // Profiled 4096 run: prove the leaf phase actually fanned out.
    let (tasks, topo) = stencil_case(64);
    let hier = HierMapper::for_torus(&topo)
        .expect("square torus factors")
        .with_parallelism(par);
    obs::start();
    let m = hier.map(&tasks, &topo);
    let report = obs::finish();
    drop(m);
    let parallel_regions = report.counter("par.regions.parallel").unwrap_or(0);
    std::fs::write("PROFILE_hier_4096.json", report.to_json())
        .unwrap_or_else(|e| panic!("write PROFILE_hier_4096.json: {e}"));

    print_table(
        &format!("Hierarchical vs flat mapping ({threads} thread(s), 2D periodic stencil)"),
        &[
            "p",
            "flat TopoLB",
            "HierMapper",
            "speedup",
            "refine hpb",
            "hier hpb",
            "ratio",
        ],
        &rows,
    );
    println!(
        "\n16384 smoke: {:.1} ms (hpb {:.3}); naive-576 unit: {:.1} ms; \
         profiled 4096 run fanned out {} region(s)",
        smoke_secs * 1e3,
        smoke_hpb,
        unit * 1e3,
        parallel_regions,
    );

    let bench = HierBench {
        schema: 1,
        threads,
        sizes,
        smoke_16384_ms: smoke_secs * 1e3,
        naive_576_unit_ms: unit * 1e3,
        parallel_regions,
    };
    std::fs::write(
        "BENCH_hier.json",
        serde_json::to_string_pretty(&bench).expect("serialize BENCH_hier"),
    )
    .unwrap_or_else(|e| panic!("write BENCH_hier.json: {e}"));

    let r4096 = &bench.sizes[1];
    assert!(
        r4096.hier_ms <= r4096.flat_topolb_ms / 3.0,
        "HierMapper lost its headline: {:.1} ms > flat {:.1} ms / 3 at 4096",
        r4096.hier_ms,
        r4096.flat_topolb_ms
    );
    for r in &bench.sizes {
        assert!(
            r.hpb_ratio <= 1.15,
            "hop-bytes regressed at p={}: hier {:.3} > 1.15 x refine {:.3}",
            r.p,
            r.hier_hpb,
            r.flat_refine_hpb
        );
    }
    assert!(
        smoke_secs <= 6.0 * unit,
        "16384 smoke blew its budget: {:.1} ms > 6 x {:.1} ms (naive 576-node unit)",
        smoke_secs * 1e3,
        unit * 1e3
    );
    if threads > 1 {
        assert!(
            parallel_regions > 0,
            "multi-threaded run never engaged the pool (par.regions.parallel = 0)"
        );
    }
    println!("\nHierarchical mapping gate PASSED (BENCH_hier.json).");
}
