//! Mapping-service gate: drive the `topomap-serve` daemon with
//! thousands of concurrent mixed requests and hold it to the PR's
//! acceptance bar.
//!
//! Checks (all fatal, so CI runs this binary as a gate):
//! - every `MapOk` is **bit-identical** to the same specs run directly
//!   in-process with `Parallelism::serial()` — the server's cached
//!   distance oracles and worker pool must not perturb a single bit;
//! - **zero protocol errors** and zero structured `Error` responses
//!   across the whole run (the queue is sized so `Busy` cannot fire);
//! - the distance-oracle cache earns a **hit rate above 50%** (a
//!   handful of machines, thousands of requests);
//! - the server's own counters agree with the client-side tallies.
//!
//! Results land in `BENCH_serve.json`: throughput (requests/s) and
//! client-observed p50/p99 latency, plus the server's final counters.
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_serve
//!       [--requests N] [--clients N] [--workers N] [--threads N]`

use serde::Serialize;
use std::thread;
use std::time::Instant;
use topomap_bench::{f2, print_table};
use topomap_core::Parallelism;
use topomap_lb::LbDatabase;
use topomap_serve::client::Client;
use topomap_serve::proto::{MapRequest, Response, ServerStats};
use topomap_serve::server::{spawn_ephemeral, ServeConfig};
use topomap_serve::specs::{
    hier_mapper_from_plan, parse_hier_plan, parse_mapper, parse_pattern, parse_topology,
};

/// One request shape in the mixed workload.
#[derive(Clone, Serialize)]
struct Scenario {
    topology: &'static str,
    mapper: &'static str,
    hierarchy: Option<&'static str>,
    pattern: &'static str,
    seed: u64,
}

/// Eight mixed shapes over five distinct machines: enough machine
/// variety to exercise eviction-free reuse, enough repetition that the
/// oracle cache must pay for itself.
const SCENARIOS: &[Scenario] = &[
    Scenario {
        topology: "torus:8x8",
        mapper: "topolb",
        hierarchy: None,
        pattern: "stencil2d:8x8",
        seed: 1,
    },
    Scenario {
        topology: "torus:8x8",
        mapper: "refine",
        hierarchy: None,
        pattern: "pstencil2d:8x8",
        seed: 2,
    },
    Scenario {
        topology: "mesh:10x10",
        mapper: "topocentlb",
        hierarchy: None,
        pattern: "random:100:4",
        seed: 3,
    },
    Scenario {
        topology: "hypercube:5",
        mapper: "topolb",
        hierarchy: None,
        pattern: "all2all:32",
        seed: 4,
    },
    Scenario {
        topology: "torus:8x8",
        mapper: "hier",
        hierarchy: Some("4:4:4"),
        pattern: "butterfly:64",
        seed: 5,
    },
    Scenario {
        topology: "fattree:4:3",
        mapper: "topocentlb",
        hierarchy: None,
        pattern: "transpose:8",
        seed: 6,
    },
    Scenario {
        topology: "torus:4x4x4",
        mapper: "topolb-first",
        hierarchy: None,
        pattern: "stencil3d:4x4x4",
        seed: 7,
    },
    Scenario {
        topology: "mesh:10x10",
        mapper: "linear",
        hierarchy: None,
        pattern: "sweep2d:10x10",
        seed: 8,
    },
];

fn database_for(s: &Scenario) -> LbDatabase {
    let g = parse_pattern(s.pattern, 1024.0, s.seed).unwrap();
    LbDatabase::from_task_graph(&g)
}

fn request_for(s: &Scenario, id: u64) -> MapRequest {
    MapRequest {
        id,
        topology: s.topology.to_string(),
        mapper: s.mapper.to_string(),
        init: None,
        fast_lane: None,
        hierarchy: s.hierarchy.map(str::to_string),
        hier_dist: None,
        seed: s.seed,
        deadline_ms: Some(60_000),
        database: database_for(s),
    }
}

/// Ground truth: the same specs run directly, in-process, serially.
fn direct_mapping(s: &Scenario) -> Vec<usize> {
    let par = Parallelism::serial();
    let parsed = parse_topology(s.topology).unwrap();
    let topo = parsed.as_topology();
    let mapper: Box<dyn topomap_core::Mapper> = if s.mapper == "hier" {
        let plan = parse_hier_plan(s.topology, topo, s.hierarchy, None).unwrap();
        Box::new(hier_mapper_from_plan(&plan, par))
    } else {
        parse_mapper(s.mapper, s.seed, par).unwrap()
    };
    let tasks = database_for(s).to_task_graph();
    mapper.map(&tasks, topo).as_slice().to_vec()
}

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("{name} takes an integer"))
        })
        .unwrap_or(default)
}

#[derive(Serialize)]
struct StatsRecord {
    requests: u64,
    ok: u64,
    busy: u64,
    errors: u64,
    oracle_hits: u64,
    oracle_misses: u64,
    hier_hits: u64,
    hier_misses: u64,
    oracle_hit_rate: f64,
}

#[derive(Serialize)]
struct ServeBench {
    schema: u32,
    requests: usize,
    clients: usize,
    workers: usize,
    threads: usize,
    elapsed_s: f64,
    throughput_rps: f64,
    p50_us: u64,
    p99_us: u64,
    stats: StatsRecord,
    scenarios: Vec<Scenario>,
}

fn percentile(sorted_us: &[u64], p: f64) -> u64 {
    assert!(!sorted_us.is_empty());
    let idx = ((sorted_us.len() as f64 - 1.0) * p).round() as usize;
    sorted_us[idx]
}

fn main() {
    let requests = arg("--requests", 1200);
    let clients = arg("--clients", 8);
    let workers = arg("--workers", 4);
    let threads = arg("--threads", 1);
    assert!(clients >= 1 && workers >= 1 && requests >= clients);

    // Queue sized so full-burst admission never sheds: Busy here would
    // mean the gate is mis-sized, not that backpressure is broken
    // (server_e2e covers the shedding contract).
    let handle = spawn_ephemeral(ServeConfig {
        workers,
        queue_cap: clients * 4 + 64,
        par: Parallelism::fixed(threads),
        ..ServeConfig::default()
    })
    .expect("spawn server");
    let addr = handle.addr().to_string();
    println!(
        "exp_serve: {requests} requests / {clients} clients / {workers} workers / \
         {threads} mapper thread(s) against {addr}"
    );

    let expected: Vec<Vec<usize>> = SCENARIOS.iter().map(direct_mapping).collect();

    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let addr = addr.clone();
            let expected = expected.clone();
            let per_client = requests / clients + usize::from(c < requests % clients);
            thread::spawn(move || {
                let mut client = Client::connect_tcp(&addr).expect("connect");
                let mut latencies_us = Vec::with_capacity(per_client);
                let mut ok = 0u64;
                for i in 0..per_client {
                    // Round-robin offset by client index: every client
                    // cycles through all shapes, out of phase with its
                    // neighbours.
                    let s_idx = (c + i) % SCENARIOS.len();
                    let id = (c * 1_000_000 + i) as u64;
                    let req = request_for(&SCENARIOS[s_idx], id);
                    let start = Instant::now();
                    let resp = client.map(req).expect("protocol error");
                    latencies_us.push(start.elapsed().as_micros() as u64);
                    match resp {
                        Response::MapOk {
                            id: rid,
                            proc_of_task,
                            ..
                        } => {
                            assert_eq!(rid, id, "response id mismatch");
                            assert_eq!(
                                proc_of_task, expected[s_idx],
                                "served mapping diverged from direct run \
                                 (scenario {s_idx}, client {c}, request {i})"
                            );
                            ok += 1;
                        }
                        other => panic!("client {c} request {i}: unexpected {other:?}"),
                    }
                }
                (ok, latencies_us)
            })
        })
        .collect();

    let mut total_ok = 0u64;
    let mut latencies_us: Vec<u64> = Vec::with_capacity(requests);
    for h in handles {
        let (ok, lat) = h.join().expect("client thread panicked");
        total_ok += ok;
        latencies_us.extend(lat);
    }
    let elapsed = t0.elapsed().as_secs_f64();

    let mut admin = Client::connect_tcp(&addr).expect("connect admin");
    let stats: ServerStats = admin.stats().expect("stats");
    admin.shutdown().expect("shutdown");
    let final_stats = handle.join();

    latencies_us.sort_unstable();
    let p50 = percentile(&latencies_us, 0.50);
    let p99 = percentile(&latencies_us, 0.99);
    let throughput = requests as f64 / elapsed;
    let hit_rate = final_stats.oracle_hit_rate();

    print_table(
        &format!("Mapping service under load ({clients} clients, {workers} workers)"),
        &["metric", "value"],
        &[
            vec!["requests".into(), format!("{requests}")],
            vec!["elapsed".into(), format!("{:.2} s", elapsed)],
            vec!["throughput".into(), format!("{:.0} req/s", throughput)],
            vec!["p50 latency".into(), format!("{p50} us")],
            vec!["p99 latency".into(), format!("{p99} us")],
            vec![
                "oracle cache".into(),
                format!(
                    "{} hit / {} miss ({})",
                    final_stats.oracle_hits,
                    final_stats.oracle_misses,
                    f2(hit_rate)
                ),
            ],
            vec![
                "hier cache".into(),
                format!(
                    "{} hit / {} miss",
                    final_stats.hier_hits, final_stats.hier_misses
                ),
            ],
        ],
    );

    let bench = ServeBench {
        schema: 1,
        requests,
        clients,
        workers,
        threads,
        elapsed_s: elapsed,
        throughput_rps: throughput,
        p50_us: p50,
        p99_us: p99,
        stats: StatsRecord {
            requests: final_stats.requests,
            ok: final_stats.ok,
            busy: final_stats.busy,
            errors: final_stats.errors,
            oracle_hits: final_stats.oracle_hits,
            oracle_misses: final_stats.oracle_misses,
            hier_hits: final_stats.hier_hits,
            hier_misses: final_stats.hier_misses,
            oracle_hit_rate: hit_rate,
        },
        scenarios: SCENARIOS.to_vec(),
    };
    std::fs::write(
        "BENCH_serve.json",
        serde_json::to_string_pretty(&bench).expect("serialize BENCH_serve"),
    )
    .unwrap_or_else(|e| panic!("write BENCH_serve.json: {e}"));

    // The gate. Bit-identity already asserted per response above.
    assert_eq!(
        total_ok, requests as u64,
        "not every request came back MapOk"
    );
    assert_eq!(stats.requests, requests as u64, "server miscounted");
    assert_eq!(final_stats.ok, requests as u64);
    assert_eq!(final_stats.errors, 0, "structured errors under clean load");
    assert_eq!(final_stats.busy, 0, "Busy despite a generously sized queue");
    assert!(
        hit_rate > 0.5,
        "oracle cache hit rate {hit_rate:.2} <= 0.5 over {requests} requests"
    );
    assert!(
        final_stats.hier_hits > 0,
        "hierarchy-plan cache never hit despite repeated hier requests"
    );
    println!("\nMapping service gate PASSED (BENCH_serve.json).");
}
