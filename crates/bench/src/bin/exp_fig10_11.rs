//! Figures 10–11: time for 4000 iterations of the 2D Jacobi benchmark on
//! BlueGene configured as a 3D-torus (Fig. 10) and 3D-mesh (Fig. 11),
//! with 100KB messages, for TopoLB / TopoCentLB / Random.
//!
//! **Substitution**: the paper ran on BlueGene hardware; we drive the same
//! benchmark through the packet simulator with BG/L-like constants
//! (`topomap_netsim::bluegene`). Expected shape: both topology-aware
//! mappers well below random; mesh times above torus times, with random
//! placement hurt the most by losing the wraparound links (§5.4).
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_fig10_11 [--full]`

use topomap_bench::{f2, full_mode, print_table};
use topomap_core::{Mapper, Mapping, RandomMap, TopoCentLb, TopoLb};
use topomap_netsim::{bluegene, trace, SimStats, Simulation};
use topomap_taskgraph::{gen, TaskGraph};
use topomap_topology::{torus::balanced_factors_2, Topology, Torus};

fn run_machine(topo: &Torus, tasks: &TaskGraph, iterations: usize) -> (SimStats, SimStats, f64) {
    let cfg = bluegene::bluegene_config();
    let tr = trace::stencil_trace(tasks, iterations, 50_000);
    let run = |m: &Mapping| Simulation::run(topo, &cfg, &tr, m);
    // Random placement averaged over seeds (one draw is noisy: a single
    // unlucky hot link can dominate the completion time).
    let rnd_avg_ns = (0..3)
        .map(|s| run(&RandomMap::new(s).map(tasks, topo)).completion_ns as f64)
        .sum::<f64>()
        / 3.0;
    (
        run(&TopoLb::default().map(tasks, topo)),
        run(&TopoCentLb.map(tasks, topo)),
        rnd_avg_ns,
    )
}

fn main() {
    let iterations = if full_mode() { 4000 } else { 400 };
    let ps: Vec<usize> = if full_mode() {
        vec![64, 128, 256, 512, 729]
    } else {
        vec![64, 128, 256, 512]
    };
    let msg_bytes = 100.0 * 1024.0;

    for torus in [true, false] {
        let mut rows = Vec::new();
        for &p in &ps {
            let (mx, my) = balanced_factors_2(p);
            let tasks = gen::stencil2d(mx, my, 2.0 * msg_bytes, false);
            let topo = bluegene::bluegene_machine(p, torus);
            assert_eq!(topo.num_nodes(), p);
            let (lb, cent, rnd_ns) = run_machine(&topo, &tasks, iterations);
            rows.push(vec![
                p.to_string(),
                f2(lb.completion_s()),
                f2(cent.completion_s()),
                f2(rnd_ns / 1e9),
                f2(rnd_ns / lb.completion_ns as f64),
            ]);
            eprintln!(
                "[fig{}] p = {p} done ({})",
                if torus { 10 } else { 11 },
                topo.name()
            );
        }
        let (fig, net) = if torus {
            (10, "3D-Torus")
        } else {
            (11, "3D-Mesh")
        };
        print_table(
            &format!(
                "Figure {fig}: time for {iterations} iterations of 2D-Jacobi (100KB msgs) on BlueGene {net} (s)"
            ),
            &["p", "TopoLB", "TopoCentLB", "Random", "Random/TopoLB"],
            &rows,
        );
    }
}
