//! Run every experiment in sequence (Table 1 and Figures 1–11 plus the
//! ablations), forwarding `--full` to each.
//!
//! Run: `cargo run -p topomap-bench --release --bin run_all [--full]`

use std::process::Command;

const EXPERIMENTS: &[&str] = &[
    "exp_table1",
    "exp_fig1_2",
    "exp_fig3_4",
    "exp_fig5_6",
    "exp_fig7_8",
    "exp_fig9",
    "exp_fig10_11",
    "exp_ablation",
    "exp_physopt",
    "exp_routing",
    "exp_profile",
    "exp_scaling",
    "exp_hier",
    "exp_geom",
    "exp_serve",
    "exp_contention",
];

fn main() {
    let forward: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("own path");
    let bindir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n######## {name} ########");
        let status = Command::new(bindir.join(name))
            .args(&forward)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(*name);
        }
    }
    if failures.is_empty() {
        println!("\nAll {} experiments completed.", EXPERIMENTS.len());
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
