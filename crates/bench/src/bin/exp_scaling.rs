//! Scaling smoke gate for the incremental-gain kernels: map a
//! 4096-processor torus and hold it to a host-relative wall-clock
//! budget, with a profiled run as evidence that the gain-scan phase no
//! longer dominates.
//!
//! The budget is anchored to hardware the run actually measures, not to
//! stored numbers: the dense naive oracle ([`NaiveTopoLb`]) mapping the
//! 576-node case is this host's unit of "pre-optimization work". The
//! incremental kernel must map the 7.1x-larger 4096-node machine within
//! 3x that unit. At the seed the production kernel itself took the
//! oracle's ballpark on 576 nodes (~27.5 ms, `BENCH_par_vs_serial.json`
//! TopoLB/576), and a kernel that slid back onto the quadratic cliff
//! would pay ~50x the unit at 4096 — the gate fails loudly long before
//! that.
//!
//! Checks (all fatal, so CI runs this binary as a gate):
//! - incremental 4096-node map <= 3x the naive 576-node map;
//! - in the profiled 4096 run, selection (the per-step gain scan over
//!   the frontier) costs less than the delta update itself
//!   (`topolb.select_ns < topolb.assign_ns`) — the gain scan is off the
//!   critical path. The report is stamped as
//!   `PROFILE_scaling_4096.json` next to the other baselines.
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_scaling`

use std::time::Instant;
use topomap_bench::{fmt_time_ns, print_table};
use topomap_core::naive::NaiveTopoLb;
use topomap_core::{obs, EstimationOrder, HierMapper, Mapper, TopoLb};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

/// Best-of-3 wall-clock of one mapper run (single-shot timings on a
/// shared host drift by 2x; the floor is the stable statistic).
fn best_of_3(f: impl Fn() -> usize) -> (f64, usize) {
    let mut best = f64::INFINITY;
    let mut witness = 0;
    for _ in 0..3 {
        let t0 = Instant::now();
        witness = f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    (best, witness)
}

fn main() {
    let lb = TopoLb::new(EstimationOrder::Second);
    let mut rows = Vec::new();
    let mut wall = Vec::new();
    for side in [24usize, 32, 64] {
        let tasks = gen::stencil2d(side, side, 1024.0, true);
        let topo = Torus::torus_2d(side, side);
        let (secs, m0) = best_of_3(|| lb.map(&tasks, &topo).proc_of(0));
        wall.push(secs);
        rows.push(vec![
            format!("{}", side * side),
            "TopoLB (incremental)".into(),
            format!("{:.3} ms", secs * 1e3),
            format!("{m0}"),
        ]);
    }
    let (t576, t4096) = (wall[0], wall[2]);

    // The host-relative work unit: the pre-optimization oracle on the
    // 576-node case. (At 4096 nodes it would take minutes.)
    let tasks = gen::stencil2d(24, 24, 1024.0, true);
    let topo = Torus::torus_2d(24, 24);
    let naive = NaiveTopoLb::default();
    let (unit, m0) = best_of_3(|| naive.map(&tasks, &topo).proc_of(0));
    rows.push(vec![
        "576".into(),
        "NaiveTopoLB (oracle)".into(),
        format!("{:.3} ms", unit * 1e3),
        format!("{m0}"),
    ]);

    // The hierarchical mapper must beat the flat kernel it decomposes
    // on the same 4096-node case — it rides the same smoke gate.
    let tasks = gen::stencil2d(64, 64, 1024.0, true);
    let topo = Torus::torus_2d(64, 64);
    let hier = HierMapper::for_torus(&topo).expect("square torus factors");
    let (t_hier, m0) = best_of_3(|| hier.map(&tasks, &topo).proc_of(0));
    rows.push(vec![
        "4096".into(),
        "HierMapper".into(),
        format!("{:.3} ms", t_hier * 1e3),
        format!("{m0}"),
    ]);

    // Profiled 4096 run: where does the time go now?
    let tasks = gen::stencil2d(64, 64, 1024.0, true);
    let topo = Torus::torus_2d(64, 64);
    obs::start();
    let m = lb.map(&tasks, &topo);
    let report = obs::finish();
    drop(m);
    let select_ns = report.counter("topolb.select_ns").unwrap_or(0);
    let assign_ns = report.counter("topolb.assign_ns").unwrap_or(0);
    std::fs::write("PROFILE_scaling_4096.json", report.to_json())
        .unwrap_or_else(|e| panic!("write PROFILE_scaling_4096.json: {e}"));

    print_table(
        "Scaling smoke (2D periodic stencil on matching 2D torus)",
        &["p", "kernel", "wall (best of 3)", "m0"],
        &rows,
    );
    println!(
        "\n4096/576 incremental wall ratio: {:.2}x; 4096 vs naive-576 unit: \
         {:.2}x (budget 3x)",
        t4096 / t576,
        t4096 / unit,
    );
    println!(
        "profiled 4096 run: select {} vs assign {} -> gain scan {}dominant \
         (PROFILE_scaling_4096.json)",
        fmt_time_ns(select_ns),
        fmt_time_ns(assign_ns),
        if select_ns < assign_ns { "non-" } else { "" },
    );

    assert!(
        t4096 <= 3.0 * unit,
        "4096-node map blew the smoke budget: {:.1} ms > 3 x {:.1} ms \
         (naive 576-node unit)",
        t4096 * 1e3,
        unit * 1e3
    );
    assert!(
        t_hier <= t4096,
        "HierMapper slower than the flat kernel it decomposes at 4096: \
         {:.1} ms > {:.1} ms",
        t_hier * 1e3,
        t4096 * 1e3
    );
    assert!(
        select_ns < assign_ns,
        "gain scan still dominates: select {select_ns} ns >= assign {assign_ns} ns"
    );
    assert!(
        report.find_span("topolb.map").is_some() && report.find_span("topolb.place").is_some(),
        "profile lost its span tree"
    );
    println!("\nScaling smoke PASSED.");
}
