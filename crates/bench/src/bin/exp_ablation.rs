//! Ablation studies on the design choices DESIGN.md calls out:
//!
//! 1. **Estimation order** (§4.3/4.4): solution quality and wall time of
//!    first- vs second- vs third-order TopoLB. The paper chooses second
//!    order on scaling grounds; this quantifies what third order buys.
//! 2. **Refinement passes**: hop-byte improvement per RefineTopoLB pass.
//! 3. **Phase-1 partitioner**: final hops-per-byte of the full pipeline
//!    with Random / GreedyLoad / MultilevelKWay partitioning (why a
//!    cut-reducing partitioner "must be preferred", §4).
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_ablation [--full]`

use std::time::Instant;
use topomap_bench::{f2, f3, full_mode, print_table};
use topomap_core::{
    metrics, pipeline::two_phase, refine::refine_mapping, EstimationOrder, Mapper, RandomMap,
    TopoLb,
};
use topomap_partition::{GreedyLoad, MultilevelKWay, Partitioner, RandomPartition};
use topomap_taskgraph::gen;
use topomap_topology::{Topology, Torus};

fn ablation_estimation_order(full: bool) {
    let sides: &[usize] = if full { &[8, 12, 16, 20] } else { &[8, 12, 16] };
    let mut rows = Vec::new();
    for &side in sides {
        let p = side * side;
        let tasks = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);
        let mut cells = vec![p.to_string()];
        for order in [
            EstimationOrder::First,
            EstimationOrder::Second,
            EstimationOrder::Third,
        ] {
            let t0 = Instant::now();
            let m = TopoLb::new(order).map(&tasks, &topo);
            let dt = t0.elapsed().as_secs_f64() * 1e3;
            let hpb = metrics::hops_per_byte(&tasks, &topo, &m);
            cells.push(format!("{} ({:.1}ms)", f3(hpb), dt));
        }
        rows.push(cells);
    }
    print_table(
        "Ablation 1: estimation order — hops-per-byte (runtime)",
        &["p", "first-order", "second-order", "third-order"],
        &rows,
    );
}

fn ablation_refine_passes() {
    let tasks = gen::leanmd(64, &gen::LeanMdConfig::default());
    let topo = Torus::torus_2d(8, 8);
    let part = MultilevelKWay::default().partition(&tasks, 64);
    let groups = part.coalesce(&tasks);
    let mut m = TopoLb::default().map(&groups, &topo);
    let mut rows = vec![vec![
        "0".to_string(),
        f3(metrics::hops_per_byte(&groups, &topo, &m)),
        "0".to_string(),
    ]];
    for pass in 1..=6 {
        let swaps = refine_mapping(&groups, &topo, &mut m, 1);
        rows.push(vec![
            pass.to_string(),
            f3(metrics::hops_per_byte(&groups, &topo, &m)),
            swaps.to_string(),
        ]);
        if swaps == 0 {
            break;
        }
    }
    print_table(
        "Ablation 2: RefineTopoLB passes after TopoLB (LeanMD p=64, 2D-torus)",
        &["pass", "hops-per-byte", "accepted swaps"],
        &rows,
    );
}

fn ablation_partitioner() {
    let tasks = gen::leanmd(64, &gen::LeanMdConfig::default());
    let topo = Torus::torus_2d(8, 8);
    let mut rows = Vec::new();
    let partitioners: Vec<(&str, Box<dyn Partitioner>)> = vec![
        ("Random", Box::new(RandomPartition::new(5))),
        ("GreedyLoad", Box::new(GreedyLoad)),
        ("MultilevelKWay", Box::new(MultilevelKWay::default())),
    ];
    for (name, part) in partitioners {
        let r = two_phase(&tasks, &topo, part.as_ref(), &TopoLb::default());
        let rnd = two_phase(&tasks, &topo, part.as_ref(), &RandomMap::new(3));
        rows.push(vec![
            name.to_string(),
            f2(r.partition.edge_cut(&tasks) / 1e6),
            f2(r.partition.imbalance_for(&tasks)),
            f3(r.hops_per_byte(&topo)),
            f3(rnd.hops_per_byte(&topo)),
        ]);
    }
    print_table(
        "Ablation 3: phase-1 partitioner (LeanMD p=64, 2D-torus)",
        &[
            "partitioner",
            "cut (MB)",
            "imbalance",
            "hpb w/ TopoLB",
            "hpb w/ Random",
        ],
        &rows,
    );
}

fn ablation_topology_family() {
    // How much topology-awareness matters per network family: the paper's
    // §1 argument that fat-tree/hypercube machines need it less.
    let tasks = gen::stencil2d(8, 8, 1024.0, false);
    let mut rows = Vec::new();
    let topos: Vec<Box<dyn Topology>> = vec![
        Box::new(Torus::torus_2d(8, 8)),
        Box::new(Torus::mesh_2d(8, 8)),
        Box::new(Torus::torus_3d(4, 4, 4)),
        Box::new(topomap_topology::Hypercube::new(6)),
        Box::new(topomap_topology::FatTree::new(4, 3)),
    ];
    for topo in &topos {
        let lb = metrics::hops_per_byte(&tasks, topo, &TopoLb::default().map(&tasks, topo));
        let rnd: f64 = (0..3)
            .map(|s| metrics::hops_per_byte(&tasks, topo, &RandomMap::new(s).map(&tasks, topo)))
            .sum::<f64>()
            / 3.0;
        rows.push(vec![topo.name(), f3(lb), f2(rnd), f2(rnd / lb)]);
    }
    print_table(
        "Ablation 4: gain of topology-aware mapping per network family (8x8 stencil)",
        &["topology", "TopoLB hpb", "Random hpb", "Random/TopoLB"],
        &rows,
    );
}

fn ablation_hierarchical(full: bool) {
    // The paper's §6 future-work direction: semi-distributed two-level
    // mapping. Quality premium and runtime saving vs flat TopoLB.
    use topomap_core::HierMapper;
    let sides: &[usize] = if full { &[8, 16, 24, 32] } else { &[8, 16, 24] };
    let mut rows = Vec::new();
    for &side in sides {
        let p = side * side;
        let tasks = gen::stencil2d(side, side, 1024.0, false);
        let machine = Torus::torus_2d(side, side);
        let t0 = Instant::now();
        let flat = TopoLb::default().map(&tasks, &machine);
        let t_flat = t0.elapsed().as_secs_f64() * 1e3;
        let hier_mapper = HierMapper::for_torus(&machine).expect("factorable torus");
        let t0 = Instant::now();
        let hier = hier_mapper.map(&tasks, &machine);
        let t_hier = t0.elapsed().as_secs_f64() * 1e3;
        rows.push(vec![
            p.to_string(),
            format!(
                "{} ({:.1}ms)",
                f3(metrics::hops_per_byte(&tasks, &machine, &flat)),
                t_flat
            ),
            format!(
                "{} ({:.1}ms)",
                f3(metrics::hops_per_byte(&tasks, &machine, &hier)),
                t_hier
            ),
        ]);
    }
    print_table(
        "Ablation 5: flat TopoLB vs hierarchical multisection mapping — hpb (runtime)",
        &["p", "TopoLB", "HierMapper"],
        &rows,
    );
}

fn main() {
    let full = full_mode();
    ablation_estimation_order(full);
    ablation_refine_passes();
    ablation_partitioner();
    ablation_topology_family();
    ablation_hierarchical(full);
}
