//! Geometric fast-path gate: the near-linear SFC (Hilbert / Morton) and
//! RCB mappers against the quadratic incremental TopoLB kernel and the
//! hierarchical mapper, plus the warm-start claim.
//!
//! The claims under test:
//! - **Speed**: at 4096 processors SFC and RCB each finish in at most
//!   **one tenth** of TopoLB's wall-clock (best-of-3 both sides) — they
//!   are O(n log n) against TopoLB's O(n·p).
//! - **Quality**: their hop-bytes stay within **1.5x** of TopoLB at 1024
//!   and 4096 on stencils, and the simulated stencil completion time at
//!   1024 stays within 1.2x.
//! - **Warm start**: seeding the refinement loop with the SFC mapping
//!   (`--init sfc`) reaches same-or-better hop-bytes than refining the
//!   TopoLB mapping, with no more accepted exchanges.
//! - **Scale smoke**: both mappers handle 16384 processors, SFC keeping
//!   the matching-stencil embedding at identity quality (hpb = 1).
//! - **Coordinate-free workloads**: on the coalesced LeanMD group graph
//!   (no geometry — the BFS-layering fallback synthesizes it) both
//!   geometric mappers still beat random placement.
//!
//! Results land in `BENCH_geom.json` (one serde-serialized document).
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_geom [--threads N]`

use serde::Serialize;
use std::time::Instant;
use topomap_bench::{f3, print_table};
use topomap_core::metrics::hops_per_byte;
use topomap_core::pipeline::two_phase;
use topomap_core::refine::refine_mapping_with;
use topomap_core::{obs, Curve, Mapper, Mapping, Parallelism, RandomMap, RcbMap, SfcMap, TopoLb};
use topomap_netsim::{trace, NetworkConfig, Simulation};
use topomap_partition::MultilevelKWay;
use topomap_taskgraph::{gen, TaskGraph};
use topomap_topology::{Topology, Torus};

/// Best-of-3 wall-clock of one mapper run (single-shot timings on a
/// shared host drift by 2x; the floor is the stable statistic).
fn best_of_3(f: impl Fn() -> Mapping) -> (f64, Mapping) {
    let mut best = f64::INFINITY;
    let mut m = f();
    for _ in 0..3 {
        let t0 = Instant::now();
        let cand = f();
        let secs = t0.elapsed().as_secs_f64();
        if secs < best {
            best = secs;
            m = cand;
        }
    }
    (best, m)
}

#[derive(Serialize)]
struct MapperRecord {
    mapper: String,
    ms: f64,
    hpb: f64,
}

#[derive(Serialize)]
struct SizeRecord {
    p: usize,
    workload: String,
    topolb_ms: f64,
    topolb_hpb: f64,
    mappers: Vec<MapperRecord>,
}

#[derive(Serialize)]
struct WarmStart {
    workload: String,
    cold_ms: f64,
    cold_hpb: f64,
    cold_accepted: usize,
    cold_passes: u64,
    warm_ms: f64,
    warm_hpb: f64,
    warm_accepted: usize,
    warm_passes: u64,
}

#[derive(Serialize)]
struct NetsimRecord {
    mapper: String,
    completion_ms: f64,
}

#[derive(Serialize)]
struct LeanMdRecord {
    mapper: String,
    hpb: f64,
}

#[derive(Serialize)]
struct SmokeRecord {
    mapper: String,
    ms: f64,
    hpb: f64,
}

#[derive(Serialize)]
struct GeomBench {
    schema: u32,
    threads: usize,
    sizes: Vec<SizeRecord>,
    warm_start: WarmStart,
    netsim_1024: Vec<NetsimRecord>,
    leanmd_1024: Vec<LeanMdRecord>,
    smoke_16384: Vec<SmokeRecord>,
}

fn threads_arg() -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--threads takes an integer"))
        .unwrap_or(1)
}

fn geometric_mappers(par: Parallelism) -> Vec<Box<dyn Mapper>> {
    vec![
        Box::new(SfcMap::with_parallelism(Curve::Hilbert, par)),
        Box::new(SfcMap::with_parallelism(Curve::Morton, par)),
        Box::new(RcbMap::with_parallelism(par)),
    ]
}

fn size_record(
    p: usize,
    workload: &str,
    tasks: &TaskGraph,
    topo: &dyn Topology,
    par: Parallelism,
    rows: &mut Vec<Vec<String>>,
) -> SizeRecord {
    let flat = TopoLb::with_parallelism(topomap_core::EstimationOrder::Second, par);
    let (flat_secs, flat_m) = best_of_3(|| flat.map(tasks, topo));
    let flat_hpb = hops_per_byte(tasks, topo, &flat_m);

    let mut mappers = Vec::new();
    for mapper in geometric_mappers(par) {
        let (secs, m) = best_of_3(|| mapper.map(tasks, topo));
        let hpb = hops_per_byte(tasks, topo, &m);
        rows.push(vec![
            format!("{p}"),
            workload.to_string(),
            mapper.name(),
            format!("{:.3} ms", secs * 1e3),
            format!("{:.1}x", flat_secs / secs),
            f3(hpb),
            f3(hpb / flat_hpb),
        ]);
        mappers.push(MapperRecord {
            mapper: mapper.name(),
            ms: secs * 1e3,
            hpb,
        });
    }
    SizeRecord {
        p,
        workload: workload.to_string(),
        topolb_ms: flat_secs * 1e3,
        topolb_hpb: flat_hpb,
        mappers,
    }
}

fn main() {
    let threads = threads_arg();
    let par = Parallelism::fixed(threads);
    let mut rows = Vec::new();
    let mut sizes = Vec::new();

    // Gate sizes: 1024 (2-D stencil) and 4096 (3-D stencil).
    let (tasks_1024, topo_1024) = (
        gen::stencil2d(32, 32, 1024.0, false),
        Torus::torus_2d(32, 32),
    );
    sizes.push(size_record(
        1024,
        "stencil2d:32x32",
        &tasks_1024,
        &topo_1024,
        par,
        &mut rows,
    ));
    let (tasks_4096, topo_4096) = (
        gen::stencil3d(16, 16, 16, 1024.0, false),
        Torus::torus_3d(16, 16, 16),
    );
    sizes.push(size_record(
        4096,
        "stencil3d:16x16x16",
        &tasks_4096,
        &topo_4096,
        par,
        &mut rows,
    ));

    print_table(
        &format!("Geometric fast path vs TopoLB ({threads} thread(s))"),
        &[
            "p",
            "workload",
            "mapper",
            "wall",
            "speedup",
            "hpb",
            "vs TopoLB",
        ],
        &rows,
    );

    // Warm start: the full cold pipeline (TopoLB seed + refinement, i.e.
    // RefineTopoLB) against the SFC seed + the same refinement budget.
    // On a coordinate-bearing workload the geometric seed must match the
    // cold pipeline's quality in no more refinement passes / accepted
    // exchanges, while skipping the quadratic seeding cost entirely.
    let warm_pipeline = |workload: &str, tasks: &TaskGraph, topo: &dyn Topology| {
        let seeded_refine = |seed: &dyn Mapper| {
            let run = || {
                let mut m = seed.map(tasks, topo);
                obs::start();
                let accepted = refine_mapping_with(tasks, topo, &mut m, 8, par);
                let passes = obs::finish().counter("refine.passes").unwrap_or(0);
                (m, accepted, passes)
            };
            let mut best_secs = f64::INFINITY;
            let mut best = run();
            for _ in 0..2 {
                let t0 = Instant::now();
                let cand = run();
                let secs = t0.elapsed().as_secs_f64();
                if secs < best_secs {
                    best_secs = secs;
                    best = cand;
                }
            }
            (best_secs, best)
        };
        let flat = TopoLb::with_parallelism(topomap_core::EstimationOrder::Second, par);
        let (cold_secs, (cold_m, cold_accepted, cold_passes)) = seeded_refine(&flat);
        let sfc = SfcMap::with_parallelism(Curve::Hilbert, par);
        let (warm_secs, (warm_m, warm_accepted, warm_passes)) = seeded_refine(&sfc);
        WarmStart {
            workload: workload.to_string(),
            cold_ms: cold_secs * 1e3,
            cold_hpb: hops_per_byte(tasks, topo, &cold_m),
            cold_accepted,
            cold_passes,
            warm_ms: warm_secs * 1e3,
            warm_hpb: hops_per_byte(tasks, topo, &warm_m),
            warm_accepted,
            warm_passes,
        }
    };
    let warm_start = warm_pipeline(
        "pstencil2d:32x32",
        &gen::stencil2d(32, 32, 1024.0, true),
        &topo_1024,
    );
    println!(
        "\nwarm start (1024): cold RefineTopoLB hpb {} in {} pass(es), {} accepts, {:.2} ms; \
         sfc-seeded hpb {} in {} pass(es), {} accepts, {:.2} ms",
        f3(warm_start.cold_hpb),
        warm_start.cold_passes,
        warm_start.cold_accepted,
        warm_start.cold_ms,
        f3(warm_start.warm_hpb),
        warm_start.warm_passes,
        warm_start.warm_accepted,
        warm_start.warm_ms,
    );

    // Simulated stencil completion at 1024: the geometry-aware mapping
    // must not slow the replayed program down materially.
    let tr = trace::stencil_trace(&tasks_1024, 5, 2_000);
    let cfg = NetworkConfig::default();
    let mut netsim_1024 = Vec::new();
    let topolb_m = TopoLb::with_parallelism(topomap_core::EstimationOrder::Second, par)
        .map(&tasks_1024, &topo_1024);
    let topolb_sim = Simulation::run(&topo_1024, &cfg, &tr, &topolb_m);
    netsim_1024.push(NetsimRecord {
        mapper: "TopoLB".to_string(),
        completion_ms: topolb_sim.completion_ns as f64 / 1e6,
    });
    for mapper in geometric_mappers(par) {
        let m = mapper.map(&tasks_1024, &topo_1024);
        let sim = Simulation::run(&topo_1024, &cfg, &tr, &m);
        netsim_1024.push(NetsimRecord {
            mapper: mapper.name(),
            completion_ms: sim.completion_ns as f64 / 1e6,
        });
    }
    for r in &netsim_1024 {
        println!(
            "netsim 1024: {:<14} completes in {:.3} ms",
            r.mapper, r.completion_ms
        );
    }

    // Coordinate-free LeanMD: coalesce 3240 + p chares to p groups with
    // the multilevel partitioner, then map the (geometry-less) group
    // graph. The BFS-layering fallback must still beat random placement.
    let leanmd_1024 = {
        let p = 1024;
        let topo = Torus::torus_2d(32, 32);
        let tasks = gen::leanmd(p, &gen::LeanMdConfig::default());
        let base = two_phase(
            &tasks,
            &topo,
            &MultilevelKWay::default(),
            &RandomMap::new(17),
        );
        let groups = &base.group_graph;
        let mut recs = vec![
            LeanMdRecord {
                mapper: "Random".to_string(),
                hpb: hops_per_byte(groups, &topo, &RandomMap::new(17).map(groups, &topo)),
            },
            LeanMdRecord {
                mapper: "TopoLB".to_string(),
                hpb: hops_per_byte(groups, &topo, &TopoLb::default().map(groups, &topo)),
            },
        ];
        for mapper in geometric_mappers(par) {
            recs.push(LeanMdRecord {
                mapper: mapper.name(),
                hpb: hops_per_byte(groups, &topo, &mapper.map(groups, &topo)),
            });
        }
        recs
    };
    for r in &leanmd_1024 {
        println!("leanmd 1024:  {:<14} hpb {}", r.mapper, f3(r.hpb));
    }

    // 16384-processor smoke: near-linear really means these sizes are
    // routine. SFC keeps the matching stencil at identity quality.
    let (tasks, topo) = (
        gen::stencil2d(128, 128, 1024.0, false),
        Torus::torus_2d(128, 128),
    );
    let mut smoke_16384 = Vec::new();
    for mapper in geometric_mappers(par) {
        let (secs, m) = best_of_3(|| mapper.map(&tasks, &topo));
        smoke_16384.push(SmokeRecord {
            mapper: mapper.name(),
            ms: secs * 1e3,
            hpb: hops_per_byte(&tasks, &topo, &m),
        });
    }
    for r in &smoke_16384 {
        println!(
            "smoke 16384:  {:<14} {:.2} ms, hpb {}",
            r.mapper,
            r.ms,
            f3(r.hpb)
        );
    }

    let bench = GeomBench {
        schema: 1,
        threads,
        sizes,
        warm_start,
        netsim_1024,
        leanmd_1024,
        smoke_16384,
    };
    std::fs::write(
        "BENCH_geom.json",
        serde_json::to_string_pretty(&bench).expect("serialize BENCH_geom"),
    )
    .unwrap_or_else(|e| panic!("write BENCH_geom.json: {e}"));

    // ---- Gates (all fatal; CI runs this binary as a check) ----
    let r4096 = &bench.sizes[1];
    for m in &r4096.mappers {
        assert!(
            m.ms <= r4096.topolb_ms / 10.0,
            "{} lost the headline at 4096: {:.2} ms > TopoLB {:.2} ms / 10",
            m.mapper,
            m.ms,
            r4096.topolb_ms
        );
    }
    for r in &bench.sizes {
        for m in &r.mappers {
            assert!(
                m.hpb <= 1.5 * r.topolb_hpb,
                "{} hop-bytes off the rails at p={}: {:.3} > 1.5 x TopoLB {:.3}",
                m.mapper,
                r.p,
                m.hpb,
                r.topolb_hpb
            );
        }
    }
    let ws = &bench.warm_start;
    assert!(
        ws.warm_hpb <= ws.cold_hpb * (1.0 + 1e-9),
        "warm start lost quality: sfc-seeded {:.4} > cold {:.4}",
        ws.warm_hpb,
        ws.cold_hpb
    );
    assert!(
        ws.warm_passes <= ws.cold_passes && ws.warm_accepted <= ws.cold_accepted,
        "warm start converged slower: {} pass(es) / {} accepts vs cold {} / {}",
        ws.warm_passes,
        ws.warm_accepted,
        ws.cold_passes,
        ws.cold_accepted
    );
    // No end-to-end wall gate here: the shared refinement sweep dominates
    // both pipelines (the seeding speedup itself is gated per-size above),
    // so a wall comparison would only measure host noise.
    let sim_of = |name: &str| {
        bench
            .netsim_1024
            .iter()
            .find(|r| r.mapper.starts_with(name))
            .unwrap()
            .completion_ms
    };
    assert!(
        sim_of("SFC(Hilbert)") <= 1.2 * sim_of("TopoLB"),
        "simulated stencil slowed down under SFC: {:.3} ms > 1.2 x {:.3} ms",
        sim_of("SFC(Hilbert)"),
        sim_of("TopoLB")
    );
    let lm_of = |name: &str| {
        bench
            .leanmd_1024
            .iter()
            .find(|r| r.mapper.starts_with(name))
            .unwrap()
            .hpb
    };
    for m in ["SFC(Hilbert)", "SFC(Morton)", "RCB"] {
        assert!(
            lm_of(m) <= lm_of("Random"),
            "{m} fell behind random placement on LeanMD: {:.3} > {:.3}",
            lm_of(m),
            lm_of("Random")
        );
    }
    for r in &bench.smoke_16384 {
        let bound = if r.mapper.starts_with("SFC(Hilbert)") {
            1.0 + 1e-9
        } else {
            2.5
        };
        assert!(
            r.hpb <= bound,
            "{} smoke quality regressed at 16384: hpb {:.3} > {bound}",
            r.mapper,
            r.hpb
        );
    }
    println!("\nGeometric fast-path gate PASSED (BENCH_geom.json).");
}
