//! Figure 9: total completion time of 2000 iterations vs channel
//! bandwidth (same 2D-mesh-on-(4,4,4)-torus setup as Figures 7–8).
//!
//! Paper: "For smaller bandwidth, optimizations obtained by TopoLB and
//! TopoCentLB show a very large gain ... Total execution time under
//! random placement can be more than double the time required under
//! TopoLB. ... TopoLB outperforms TopoCentLB by about 10-25%."
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_fig9 [--full]`

use topomap_bench::{f2, full_mode, print_table};
use topomap_core::{Mapper, RandomMap, TopoCentLb, TopoLb};
use topomap_netsim::{config::NicModel, trace, NetworkConfig, Simulation};
use topomap_taskgraph::gen;
use topomap_topology::Torus;

fn main() {
    let iterations = if full_mode() { 2000 } else { 500 };
    let tasks = gen::stencil2d(8, 8, 2.0 * 2048.0, false);
    let topo = Torus::torus_3d(4, 4, 4);
    let tr = trace::stencil_trace(&tasks, iterations, 5_000);

    let random = RandomMap::new(1).map(&tasks, &topo);
    let cent = TopoCentLb.map(&tasks, &topo);
    let lb = TopoLb::default().map(&tasks, &topo);

    let mut rows = Vec::new();
    // Paper sweeps 50–500 MB/s in this figure.
    for bw_50mb in [1u32, 2, 4, 6, 8, 10] {
        let bw = bw_50mb as f64 * 50.0e6;
        let mut cfg = NetworkConfig::default().with_bandwidth(bw);
        cfg.nic = NicModel::PerLink; // BigNetSim-style router-centric model (see DESIGN.md)
        let s_rnd = Simulation::run(&topo, &cfg, &tr, &random);
        let s_cent = Simulation::run(&topo, &cfg, &tr, &cent);
        let s_lb = Simulation::run(&topo, &cfg, &tr, &lb);
        rows.push(vec![
            format!("{:.1}", bw / 100.0e6),
            f2(s_rnd.completion_ms()),
            f2(s_cent.completion_ms()),
            f2(s_lb.completion_ms()),
            f2(s_rnd.completion_ns as f64 / s_lb.completion_ns as f64),
            f2(100.0 * (s_cent.completion_ns as f64 / s_lb.completion_ns as f64 - 1.0)),
        ]);
        eprintln!("[fig9] {} MB/s done", bw / 1e6);
    }

    print_table(
        &format!("Figure 9: completion time of {iterations} iterations (ms)"),
        &[
            "BW (100s of MB/s)",
            "Random (GreedyLB)",
            "TopoCentLB",
            "TopoLB",
            "Random/TopoLB",
            "TopoCentLB vs TopoLB %",
        ],
        &rows,
    );
    println!(
        "\nNote: on the 64-node machine our TopoCentLB finds the same optimal\n\
         dilation-1 embedding as TopoLB (stronger than the paper's TopoCentLB),\n\
         so their curves coincide. The supplementary table below scales the\n\
         same experiment to 512 nodes, where the mappers separate and the\n\
         paper's TopoLB < TopoCentLB < Random ordering appears."
    );

    // Supplementary: 512-node machine, where TopoCentLB != TopoLB.
    let tasks = gen::stencil2d(16, 32, 2.0 * 2048.0, false);
    let topo = Torus::torus_3d(8, 8, 8);
    let sup_iters = iterations / 5;
    let tr = trace::stencil_trace(&tasks, sup_iters, 5_000);
    let random = RandomMap::new(1).map(&tasks, &topo);
    let cent = TopoCentLb.map(&tasks, &topo);
    let lb = TopoLb::default().map(&tasks, &topo);
    let mut rows = Vec::new();
    for bw_50mb in [1u32, 2, 4, 8] {
        let bw = bw_50mb as f64 * 50.0e6;
        let mut cfg = NetworkConfig::default().with_bandwidth(bw);
        cfg.nic = NicModel::PerLink;
        let s_rnd = Simulation::run(&topo, &cfg, &tr, &random);
        let s_cent = Simulation::run(&topo, &cfg, &tr, &cent);
        let s_lb = Simulation::run(&topo, &cfg, &tr, &lb);
        rows.push(vec![
            format!("{:.1}", bw / 100.0e6),
            f2(s_rnd.completion_ms()),
            f2(s_cent.completion_ms()),
            f2(s_lb.completion_ms()),
            f2(s_rnd.completion_ns as f64 / s_lb.completion_ns as f64),
            f2(100.0 * (s_cent.completion_ns as f64 / s_lb.completion_ns as f64 - 1.0)),
        ]);
        eprintln!("[fig9-sup] {} MB/s done", bw / 1e6);
    }
    print_table(
        &format!("Figure 9 (supplementary): 512-node 3D-torus, {sup_iters} iterations (ms)"),
        &[
            "BW (100s of MB/s)",
            "Random (GreedyLB)",
            "TopoCentLB",
            "TopoLB",
            "Random/TopoLB",
            "TopoCentLB vs TopoLB %",
        ],
        &rows,
    );
}
