//! Figures 3–4: 2D-mesh communication pattern mapped onto a 3D-torus.
//!
//! Figure 3: Random (with analytic `3·∛p/4`), TopoLB, TopoCentLB.
//! Figure 4 (zoom): at p = 64 the 8×8 mesh is a subgraph of the 4×4×4
//! torus, so TopoLB reaches the optimal hops-per-byte of 1; at larger p
//! the mesh is generally *not* a subgraph and the optimum exceeds 1;
//! TopoCentLB runs ≈10% above TopoLB.
//!
//! Run: `cargo run -p topomap-bench --release --bin exp_fig3_4 [--full]`

use topomap_bench::{f2, f3, full_mode, print_table};
use topomap_core::{metrics, Mapper, RandomMap, TopoCentLb, TopoLb};
use topomap_taskgraph::gen;
use topomap_topology::{stats, torus::balanced_factors_2, Torus};

fn main() {
    // Cubic processor counts so the 3D torus is regular; the 2D task mesh
    // takes the most balanced 2-factorization of p, as the benchmark
    // creates exactly p tasks.
    let mut cubes: Vec<usize> = vec![4, 6, 8, 10, 12];
    if full_mode() {
        cubes.push(16); // p = 4096
    }

    let mut rows = Vec::new();
    let mut zoom_rows = Vec::new();
    for side in cubes {
        let p = side * side * side;
        let (mx, my) = balanced_factors_2(p);
        let tasks = gen::stencil2d(mx, my, 1024.0, false);
        let topo = Torus::torus_3d(side, side, side);

        let seeds = 3;
        let rand_hpb: f64 = (0..seeds)
            .map(|s| metrics::hops_per_byte(&tasks, &topo, &RandomMap::new(s).map(&tasks, &topo)))
            .sum::<f64>()
            / seeds as f64;
        let analytic = stats::expected_random_hops_torus_3d(p);

        let cent = metrics::hops_per_byte(&tasks, &topo, &TopoCentLb.map(&tasks, &topo));
        let lb = metrics::hops_per_byte(&tasks, &topo, &TopoLb::default().map(&tasks, &topo));

        rows.push(vec![
            p.to_string(),
            format!("{mx}x{my}"),
            f2(rand_hpb),
            f2(analytic),
            f3(cent),
            f3(lb),
        ]);
        zoom_rows.push(vec![
            p.to_string(),
            f3(lb),
            f3(cent),
            f2(100.0 * (cent / lb - 1.0)),
        ]);
        eprintln!("[fig3] p = {p} done");
    }

    print_table(
        "Figure 3: 2D-mesh pattern on 3D-torus — average hops per byte",
        &[
            "p",
            "mesh",
            "Random",
            "E[hops]=3*cbrt(p)/4",
            "TopoCentLB",
            "TopoLB",
        ],
        &rows,
    );
    print_table(
        "Figure 4 (zoom): TopoLB vs TopoCentLB on 3D-torus",
        &["p", "TopoLB", "TopoCentLB", "TopoCentLB excess %"],
        &zoom_rows,
    );
    println!(
        "\nNote: at p = 64 the 8x8 mesh embeds in the (4,4,4) torus, so the\n\
         optimal hops-per-byte is exactly 1 (paper: TopoLB attains it)."
    );
}
