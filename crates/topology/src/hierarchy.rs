//! Explicit hardware hierarchy: `H = a1:a2:…:al` with per-level distances
//! `D = d1:d2:…:dl` (cores : nodes : racks : islands), in the style of
//! SharedMap's hierarchical process mapping.
//!
//! Level 1 is the innermost grouping (`a1` cores per node), level `l` the
//! outermost (`al` islands). Two distinct processors that first share a
//! container at level `i` are at distance `d_i`; requiring `D`
//! non-decreasing makes this an *ultrametric*, which is stronger than the
//! triangle inequality the mapping heuristics need.
//!
//! A [`Hierarchy`] can be built three ways:
//! - standalone ([`Hierarchy::new`] / [`Hierarchy::parse`]) with explicit
//!   or defaulted distances,
//! - exactly from a [`FatTree`] ([`Hierarchy::from_fattree`]) — the k-ary
//!   tree metric *is* an ultrametric, so the derivation loses nothing,
//! - from a [`Torus`]/mesh by factoring its dimensions into per-level
//!   blocks ([`Hierarchy::factor_torus`]), which also yields the processor
//!   permutation placing hierarchy positions onto machine nodes. Here the
//!   hierarchy distance is an upper bound on the true torus distance
//!   (tight at block corners), never an underestimate.
//!
//! The distance oracle is O(levels) per query and composes with
//! [`crate::cache::CachedTopology`] like every other metric.

use crate::dragonfly::Dragonfly;
use crate::fattree::FatTree;
use crate::torus::Torus;
use crate::{NodeId, Topology};

/// A rooted, uniformly branching hardware hierarchy with per-level hop
/// costs. Implements [`Topology`] over its `a1·a2·…·al` leaf processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    /// Branching factors, innermost first: `arities[0] = a1`.
    arities: Vec<usize>,
    /// `dists[i]` = distance between two processors whose lowest common
    /// container is at level `i + 1`. Non-decreasing.
    dists: Vec<u32>,
    /// `prefix[i]` = processors per level-`i+1` container = `a1·…·a(i+1)`.
    prefix: Vec<usize>,
    nodes: usize,
}

impl Hierarchy {
    /// Build a hierarchy, panicking on invalid shapes (see
    /// [`Hierarchy::try_new`] for the fallible form the CLI uses).
    pub fn new(arities: Vec<usize>, dists: Vec<u32>) -> Self {
        Self::try_new(arities, dists).unwrap_or_else(|e| panic!("invalid hierarchy: {e}"))
    }

    /// Build a hierarchy, reporting invalid shapes as errors: empty or
    /// zero levels, length mismatch between `H` and `D`, a zero distance
    /// on a branching level, decreasing distances, or overflow.
    pub fn try_new(arities: Vec<usize>, dists: Vec<u32>) -> Result<Self, String> {
        if arities.is_empty() {
            return Err("hierarchy must have at least one level".into());
        }
        if let Some(i) = arities.iter().position(|&a| a == 0) {
            return Err(format!(
                "hierarchy level {} has zero children (every level must be >= 1)",
                i + 1
            ));
        }
        if dists.len() != arities.len() {
            return Err(format!(
                "hierarchy has {} levels but {} distances",
                arities.len(),
                dists.len()
            ));
        }
        let mut prefix = Vec::with_capacity(arities.len());
        let mut nodes = 1usize;
        for (i, &a) in arities.iter().enumerate() {
            nodes = nodes.checked_mul(a).ok_or_else(|| {
                format!("hierarchy size overflows at level {} (arity {a})", i + 1)
            })?;
            prefix.push(nodes);
        }
        for i in 0..dists.len() {
            if dists[i] == 0 && arities[i] > 1 {
                return Err(format!(
                    "distance d{} is 0 on a branching level (distinct processors would be at distance 0)",
                    i + 1
                ));
            }
            if i > 0 && dists[i] < dists[i - 1] {
                return Err(format!(
                    "distances must be non-decreasing (d{} = {} < d{} = {})",
                    i + 1,
                    dists[i],
                    i,
                    dists[i - 1]
                ));
            }
        }
        Ok(Hierarchy {
            arities,
            dists,
            prefix,
            nodes,
        })
    }

    /// Parse `H` ("4:8:16") and optional `D` ("1:10:100"). When `D` is
    /// omitted, level distances default to powers of ten (`d_i = 10^(i-1)`
    /// — the SharedMap-style 1:10:100 cost ladder).
    pub fn parse(h: &str, d: Option<&str>) -> Result<Self, String> {
        let arities = Self::parse_arities(h)?;
        let dists = match d {
            Some(spec) => Self::parse_dists(spec)?,
            None => (0..arities.len() as u32)
                .map(|i| {
                    10u32
                        .checked_pow(i)
                        .ok_or_else(|| "too many hierarchy levels for default distances; pass an explicit distance sequence".to_string())
                })
                .collect::<Result<_, _>>()?,
        };
        Self::try_new(arities, dists)
    }

    /// Parse a colon-separated arity list like `4:8:16`. Every level must
    /// be a positive integer; empty segments (leading, trailing, or double
    /// colons) are rejected with a clear message.
    pub fn parse_arities(spec: &str) -> Result<Vec<usize>, String> {
        Self::parse_seq::<usize>(spec, "hierarchy")
    }

    /// Parse a colon-separated distance list like `1:10:100`.
    pub fn parse_dists(spec: &str) -> Result<Vec<u32>, String> {
        Self::parse_seq::<u32>(spec, "distance sequence")
    }

    fn parse_seq<T: std::str::FromStr>(spec: &str, what: &str) -> Result<Vec<T>, String> {
        if spec.trim().is_empty() {
            return Err(format!("{what} is empty (expected e.g. 4:8:16)"));
        }
        spec.split(':')
            .enumerate()
            .map(|(i, part)| {
                let part = part.trim();
                if part.is_empty() {
                    return Err(format!(
                        "{what} '{spec}' has an empty level at position {} (no leading/trailing/double colons)",
                        i + 1
                    ));
                }
                part.parse::<T>().map_err(|_| {
                    format!("{what} '{spec}': '{part}' is not a non-negative integer")
                })
            })
            .collect()
    }

    /// The exact hierarchy of a fat-tree: `levels` levels of branching
    /// `arity`, level `i` at distance `2i`. Identity processor layout —
    /// hierarchy position `q` *is* fat-tree leaf `q` — and the derived
    /// metric equals the fat-tree metric on every pair.
    pub fn from_fattree(ft: &FatTree) -> Self {
        let l = ft.levels() as usize;
        let arities = vec![ft.arity(); l];
        let dists = (1..=l as u32).map(|i| 2 * i).collect();
        Self::new(arities, dists)
    }

    /// The natural two-level hierarchy of a dragonfly: `a` routers per
    /// group at distance 1, `g` groups at the machine diameter. Identity
    /// processor layout (node `n` *is* hierarchy position `n`), and the
    /// result equals `identity_over(df, &[a, g])` exactly: the intra-group
    /// radius is 1 (clamped to the >= 1 floor even when `a == 1`), the
    /// outer level the diameter (0 or 1 degenerate cases clamp likewise).
    pub fn from_dragonfly(df: &Dragonfly) -> Self {
        let d1 = 1u32;
        let d2 = d1.max(df.diameter());
        Self::new(vec![df.routers(), df.groups()], vec![d1, d2])
    }

    /// Derive per-level distances for an identity layout over an arbitrary
    /// metric: `d_i` = the radius of the first level-`i` block as seen by
    /// `topo` (clamped non-decreasing). Exact for fat-trees; an
    /// approximation elsewhere. Errors if `H` does not cover the machine.
    pub fn identity_over(topo: &dyn Topology, arities: &[usize]) -> Result<Self, String> {
        let p: usize = arities.iter().try_fold(1usize, |acc, &a| {
            acc.checked_mul(a).ok_or("hierarchy size overflows usize")
        })?;
        if p != topo.num_nodes() {
            return Err(format!(
                "hierarchy covers {p} processors but the machine has {}",
                topo.num_nodes()
            ));
        }
        let mut dists = Vec::with_capacity(arities.len());
        let mut block = 1usize;
        let mut floor = 1u32;
        for &a in arities {
            block *= a;
            let radius = (0..block).map(|q| topo.distance(0, q)).max().unwrap_or(0);
            floor = floor.max(radius);
            dists.push(floor);
        }
        Self::try_new(arities.to_vec(), dists)
    }

    /// Factor a torus/mesh into hierarchy blocks: level `i` groups
    /// `arities[i]` level-`(i-1)` blocks into a larger sub-grid, with the
    /// per-level prime factors greedily assigned to the machine dimension
    /// with the most remaining headroom (so blocks stay near-cubic).
    ///
    /// Returns the hierarchy plus the processor layout `pe_order`, where
    /// `pe_order[q]` is the machine node at hierarchy position `q`
    /// (positions within one block are contiguous). The hierarchy distance
    /// between two positions is always >= the true torus distance between
    /// their machine nodes, with equality at block-corner pairs.
    ///
    /// Errors when the arities cannot be factored into the machine's
    /// dimensions (e.g. `3:...` on a power-of-two torus).
    pub fn factor_torus(t: &Torus, arities: &[usize]) -> Result<(Self, Vec<NodeId>), String> {
        let p: usize = arities.iter().try_fold(1usize, |acc, &a| {
            acc.checked_mul(a).ok_or("hierarchy size overflows usize")
        })?;
        if p != t.num_nodes() {
            return Err(format!(
                "hierarchy covers {p} processors but the machine {} has {}",
                t.name(),
                t.num_nodes()
            ));
        }
        if arities.contains(&0) {
            return Err("hierarchy level has zero children".into());
        }
        let dims = t.dims();
        let nd = dims.len();
        let mut block = vec![1usize; nd];
        let mut per_level_blocks = Vec::with_capacity(arities.len());
        let mut dists = Vec::with_capacity(arities.len());
        for (i, &a) in arities.iter().enumerate() {
            for f in prime_factors_desc(a) {
                // Place factor f on the dimension with the most remaining
                // headroom that it divides (ties -> lowest dimension).
                let d = (0..nd)
                    .filter(|&d| (dims[d] / block[d]).is_multiple_of(f))
                    .max_by_key(|&d| dims[d] / block[d])
                    .ok_or_else(|| {
                        format!(
                            "hierarchy level {} (arity {a}) does not factor into {}: \
                             factor {f} divides no remaining dimension",
                            i + 1,
                            t.name()
                        )
                    })?;
                block[d] *= f;
            }
            // Worst-case hops between two nodes of one level-i block: the
            // per-dimension span, using the wrap shortcut only once a
            // dimension is fully covered.
            let span: u32 = (0..nd)
                .map(|d| {
                    if block[d] == dims[d] && t.wrap()[d] {
                        (dims[d] / 2) as u32
                    } else {
                        (block[d] - 1) as u32
                    }
                })
                .sum();
            dists.push(span.max(1));
            per_level_blocks.push(block.clone());
        }
        // Hierarchy position order: sort machine nodes by their block path,
        // outermost block first, then raw id within the innermost block.
        let l = arities.len();
        let keys: Vec<Vec<usize>> = (0..p)
            .map(|node| {
                let c = t.coords(node);
                let mut key = Vec::with_capacity(l * nd + 1);
                for level in (0..l).rev() {
                    let b = &per_level_blocks[level];
                    for (d, &bd) in b.iter().enumerate() {
                        key.push(c.get(d) / bd);
                    }
                }
                key.push(node);
                key
            })
            .collect();
        let mut pe_order: Vec<NodeId> = (0..p).collect();
        pe_order.sort_unstable_by(|&x, &y| keys[x].cmp(&keys[y]));
        Ok((Self::try_new(arities.to_vec(), dists)?, pe_order))
    }

    /// Number of levels `l`.
    pub fn levels(&self) -> usize {
        self.arities.len()
    }

    /// Branching factors, innermost first.
    pub fn arities(&self) -> &[usize] {
        &self.arities
    }

    /// Per-level distances, innermost first.
    pub fn dists(&self) -> &[u32] {
        &self.dists
    }

    /// Processors per level-`i` container (0-based level index:
    /// `block(0) = a1`).
    pub fn block(&self, level: usize) -> usize {
        self.prefix[level]
    }

    /// The `H` spec string, e.g. `"4:8:16"`.
    pub fn shape_spec(&self) -> String {
        join_seq(&self.arities)
    }

    /// The `D` spec string, e.g. `"1:10:100"`.
    pub fn dist_spec(&self) -> String {
        join_seq(&self.dists)
    }
}

fn join_seq<T: std::fmt::Display>(xs: &[T]) -> String {
    xs.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(":")
}

/// Prime factorization by trial division, largest factors first (so the
/// greedy dimension packing places the coarse splits before the fine ones).
fn prime_factors_desc(mut n: usize) -> Vec<usize> {
    let mut fs = Vec::new();
    let mut f = 2usize;
    while f * f <= n {
        while n.is_multiple_of(f) {
            fs.push(f);
            n /= f;
        }
        f += 1;
    }
    if n > 1 {
        fs.push(n);
    }
    fs.reverse();
    fs
}

impl Topology for Hierarchy {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        debug_assert!(a < self.nodes && b < self.nodes);
        if a == b {
            return 0;
        }
        let (mut a, mut b) = (a, b);
        for (i, &k) in self.arities.iter().enumerate() {
            a /= k;
            b /= k;
            if a == b {
                return self.dists[i];
            }
        }
        // Unreachable for in-range ids (the root container holds everyone).
        *self.dists.last().unwrap()
    }

    fn name(&self) -> String {
        format!("Hierarchy({}; d={})", self.shape_spec(), self.dist_spec())
    }

    fn diameter(&self) -> u32 {
        (0..self.levels())
            .rev()
            .find(|&i| self.arities[i] > 1)
            .map_or(0, |i| self.dists[i])
    }

    fn sum_distance_from(&self, _node: NodeId) -> u64 {
        // Every level-i container is full and internally symmetric, so the
        // distance profile is the same from every processor: exactly
        // `block(i) - block(i-1)` peers sit at distance `d_i`.
        let mut total = 0u64;
        let mut inner = 1u64;
        for i in 0..self.levels() {
            let outer = self.prefix[i] as u64;
            total += (outer - inner) * self.dists[i] as u64;
            inner = outer;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachedTopology;

    #[test]
    fn basic_distances_follow_levels() {
        let h = Hierarchy::new(vec![4, 8, 16], vec![1, 10, 100]);
        assert_eq!(h.num_nodes(), 512);
        assert_eq!(h.distance(0, 0), 0);
        assert_eq!(h.distance(0, 3), 1); // same level-1 block
        assert_eq!(h.distance(0, 4), 10); // same node, different core group
        assert_eq!(h.distance(0, 31), 10);
        assert_eq!(h.distance(0, 32), 100); // different rack
        assert_eq!(h.distance(511, 0), 100);
        assert_eq!(h.diameter(), 100);
        assert_eq!(h.name(), "Hierarchy(4:8:16; d=1:10:100)");
    }

    #[test]
    fn ultrametric_axioms_hold_on_sampled_triples() {
        let h = Hierarchy::new(vec![3, 2, 4], vec![2, 5, 9]);
        let n = h.num_nodes();
        for a in 0..n {
            assert_eq!(h.distance(a, a), 0);
            for b in 0..n {
                assert_eq!(h.distance(a, b), h.distance(b, a));
                if a != b {
                    assert!(h.distance(a, b) > 0);
                }
                for c in (0..n).step_by(5) {
                    // Ultrametric: stronger than the triangle inequality.
                    assert!(h.distance(a, c) <= h.distance(a, b).max(h.distance(b, c)));
                }
            }
        }
    }

    #[test]
    fn sum_and_diameter_match_brute_force() {
        let h = Hierarchy::new(vec![2, 3, 2], vec![1, 4, 7]);
        let n = h.num_nodes();
        let brute_diam = (0..n)
            .flat_map(|a| (0..n).map(move |b| (a, b)))
            .map(|(a, b)| h.distance(a, b))
            .max()
            .unwrap();
        assert_eq!(h.diameter(), brute_diam);
        for a in 0..n {
            let brute: u64 = (0..n).map(|b| h.distance(a, b) as u64).sum();
            assert_eq!(h.sum_distance_from(a), brute, "node {a}");
        }
    }

    #[test]
    fn fattree_derivation_is_exact_on_all_pairs() {
        for (arity, levels) in [(2usize, 3u32), (4, 2), (3, 3)] {
            let ft = FatTree::new(arity, levels);
            let h = Hierarchy::from_fattree(&ft);
            assert_eq!(h.num_nodes(), ft.num_nodes());
            for a in 0..ft.num_nodes() {
                for b in 0..ft.num_nodes() {
                    assert_eq!(
                        h.distance(a, b),
                        ft.distance(a, b),
                        "pair ({a},{b}) of {arity}-ary {levels}-level tree"
                    );
                }
            }
            assert_eq!(h.diameter(), ft.diameter());
        }
    }

    #[test]
    fn identity_over_fattree_matches_from_fattree() {
        let ft = FatTree::new(2, 4);
        let derived = Hierarchy::identity_over(&ft, &[2, 2, 2, 2]).unwrap();
        assert_eq!(derived, Hierarchy::from_fattree(&ft));
    }

    #[test]
    fn factor_torus_dominates_true_distance() {
        let t = Torus::torus_2d(8, 8);
        let (h, pe) = Hierarchy::factor_torus(&t, &[4, 4, 4]).unwrap();
        assert_eq!(h.num_nodes(), 64);
        // pe is a permutation of the machine nodes.
        let mut seen = [false; 64];
        for &n in &pe {
            assert!(!seen[n], "duplicate machine node {n}");
            seen[n] = true;
        }
        // The hierarchy metric over positions never underestimates the
        // machine metric over the mapped nodes.
        let mut tight = 0usize;
        for qa in 0..64 {
            for qb in 0..64 {
                let hd = h.distance(qa, qb);
                let td = t.distance(pe[qa], pe[qb]);
                assert!(hd >= td, "positions ({qa},{qb}): hier {hd} < torus {td}");
                if qa != qb && hd == td {
                    tight += 1;
                }
            }
        }
        assert!(tight > 0, "bound should be attained at block corners");
        // Innermost blocks are contiguous position runs of a1 nodes that
        // really are close on the machine.
        for q in (0..64).step_by(4) {
            for o in 1..4 {
                assert!(t.distance(pe[q], pe[q + o]) <= h.dists()[0]);
            }
        }
    }

    #[test]
    fn factor_torus_on_mesh_and_odd_dims() {
        let t = Torus::mesh(&[6, 4]);
        let (h, pe) = Hierarchy::factor_torus(&t, &[4, 6]).unwrap();
        assert_eq!(h.num_nodes(), 24);
        assert_eq!(pe.len(), 24);
        for qa in 0..24 {
            for qb in 0..24 {
                assert!(h.distance(qa, qb) >= t.distance(pe[qa], pe[qb]));
            }
        }
    }

    #[test]
    fn factor_torus_rejects_incompatible_arities() {
        let t = Torus::torus_2d(8, 8);
        let err = Hierarchy::factor_torus(&t, &[3, 3, 7]).unwrap_err();
        assert!(err.contains("63") || err.contains("factor"), "{err}");
        let err = Hierarchy::factor_torus(&t, &[16, 4])
            .unwrap() // 64 ok
            .0;
        assert_eq!(err.num_nodes(), 64);
        // Product matches but a prime factor doesn't fit any dimension.
        let err = Hierarchy::factor_torus(&Torus::torus_2d(8, 8), &[32, 2]).unwrap();
        assert_eq!(err.0.num_nodes(), 64);
        let bad = Hierarchy::factor_torus(&Torus::mesh(&[2, 32]), &[3, 3, 7]);
        assert!(bad.is_err());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        assert!(Hierarchy::parse("4:0:8", None)
            .unwrap_err()
            .contains("zero children"));
        assert!(Hierarchy::parse("4:8:", None)
            .unwrap_err()
            .contains("empty"));
        assert!(Hierarchy::parse(":4:8", None)
            .unwrap_err()
            .contains("empty"));
        assert!(Hierarchy::parse("", None).unwrap_err().contains("empty"));
        assert!(Hierarchy::parse("4:x", None)
            .unwrap_err()
            .contains("not a non-negative integer"));
        assert!(Hierarchy::parse("4:8", Some("1:2:3"))
            .unwrap_err()
            .contains("levels"));
        assert!(Hierarchy::parse("4:8", Some("5:2"))
            .unwrap_err()
            .contains("non-decreasing"));
        assert!(Hierarchy::parse("4:8", Some("0:2"))
            .unwrap_err()
            .contains("distance d1"));
    }

    #[test]
    fn parse_defaults_to_power_of_ten_distances() {
        let h = Hierarchy::parse("4:8:16", None).unwrap();
        assert_eq!(h.dists(), &[1, 10, 100]);
        let h = Hierarchy::parse(" 2 : 2 ", Some("3:9")).unwrap();
        assert_eq!(h.arities(), &[2, 2]);
        assert_eq!(h.dists(), &[3, 9]);
    }

    #[test]
    fn composes_with_distance_cache() {
        let h = Hierarchy::new(vec![4, 4], vec![2, 6]);
        let cached = CachedTopology::new(h.clone());
        for a in 0..16 {
            for b in 0..16 {
                assert_eq!(cached.distance(a, b), h.distance(a, b));
            }
        }
        assert_eq!(cached.diameter(), h.diameter());
        let targets: Vec<NodeId> = vec![0, 5, 5, 15, 3];
        let (mut x, mut y) = (Vec::new(), Vec::new());
        let sx = h.distances_sum_into(7, &targets, &mut x);
        let sy = cached.distances_sum_into(7, &targets, &mut y);
        assert_eq!(x, y);
        assert_eq!(sx, sy);
    }

    #[test]
    fn degenerate_single_level_and_unit_arities() {
        let h = Hierarchy::new(vec![1, 5, 1], vec![1, 3, 3]);
        assert_eq!(h.num_nodes(), 5);
        assert_eq!(h.distance(0, 4), 3);
        assert_eq!(h.diameter(), 3);
        let solo = Hierarchy::new(vec![1], vec![1]);
        assert_eq!(solo.num_nodes(), 1);
        assert_eq!(solo.diameter(), 0);
    }
}
