//! Distance statistics over topologies.
//!
//! The paper validates random placement against analytic expectations
//! (§5.2): on a 2D torus of `p` nodes the expected distance between two
//! random processors is `√p / 2`, on a 3D torus it is `3·∛p / 4`. This
//! module provides both the measured quantities (average pairwise
//! distance, per-node distance sums used by TopoLB's second-order
//! estimation) and those closed forms.

use crate::{NodeId, Topology};

/// Average distance between two distinct random processors
/// (`Σ_{a≠b} d(a,b) / (p·(p−1))`).
pub fn average_pairwise_distance<T: Topology + ?Sized>(t: &T) -> f64 {
    let n = t.num_nodes();
    if n <= 1 {
        return 0.0;
    }
    let total: u64 = (0..n).map(|a| t.sum_distance_from(a)).sum();
    total as f64 / (n as f64 * (n as f64 - 1.0))
}

/// Average distance from each node to *all* nodes (including itself), the
/// `Σ_{p_j ∈ V_p} d(p, p_j) / |V_p|` table of the paper's second-order
/// estimation function. Computed once in O(p²) and reused across TopoLB
/// iterations.
#[derive(Debug, Clone)]
pub struct AvgDistTable {
    avg: Vec<f64>,
    sum: Vec<u64>,
}

impl AvgDistTable {
    pub fn new<T: Topology + ?Sized>(t: &T) -> Self {
        let n = t.num_nodes();
        let sum: Vec<u64> = (0..n).map(|a| t.sum_distance_from(a)).collect();
        let avg = sum.iter().map(|&s| s as f64 / n as f64).collect();
        AvgDistTable { avg, sum }
    }

    /// `E_{q ~ U[V_p]}[d(p, q)]`.
    #[inline]
    pub fn avg(&self, p: NodeId) -> f64 {
        self.avg[p]
    }

    /// `Σ_{q ∈ V_p} d(p, q)`.
    #[inline]
    pub fn sum(&self, p: NodeId) -> u64 {
        self.sum[p]
    }

    pub fn len(&self) -> usize {
        self.avg.len()
    }

    pub fn is_empty(&self) -> bool {
        self.avg.is_empty()
    }

    /// The node with minimum total distance to all others — the topology
    /// "center", used as TopoCentLB's first placement.
    pub fn center(&self) -> NodeId {
        self.sum
            .iter()
            .enumerate()
            .min_by_key(|&(_, &s)| s)
            .map(|(i, _)| i)
            .expect("non-empty topology")
    }
}

/// Paper §5.2.1: expected distance between two uniform-random processors on
/// a `√p × √p` 2D torus is `√p / 2` (each dimension contributes `√p / 4`
/// with wraparound).
pub fn expected_random_hops_torus_2d(p: usize) -> f64 {
    (p as f64).sqrt() / 2.0
}

/// Paper §5.2.2: expected distance on a `∛p`-sided 3D torus is `3·∛p / 4`.
pub fn expected_random_hops_torus_3d(p: usize) -> f64 {
    3.0 * (p as f64).cbrt() / 4.0
}

/// Exact expected distance between two independent uniform-random nodes
/// (with replacement) on an arbitrary topology: `Σ_{a,b} d(a,b) / p²`.
///
/// Differs from [`average_pairwise_distance`] by including the `a == b`
/// diagonal; this matches the analytic `E[hops]` the paper plots against
/// random placement.
pub fn expected_random_distance<T: Topology + ?Sized>(t: &T) -> f64 {
    let n = t.num_nodes();
    let total: u64 = (0..n).map(|a| t.sum_distance_from(a)).sum();
    total as f64 / (n as f64 * n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphTopology, Torus};

    #[test]
    fn avg_table_matches_bruteforce() {
        let t = Torus::torus_2d(4, 6);
        let table = AvgDistTable::new(&t);
        for a in 0..t.num_nodes() {
            let s: u64 = (0..t.num_nodes()).map(|b| t.distance(a, b) as u64).sum();
            assert_eq!(table.sum(a), s);
            assert!((table.avg(a) - s as f64 / 24.0).abs() < 1e-12);
        }
    }

    #[test]
    fn torus_analytic_formula_even_side() {
        // For an even side n, per-dimension expected wrap distance over all
        // ordered pairs is exactly n/4; two dims give sqrt(p)/2.
        for side in [4usize, 8, 16] {
            let t = Torus::torus_2d(side, side);
            let measured = expected_random_distance(&t);
            let analytic = expected_random_hops_torus_2d(side * side);
            assert!(
                (measured - analytic).abs() < 1e-9,
                "side {side}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn torus_3d_analytic_formula_even_side() {
        for side in [4usize, 8] {
            let t = Torus::torus_3d(side, side, side);
            let measured = expected_random_distance(&t);
            let analytic = expected_random_hops_torus_3d(side * side * side);
            assert!(
                (measured - analytic).abs() < 1e-9,
                "side {side}: measured {measured} vs analytic {analytic}"
            );
        }
    }

    #[test]
    fn star_center_is_hub() {
        let g = GraphTopology::star(9);
        let table = AvgDistTable::new(&g);
        assert_eq!(table.center(), 0);
    }

    #[test]
    fn torus_center_by_symmetry_any_node() {
        // Every torus node is equivalent; center() picks the lowest id.
        let t = Torus::torus_2d(4, 4);
        let table = AvgDistTable::new(&t);
        assert_eq!(table.center(), 0);
        let s0 = table.sum(0);
        for a in 0..16 {
            assert_eq!(table.sum(a), s0);
        }
    }

    #[test]
    fn mesh_center_is_middle() {
        let t = Torus::mesh_2d(5, 5);
        let table = AvgDistTable::new(&t);
        assert_eq!(table.center(), t.node_at(&[2, 2]));
    }

    #[test]
    fn average_pairwise_excludes_diagonal() {
        let g = GraphTopology::ring(4);
        // distances from any node: 0,1,2,1 -> pairwise avg over distinct = 4/3
        assert!((average_pairwise_distance(&g) - 4.0 / 3.0).abs() < 1e-12);
        // with diagonal: 4/4 = 1.0
        assert!((expected_random_distance(&g) - 1.0).abs() < 1e-12);
    }
}
