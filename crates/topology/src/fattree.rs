//! Fat-tree topology (metric only).
//!
//! The paper contrasts torus machines with "networks such as Fat-Trees
//! \[or\] hypercubes, with number of wires growing as P log P", where
//! contention is not a significant factor (§1). The mapping algorithms can
//! still target a fat-tree — they only require a distance metric — so this
//! type implements [`Topology`] but not `RoutedTopology` (messages between
//! leaves pass through switch stages, not through other processors, so a
//! processor-level `next_hop` does not exist).

use crate::{NodeId, Topology};

/// A `k`-ary fat-tree of `levels` switch stages, with processors at the
/// leaves: `k^levels` processors total.
///
/// The distance between two leaves is `2 · h`, where `h` is the height of
/// their lowest common ancestor — the message goes up `h` stages and down
/// `h` stages. Leaves under the same edge switch are at distance 2; the
/// diameter is `2 · levels`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatTree {
    arity: usize,
    levels: u32,
    leaves: usize,
}

impl FatTree {
    /// A fat-tree with `arity^levels` processors. Panics if that overflows
    /// or if `arity < 2` / `levels == 0`.
    pub fn new(arity: usize, levels: u32) -> Self {
        assert!(arity >= 2, "fat-tree arity must be at least 2");
        assert!(levels >= 1, "fat-tree needs at least one switch stage");
        let leaves = arity
            .checked_pow(levels)
            .expect("fat-tree size overflows usize");
        FatTree {
            arity,
            levels,
            leaves,
        }
    }

    pub fn arity(&self) -> usize {
        self.arity
    }

    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Height of the lowest common ancestor of two leaves (0 if equal).
    fn lca_height(&self, a: NodeId, b: NodeId) -> u32 {
        let mut h = 0u32;
        let (mut a, mut b) = (a, b);
        while a != b {
            a /= self.arity;
            b /= self.arity;
            h += 1;
        }
        h
    }
}

impl Topology for FatTree {
    fn num_nodes(&self) -> usize {
        self.leaves
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        debug_assert!(a < self.leaves && b < self.leaves);
        2 * self.lca_height(a, b)
    }

    fn name(&self) -> String {
        format!("FatTree({}-ary, {} levels)", self.arity, self.levels)
    }

    fn diameter(&self) -> u32 {
        2 * self.levels
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_tree_distances() {
        let t = FatTree::new(2, 3); // 8 leaves
        assert_eq!(t.num_nodes(), 8);
        assert_eq!(t.distance(0, 1), 2); // same edge switch
        assert_eq!(t.distance(0, 2), 4);
        assert_eq!(t.distance(0, 3), 4);
        assert_eq!(t.distance(0, 4), 6);
        assert_eq!(t.distance(0, 7), 6);
        assert_eq!(t.distance(5, 5), 0);
        assert_eq!(t.diameter(), 6);
    }

    #[test]
    fn quaternary_tree() {
        let t = FatTree::new(4, 2); // 16 leaves
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.distance(0, 3), 2);
        assert_eq!(t.distance(0, 4), 4);
        assert_eq!(t.diameter(), 4);
    }

    #[test]
    fn metric_axioms_hold() {
        let t = FatTree::new(3, 3); // 27 leaves
        let n = t.num_nodes();
        for a in 0..n {
            assert_eq!(t.distance(a, a), 0);
            for b in 0..n {
                assert_eq!(t.distance(a, b), t.distance(b, a));
                for c in 0..n {
                    assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
                }
            }
        }
    }

    #[test]
    fn average_distance_much_lower_than_mesh() {
        // The P log P wiring buys locality: a 64-leaf fat-tree has smaller
        // diameter growth than a 64-node 2D mesh.
        let ft = FatTree::new(4, 3);
        assert_eq!(ft.num_nodes(), 64);
        assert_eq!(ft.diameter(), 6);
        let mesh = crate::Torus::mesh_2d(8, 8);
        assert_eq!(mesh.diameter(), 14);
    }
}
