//! Hypercube topology.
//!
//! The paper notes (§1) that for "Fat-Trees or hypercubes, with number of
//! wires growing as P log P", contention is much less significant — the
//! hypercube is included both as a mapping target and as the low-contention
//! comparison point for experiments.

use crate::{NodeId, RoutedTopology, Topology};

/// A `d`-dimensional binary hypercube on `2^d` processors.
///
/// Node ids are the natural binary labels; two processors are adjacent iff
/// their labels differ in exactly one bit, and `distance` is the Hamming
/// distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hypercube {
    dims: u32,
}

impl Hypercube {
    /// A hypercube with `2^dims` nodes. Panics if `dims > 30`.
    pub fn new(dims: u32) -> Self {
        assert!(dims <= 30, "hypercube dimension too large");
        Hypercube { dims }
    }

    /// The smallest hypercube with at least `p` nodes.
    pub fn at_least(p: usize) -> Self {
        assert!(p > 0);
        let dims = usize::BITS - (p - 1).leading_zeros();
        Hypercube::new(dims)
    }

    pub fn dims(&self) -> u32 {
        self.dims
    }
}

impl Topology for Hypercube {
    fn num_nodes(&self) -> usize {
        1usize << self.dims
    }

    fn node_coords(&self, node: NodeId) -> Option<[f64; 3]> {
        // Deal the address bits onto 3 axes round-robin (bit i goes to
        // axis i % 3), giving a 3-D lattice embedding where one hop
        // changes exactly one axis.
        let mut c = [0u64; 3];
        let mut shift = [0u32; 3];
        for i in 0..self.dims {
            let axis = (i % 3) as usize;
            c[axis] |= (((node >> i) & 1) as u64) << shift[axis];
            shift[axis] += 1;
        }
        Some([c[0] as f64, c[1] as f64, c[2] as f64])
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        debug_assert!(a < self.num_nodes() && b < self.num_nodes());
        (a ^ b).count_ones()
    }

    fn name(&self) -> String {
        format!("Hypercube({}d)", self.dims)
    }

    fn diameter(&self) -> u32 {
        self.dims
    }

    fn sum_distance_from(&self, _node: NodeId) -> u64 {
        // By symmetry: sum of Hamming distances to all labels is d * 2^(d-1).
        if self.dims == 0 {
            0
        } else {
            (self.dims as u64) << (self.dims - 1)
        }
    }
}

impl RoutedTopology for Hypercube {
    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        for bit in 0..self.dims {
            out.push(node ^ (1usize << bit));
        }
    }

    fn next_hop(&self, cur: NodeId, dest: NodeId) -> NodeId {
        debug_assert_ne!(cur, dest);
        // E-cube routing: correct the lowest-order differing bit.
        let diff = cur ^ dest;
        cur ^ (1usize << diff.trailing_zeros())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_properties() {
        let h = Hypercube::new(4);
        assert_eq!(h.num_nodes(), 16);
        assert_eq!(h.diameter(), 4);
        assert_eq!(h.distance(0b0000, 0b1111), 4);
        assert_eq!(h.distance(0b0101, 0b0101), 0);
        assert_eq!(h.degree(3), 4);
    }

    #[test]
    fn at_least_rounds_up_to_power_of_two() {
        assert_eq!(Hypercube::at_least(1).num_nodes(), 1);
        assert_eq!(Hypercube::at_least(2).num_nodes(), 2);
        assert_eq!(Hypercube::at_least(5).num_nodes(), 8);
        assert_eq!(Hypercube::at_least(64).num_nodes(), 64);
        assert_eq!(Hypercube::at_least(65).num_nodes(), 128);
    }

    #[test]
    fn sum_distance_closed_form() {
        let h = Hypercube::new(5);
        for node in [0usize, 7, 31] {
            let brute: u64 = (0..h.num_nodes()).map(|b| h.distance(node, b) as u64).sum();
            assert_eq!(h.sum_distance_from(node), brute);
        }
    }

    #[test]
    fn routing_follows_shortest_paths() {
        let h = Hypercube::new(4);
        for a in 0..16 {
            for b in 0..16 {
                if a == b {
                    continue;
                }
                let route = h.route(a, b);
                assert_eq!(route.len() as u32, h.distance(a, b));
            }
        }
    }

    #[test]
    fn neighbors_are_single_bit_flips() {
        let h = Hypercube::new(3);
        let n = h.neighbors(0b101);
        assert_eq!(n.len(), 3);
        for x in n {
            assert_eq!(h.distance(0b101, x), 1);
        }
    }
}
