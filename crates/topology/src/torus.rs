//! N-dimensional torus and mesh topologies with closed-form distances and
//! dimension-ordered routing.
//!
//! This is the machine family the paper targets: "the packaging
//! considerations for a large number of processors lead to the choice of a
//! mesh or a torus topology" (§1). A [`Torus`] carries a per-dimension
//! wraparound flag, so the same type models BlueGene's 3D-torus *and* the
//! 3D-mesh it "can be converted to, if required".

use crate::coords::{self, Coords};
use crate::{NodeId, RoutedTopology, Topology};

/// An N-dimensional grid, torus, or mixed-wrap machine.
///
/// Distances are computed in O(dims) from coordinates — no `p × p` matrix —
/// so mapping algorithms hit the paper's stated complexity even at
/// thousands of processors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Torus {
    dims: Vec<usize>,
    wrap: Vec<bool>,
    strides: Vec<usize>,
    nodes: usize,
    /// `coord_tab[d * nodes + id]` = coordinate of node `id` in dimension
    /// `d`. Precomputed so bulk distance queries gather per-dimension
    /// lookup tables instead of paying a div/mod pair per element; u16
    /// keeps the tables L1-resident (dimensions above 65536 nodes fall
    /// back to scalar distances in `distances_into`).
    coord_tab: Vec<u16>,
    /// Byte-packed coordinates — `packed[id]` holds coordinate `d` in byte
    /// `d` — when the torus has at most 4 dimensions, each of size ≤ 256.
    /// Lets the bulk gather do one table load per element and index fixed
    /// 256-entry distance LUTs whose bounds checks vanish. Empty otherwise.
    packed: Vec<u32>,
}

impl Torus {
    /// General constructor: `dims[d]` processors along dimension `d`,
    /// `wrap[d]` selects torus (true) vs mesh (false) behaviour per
    /// dimension.
    ///
    /// Panics on empty dims, zero-size dimensions, or length mismatch.
    pub fn new(dims: &[usize], wrap: &[bool]) -> Self {
        assert!(!dims.is_empty(), "at least one dimension required");
        assert_eq!(dims.len(), wrap.len(), "dims/wrap length mismatch");
        assert!(dims.iter().all(|&d| d > 0), "zero-size dimension");
        let nodes = dims.iter().product();
        let strides = coords::strides(dims);
        // Coordinate tables, built by tiling: coordinate d is constant over
        // contiguous blocks of `strides[d]` ids and cycles with period
        // `strides[d] * dims[d]`.
        let mut coord_tab = vec![0u16; nodes * dims.len()];
        for d in 0..dims.len() {
            let l = dims[d];
            let stride = strides[d];
            let tab = &mut coord_tab[d * nodes..(d + 1) * nodes];
            let mut i = 0;
            let mut c = 0u16;
            while i < nodes {
                let end = (i + stride).min(nodes);
                tab[i..end].fill(c);
                i = end;
                c += 1;
                if c as usize == l {
                    c = 0;
                }
            }
        }
        let packed = if dims.len() <= 4 && dims.iter().all(|&d| d <= 256) {
            (0..nodes)
                .map(|id| {
                    let mut w = 0u32;
                    for d in 0..dims.len() {
                        w |= (coord_tab[d * nodes + id] as u32) << (8 * d);
                    }
                    w
                })
                .collect()
        } else {
            Vec::new()
        };
        Torus {
            strides,
            dims: dims.to_vec(),
            wrap: wrap.to_vec(),
            nodes,
            coord_tab,
            packed,
        }
    }

    /// Fully wrapped torus.
    #[allow(clippy::self_named_constructors)] // `Torus::torus` pairs with `Torus::mesh`
    pub fn torus(dims: &[usize]) -> Self {
        Self::new(dims, &vec![true; dims.len()])
    }

    /// Fully unwrapped mesh.
    pub fn mesh(dims: &[usize]) -> Self {
        Self::new(dims, &vec![false; dims.len()])
    }

    pub fn torus_1d(n: usize) -> Self {
        Self::torus(&[n])
    }
    pub fn mesh_1d(n: usize) -> Self {
        Self::mesh(&[n])
    }
    pub fn torus_2d(x: usize, y: usize) -> Self {
        Self::torus(&[x, y])
    }
    pub fn mesh_2d(x: usize, y: usize) -> Self {
        Self::mesh(&[x, y])
    }
    pub fn torus_3d(x: usize, y: usize, z: usize) -> Self {
        Self::torus(&[x, y, z])
    }
    pub fn mesh_3d(x: usize, y: usize, z: usize) -> Self {
        Self::mesh(&[x, y, z])
    }

    /// A near-square 2D torus with `p` nodes: side `√p` when `p` is a
    /// perfect square, otherwise the most balanced `a × b = p`
    /// factorization. Used by the paper's §5.2 sweeps where "tori of
    /// various sizes" are built per processor count.
    pub fn torus_2d_for(p: usize) -> Self {
        let (a, b) = balanced_factors_2(p);
        Self::torus_2d(a, b)
    }

    /// A near-cubic 3D torus with `p` nodes (balanced 3-factorization).
    pub fn torus_3d_for(p: usize) -> Self {
        let (a, b, c) = balanced_factors_3(p);
        Self::torus_3d(a, b, c)
    }

    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    pub fn wrap(&self) -> &[bool] {
        &self.wrap
    }

    pub fn num_dims(&self) -> usize {
        self.dims.len()
    }

    /// Is every dimension wrapped (true torus)?
    pub fn is_full_torus(&self) -> bool {
        self.wrap.iter().all(|&w| w)
    }

    /// Coordinates of a node.
    pub fn coords(&self, node: NodeId) -> Coords {
        debug_assert!(node < self.nodes);
        coords::delinearize(node, &self.dims)
    }

    /// Node id for coordinates.
    pub fn node_at(&self, c: &[usize]) -> NodeId {
        coords::linearize(c, &self.dims)
    }

    /// Distance along a single dimension, wrap-aware.
    #[inline]
    fn dim_distance(&self, d: usize, a: usize, b: usize) -> u32 {
        let raw = a.abs_diff(b);
        if self.wrap[d] {
            raw.min(self.dims[d] - raw) as u32
        } else {
            raw as u32
        }
    }

    /// Signed step (+1 / -1) that moves `a` toward `b` along dimension `d`
    /// on the shortest arc. Ties (exactly half way around a wrapped
    /// dimension) break toward +1 so routing is deterministic.
    #[inline]
    fn dim_step(&self, d: usize, a: usize, b: usize) -> isize {
        debug_assert_ne!(a, b);
        let n = self.dims[d];
        if !self.wrap[d] {
            return if b > a { 1 } else { -1 };
        }
        let fwd = (b + n - a) % n; // steps going +1
        let bwd = (a + n - b) % n; // steps going -1
        if fwd <= bwd {
            1
        } else {
            -1
        }
    }
}

impl Torus {
    /// Per-dimension LUT gather: build one wrap-distance table per
    /// dimension from `from`'s coordinates (O(Σ dims) total, tiny), then
    /// each target costs one table lookup per dimension through the
    /// precomputed coordinate tables — O(targets · dims) with no div or
    /// mod, and crucially no O(p) full-column pass. The mapping kernels
    /// call this once per placement with the shrinking free list as
    /// `targets`, so the column-free formulation is what keeps their
    /// per-placement cost proportional to the free set. The u64 column
    /// total rides along in four independent lanes (`gather_with`) so it
    /// never serializes the gather on one add chain.
    fn gather_sum(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) -> u64 {
        debug_assert!(from < self.nodes);
        let n = self.nodes;
        let nd = self.dims.len();
        let mut lut: Vec<u32> = Vec::with_capacity(self.dims.iter().sum());
        let mut lut_off = [0usize; 8];
        for d in 0..nd {
            let l = self.dims[d];
            let cf = coords::coord_of(from, l, self.strides[d]);
            if d < lut_off.len() {
                lut_off[d] = lut.len();
            }
            lut.extend((0..l).map(|x| self.dim_distance(d, cf, x)));
        }
        // Byte-packed fast paths: one `packed` load per element, and the
        // 256-entry LUT arrays are indexed by a masked byte, so the only
        // bounds check left is the packed-table load itself.
        if !self.packed.is_empty() && nd >= 2 {
            let mut a = [[0u32; 256]; 4];
            for d in 0..nd {
                let l = self.dims[d];
                a[d][..l].copy_from_slice(&lut[lut_off[d]..lut_off[d] + l]);
            }
            let pk = &self.packed[..n];
            match nd {
                2 => {
                    let (a0, a1) = (&a[0], &a[1]);
                    return gather_with(targets, out, |t| {
                        let c = pk[t] as usize;
                        a0[c & 255] + a1[(c >> 8) & 255]
                    });
                }
                3 => {
                    let (a0, a1, a2) = (&a[0], &a[1], &a[2]);
                    return gather_with(targets, out, |t| {
                        let c = pk[t] as usize;
                        a0[c & 255] + a1[(c >> 8) & 255] + a2[(c >> 16) & 255]
                    });
                }
                _ => {
                    let (a0, a1, a2, a3) = (&a[0], &a[1], &a[2], &a[3]);
                    return gather_with(targets, out, |t| {
                        let c = pk[t] as usize;
                        a0[c & 255] + a1[(c >> 8) & 255] + a2[(c >> 16) & 255] + a3[(c >> 24) & 255]
                    });
                }
            }
        }
        match nd {
            1 => {
                let t0 = &self.coord_tab[..n];
                gather_with(targets, out, |t| lut[t0[t] as usize])
            }
            2 => {
                let (l0, l1) = lut.split_at(lut_off[1]);
                let (t0, t1) = self.coord_tab.split_at(n);
                gather_with(targets, out, |t| l0[t0[t] as usize] + l1[t1[t] as usize])
            }
            3 => {
                let (l0, rest) = lut.split_at(lut_off[1]);
                let (l1, l2) = rest.split_at(lut_off[2] - lut_off[1]);
                let t0 = &self.coord_tab[..n];
                let t1 = &self.coord_tab[n..2 * n];
                let t2 = &self.coord_tab[2 * n..3 * n];
                gather_with(targets, out, |t| {
                    l0[t0[t] as usize] + l1[t1[t] as usize] + l2[t2[t] as usize]
                })
            }
            _ => {
                // Arbitrary rank: per-dimension offsets recomputed on the
                // fly (ranks above 8 fall back to scalar distance).
                if nd > lut_off.len() {
                    gather_with(targets, out, |t| self.distance(from, t))
                } else {
                    gather_with(targets, out, |t| {
                        let mut v = 0u32;
                        for d in 0..nd {
                            v += lut[lut_off[d] + self.coord_tab[d * n + t] as usize];
                        }
                        v
                    })
                }
            }
        }
    }
}

/// Fill `out[i] = f(targets[i])` and return `Σ out`, four elements per
/// step with four independent u64 sum lanes — the total never becomes a
/// loop-carried dependency of the gather.
#[inline]
fn gather_with<F: Fn(NodeId) -> u32>(targets: &[NodeId], out: &mut Vec<u32>, f: F) -> u64 {
    out.clear();
    out.resize(targets.len(), 0);
    let mut s = [0u64; 4];
    let mut oc = out.chunks_exact_mut(4);
    let mut tc = targets.chunks_exact(4);
    for (o4, t4) in oc.by_ref().zip(tc.by_ref()) {
        let v0 = f(t4[0]);
        let v1 = f(t4[1]);
        let v2 = f(t4[2]);
        let v3 = f(t4[3]);
        o4[0] = v0;
        o4[1] = v1;
        o4[2] = v2;
        o4[3] = v3;
        s[0] += v0 as u64;
        s[1] += v1 as u64;
        s[2] += v2 as u64;
        s[3] += v3 as u64;
    }
    let mut sum = (s[0] + s[1]) + (s[2] + s[3]);
    for (o, &t) in oc.into_remainder().iter_mut().zip(tc.remainder()) {
        let v = f(t);
        *o = v;
        sum += v as u64;
    }
    sum
}

impl Topology for Torus {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        debug_assert!(a < self.nodes && b < self.nodes);
        let mut total = 0u32;
        for d in 0..self.dims.len() {
            let ca = coords::coord_of(a, self.dims[d], self.strides[d]);
            let cb = coords::coord_of(b, self.dims[d], self.strides[d]);
            total += self.dim_distance(d, ca, cb);
        }
        total
    }

    fn node_coords(&self, node: NodeId) -> Option<[f64; 3]> {
        if self.dims.len() > 3 {
            return None;
        }
        let mut c = [0.0f64; 3];
        for (d, slot) in c.iter_mut().enumerate().take(self.dims.len()) {
            *slot = coords::coord_of(node, self.dims[d], self.strides[d]) as f64;
        }
        Some(c)
    }

    fn name(&self) -> String {
        let kind = if self.wrap.iter().all(|&w| w) {
            "Torus"
        } else if self.wrap.iter().all(|&w| !w) {
            "Mesh"
        } else {
            "MixedWrap"
        };
        let dims: Vec<String> = self.dims.iter().map(|d| d.to_string()).collect();
        format!("{}D-{}({})", self.dims.len(), kind, dims.join("x"))
    }

    fn diameter(&self) -> u32 {
        // Closed form: per-dimension maximum, summed.
        self.dims
            .iter()
            .zip(&self.wrap)
            .map(|(&n, &w)| if w { (n / 2) as u32 } else { (n - 1) as u32 })
            .sum()
    }

    fn sum_distance_from(&self, node: NodeId) -> u64 {
        // Closed form, O(dims): distances separate per dimension, and each
        // coordinate value in dimension d is shared by nodes/dims[d] nodes.
        // A wrapped dimension of size L contributes floor(L²/4) per sweep
        // (independent of the start coordinate); a mesh dimension at
        // coordinate c contributes c(c+1)/2 + (L-1-c)(L-c)/2.
        debug_assert!(node < self.nodes);
        let mut total = 0u64;
        for d in 0..self.dims.len() {
            let l = self.dims[d] as u64;
            let reps = self.nodes as u64 / l;
            let sweep = if self.wrap[d] {
                l * l / 4
            } else {
                let c = coords::coord_of(node, self.dims[d], self.strides[d]) as u64;
                c * (c + 1) / 2 + (l - 1 - c) * (l - c) / 2
            };
            total += reps * sweep;
        }
        total
    }

    fn distances_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) {
        self.gather_sum(from, targets, out);
    }

    fn distances_sum_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) -> u64 {
        self.gather_sum(from, targets, out)
    }
}

impl RoutedTopology for Torus {
    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let c = self.coords(node);
        for d in 0..self.dims.len() {
            let n = self.dims[d];
            if n == 1 {
                continue;
            }
            let x = c.get(d);
            let stride = self.strides[d];
            // +1 direction
            if x + 1 < n {
                out.push(node + stride);
            } else if self.wrap[d] && n > 2 {
                out.push(node - (n - 1) * stride);
            }
            // -1 direction
            if x > 0 {
                out.push(node - stride);
            } else if self.wrap[d] && n > 2 {
                out.push(node + (n - 1) * stride);
            }
            // n == 2 with wrap: +1 and -1 reach the same node; emit once.
            if self.wrap[d] && n == 2 {
                let other = if x == 0 { node + stride } else { node - stride };
                if !out.contains(&other) {
                    out.push(other);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
    }

    fn next_hop(&self, cur: NodeId, dest: NodeId) -> NodeId {
        debug_assert_ne!(cur, dest, "next_hop called at destination");
        // Dimension-ordered (e-cube) routing: correct dimensions in order,
        // each along its shortest arc.
        for d in 0..self.dims.len() {
            let a = coords::coord_of(cur, self.dims[d], self.strides[d]);
            let b = coords::coord_of(dest, self.dims[d], self.strides[d]);
            if a == b {
                continue;
            }
            let step = self.dim_step(d, a, b);
            let n = self.dims[d];
            let na = if step == 1 {
                (a + 1) % n
            } else {
                (a + n - 1) % n
            };
            return cur - a * self.strides[d] + na * self.strides[d];
        }
        unreachable!("cur == dest");
    }
}

/// Most balanced `(a, b)` with `a * b == p` and `a <= b`.
pub fn balanced_factors_2(p: usize) -> (usize, usize) {
    assert!(p > 0);
    let mut best = (1, p);
    let mut a = 1usize;
    while a * a <= p {
        if p.is_multiple_of(a) {
            best = (a, p / a);
        }
        a += 1;
    }
    best
}

/// Most balanced `(a, b, c)` with `a * b * c == p`, minimizing the spread
/// `max - min`; ties broken by larger minimum side.
pub fn balanced_factors_3(p: usize) -> (usize, usize, usize) {
    assert!(p > 0);
    let mut best = (1usize, 1usize, p);
    let mut best_key = (p as i64 - 1, -(1i64));
    let mut a = 1usize;
    while a * a * a <= p {
        if p.is_multiple_of(a) {
            let q = p / a;
            let (b, c) = balanced_factors_2(q);
            let (lo, hi) = (a.min(b), c.max(a));
            let key = (hi as i64 - lo as i64, -(lo as i64));
            if key < best_key {
                best_key = key;
                best = (a, b, c);
            }
        }
        a += 1;
    }
    let mut v = [best.0, best.1, best.2];
    v.sort_unstable();
    (v[0], v[1], v[2])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphTopology;

    /// BFS ground truth for validating closed-form distances.
    fn as_graph(t: &Torus) -> GraphTopology {
        let mut edges = Vec::new();
        let mut nbrs = Vec::new();
        for a in 0..t.num_nodes() {
            t.neighbors_into(a, &mut nbrs);
            for &b in &nbrs {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        GraphTopology::from_edges(t.num_nodes(), &edges)
    }

    #[test]
    fn torus_2d_distance_examples() {
        let t = Torus::torus_2d(4, 4);
        // (0,0) to (3,3): wrap both dims -> 1 + 1 = 2.
        assert_eq!(t.distance(t.node_at(&[0, 0]), t.node_at(&[3, 3])), 2);
        // (0,0) to (2,2): 2 + 2 = 4.
        assert_eq!(t.distance(t.node_at(&[0, 0]), t.node_at(&[2, 2])), 4);
    }

    #[test]
    fn mesh_2d_distance_is_manhattan() {
        let t = Torus::mesh_2d(5, 7);
        for a in 0..35 {
            for b in 0..35 {
                let ca = t.coords(a);
                let cb = t.coords(b);
                let manhattan = ca.get(0).abs_diff(cb.get(0)) + ca.get(1).abs_diff(cb.get(1));
                assert_eq!(t.distance(a, b), manhattan as u32);
            }
        }
    }

    #[test]
    fn closed_form_matches_bfs_torus() {
        for t in [
            Torus::torus_2d(5, 4),
            Torus::torus_3d(3, 4, 2),
            Torus::mesh_3d(3, 3, 3),
            Torus::new(&[4, 3, 2], &[true, false, true]),
            Torus::torus_1d(7),
            Torus::mesh_1d(6),
        ] {
            let g = as_graph(&t);
            for a in 0..t.num_nodes() {
                for b in 0..t.num_nodes() {
                    assert_eq!(
                        t.distance(a, b),
                        g.distance(a, b),
                        "{} d({a},{b})",
                        t.name()
                    );
                }
            }
        }
    }

    #[test]
    fn paper_intro_machine_stats() {
        // §1: "(16,16,16) 3D-Torus on 4k processors has a diameter of 24
        // hops and the average internode distance of 12 hops."
        let t = Torus::torus_3d(16, 16, 16);
        assert_eq!(t.num_nodes(), 4096);
        assert_eq!(t.diameter(), 24);
        let avg = crate::stats::average_pairwise_distance(&t);
        assert!((avg - 12.0).abs() < 0.02, "avg = {avg}");
    }

    #[test]
    fn diameter_closed_form_matches_bruteforce() {
        for t in [
            Torus::torus_2d(4, 5),
            Torus::mesh_2d(3, 6),
            Torus::torus_3d(3, 3, 4),
            Torus::new(&[5, 2], &[false, true]),
        ] {
            let n = t.num_nodes();
            let mut brute = 0;
            for a in 0..n {
                for b in 0..n {
                    brute = brute.max(t.distance(a, b));
                }
            }
            assert_eq!(t.diameter(), brute, "{}", t.name());
        }
    }

    #[test]
    fn neighbors_degree() {
        let t = Torus::torus_3d(4, 4, 4);
        for a in 0..t.num_nodes() {
            assert_eq!(t.degree(a), 6, "interior torus node has 6 neighbors");
        }
        let m = Torus::mesh_2d(3, 3);
        assert_eq!(m.degree(m.node_at(&[1, 1])), 4);
        assert_eq!(m.degree(m.node_at(&[0, 0])), 2);
        assert_eq!(m.degree(m.node_at(&[0, 1])), 3);
    }

    #[test]
    fn two_wide_wrapped_dim_has_single_link() {
        // With n == 2, +1 and -1 wrap to the same node: degree must not
        // double-count.
        let t = Torus::torus_2d(2, 2);
        for a in 0..4 {
            assert_eq!(t.degree(a), 2);
        }
    }

    #[test]
    fn next_hop_progresses_and_reaches() {
        let t = Torus::new(&[4, 5, 3], &[true, false, true]);
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                if a == b {
                    continue;
                }
                let mut cur = a;
                let mut hops = 0;
                while cur != b {
                    let nxt = t.next_hop(cur, b);
                    assert_eq!(
                        t.distance(nxt, b),
                        t.distance(cur, b) - 1,
                        "hop must reduce distance by exactly 1"
                    );
                    cur = nxt;
                    hops += 1;
                    assert!(hops <= t.diameter(), "routing loop");
                }
                assert_eq!(hops, t.distance(a, b));
            }
        }
    }

    #[test]
    fn sum_distance_closed_form_matches_bruteforce() {
        for t in [
            Torus::torus_2d(5, 4),
            Torus::mesh_2d(4, 7),
            Torus::torus_3d(3, 4, 2),
            Torus::mesh_3d(3, 3, 3),
            Torus::new(&[4, 3, 2], &[true, false, true]),
            Torus::torus_1d(9),
            Torus::mesh_1d(6),
        ] {
            for a in 0..t.num_nodes() {
                let brute: u64 = (0..t.num_nodes()).map(|b| t.distance(a, b) as u64).sum();
                assert_eq!(t.sum_distance_from(a), brute, "{} from {a}", t.name());
            }
        }
    }

    #[test]
    fn distances_into_matches_scalar_distance() {
        for t in [
            Torus::torus_2d(5, 4),
            Torus::mesh_2d(4, 7),
            Torus::torus_3d(3, 4, 2),
            Torus::new(&[4, 3, 2], &[true, false, true]),
            Torus::torus_1d(9),
        ] {
            let n = t.num_nodes();
            // A scrambled, duplicated target list — the free-list shapes the
            // mapping kernels pass in.
            let targets: Vec<NodeId> = (0..n).rev().chain([0, n / 2, 0]).collect();
            let mut got = Vec::new();
            for from in 0..n {
                t.distances_into(from, &targets, &mut got);
                let want: Vec<u32> = targets.iter().map(|&q| t.distance(from, q)).collect();
                assert_eq!(got, want, "{} from {from}", t.name());
            }
        }
    }

    #[test]
    fn balanced_factorizations() {
        assert_eq!(balanced_factors_2(16), (4, 4));
        assert_eq!(balanced_factors_2(18), (3, 6));
        assert_eq!(balanced_factors_2(13), (1, 13));
        assert_eq!(balanced_factors_3(64), (4, 4, 4));
        assert_eq!(balanced_factors_3(512), (8, 8, 8));
        assert_eq!(balanced_factors_3(1000), (10, 10, 10));
        let (a, b, c) = balanced_factors_3(1024);
        assert_eq!(a * b * c, 1024);
        assert!(c - a <= 8, "1024 should factor near-cubically: {a},{b},{c}");
    }

    #[test]
    fn torus_2d_for_perfect_square() {
        let t = Torus::torus_2d_for(4096);
        assert_eq!(t.dims(), &[64, 64]);
    }

    #[test]
    fn name_strings() {
        assert_eq!(Torus::torus_3d(8, 8, 8).name(), "3D-Torus(8x8x8)");
        assert_eq!(Torus::mesh_2d(4, 6).name(), "2D-Mesh(4x6)");
        assert_eq!(
            Torus::new(&[2, 3], &[true, false]).name(),
            "2D-MixedWrap(2x3)"
        );
    }
}
