//! # topomap-topology
//!
//! Processor topology graphs and distance oracles for topology-aware task
//! mapping, reproducing the machine models of Agarwal, Sharma & Kalé,
//! *"Topology-aware task mapping for reducing communication contention on
//! large parallel machines"* (IPDPS 2006).
//!
//! The paper's mapping heuristics (TopoLB / TopoCentLB) need only a *metric*
//! over processors — the shortest-path distance `d_p(p1, p2)` in the
//! interconnect graph — while the network simulator additionally needs
//! *routes* (which physical links a message crosses). The two capabilities
//! are split into two traits:
//!
//! - [`Topology`]: `num_nodes` + `distance` (+ derived statistics). Every
//!   machine model implements this; the mapping algorithms in
//!   `topomap-core` are generic over it.
//! - [`RoutedTopology`]: adds `neighbors`, `degree` and deterministic
//!   shortest-path `next_hop` routing (dimension-ordered on tori/meshes).
//!   The packet simulator in `topomap-netsim` and the per-link load metric
//!   require this.
//!
//! ## Provided machine models
//!
//! | Type | Trait level | Paper role |
//! |------|-------------|------------|
//! | [`Torus`] (N-dimensional, per-dimension wrap flags) | routed | BlueGene 3D-torus / 3D-mesh, 2D tori of §5.2 |
//! | [`Hypercube`] | routed | "networks such as ... hypercubes" (§1) |
//! | [`GraphTopology`] (arbitrary adjacency list) | routed | "our algorithms work for arbitrary network topologies" (§3) |
//! | [`FatTree`] (k-ary tree metric) | metric only | Fat-tree comparison point (§1) |
//! | [`Dragonfly`] (groups × all-to-all global channels) | routed | Hierarchical direct network where global-link contention concentrates |
//!
//! ## Example
//!
//! ```
//! use topomap_topology::{Topology, RoutedTopology, Torus};
//!
//! // The (16,16,16) 3D-torus of the paper's introduction: diameter 24,
//! // average inter-node distance 12.
//! let t = Torus::torus_3d(16, 16, 16);
//! assert_eq!(t.num_nodes(), 4096);
//! assert_eq!(t.diameter(), 24);
//! let avg = topomap_topology::stats::average_pairwise_distance(&t);
//! assert!((avg - 12.0).abs() < 0.01);
//! ```

pub mod cache;
pub mod coords;
pub mod dragonfly;
pub mod fattree;
pub mod graph;
pub mod hierarchy;
pub mod hypercube;
pub mod stats;
pub mod torus;

pub use cache::CachedTopology;
pub use dragonfly::Dragonfly;
pub use fattree::FatTree;
pub use graph::GraphTopology;
pub use hierarchy::Hierarchy;
pub use hypercube::Hypercube;
pub use torus::Torus;

/// Identifier of a processor (a vertex of the topology graph `G_p`).
pub type NodeId = usize;

/// A directed physical link `(from, to)` between adjacent processors.
///
/// The network simulator models each direction of a bidirectional wire as
/// an independent channel (as torus networks do in practice), so links are
/// directed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Link {
    pub from: NodeId,
    pub to: NodeId,
}

impl Link {
    pub fn new(from: NodeId, to: NodeId) -> Self {
        Link { from, to }
    }

    /// The same wire traversed in the opposite direction.
    pub fn reversed(self) -> Self {
        Link {
            from: self.to,
            to: self.from,
        }
    }
}

/// A metric over processors: the interface the mapping heuristics consume.
///
/// `distance` must be a true graph metric (symmetric, zero iff equal,
/// triangle inequality) — the shortest-path distance in the topology graph.
pub trait Topology: Send + Sync {
    /// Number of processors `p = |V_p|`.
    fn num_nodes(&self) -> usize;

    /// Shortest-path distance `d_p(a, b)` in hops.
    fn distance(&self, a: NodeId, b: NodeId) -> u32;

    /// Human-readable name used in experiment output (e.g. `"3D-Torus(8x8x8)"`).
    fn name(&self) -> String;

    /// Largest shortest-path distance between any two processors.
    ///
    /// The default computes it by brute force over all pairs; regular
    /// topologies override with a closed form.
    fn diameter(&self) -> u32 {
        let n = self.num_nodes();
        let mut d = 0;
        for a in 0..n {
            for b in (a + 1)..n {
                d = d.max(self.distance(a, b));
            }
        }
        d
    }

    /// Sum of distances from `node` to every processor (including itself).
    fn sum_distance_from(&self, node: NodeId) -> u64 {
        (0..self.num_nodes())
            .map(|b| self.distance(node, b) as u64)
            .sum()
    }

    /// Bulk distance query: write `distance(from, t)` for each `t` in
    /// `targets` into `out` (cleared first, same order as `targets`).
    ///
    /// This is the hot call of the incremental mapping kernels — one full
    /// column of the fest table per placement — so regular topologies
    /// override it with batched closed forms (per-dimension lookup tables
    /// on tori, matrix-row gathers on cached/BFS topologies) that avoid a
    /// virtual call and a coordinate decode per element. The default just
    /// loops over [`Topology::distance`]; overrides must return bit-identical
    /// values.
    fn distances_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) {
        out.clear();
        out.extend(targets.iter().map(|&t| self.distance(from, t)));
    }

    /// [`Topology::distances_into`] plus the column total `Σ out` in one
    /// call. The incremental kernels want both every placement; regular
    /// topologies override this to accumulate the total inside the gather
    /// pass instead of re-reading the column. The default sums after the
    /// fact (4-lane striped — exact either way for integer distances).
    fn distances_sum_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) -> u64 {
        self.distances_into(from, targets, out);
        let mut s = [0u64; 4];
        for (i, &d) in out.iter().enumerate() {
            s[i & 3] += d as u64;
        }
        (s[0] + s[1]) + (s[2] + s[3])
    }

    /// Spatial position of `node` for geometric mappers (SFC/RCB), or
    /// `None` when the machine has no natural ≤3-D embedding. Grid
    /// machines return their torus/mesh coordinates (z padded with 0);
    /// hierarchical machines return (group, member, 0)-style positions.
    /// Consumers must handle `None` (geometric mappers fall back to
    /// node-id ordering).
    fn node_coords(&self, _node: NodeId) -> Option<[f64; 3]> {
        None
    }
}

/// A topology with explicit links and deterministic shortest-path routing.
pub trait RoutedTopology: Topology {
    /// Append the neighbors of `node` to `out` (cleared first).
    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>);

    /// The neighbors of `node` as a fresh vector (convenience wrapper).
    fn neighbors(&self, node: NodeId) -> Vec<NodeId> {
        let mut v = Vec::new();
        self.neighbors_into(node, &mut v);
        v
    }

    /// Degree of `node` in the topology graph.
    fn degree(&self, node: NodeId) -> usize {
        let mut v = Vec::new();
        self.neighbors_into(node, &mut v);
        v.len()
    }

    /// The next node on the deterministic shortest path from `cur` to
    /// `dest`. Must satisfy `distance(next_hop(c,d), d) == distance(c,d) - 1`
    /// for `c != d` so that repeated application terminates at `dest` along
    /// a shortest path. Panics or returns `cur` when `cur == dest`.
    fn next_hop(&self, cur: NodeId, dest: NodeId) -> NodeId;

    /// Append every *productive* neighbor of `cur` toward `dest` — each
    /// neighbor one hop closer to `dest` — to `out` (cleared first). Used
    /// by minimal-adaptive routing: any choice among these still follows
    /// a shortest path. The default derives them from `distance`; regular
    /// topologies may override with a closed form.
    fn productive_neighbors_into(&self, cur: NodeId, dest: NodeId, out: &mut Vec<NodeId>) {
        debug_assert_ne!(cur, dest);
        let target = self.distance(cur, dest) - 1;
        let mut nbrs = Vec::new();
        self.neighbors_into(cur, &mut nbrs);
        out.clear();
        out.extend(
            nbrs.into_iter()
                .filter(|&v| self.distance(v, dest) == target),
        );
        debug_assert!(
            !out.is_empty(),
            "no productive neighbor on a connected graph"
        );
    }

    /// The full deterministic route from `src` to `dest`, appended to `out`
    /// (cleared first) as a sequence of directed links.
    fn route_into(&self, src: NodeId, dest: NodeId, out: &mut Vec<Link>) {
        out.clear();
        let mut cur = src;
        while cur != dest {
            let nxt = self.next_hop(cur, dest);
            debug_assert_ne!(nxt, cur, "next_hop made no progress");
            out.push(Link::new(cur, nxt));
            cur = nxt;
        }
    }

    /// The full deterministic route as a fresh vector.
    fn route(&self, src: NodeId, dest: NodeId) -> Vec<Link> {
        let mut v = Vec::new();
        self.route_into(src, dest, &mut v);
        v
    }

    /// Every directed link in the topology, in a deterministic order.
    fn links(&self) -> Vec<Link> {
        let n = self.num_nodes();
        let mut out = Vec::new();
        let mut nbrs = Vec::new();
        for a in 0..n {
            self.neighbors_into(a, &mut nbrs);
            for &b in &nbrs {
                out.push(Link::new(a, b));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Blanket impls so `&T` and `Box<dyn ...>` work wherever `T: Topology` does.
impl<T: Topology + ?Sized> Topology for &T {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        (**self).distance(a, b)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn diameter(&self) -> u32 {
        (**self).diameter()
    }
    fn sum_distance_from(&self, node: NodeId) -> u64 {
        (**self).sum_distance_from(node)
    }
    fn distances_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) {
        (**self).distances_into(from, targets, out)
    }

    fn distances_sum_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) -> u64 {
        (**self).distances_sum_into(from, targets, out)
    }
    fn node_coords(&self, node: NodeId) -> Option<[f64; 3]> {
        (**self).node_coords(node)
    }
}

impl<T: Topology + ?Sized> Topology for Box<T> {
    fn num_nodes(&self) -> usize {
        (**self).num_nodes()
    }
    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        (**self).distance(a, b)
    }
    fn name(&self) -> String {
        (**self).name()
    }
    fn diameter(&self) -> u32 {
        (**self).diameter()
    }
    fn sum_distance_from(&self, node: NodeId) -> u64 {
        (**self).sum_distance_from(node)
    }
    fn distances_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) {
        (**self).distances_into(from, targets, out)
    }

    fn distances_sum_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) -> u64 {
        (**self).distances_sum_into(from, targets, out)
    }
    fn node_coords(&self, node: NodeId) -> Option<[f64; 3]> {
        (**self).node_coords(node)
    }
}

impl<T: RoutedTopology + ?Sized> RoutedTopology for &T {
    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        (**self).neighbors_into(node, out)
    }
    fn next_hop(&self, cur: NodeId, dest: NodeId) -> NodeId {
        (**self).next_hop(cur, dest)
    }
    fn productive_neighbors_into(&self, cur: NodeId, dest: NodeId, out: &mut Vec<NodeId>) {
        (**self).productive_neighbors_into(cur, dest, out)
    }
}

impl<T: RoutedTopology + ?Sized> RoutedTopology for Box<T> {
    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        (**self).neighbors_into(node, out)
    }
    fn next_hop(&self, cur: NodeId, dest: NodeId) -> NodeId {
        (**self).next_hop(cur, dest)
    }
    fn productive_neighbors_into(&self, cur: NodeId, dest: NodeId, out: &mut Vec<NodeId>) {
        (**self).productive_neighbors_into(cur, dest, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_reversal_is_involutive() {
        let l = Link::new(3, 7);
        assert_eq!(l.reversed().reversed(), l);
        assert_eq!(l.reversed(), Link::new(7, 3));
    }

    #[test]
    fn trait_object_dispatch_works() {
        let t: Box<dyn Topology> = Box::new(Torus::torus_2d(4, 4));
        assert_eq!(t.num_nodes(), 16);
        assert_eq!(t.distance(0, 15), t.distance(15, 0));
    }

    #[test]
    fn reference_forwarding_matches_value() {
        let t = Torus::mesh_2d(3, 5);
        let r: &dyn Topology = &t;
        for a in 0..t.num_nodes() {
            for b in 0..t.num_nodes() {
                assert_eq!(t.distance(a, b), r.distance(a, b));
            }
        }
        assert_eq!(t.diameter(), r.diameter());
    }

    #[test]
    fn distances_into_forwards_through_ref_and_box() {
        let t = Torus::torus_2d(4, 5);
        let boxed: Box<dyn Topology> = Box::new(Torus::torus_2d(4, 5));
        let targets: Vec<NodeId> = vec![0, 7, 19, 3, 3, 12];
        let (mut a, mut b, mut c) = (Vec::new(), Vec::new(), Vec::new());
        t.distances_into(9, &targets, &mut a);
        (&t as &dyn Topology).distances_into(9, &targets, &mut b);
        boxed.distances_into(9, &targets, &mut c);
        let want: Vec<u32> = targets.iter().map(|&q| t.distance(9, q)).collect();
        assert_eq!(a, want);
        assert_eq!(b, want);
        assert_eq!(c, want);
    }

    #[test]
    fn routes_have_metric_length() {
        let t = Torus::torus_3d(4, 3, 5);
        for (a, b) in [(0usize, 59usize), (7, 31), (12, 12), (58, 1)] {
            let r = t.route(a, b);
            assert_eq!(r.len() as u32, t.distance(a, b));
            // Route is contiguous and ends at b.
            let mut cur = a;
            for l in &r {
                assert_eq!(l.from, cur);
                cur = l.to;
            }
            assert_eq!(cur, b);
        }
    }

    #[test]
    fn links_are_unique_and_paired() {
        let t = Torus::mesh_2d(4, 4);
        let links = t.links();
        let mut seen = std::collections::HashSet::new();
        for l in &links {
            assert!(seen.insert(*l), "duplicate link {:?}", l);
        }
        // Every directed link's reverse exists (bidirectional wires).
        for l in &links {
            assert!(seen.contains(&l.reversed()));
        }
    }
}
