//! Linearization helpers for N-dimensional grids.
//!
//! Nodes of a mesh/torus are numbered row-major: dimension 0 has the
//! largest stride, the last dimension is contiguous. All arithmetic stays
//! allocation-free via the fixed-capacity [`Coords`] type (up to
//! [`MAX_DIMS`] dimensions, which covers every machine in the paper — the
//! 6D tori of later BlueGene generations included).

/// Maximum supported grid dimensionality.
pub const MAX_DIMS: usize = 8;

/// A small, copyable coordinate vector (length ≤ [`MAX_DIMS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Coords {
    len: u8,
    xs: [u32; MAX_DIMS],
}

impl Coords {
    /// Build from a slice. Panics if more than [`MAX_DIMS`] entries.
    pub fn from_slice(xs: &[usize]) -> Self {
        assert!(
            xs.len() <= MAX_DIMS,
            "at most {MAX_DIMS} dimensions supported"
        );
        let mut a = [0u32; MAX_DIMS];
        for (i, &x) in xs.iter().enumerate() {
            a[i] = u32::try_from(x).expect("coordinate fits in u32");
        }
        Coords {
            len: xs.len() as u8,
            xs: a,
        }
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn get(&self, dim: usize) -> usize {
        debug_assert!(dim < self.len());
        self.xs[dim] as usize
    }

    pub fn set(&mut self, dim: usize, v: usize) {
        debug_assert!(dim < self.len());
        self.xs[dim] = v as u32;
    }

    pub fn as_vec(&self) -> Vec<usize> {
        (0..self.len()).map(|d| self.get(d)).collect()
    }
}

/// Row-major strides for the given dimension sizes.
///
/// `strides[d]` is the node-id increment for a +1 step in dimension `d`.
pub fn strides(dims: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; dims.len()];
    for d in (0..dims.len().saturating_sub(1)).rev() {
        s[d] = s[d + 1] * dims[d + 1];
    }
    s
}

/// Linear node id of `coords` in a grid of size `dims` (row-major).
pub fn linearize(coords: &[usize], dims: &[usize]) -> usize {
    debug_assert_eq!(coords.len(), dims.len());
    let mut id = 0usize;
    for (d, (&c, &n)) in coords.iter().zip(dims).enumerate() {
        debug_assert!(c < n, "coordinate {c} out of range {n} in dim {d}");
        id = id * n + c;
    }
    id
}

/// Inverse of [`linearize`].
pub fn delinearize(mut id: usize, dims: &[usize]) -> Coords {
    let mut xs = [0u32; MAX_DIMS];
    for d in (0..dims.len()).rev() {
        xs[d] = (id % dims[d]) as u32;
        id /= dims[d];
    }
    debug_assert_eq!(id, 0, "node id out of range for grid");
    Coords {
        len: dims.len() as u8,
        xs,
    }
}

/// The coordinate of node `id` in dimension `dim` without materializing
/// the full coordinate vector. `stride` must come from [`strides`].
#[inline]
pub fn coord_of(id: usize, dim_size: usize, stride: usize) -> usize {
    (id / stride) % dim_size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[4, 3, 5]), vec![15, 5, 1]);
        assert_eq!(strides(&[7]), vec![1]);
        assert_eq!(strides(&[2, 2]), vec![2, 1]);
    }

    #[test]
    fn linearize_roundtrip_exhaustive() {
        let dims = [3usize, 4, 5];
        for id in 0..60 {
            let c = delinearize(id, &dims);
            assert_eq!(linearize(&c.as_vec(), &dims), id);
        }
    }

    #[test]
    fn coord_of_matches_delinearize() {
        let dims = [4usize, 6, 2];
        let st = strides(&dims);
        for id in 0..48 {
            let c = delinearize(id, &dims);
            for d in 0..3 {
                assert_eq!(coord_of(id, dims[d], st[d]), c.get(d));
            }
        }
    }

    #[test]
    fn coords_set_get() {
        let mut c = Coords::from_slice(&[1, 2, 3]);
        assert_eq!(c.len(), 3);
        c.set(1, 9);
        assert_eq!(c.get(1), 9);
        assert_eq!(c.as_vec(), vec![1, 9, 3]);
    }

    #[test]
    #[should_panic]
    fn too_many_dims_panics() {
        Coords::from_slice(&[0; MAX_DIMS + 1]);
    }
}
