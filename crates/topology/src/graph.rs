//! Arbitrary network topologies given as adjacency lists.
//!
//! The paper states (§3) that the algorithms "work for arbitrary network
//! topologies" — this type is that escape hatch. Distances come from an
//! all-pairs BFS computed once at construction (the topology graph is
//! unweighted); deterministic shortest-path routing uses a next-hop table
//! derived from the same BFS forest (lowest-id parent wins, so routes are
//! reproducible across runs and platforms).

use crate::{NodeId, RoutedTopology, Topology};

/// An arbitrary connected topology with cached all-pairs distances.
///
/// Memory: `p²` u32 distances + `p²` u32 next hops — fine for the
/// irregular-machine sizes this is meant for (the regular families use
/// closed forms instead).
#[derive(Debug, Clone)]
pub struct GraphTopology {
    n: usize,
    /// CSR adjacency.
    xadj: Vec<usize>,
    adj: Vec<NodeId>,
    /// Row-major `n × n` distance matrix.
    dist: Vec<u32>,
    /// Row-major `n × n` next-hop matrix; `next[a*n+b]` is the first hop on
    /// the canonical shortest path a→b (undefined as `a` when a == b).
    next: Vec<u32>,
    name: String,
}

impl GraphTopology {
    /// Build from undirected edges over `n` nodes. Self-loops and duplicate
    /// edges are ignored. Panics if the graph is disconnected (a topology
    /// must have finite distances) or any endpoint is out of range.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Self {
        Self::from_edges_named(n, edges, format!("Graph({n} nodes)"))
    }

    /// Like [`Self::from_edges`] with an explicit display name.
    pub fn from_edges_named(n: usize, edges: &[(NodeId, NodeId)], name: String) -> Self {
        assert!(n > 0, "empty topology");
        // Deduplicate into sorted undirected adjacency.
        let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len() * 2);
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            if a == b {
                continue;
            }
            pairs.push((a, b));
            pairs.push((b, a));
        }
        pairs.sort_unstable();
        pairs.dedup();

        let mut xadj = vec![0usize; n + 1];
        for &(a, _) in &pairs {
            xadj[a + 1] += 1;
        }
        for i in 0..n {
            xadj[i + 1] += xadj[i];
        }
        let adj: Vec<NodeId> = pairs.iter().map(|&(_, b)| b).collect();

        let mut g = GraphTopology {
            n,
            xadj,
            adj,
            dist: vec![u32::MAX; n * n],
            next: vec![u32::MAX; n * n],
            name,
        };
        g.compute_apsp();
        g
    }

    /// A ring of `n` processors (equivalent to a 1-D torus, provided for
    /// irregular-topology testing).
    pub fn ring(n: usize) -> Self {
        assert!(n >= 2);
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Self::from_edges_named(n, &edges, format!("Ring({n})"))
    }

    /// A star: node 0 is the hub, nodes `1..n` are leaves.
    pub fn star(n: usize) -> Self {
        assert!(n >= 2);
        let edges: Vec<(usize, usize)> = (1..n).map(|i| (0, i)).collect();
        Self::from_edges_named(n, &edges, format!("Star({n})"))
    }

    /// A complete graph (crossbar): every pair directly connected.
    pub fn complete(n: usize) -> Self {
        assert!(n >= 1);
        let mut edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                edges.push((a, b));
            }
        }
        Self::from_edges_named(n, &edges, format!("Crossbar({n})"))
    }

    /// Materialize any routed topology into an explicit graph (useful for
    /// cross-validating closed-form implementations).
    pub fn from_topology<T: RoutedTopology>(t: &T) -> Self {
        let n = t.num_nodes();
        let mut edges = Vec::new();
        let mut nbrs = Vec::new();
        for a in 0..n {
            t.neighbors_into(a, &mut nbrs);
            for &b in &nbrs {
                if a < b {
                    edges.push((a, b));
                }
            }
        }
        Self::from_edges_named(n, &edges, t.name())
    }

    fn adjacency(&self, node: NodeId) -> &[NodeId] {
        &self.adj[self.xadj[node]..self.xadj[node + 1]]
    }

    /// BFS from every source, filling `dist` and `next`.
    ///
    /// `next[a][b]` is derived backwards: for the BFS tree rooted at `b`,
    /// the first hop from `a` toward `b` is `a`'s BFS parent. Scanning
    /// neighbors in sorted id order makes the choice canonical.
    fn compute_apsp(&mut self) {
        let n = self.n;
        let mut queue: Vec<NodeId> = Vec::with_capacity(n);
        for root in 0..n {
            // BFS rooted at `root`; parent[v] = first hop from v toward root.
            queue.clear();
            queue.push(root);
            self.dist[root * n + root] = 0;
            self.next[root * n + root] = root as u32;
            let mut head = 0;
            while head < queue.len() {
                let v = queue[head];
                head += 1;
                let dv = self.dist[v * n + root];
                for &w in &self.adj[self.xadj[v]..self.xadj[v + 1]] {
                    let slot = w * n + root;
                    if self.dist[slot] == u32::MAX {
                        self.dist[slot] = dv + 1;
                        self.next[slot] = v as u32;
                        queue.push(w);
                    }
                }
            }
            assert_eq!(
                queue.len(),
                n,
                "topology graph must be connected (BFS from {root} reached {} of {n})",
                queue.len()
            );
        }
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }
}

impl Topology for GraphTopology {
    fn num_nodes(&self) -> usize {
        self.n
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        debug_assert!(a < self.n && b < self.n);
        self.dist[a * self.n + b]
    }

    fn name(&self) -> String {
        self.name.clone()
    }

    fn diameter(&self) -> u32 {
        self.dist.iter().copied().max().unwrap_or(0)
    }

    fn distances_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) {
        let row = &self.dist[from * self.n..(from + 1) * self.n];
        out.clear();
        out.extend(targets.iter().map(|&t| row[t]));
    }
}

impl RoutedTopology for GraphTopology {
    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend_from_slice(self.adjacency(node));
    }

    fn next_hop(&self, cur: NodeId, dest: NodeId) -> NodeId {
        debug_assert_ne!(cur, dest);
        self.next[cur * self.n + dest] as NodeId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Torus;

    #[test]
    fn ring_distances() {
        let g = GraphTopology::ring(6);
        assert_eq!(g.distance(0, 3), 3);
        assert_eq!(g.distance(0, 5), 1);
        assert_eq!(g.distance(2, 2), 0);
        assert_eq!(g.diameter(), 3);
    }

    #[test]
    fn star_distances() {
        let g = GraphTopology::star(5);
        assert_eq!(g.distance(0, 4), 1);
        assert_eq!(g.distance(1, 4), 2);
        assert_eq!(g.diameter(), 2);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn complete_graph_diameter_one() {
        let g = GraphTopology::complete(7);
        assert_eq!(g.diameter(), 1);
        assert_eq!(g.num_edges(), 21);
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn disconnected_graph_rejected() {
        GraphTopology::from_edges(4, &[(0, 1), (2, 3)]);
    }

    #[test]
    fn duplicate_and_self_edges_ignored() {
        let g = GraphTopology::from_edges(3, &[(0, 1), (1, 0), (0, 0), (1, 2), (1, 2)]);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
    }

    #[test]
    fn symmetric_distances() {
        let g =
            GraphTopology::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (0, 5), (1, 4)]);
        for a in 0..6 {
            for b in 0..6 {
                assert_eq!(g.distance(a, b), g.distance(b, a));
            }
        }
    }

    #[test]
    fn routing_matches_distance() {
        let g = GraphTopology::from_edges(
            7,
            &[
                (0, 1),
                (1, 2),
                (2, 3),
                (3, 0),
                (2, 4),
                (4, 5),
                (5, 6),
                (6, 2),
            ],
        );
        for a in 0..7 {
            for b in 0..7 {
                if a == b {
                    continue;
                }
                assert_eq!(g.route(a, b).len() as u32, g.distance(a, b));
            }
        }
    }

    #[test]
    fn materialized_torus_matches_closed_form() {
        let t = Torus::torus_2d(4, 5);
        let g = GraphTopology::from_topology(&t);
        for a in 0..20 {
            for b in 0..20 {
                assert_eq!(t.distance(a, b), g.distance(a, b));
            }
        }
        assert_eq!(g.name(), t.name());
    }
}
