//! Dragonfly topology: `g` groups of `a` routers, all-to-all local links
//! inside each group and per-router global channels between groups.
//!
//! This models the dragonfly class of Kim/Dally-style hierarchical
//! direct networks that the geometric-partitioning line of work targets:
//! dense electrical groups joined by a sparse all-to-all layer of optical
//! global links. We use the *per-router global channel* variant — router
//! `r` of group `i` has a dedicated global link to router `r` of every
//! other group — i.e. the Cartesian product `K_g □ K_a`. Unlike the
//! gateway-router formulation (whose closed-form "local + global + local"
//! cost is not a graph metric — it can violate the triangle inequality),
//! this variant's shortest-path distance is exactly the number of
//! differing coordinates, which satisfies every [`Topology`] axiom and is
//! cross-checked against BFS in the property suite.
//!
//! Node `n` is router `n % a` of group `n / a`:
//!
//! - distance 1: same group (local link) or same router index (global link),
//! - distance 2: different group *and* different router index,
//! - diameter 2 (once both `g > 1` and `a > 1`).
//!
//! Deterministic routing is global-first (take the global channel out of
//! the source group, then the local hop), mirroring dimension-order
//! routing on tori. For distance-2 pairs there are exactly two minimal
//! routes — global-then-local and local-then-global — which is what makes
//! global links the interesting adaptive-routing choice: minimal-adaptive
//! routing picks whichever of the two first links is free.

use crate::{NodeId, RoutedTopology, Topology};

/// A dragonfly machine: `groups` groups × `routers` routers per group,
/// all-to-all within a group, per-router global channels between groups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dragonfly {
    groups: usize,
    routers: usize,
    nodes: usize,
}

impl Dragonfly {
    /// Build a dragonfly with `groups` groups of `routers` routers each.
    /// Panics if either is zero.
    pub fn new(groups: usize, routers: usize) -> Self {
        assert!(groups > 0, "dragonfly needs at least one group");
        assert!(routers > 0, "dragonfly needs at least one router per group");
        let nodes = groups
            .checked_mul(routers)
            .expect("dragonfly size overflows usize");
        Dragonfly {
            groups,
            routers,
            nodes,
        }
    }

    /// Number of groups `g`.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// Routers per group `a`.
    pub fn routers(&self) -> usize {
        self.routers
    }

    /// Group index of `node` (`node / a`).
    pub fn group_of(&self, node: NodeId) -> usize {
        node / self.routers
    }

    /// Router index of `node` within its group (`node % a`).
    pub fn router_of(&self, node: NodeId) -> usize {
        node % self.routers
    }

    /// `(group, router)` coordinates of `node`.
    pub fn coords(&self, node: NodeId) -> (usize, usize) {
        (self.group_of(node), self.router_of(node))
    }

    /// Node id of router `router` in group `group` (inverse of
    /// [`Dragonfly::coords`]).
    pub fn node_of(&self, group: usize, router: usize) -> NodeId {
        debug_assert!(group < self.groups && router < self.routers);
        group * self.routers + router
    }

    /// Whether the directed link `(from, to)` is a global (inter-group)
    /// channel rather than a local one.
    pub fn is_global_link(&self, from: NodeId, to: NodeId) -> bool {
        self.group_of(from) != self.group_of(to)
    }
}

impl Topology for Dragonfly {
    fn num_nodes(&self) -> usize {
        self.nodes
    }

    fn node_coords(&self, node: NodeId) -> Option<[f64; 3]> {
        let (g, r) = self.coords(node);
        Some([g as f64, r as f64, 0.0])
    }

    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        let (ga, ra) = self.coords(a);
        let (gb, rb) = self.coords(b);
        (ga != gb) as u32 + (ra != rb) as u32
    }

    fn name(&self) -> String {
        format!("Dragonfly({}g x {}r)", self.groups, self.routers)
    }

    fn diameter(&self) -> u32 {
        match (self.groups > 1, self.routers > 1) {
            (true, true) => 2,
            (false, false) => 0,
            _ => 1,
        }
    }

    fn sum_distance_from(&self, _node: NodeId) -> u64 {
        // Vertex-transitive: (a-1) local + (g-1) global peers at distance 1,
        // the remaining (g-1)(a-1) at distance 2.
        let (g, a) = (self.groups as u64, self.routers as u64);
        (a - 1) + (g - 1) + 2 * (g - 1) * (a - 1)
    }
}

impl RoutedTopology for Dragonfly {
    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        out.clear();
        let (g, r) = self.coords(node);
        for j in 0..self.groups {
            if j == g {
                for q in 0..self.routers {
                    if q != r {
                        out.push(self.node_of(g, q));
                    }
                }
            } else {
                out.push(self.node_of(j, r));
            }
        }
    }

    fn next_hop(&self, cur: NodeId, dest: NodeId) -> NodeId {
        let (gc, rc) = self.coords(cur);
        let (gd, _) = self.coords(dest);
        if gc == gd {
            // Same group: one local hop finishes the route.
            dest
        } else {
            // Global-first: exit on cur's own global channel toward gd.
            // When rc == rd this already *is* dest.
            self.node_of(gd, rc)
        }
    }

    fn productive_neighbors_into(&self, cur: NodeId, dest: NodeId, out: &mut Vec<NodeId>) {
        debug_assert_ne!(cur, dest);
        out.clear();
        let (gc, rc) = self.coords(cur);
        let (gd, rd) = self.coords(dest);
        if gc == gd || rc == rd {
            out.push(dest);
        } else {
            // Two minimal first hops: fix the router index locally, or fix
            // the group globally. Emit in ascending node-id order to match
            // the neighbor enumeration the default derivation would use.
            let local = self.node_of(gc, rd);
            let global = self.node_of(gd, rc);
            out.push(local.min(global));
            out.push(local.max(global));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let d = Dragonfly::new(4, 6);
        for n in 0..d.num_nodes() {
            let (g, r) = d.coords(n);
            assert!(g < 4 && r < 6);
            assert_eq!(d.node_of(g, r), n);
        }
    }

    #[test]
    fn distance_counts_differing_coords() {
        let d = Dragonfly::new(3, 4);
        assert_eq!(d.distance(0, 0), 0);
        assert_eq!(d.distance(d.node_of(0, 1), d.node_of(0, 3)), 1); // local
        assert_eq!(d.distance(d.node_of(0, 2), d.node_of(2, 2)), 1); // global
        assert_eq!(d.distance(d.node_of(0, 1), d.node_of(2, 3)), 2);
    }

    #[test]
    fn diameter_edge_cases() {
        assert_eq!(Dragonfly::new(1, 1).diameter(), 0);
        assert_eq!(Dragonfly::new(1, 5).diameter(), 1); // one group = K_5
        assert_eq!(Dragonfly::new(5, 1).diameter(), 1); // one router each = K_5
        assert_eq!(Dragonfly::new(3, 4).diameter(), 2);
    }

    #[test]
    fn sum_distance_matches_brute_force() {
        let d = Dragonfly::new(4, 5);
        for node in [0, 7, 19] {
            let brute: u64 = (0..d.num_nodes()).map(|b| d.distance(node, b) as u64).sum();
            assert_eq!(d.sum_distance_from(node), brute);
        }
    }

    #[test]
    fn degree_is_locals_plus_globals() {
        let d = Dragonfly::new(4, 6);
        for n in 0..d.num_nodes() {
            assert_eq!(d.degree(n), (6 - 1) + (4 - 1));
        }
    }

    #[test]
    fn routes_are_global_first_and_minimal() {
        let d = Dragonfly::new(4, 4);
        let src = d.node_of(1, 2);
        let dst = d.node_of(3, 0);
        let route = d.route(src, dst);
        assert_eq!(route.len(), 2);
        assert!(d.is_global_link(route[0].from, route[0].to));
        assert!(!d.is_global_link(route[1].from, route[1].to));
        for (a, b) in [(0usize, 15usize), (5, 5), (2, 14), (9, 1)] {
            assert_eq!(d.route(a, b).len() as u32, d.distance(a, b));
        }
    }

    #[test]
    fn link_count_is_locals_plus_globals() {
        let (g, a) = (4usize, 5usize);
        let d = Dragonfly::new(g, a);
        // Directed: a(a-1) local per group, plus a global channels per
        // ordered group pair.
        assert_eq!(d.links().len(), g * a * (a - 1) + g * (g - 1) * a);
    }
}
