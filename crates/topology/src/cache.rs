//! Distance-matrix caching wrapper.
//!
//! The mapping algorithms issue O(p²)–O(p³) distance queries. For the
//! regular families (torus, hypercube) the closed forms are already
//! O(1)-cheap, but for metric-only topologies with non-trivial `distance`
//! (deep fat-trees, user-defined metrics) a precomputed `p × p` matrix
//! trades O(p²) u32 memory for constant-time lookups. [`CachedTopology`]
//! wraps any topology and serves `distance`/`sum_distance_from` from the
//! matrix, delegating everything else.

use crate::{NodeId, RoutedTopology, Topology};

/// A topology wrapper with a precomputed all-pairs distance matrix.
#[derive(Debug, Clone)]
pub struct CachedTopology<T> {
    inner: T,
    n: usize,
    dist: Vec<u32>,
    row_sums: Vec<u64>,
    diameter: u32,
}

impl<T: Topology> CachedTopology<T> {
    /// Precompute the matrix (O(p²) `inner.distance` calls, once).
    pub fn new(inner: T) -> Self {
        let n = inner.num_nodes();
        let mut dist = vec![0u32; n * n];
        let mut row_sums = vec![0u64; n];
        let mut diameter = 0u32;
        for a in 0..n {
            let mut sum = 0u64;
            for b in 0..n {
                let d = inner.distance(a, b);
                dist[a * n + b] = d;
                sum += d as u64;
                diameter = diameter.max(d);
            }
            row_sums[a] = sum;
        }
        CachedTopology {
            inner,
            n,
            dist,
            row_sums,
            diameter,
        }
    }

    /// The wrapped topology.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Unwrap.
    pub fn into_inner(self) -> T {
        self.inner
    }

    /// Memory held by the cache, in bytes.
    pub fn cache_bytes(&self) -> usize {
        self.dist.len() * std::mem::size_of::<u32>()
            + self.row_sums.len() * std::mem::size_of::<u64>()
    }
}

impl<T: Topology> Topology for CachedTopology<T> {
    fn num_nodes(&self) -> usize {
        self.n
    }

    #[inline]
    fn distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist[a * self.n + b]
    }

    fn name(&self) -> String {
        self.inner.name()
    }

    fn diameter(&self) -> u32 {
        self.diameter
    }

    fn sum_distance_from(&self, node: NodeId) -> u64 {
        self.row_sums[node]
    }

    fn distances_into(&self, from: NodeId, targets: &[NodeId], out: &mut Vec<u32>) {
        let row = &self.dist[from * self.n..(from + 1) * self.n];
        out.clear();
        out.extend(targets.iter().map(|&t| row[t]));
    }

    fn node_coords(&self, node: NodeId) -> Option<[f64; 3]> {
        self.inner.node_coords(node)
    }
}

impl<T: RoutedTopology> RoutedTopology for CachedTopology<T> {
    fn neighbors_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        self.inner.neighbors_into(node, out)
    }

    fn next_hop(&self, cur: NodeId, dest: NodeId) -> NodeId {
        self.inner.next_hop(cur, dest)
    }

    fn productive_neighbors_into(&self, cur: NodeId, dest: NodeId, out: &mut Vec<NodeId>) {
        self.inner.productive_neighbors_into(cur, dest, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FatTree, Torus};

    #[test]
    fn matches_inner_everywhere() {
        let t = Torus::new(&[3, 4, 2], &[true, false, true]);
        let c = CachedTopology::new(t.clone());
        for a in 0..t.num_nodes() {
            assert_eq!(c.sum_distance_from(a), t.sum_distance_from(a));
            for b in 0..t.num_nodes() {
                assert_eq!(c.distance(a, b), t.distance(a, b));
            }
        }
        assert_eq!(c.diameter(), t.diameter());
        assert_eq!(c.name(), t.name());
    }

    #[test]
    fn works_for_metric_only_topologies() {
        let f = FatTree::new(3, 3);
        let c = CachedTopology::new(f);
        assert_eq!(c.num_nodes(), 27);
        assert_eq!(c.distance(0, 26), 6);
        assert_eq!(c.cache_bytes(), 27 * 27 * 4 + 27 * 8);
    }

    #[test]
    fn routing_passthrough() {
        let t = Torus::torus_2d(4, 4);
        let c = CachedTopology::new(t.clone());
        for a in 0..16 {
            assert_eq!(c.neighbors(a), t.neighbors(a));
            for b in 0..16 {
                if a != b {
                    assert_eq!(c.route(a, b), t.route(a, b));
                }
            }
        }
    }

    #[test]
    fn unwrap_roundtrip() {
        let t = Torus::torus_1d(5);
        let c = CachedTopology::new(t.clone());
        assert_eq!(c.inner(), &t);
        assert_eq!(c.into_inner(), t);
    }
}
