//! Property-based tests for the topology metric and routing invariants.

use proptest::prelude::*;
use topomap_topology::{
    stats, CachedTopology, Dragonfly, FatTree, GraphTopology, Hierarchy, Hypercube, RoutedTopology,
    Topology, Torus,
};

/// Strategy producing small dragonflies, including the degenerate
/// one-group and one-router-per-group shapes.
fn arb_dragonfly() -> impl Strategy<Value = Dragonfly> {
    (1usize..=6, 1usize..=6).prop_map(|(g, a)| Dragonfly::new(g, a))
}

/// Strategy producing small random tori/meshes (≤ ~200 nodes).
fn arb_torus() -> impl Strategy<Value = Torus> {
    (
        proptest::collection::vec(1usize..=6, 1..=4),
        proptest::collection::vec(any::<bool>(), 4),
    )
        .prop_map(|(dims, wrap)| {
            let wrap = &wrap[..dims.len()];
            Torus::new(&dims, wrap)
        })
}

/// Strategy producing small random connected graphs: a random spanning
/// path plus extra random edges.
fn arb_connected_graph() -> impl Strategy<Value = GraphTopology> {
    (2usize..=24).prop_flat_map(|n| {
        let extra = proptest::collection::vec((0..n, 0..n), 0..(2 * n));
        extra.prop_map(move |extra| {
            let mut edges: Vec<(usize, usize)> = (1..n).map(|i| (i - 1, i)).collect();
            edges.extend(extra.into_iter().filter(|&(a, b)| a != b));
            GraphTopology::from_edges(n, &edges)
        })
    })
}

proptest! {
    #[test]
    fn torus_metric_axioms(t in arb_torus(), seed in any::<u64>()) {
        let n = t.num_nodes();
        let a = (seed as usize) % n;
        let b = (seed as usize / 7) % n;
        let c = (seed as usize / 49) % n;
        prop_assert_eq!(t.distance(a, a), 0);
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
        prop_assert!(t.distance(a, b) <= t.diameter());
    }

    #[test]
    fn torus_closed_form_equals_bfs(t in arb_torus()) {
        let g = GraphTopology::from_topology(&t);
        let n = t.num_nodes();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(t.distance(a, b), g.distance(a, b));
            }
        }
    }

    #[test]
    fn torus_routing_reaches_destination(t in arb_torus(), seed in any::<u64>()) {
        let n = t.num_nodes();
        let a = (seed as usize) % n;
        let b = (seed as usize / 13) % n;
        let route = t.route(a, b);
        prop_assert_eq!(route.len() as u32, t.distance(a, b));
        let mut cur = a;
        for l in &route {
            prop_assert_eq!(l.from, cur);
            prop_assert_eq!(t.distance(cur, l.to), 1);
            cur = l.to;
        }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn graph_metric_axioms(g in arb_connected_graph(), seed in any::<u64>()) {
        let n = g.num_nodes();
        let a = (seed as usize) % n;
        let b = (seed as usize / 7) % n;
        let c = (seed as usize / 49) % n;
        prop_assert_eq!(g.distance(a, a), 0);
        prop_assert_eq!(g.distance(a, b), g.distance(b, a));
        prop_assert!(g.distance(a, c) <= g.distance(a, b) + g.distance(b, c));
    }

    #[test]
    fn graph_routing_is_shortest(g in arb_connected_graph()) {
        let n = g.num_nodes();
        for a in 0..n {
            for b in 0..n {
                if a == b { continue; }
                prop_assert_eq!(g.route(a, b).len() as u32, g.distance(a, b));
            }
        }
    }

    #[test]
    fn neighbors_agree_with_distance_one(t in arb_torus()) {
        let n = t.num_nodes();
        let mut nbrs = Vec::new();
        for a in 0..n {
            t.neighbors_into(a, &mut nbrs);
            for &b in &nbrs {
                prop_assert_eq!(t.distance(a, b), 1, "{} {} {}", t.name(), a, b);
            }
            // And conversely: every distance-1 node is a neighbor.
            for b in 0..n {
                if t.distance(a, b) == 1 {
                    prop_assert!(nbrs.contains(&b));
                }
            }
        }
    }

    #[test]
    fn avg_dist_table_consistent(t in arb_torus()) {
        let table = stats::AvgDistTable::new(&t);
        let n = t.num_nodes();
        for a in 0..n {
            let s: u64 = (0..n).map(|b| t.distance(a, b) as u64).sum();
            prop_assert_eq!(table.sum(a), s);
        }
        let center = table.center();
        for a in 0..n {
            prop_assert!(table.sum(center) <= table.sum(a));
        }
    }

    #[test]
    fn hypercube_metric_is_hamming(dims in 1u32..=8, seed in any::<u64>()) {
        let h = Hypercube::new(dims);
        let n = h.num_nodes();
        let a = (seed as usize) % n;
        let b = (seed as usize / 3) % n;
        prop_assert_eq!(h.distance(a, b), (a ^ b).count_ones());
        if a != b {
            prop_assert_eq!(h.route(a, b).len() as u32, h.distance(a, b));
        }
    }

    #[test]
    fn productive_neighbors_are_exactly_the_closer_ones(t in arb_torus(), seed in any::<u64>()) {
        let n = t.num_nodes();
        let a = (seed as usize) % n;
        let b = (seed as usize / 3) % n;
        prop_assume!(a != b);
        let mut prod = Vec::new();
        t.productive_neighbors_into(a, b, &mut prod);
        prop_assert!(!prod.is_empty());
        let d = t.distance(a, b);
        let mut expected: Vec<usize> = t
            .neighbors(a)
            .into_iter()
            .filter(|&v| t.distance(v, b) == d - 1)
            .collect();
        let mut got = prod.clone();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        // The deterministic next hop is always among the productive set.
        prop_assert!(prod.contains(&t.next_hop(a, b)));
    }

    #[test]
    fn cached_topology_is_transparent(t in arb_torus()) {
        let c = CachedTopology::new(t.clone());
        let n = t.num_nodes();
        for a in 0..n {
            prop_assert_eq!(c.sum_distance_from(a), t.sum_distance_from(a));
            for b in 0..n {
                prop_assert_eq!(c.distance(a, b), t.distance(a, b));
            }
        }
        prop_assert_eq!(c.diameter(), t.diameter());
        prop_assert_eq!(c.links(), t.links());
    }

    #[test]
    fn fattree_metric_axioms(arity in 2usize..=4, levels in 1u32..=3, seed in any::<u64>()) {
        let t = FatTree::new(arity, levels);
        let n = t.num_nodes();
        let a = (seed as usize) % n;
        let b = (seed as usize / 11) % n;
        let c = (seed as usize / 121) % n;
        prop_assert_eq!(t.distance(a, a), 0);
        prop_assert_eq!(t.distance(a, b), t.distance(b, a));
        prop_assert!(t.distance(a, c) <= t.distance(a, b) + t.distance(b, c));
        // Fat-tree distances are always even.
        prop_assert_eq!(t.distance(a, b) % 2, 0);
    }

    #[test]
    fn dragonfly_metric_axioms(d in arb_dragonfly(), seed in any::<u64>()) {
        let n = d.num_nodes();
        let a = (seed as usize) % n;
        let b = (seed as usize / 7) % n;
        let c = (seed as usize / 49) % n;
        prop_assert_eq!(d.distance(a, a), 0);
        prop_assert_eq!(d.distance(a, b), d.distance(b, a));
        prop_assert!(d.distance(a, c) <= d.distance(a, b) + d.distance(b, c));
        prop_assert!(d.distance(a, b) <= d.diameter());
        prop_assert!(d.diameter() <= 3, "low-diameter topology by construction");
    }

    #[test]
    fn dragonfly_closed_form_equals_bfs(d in arb_dragonfly()) {
        let g = GraphTopology::from_topology(&d);
        let n = d.num_nodes();
        for a in 0..n {
            prop_assert_eq!(d.sum_distance_from(a), g.sum_distance_from(a));
            for b in 0..n {
                prop_assert_eq!(d.distance(a, b), g.distance(a, b), "{} -> {}", a, b);
            }
        }
        prop_assert_eq!(d.diameter(), g.diameter());
    }

    #[test]
    fn dragonfly_coords_roundtrip(d in arb_dragonfly()) {
        for node in 0..d.num_nodes() {
            let (g, r) = d.coords(node);
            prop_assert!(g < d.groups() && r < d.routers());
            prop_assert_eq!(d.node_of(g, r), node);
            prop_assert_eq!((d.group_of(node), d.router_of(node)), (g, r));
        }
    }

    #[test]
    fn dragonfly_routing_reaches_destination(d in arb_dragonfly(), seed in any::<u64>()) {
        let n = d.num_nodes();
        let a = (seed as usize) % n;
        let b = (seed as usize / 13) % n;
        let route = d.route(a, b);
        prop_assert_eq!(route.len() as u32, d.distance(a, b));
        let mut cur = a;
        for l in &route {
            prop_assert_eq!(l.from, cur);
            prop_assert_eq!(d.distance(cur, l.to), 1);
            cur = l.to;
        }
        prop_assert_eq!(cur, b);
    }

    #[test]
    fn dragonfly_productive_neighbors_are_exactly_the_closer_ones(
        d in arb_dragonfly(),
        seed in any::<u64>(),
    ) {
        let n = d.num_nodes();
        let a = (seed as usize) % n;
        let b = (seed as usize / 3) % n;
        prop_assume!(a != b);
        let mut prod = Vec::new();
        d.productive_neighbors_into(a, b, &mut prod);
        prop_assert!(!prod.is_empty());
        let dist = d.distance(a, b);
        let mut expected: Vec<usize> = d
            .neighbors(a)
            .into_iter()
            .filter(|&v| d.distance(v, b) == dist - 1)
            .collect();
        let mut got = prod.clone();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
        prop_assert!(prod.contains(&d.next_hop(a, b)));
    }

    /// `Hierarchy::from_dragonfly` must agree with the generic
    /// `identity_over` derivation (routers within a group, then groups),
    /// so the hierarchical mapper sees the same machine either way.
    #[test]
    fn dragonfly_hierarchy_matches_identity_over(d in arb_dragonfly()) {
        let derived = Hierarchy::identity_over(&d, &[d.routers(), d.groups()]).unwrap();
        prop_assert_eq!(Hierarchy::from_dragonfly(&d), derived);
    }
}
