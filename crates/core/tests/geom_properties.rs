//! Property suite for the geometric fast path: curve encoders are exact
//! bijections with unit-step locality, the weighted median is optimal,
//! and the SFC/RCB mappers are injective, geometry-faithful (identity
//! quality on a matching stencil/torus pair), and loud about missing
//! coordinates.

use proptest::prelude::*;
use topomap_core::geom::{
    hilbert_index, hilbert_point, morton_index, morton_point, weighted_median_split,
};
use topomap_core::{metrics, Curve, Mapper, RcbMap, SfcMap};
use topomap_taskgraph::gen;
use topomap_topology::{Topology, Torus};

fn l1<const N: usize>(a: [u32; N], b: [u32; N]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(&x, y)| (i64::from(x) - i64::from(y)).unsigned_abs())
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Morton and Hilbert are bijections on the full b-bit grid: every
    /// point round-trips through its index, in 2-D and 3-D alike.
    #[test]
    fn curve_encoders_are_bijections(
        x in any::<u32>(), y in any::<u32>(), z in any::<u32>(), bits in 1u32..=8,
    ) {
        let mask = (1u32 << bits) - 1;
        let p2 = [x & mask, y & mask];
        let p3 = [x & mask, y & mask, z & mask];

        prop_assert_eq!(morton_point::<2>(morton_index(p2, bits), bits), p2);
        prop_assert_eq!(morton_point::<3>(morton_index(p3, bits), bits), p3);
        prop_assert_eq!(hilbert_point::<2>(hilbert_index(p2, bits), bits), p2);
        prop_assert_eq!(hilbert_point::<3>(hilbert_index(p3, bits), bits), p3);

        // Indices stay inside the curve's range.
        prop_assert!(morton_index(p3, bits) < 1u64 << (3 * bits));
        prop_assert!(hilbert_index(p3, bits) < 1u64 << (3 * bits));
    }

    /// The defining Hilbert property: consecutive curve indices are
    /// nearest neighbours on the grid (L1 distance exactly 1). Morton
    /// has no such bound, but each step still changes the point.
    #[test]
    fn hilbert_consecutive_indices_are_grid_neighbours(
        d in any::<u64>(), bits in 1u32..=6,
    ) {
        let d2 = d % ((1u64 << (2 * bits)) - 1);
        prop_assert_eq!(
            l1(hilbert_point::<2>(d2, bits), hilbert_point::<2>(d2 + 1, bits)),
            1
        );
        let d3 = d % ((1u64 << (3 * bits)) - 1);
        prop_assert_eq!(
            l1(hilbert_point::<3>(d3, bits), hilbert_point::<3>(d3 + 1, bits)),
            1
        );
        let m3 = morton_point::<3>(d3, bits);
        prop_assert!(l1(m3, morton_point::<3>(d3 + 1, bits)) >= 1);
    }

    /// `weighted_median_split` returns the prefix boundary whose weight
    /// is closest to the target, preferring the earlier boundary on ties
    /// — verified against an exhaustive scan.
    #[test]
    fn weighted_median_is_optimal(
        ws in proptest::collection::vec(0.0f64..100.0, 1..40),
        frac in 0.0f64..=1.0,
    ) {
        let total: f64 = ws.iter().sum();
        let target = frac * total;
        let k = weighted_median_split(&ws, target);
        prop_assert!(k <= ws.len());
        let prefix = |j: usize| ws[..j].iter().sum::<f64>();
        let best = (prefix(k) - target).abs();
        for j in 0..=ws.len() {
            let err = (prefix(j) - target).abs();
            prop_assert!(best <= err + 1e-9, "split {k} (err {best}) beaten by {j} (err {err})");
            if (err - best).abs() <= 1e-9 {
                prop_assert!(k <= j, "tie at {j} must resolve to the earliest boundary");
            }
        }
    }

    /// Both geometric mappers produce injective mappings (one task per
    /// processor) on arbitrary coordinate-bearing workloads, for every
    /// curve and for task counts up to the machine size.
    #[test]
    fn geometric_mappings_are_injective(
        n in 2usize..=36, deg in 0.5f64..3.0, seed in any::<u64>(),
    ) {
        let g = gen::random_graph(n, deg.min(n as f64 - 1.0), 1.0, 1000.0, seed);
        let topo = Torus::torus_2d(6, 6);
        for mapper in [
            Box::new(SfcMap::hilbert()) as Box<dyn Mapper>,
            Box::new(SfcMap::morton()),
            Box::new(RcbMap::new()),
        ] {
            let m = mapper.map(&g, &topo);
            let mut seen = std::collections::HashSet::new();
            for t in 0..n {
                let p = m.proc_of(t);
                prop_assert!(p < topo.num_nodes(), "{} maps off-machine", mapper.name());
                prop_assert!(seen.insert(p), "{} double-books node {p}", mapper.name());
            }
        }
    }

    /// RCB splits weights evenly: on a uniform stencil filling the
    /// machine exactly, every recursion level bisects both sides in
    /// lockstep, so the placement cost stays near the stencil optimum.
    #[test]
    fn rcb_balances_uniform_stencils(side in 2usize..=10) {
        let g = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);
        let m = RcbMap::new().map(&g, &topo);
        let hpb = metrics::hops_per_byte(&g, &topo, &m);
        prop_assert!(hpb < 2.5, "side {side}: hpb {hpb}");
    }
}

/// The identity-quality anchor: a stencil whose coordinates coincide
/// with the torus grid embeds perfectly under the shared Hilbert order.
#[test]
fn sfc_reaches_identity_quality_on_matching_stencil() {
    for side in [4usize, 8, 16, 32] {
        let g = gen::stencil2d(side, side, 1024.0, false);
        let topo = Torus::torus_2d(side, side);
        let m = SfcMap::hilbert().map(&g, &topo);
        let hpb = metrics::hops_per_byte(&g, &topo, &m);
        assert!((hpb - 1.0).abs() < 1e-12, "side {side}: hpb {hpb}");
    }
}

/// Strict mode refuses coordinate-free workloads with a diagnosable
/// error instead of silently falling back to the BFS embedding.
#[test]
fn strict_mappers_error_without_coordinates() {
    let g = gen::ring(16, 100.0);
    assert!(
        g.coords().is_none(),
        "ring generator must stay coordinate-free"
    );
    let topo = Torus::torus_2d(4, 4);
    let sfc = SfcMap::strict(Curve::Hilbert)
        .try_map(&g, &topo)
        .unwrap_err();
    assert!(sfc.to_string().contains("coordinates"), "{sfc}");
    let rcb = RcbMap::strict().try_map(&g, &topo).unwrap_err();
    assert!(rcb.to_string().contains("coordinates"), "{rcb}");
}
