//! Random placement — the paper's baseline.
//!
//! "We also compare their performances to a load balancer which places the
//! tasks on the processors at random" (§5). On a 2D torus this yields
//! hops-per-byte ≈ √p/2, on a 3D torus ≈ 3·∛p/4 — the analytic curves of
//! Figures 1 and 3.

use crate::{Mapper, Mapping};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use topomap_taskgraph::TaskGraph;
use topomap_topology::Topology;

/// Uniform-random injective placement (seeded, deterministic per seed).
#[derive(Debug, Clone, Copy, Default)]
pub struct RandomMap {
    pub seed: u64,
}

impl RandomMap {
    pub fn new(seed: u64) -> Self {
        RandomMap { seed }
    }
}

impl Mapper for RandomMap {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut procs: Vec<usize> = (0..p).collect();
        procs.shuffle(&mut rng);
        procs.truncate(n);
        Mapping::new(procs, p)
    }

    fn name(&self) -> String {
        "Random".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use topomap_taskgraph::gen;
    use topomap_topology::{stats, Torus};

    #[test]
    fn deterministic_per_seed() {
        let tasks = gen::ring(20, 1.0);
        let topo = Torus::torus_2d(5, 5);
        assert_eq!(
            RandomMap::new(7).map(&tasks, &topo),
            RandomMap::new(7).map(&tasks, &topo)
        );
        assert_ne!(
            RandomMap::new(7).map(&tasks, &topo),
            RandomMap::new(8).map(&tasks, &topo)
        );
    }

    #[test]
    fn injective() {
        let tasks = gen::ring(10, 1.0);
        let topo = Torus::torus_2d(4, 4);
        let m = RandomMap::new(0).map(&tasks, &topo);
        let mut seen = std::collections::HashSet::new();
        for t in 0..10 {
            assert!(seen.insert(m.proc_of(t)));
        }
    }

    #[test]
    fn matches_analytic_expectation_on_torus() {
        // Paper §5.2.1: random placement hops-per-byte ≈ √p/2. Average a
        // few seeds on a 16x16 torus (p=256, expected 8).
        let tasks = gen::stencil2d(16, 16, 100.0, false);
        let topo = Torus::torus_2d(16, 16);
        let mut sum = 0.0;
        let runs = 5;
        for seed in 0..runs {
            let m = RandomMap::new(seed).map(&tasks, &topo);
            sum += metrics::hops_per_byte(&tasks, &topo, &m);
        }
        let measured = sum / runs as f64;
        let analytic = stats::expected_random_hops_torus_2d(256);
        assert!(
            (measured - analytic).abs() < 0.15 * analytic,
            "measured {measured} vs analytic {analytic}"
        );
    }
}
