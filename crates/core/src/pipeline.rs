//! The two-phased approach of §4: partition (topology-oblivious), then map
//! (topology-aware).
//!
//! "In the first phase, called the partitioning phase, ... partitioning
//! the objects (oblivious to network-topology) into p groups. ... In the
//! next phase, the mapping phase, the p groups are mapped onto the p
//! processors with the objective of placing communicating groups on
//! nearby processors."

use crate::{metrics, Mapper, Mapping};
use topomap_partition::{Partition, Partitioner};
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{NodeId, Topology};

/// The full output of a two-phase run: the phase-1 partition, the
/// coalesced group graph, and the phase-2 group mapping.
#[derive(Debug, Clone)]
pub struct TwoPhaseResult {
    pub partition: Partition,
    pub group_graph: TaskGraph,
    pub group_mapping: Mapping,
}

impl TwoPhaseResult {
    /// Processor hosting an original (pre-coalescing) task.
    pub fn proc_of_task(&self, t: TaskId) -> NodeId {
        self.group_mapping.proc_of(self.partition.part_of(t))
    }

    /// Full task→processor vector for the original graph.
    pub fn task_placement(&self) -> Vec<NodeId> {
        (0..self.partition.num_tasks())
            .map(|t| self.proc_of_task(t))
            .collect()
    }

    /// Hops-per-byte of the group graph under the group mapping — the
    /// quantity the paper plots in Figures 1–6. (Intra-group communication
    /// is processor-local and contributes no hops by definition.)
    pub fn hops_per_byte(&self, topo: &dyn Topology) -> f64 {
        metrics::hops_per_byte(&self.group_graph, topo, &self.group_mapping)
    }

    /// Hop-bytes of the group graph under the group mapping.
    pub fn hop_bytes(&self, topo: &dyn Topology) -> f64 {
        metrics::hop_bytes(&self.group_graph, topo, &self.group_mapping)
    }
}

/// Run the two-phase pipeline: partition `tasks` into `topo.num_nodes()`
/// groups with `partitioner`, coalesce, then map the group graph with
/// `mapper`.
///
/// When the task count already equals the processor count the partition
/// step degenerates to singleton groups (the paper's §5.2.1 setup, "the
/// number of tasks created is the same as the number of processors").
pub fn two_phase(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    partitioner: &dyn Partitioner,
    mapper: &dyn Mapper,
) -> TwoPhaseResult {
    let p = topo.num_nodes();
    let partition = if tasks.num_tasks() == p {
        Partition::new((0..p).collect(), p)
    } else {
        partitioner.partition(tasks, p)
    };
    let group_graph = partition.coalesce(tasks);
    let group_mapping = mapper.map(&group_graph, topo);
    TwoPhaseResult {
        partition,
        group_graph,
        group_mapping,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RandomMap, TopoLb};
    use topomap_partition::MultilevelKWay;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn pipeline_covers_all_tasks() {
        let tasks = gen::stencil2d(12, 12, 100.0, false); // 144 tasks
        let topo = Torus::torus_2d(4, 4); // 16 procs
        let r = two_phase(
            &tasks,
            &topo,
            &MultilevelKWay::default(),
            &TopoLb::default(),
        );
        assert_eq!(r.partition.num_parts(), 16);
        assert_eq!(r.group_graph.num_tasks(), 16);
        let placement = r.task_placement();
        assert_eq!(placement.len(), 144);
        assert!(placement.iter().all(|&p| p < 16));
    }

    #[test]
    fn equal_sizes_skip_partitioning() {
        let tasks = gen::stencil2d(4, 4, 1.0, false);
        let topo = Torus::torus_2d(4, 4);
        let r = two_phase(
            &tasks,
            &topo,
            &MultilevelKWay::default(),
            &TopoLb::default(),
        );
        // Singleton groups preserve the graph exactly.
        assert_eq!(r.group_graph.num_edges(), tasks.num_edges());
        assert_eq!(r.group_graph.total_comm(), tasks.total_comm());
    }

    #[test]
    fn topolb_pipeline_beats_random_pipeline() {
        let tasks = gen::leanmd(32, &gen::LeanMdConfig::default());
        let topo = Torus::torus_2d(8, 4);
        let ml = MultilevelKWay::default();
        let good = two_phase(&tasks, &topo, &ml, &TopoLb::default());
        let bad = two_phase(&tasks, &topo, &ml, &RandomMap::new(5));
        assert!(good.hops_per_byte(&topo) < bad.hops_per_byte(&topo));
    }

    #[test]
    fn group_loads_balanced() {
        let tasks = gen::stencil2d(16, 16, 1.0, false);
        let topo = Torus::torus_2d(4, 4);
        let r = two_phase(
            &tasks,
            &topo,
            &MultilevelKWay::default(),
            &TopoLb::default(),
        );
        let imb = r.partition.imbalance_for(&tasks);
        assert!(imb <= 1.35, "group imbalance {imb}");
    }
}
