//! Geometric mappers: space-filling-curve (SFC) ordering and recursive
//! coordinate bisection (RCB) — the near-linear fast path for
//! coordinate-bearing workloads.
//!
//! The quadratic greedy mappers (TopoLB and friends) pay O(n·p) per
//! placement decision. When the workload carries geometry — stencils,
//! LeanMD cells, geometric random graphs — locality is already explicit
//! in the coordinates, and two classic strategies exploit it in
//! O(n log n) ("Geometric Partitioning and Ordering Strategies for Task
//! Mapping on Parallel Computers", Deveci et al.):
//!
//! - [`SfcMap`] linearizes *both* sides of the problem along one
//!   space-filling curve: tasks by the curve index of their coordinates,
//!   processors by the curve index of their torus/mesh coordinates
//!   ([`Topology::node_coords`]), then matches the two orders by
//!   weighted rank so compute load stays balanced along the curve.
//!   Hilbert ([`Curve::Hilbert`], Gray-rotation encoding — consecutive
//!   indices are always coordinate-adjacent) or Morton
//!   ([`Curve::Morton`], plain bit interleave — cheaper, bounded jumps).
//! - [`RcbMap`] recursively bisects the task set at the weighted median
//!   of its widest coordinate axis, in lockstep with an orthogonal
//!   bisection of the processor block: each task half receives exactly
//!   as many processors as its share of the machine, so the recursion
//!   bottoms out with ≤ 1 task per processor. Independent sub-bisections
//!   fan out on the `par` pool level by level; results are combined in
//!   subproblem order, so the mapping is bit-identical at every thread
//!   count (the workspace-wide ordered-reduction discipline).
//!
//! Workloads without geometry degrade gracefully: [`synthesize_coords`]
//! builds a BFS-layering embedding from peripheral vertices (a
//! spectral-free heuristic), and both mappers use it automatically
//! unless `fallback` is disabled — in which case [`SfcMap::try_map`] /
//! [`RcbMap::try_map`] report [`GeomError::MissingCoordinates`] instead
//! of panicking.
//!
//! Curve encoders work on unsigned grid coordinates produced by
//! quantizing the f64 bounding box to [`CURVE_BITS`] bits per axis; all
//! hot loops are allocation-free per element (stack arrays + flat
//! output buffers).

use crate::obs;
use crate::par::{Executor, Parallelism};
use crate::{Mapper, Mapping};
use topomap_taskgraph::TaskGraph;
use topomap_topology::{NodeId, Topology};

/// Bits per axis used when quantizing f64 coordinates onto the curve
/// grid: 16 bits × 3 axes = 48-bit indices, distinct for any machine or
/// workload grid up to 65536 cells per side.
pub const CURVE_BITS: u32 = 16;

/// Which space-filling curve orders the points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Curve {
    /// Gray-rotation curve: consecutive indices are always exactly one
    /// grid step apart (best locality).
    Hilbert,
    /// Plain bit-interleave (Z-order): cheaper to encode, but
    /// consecutive indices can jump (bounded by the grid side sums).
    Morton,
}

/// Why a geometric mapper could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// The task graph carries no coordinates and the BFS-synthesis
    /// fallback was disabled.
    MissingCoordinates {
        /// Name of the mapper that needed them.
        mapper: &'static str,
    },
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::MissingCoordinates { mapper } => write!(
                f,
                "{mapper} needs per-task coordinates but the task graph carries none; \
                 use a coordinate-bearing generator, attach coordinates \
                 (TaskGraphBuilder::set_coords), or enable the BFS-layering fallback"
            ),
        }
    }
}

impl std::error::Error for GeomError {}

// ---------------------------------------------------------------------
// Curve encoders
// ---------------------------------------------------------------------

/// Morton (Z-order) index of a point: interleave the bits of the `N`
/// axes, axis 0 most significant within each bit group. Requires
/// `N * bits <= 64`.
pub fn morton_index<const N: usize>(x: [u32; N], bits: u32) -> u64 {
    debug_assert!(N as u32 * bits <= 64);
    interleave(x, bits)
}

/// Inverse of [`morton_index`].
pub fn morton_point<const N: usize>(d: u64, bits: u32) -> [u32; N] {
    deinterleave(d, bits)
}

/// Hilbert index of a point via Skilling's transpose algorithm ("the
/// Gray-rotation variant"): convert axes to the transposed Hilbert
/// representation, then bit-interleave. Consecutive indices differ by
/// exactly one unit step in one axis. Requires `N * bits <= 64`.
pub fn hilbert_index<const N: usize>(x: [u32; N], bits: u32) -> u64 {
    debug_assert!(N as u32 * bits <= 64);
    interleave(axes_to_transpose(x, bits), bits)
}

/// Inverse of [`hilbert_index`].
pub fn hilbert_point<const N: usize>(d: u64, bits: u32) -> [u32; N] {
    transpose_to_axes(deinterleave(d, bits), bits)
}

/// Bit-interleave `N` axis values: output bit `(j*N + (N-1-i))` is bit
/// `j` of axis `i`, so axis 0 is most significant within each group.
fn interleave<const N: usize>(x: [u32; N], bits: u32) -> u64 {
    let mut out = 0u64;
    for j in (0..bits).rev() {
        for v in x {
            out = (out << 1) | (((v >> j) & 1) as u64);
        }
    }
    out
}

fn deinterleave<const N: usize>(d: u64, bits: u32) -> [u32; N] {
    let mut x = [0u32; N];
    for j in 0..bits {
        for (i, v) in x.iter_mut().enumerate() {
            let pos = (j * N as u32) + (N as u32 - 1 - i as u32);
            *v |= (((d >> pos) & 1) as u32) << j;
        }
    }
    x
}

/// Skilling, "Programming the Hilbert curve" (2004): map axis
/// coordinates to the transposed Hilbert representation in place.
fn axes_to_transpose<const N: usize>(mut x: [u32; N], bits: u32) -> [u32; N] {
    if N <= 1 || bits == 0 {
        return x;
    }
    let m = 1u32 << (bits - 1);
    // Inverse undo.
    let mut q = m;
    while q > 1 {
        let p = q - 1;
        for i in 0..N {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q >>= 1;
    }
    // Gray encode.
    for i in 1..N {
        x[i] ^= x[i - 1];
    }
    let mut t = 0;
    let mut q = m;
    while q > 1 {
        if x[N - 1] & q != 0 {
            t ^= q - 1;
        }
        q >>= 1;
    }
    for v in &mut x {
        *v ^= t;
    }
    x
}

/// Inverse of [`axes_to_transpose`].
fn transpose_to_axes<const N: usize>(mut x: [u32; N], bits: u32) -> [u32; N] {
    if N <= 1 || bits == 0 {
        return x;
    }
    let top = 2u32 << (bits - 1);
    // Gray decode by H ^ (H/2).
    let t = x[N - 1] >> 1;
    for i in (1..N).rev() {
        x[i] ^= x[i - 1];
    }
    x[0] ^= t;
    // Undo excess work.
    let mut q = 2u32;
    while q != top {
        let p = q - 1;
        for i in (0..N).rev() {
            if x[i] & q != 0 {
                x[0] ^= p;
            } else {
                let t = (x[0] ^ x[i]) & p;
                x[0] ^= t;
                x[i] ^= t;
            }
        }
        q <<= 1;
    }
    x
}

// ---------------------------------------------------------------------
// Quantization: f64 points -> curve keys
// ---------------------------------------------------------------------

/// Per-axis bounding box of a point set.
fn bounding_box(pts: &[[f64; 3]]) -> ([f64; 3], [f64; 3]) {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for p in pts {
        for d in 0..3 {
            lo[d] = lo[d].min(p[d]);
            hi[d] = hi[d].max(p[d]);
        }
    }
    (lo, hi)
}

/// Curve key of one point: quantize the *active* axes (positive extent)
/// of the bounding box to `CURVE_BITS` bits and encode with the curve of
/// matching arity. Degenerate axes are dropped so a planar workload gets
/// a true 2-D curve (a 3-D curve restricted to a plane loses locality).
fn curve_key(p: &[f64; 3], lo: &[f64; 3], hi: &[f64; 3], axes: &[usize], curve: Curve) -> u64 {
    let scale = (1u64 << CURVE_BITS) as f64 - 1.0;
    let mut q = [0u32; 3];
    for (k, &d) in axes.iter().enumerate() {
        let t = (p[d] - lo[d]) / (hi[d] - lo[d]);
        q[k] = (t * scale).round() as u32;
    }
    match (axes.len(), curve) {
        (0, _) => 0,
        (1, _) => q[0] as u64,
        (2, Curve::Hilbert) => hilbert_index([q[0], q[1]], CURVE_BITS),
        (2, Curve::Morton) => morton_index([q[0], q[1]], CURVE_BITS),
        (3, Curve::Hilbert) => hilbert_index([q[0], q[1], q[2]], CURVE_BITS),
        (3, Curve::Morton) => morton_index([q[0], q[1], q[2]], CURVE_BITS),
        _ => unreachable!("at most 3 axes"),
    }
}

/// Axes with positive extent, in axis order.
fn active_axes(lo: &[f64; 3], hi: &[f64; 3]) -> Vec<usize> {
    (0..3).filter(|&d| hi[d] > lo[d]).collect()
}

/// Curve keys for a whole point set, fanned on the pool (element-wise,
/// so chunk order never changes the result).
fn curve_keys(pts: &[[f64; 3]], curve: Curve, exec: &Executor) -> Vec<u64> {
    let (lo, hi) = bounding_box(pts);
    let axes = active_axes(&lo, &hi);
    let chunks = exec.map_chunks(pts.len(), 64, |r| {
        pts[r]
            .iter()
            .map(|p| curve_key(p, &lo, &hi, &axes, curve))
            .collect::<Vec<u64>>()
    });
    let mut keys = Vec::with_capacity(pts.len());
    for c in chunks {
        keys.extend(c);
    }
    keys
}

/// Processor coordinates from the machine, or `None` when the topology
/// has no geometric embedding (geometric mappers then keep node-id
/// order, which is the natural linearization for e.g. fat-trees).
fn machine_points(topo: &dyn Topology) -> Option<Vec<[f64; 3]>> {
    let p = topo.num_nodes();
    let mut pts = Vec::with_capacity(p);
    for node in 0..p {
        pts.push(topo.node_coords(node)?);
    }
    Some(pts)
}

/// Order `0..n` by `(key, id)` — the curve order with deterministic
/// tie-breaks.
fn order_by_key(keys: &[u64]) -> Vec<u32> {
    let mut ord: Vec<u32> = (0..keys.len() as u32).collect();
    ord.sort_unstable_by_key(|&i| (keys[i as usize], i));
    ord
}

// ---------------------------------------------------------------------
// Coordinate synthesis for non-geometric graphs
// ---------------------------------------------------------------------

/// BFS layers from `start` over one component, writing `layer[t]` for
/// every reached task. Returns the farthest reached task (lowest id on
/// ties) — the "peripheral vertex" of the double-sweep heuristic.
fn bfs_layers(g: &TaskGraph, start: usize, layer: &mut [u32], visited: &mut [bool]) -> usize {
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start);
    visited[start] = true;
    layer[start] = 0;
    let (mut far, mut far_depth) = (start, 0u32);
    while let Some(t) = queue.pop_front() {
        let d = layer[t];
        if d > far_depth {
            far_depth = d;
            far = t;
        }
        for (u, _) in g.neighbors(t) {
            if !visited[u] {
                visited[u] = true;
                layer[u] = d + 1;
                queue.push_back(u);
            }
        }
    }
    far
}

/// Synthesize coordinates for a graph without geometry: a double BFS
/// sweep per component finds a peripheral vertex `s1` (BFS from the
/// component root, take the farthest) and a second anchor `s2` (farthest
/// from `s1`); each task gets `[layer_from_s1, layer_from_s2, 0]`, with
/// components offset along x so they never interleave. Deterministic,
/// O(|V| + |E|) — the spectral-free fallback that lets `--mapper sfc`
/// degrade gracefully on LU/random graphs.
pub fn synthesize_coords(g: &TaskGraph) -> Vec<[f64; 3]> {
    let n = g.num_tasks();
    let mut out = vec![[0.0f64; 3]; n];
    let mut visited = vec![false; n];
    let mut scratch = vec![0u32; n];
    let mut x_base = 0f64;
    for root in 0..n {
        if visited[root] {
            continue;
        }
        // Double sweep: root -> s1 (peripheral), s1 -> layers + s2,
        // s2 -> second axis.
        let s1 = bfs_layers(g, root, &mut scratch, &mut visited);
        let mut comp = Vec::new();
        {
            // Collect the component (everything the first sweep reached
            // from this root and not claimed by an earlier component).
            let mut seen2 = vec![false; n];
            let mut q = std::collections::VecDeque::new();
            q.push_back(root);
            seen2[root] = true;
            while let Some(t) = q.pop_front() {
                comp.push(t);
                for (u, _) in g.neighbors(t) {
                    if !seen2[u] {
                        seen2[u] = true;
                        q.push_back(u);
                    }
                }
            }
            comp.sort_unstable();
        }
        let mut vis1 = vec![false; n];
        let mut lay1 = vec![0u32; n];
        let s2 = bfs_layers(g, s1, &mut lay1, &mut vis1);
        let mut vis2 = vec![false; n];
        let mut lay2 = vec![0u32; n];
        bfs_layers(g, s2, &mut lay2, &mut vis2);
        let mut max_x = 0u32;
        for &t in &comp {
            out[t] = [x_base + lay1[t] as f64, lay2[t] as f64, 0.0];
            max_x = max_x.max(lay1[t]);
        }
        // Leave a gap so components occupy disjoint x ranges.
        x_base += max_x as f64 + 2.0;
    }
    out
}

/// Task coordinates: the graph's own, or synthesized when `fallback`.
fn task_points(
    tasks: &TaskGraph,
    fallback: bool,
    mapper: &'static str,
) -> Result<Vec<[f64; 3]>, GeomError> {
    match tasks.coords() {
        Some(cs) => Ok(cs.to_vec()),
        None if fallback => {
            obs::counter_add("geom.synth_coords", 1);
            Ok(synthesize_coords(tasks))
        }
        None => Err(GeomError::MissingCoordinates { mapper }),
    }
}

// ---------------------------------------------------------------------
// SFC mapper
// ---------------------------------------------------------------------

/// Space-filling-curve mapper: tasks ordered by curve index of their
/// coordinates, processors by curve index of their machine coordinates,
/// matched rank-to-rank weighted by compute load. O(n log n).
pub struct SfcMap {
    pub curve: Curve,
    /// Synthesize BFS-layering coordinates when the graph carries none
    /// (disable to get [`GeomError::MissingCoordinates`] instead).
    pub fallback: bool,
    pub par: Parallelism,
}

impl SfcMap {
    /// Hilbert-curve mapper with the BFS fallback enabled.
    pub fn hilbert() -> Self {
        SfcMap {
            curve: Curve::Hilbert,
            fallback: true,
            par: Parallelism::default(),
        }
    }

    /// Morton-curve mapper with the BFS fallback enabled.
    pub fn morton() -> Self {
        SfcMap {
            curve: Curve::Morton,
            fallback: true,
            par: Parallelism::default(),
        }
    }

    /// Strict variant: error on coordinate-free graphs.
    pub fn strict(curve: Curve) -> Self {
        SfcMap {
            curve,
            fallback: false,
            par: Parallelism::default(),
        }
    }

    pub fn with_parallelism(curve: Curve, par: Parallelism) -> Self {
        SfcMap {
            curve,
            fallback: true,
            par,
        }
    }

    /// Map, reporting [`GeomError`] instead of panicking when geometry
    /// is required but absent.
    pub fn try_map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Result<Mapping, GeomError> {
        let _sp = obs::span("geom.sfc");
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "more tasks ({n}) than processors ({p})");
        if n == 0 {
            return Ok(Mapping::new(Vec::new(), p));
        }
        let exec = Executor::new(self.par);
        let task_pts = task_points(tasks, self.fallback, "SFC mapper")?;
        let task_order = order_by_key(&curve_keys(&task_pts, self.curve, &exec));

        // Machine side: curve order of node coordinates, or node-id
        // order when the machine has no embedding.
        let pe_order: Vec<u32> = match machine_points(topo) {
            Some(pts) => order_by_key(&curve_keys(&pts, self.curve, &exec)),
            None => (0..p as u32).collect(),
        };

        // Weighted rank-matching: task i (in curve order) lands at the
        // processor rank nearest its load center `c_i = (prefix_i +
        // w_i/2) / W` scaled to p ranks, kept strictly monotone (so the
        // assignment is injective and order-preserving) and clamped so
        // the remaining tasks always fit.
        let total: f64 = task_order
            .iter()
            .map(|&t| tasks.vertex_weight(t as usize))
            .sum();
        let uniform = total.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater);
        let w_total = if uniform { n as f64 } else { total };
        let mut proc_of = vec![0usize; n];
        let mut prefix = 0.0f64;
        let mut prev: isize = -1;
        for (i, &t) in task_order.iter().enumerate() {
            let w = if uniform {
                1.0
            } else {
                tasks.vertex_weight(t as usize)
            };
            let center = (prefix + 0.5 * w) / w_total;
            prefix += w;
            let mut r = (center * p as f64).floor() as isize;
            r = r.max(prev + 1).min((p - (n - i)) as isize);
            prev = r;
            proc_of[t as usize] = pe_order[r as usize] as NodeId;
        }
        obs::counter_add("geom.sfc.tasks", n as u64);
        Ok(Mapping::new(proc_of, p))
    }
}

impl Mapper for SfcMap {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        self.try_map(tasks, topo).unwrap_or_else(|e| panic!("{e}"))
    }

    fn name(&self) -> String {
        match self.curve {
            Curve::Hilbert => "SFC(Hilbert)".to_string(),
            Curve::Morton => "SFC(Morton)".to_string(),
        }
    }
}

// ---------------------------------------------------------------------
// RCB mapper
// ---------------------------------------------------------------------

/// Split position for a weighted median: the index `k` (0 ≤ k ≤ n) that
/// brings the prefix weight closest to `target` (first such index on
/// ties). The left side's weight then differs from `target` by at most
/// the weight of the single task at the boundary.
pub fn weighted_median_split(ws: &[f64], target: f64) -> usize {
    let mut prefix = 0.0f64;
    let mut best = 0usize;
    let mut best_err = target.abs();
    for (i, &w) in ws.iter().enumerate() {
        prefix += w;
        let err = (prefix - target).abs();
        if err < best_err {
            best_err = err;
            best = i + 1;
        }
    }
    best
}

/// One open subproblem of the RCB recursion: these tasks go somewhere
/// in these processors (`tasks.len() <= pes.len()` invariant).
struct RcbJob {
    tasks: Vec<u32>,
    pes: Vec<u32>,
}

/// What splitting one job yields.
enum RcbStep {
    Leaf(Option<(u32, u32)>),
    Split(RcbJob, RcbJob),
}

/// Recursive-coordinate-bisection mapper: bisect the task set at the
/// weighted median along its widest axis, bisect the processor block
/// orthogonally along *its* widest axis, recurse the matched halves.
/// O(n log² n); sub-bisections of one level run concurrently.
pub struct RcbMap {
    /// Synthesize BFS-layering coordinates when the graph carries none.
    pub fallback: bool,
    pub par: Parallelism,
}

impl RcbMap {
    pub fn new() -> Self {
        RcbMap {
            fallback: true,
            par: Parallelism::default(),
        }
    }

    /// Strict variant: error on coordinate-free graphs.
    pub fn strict() -> Self {
        RcbMap {
            fallback: false,
            par: Parallelism::default(),
        }
    }

    pub fn with_parallelism(par: Parallelism) -> Self {
        RcbMap {
            fallback: true,
            par,
        }
    }

    /// Map, reporting [`GeomError`] instead of panicking when geometry
    /// is required but absent.
    pub fn try_map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Result<Mapping, GeomError> {
        let _sp = obs::span("geom.rcb");
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "more tasks ({n}) than processors ({p})");
        if n == 0 {
            return Ok(Mapping::new(Vec::new(), p));
        }
        let exec = Executor::new(self.par);
        let task_pts = task_points(tasks, self.fallback, "RCB mapper")?;
        // Machines without an embedding bisect by node id: pe "geometry"
        // is the id line, so blocks are contiguous id ranges.
        let pe_pts: Vec<[f64; 3]> =
            machine_points(topo).unwrap_or_else(|| (0..p).map(|i| [i as f64, 0.0, 0.0]).collect());
        let weights: Vec<f64> = {
            let raw: Vec<f64> = (0..n).map(|t| tasks.vertex_weight(t)).collect();
            if raw.iter().sum::<f64>() > 0.0 {
                raw
            } else {
                vec![1.0; n]
            }
        };

        let mut proc_of = vec![0usize; n];
        let mut frontier = vec![RcbJob {
            tasks: (0..n as u32).collect(),
            pes: (0..p as u32).collect(),
        }];
        let mut levels = 0u64;
        while !frontier.is_empty() {
            levels += 1;
            let avg = frontier.iter().map(|j| j.tasks.len()).sum::<usize>() / frontier.len();
            // Fan the level's independent bisections on the pool; chunk
            // results are recombined in job order, so the schedule never
            // affects which task lands where.
            let steps = exec.map_chunks(frontier.len(), (avg.max(1)) * 32, |r| {
                frontier[r]
                    .iter()
                    .map(|job| split_job(job, &task_pts, &pe_pts, &weights))
                    .collect::<Vec<RcbStep>>()
            });
            let mut next = Vec::new();
            for step in steps.into_iter().flatten() {
                match step {
                    RcbStep::Leaf(Some((t, pe))) => proc_of[t as usize] = pe as NodeId,
                    RcbStep::Leaf(None) => {}
                    RcbStep::Split(l, r) => {
                        if !l.pes.is_empty() {
                            next.push(l);
                        }
                        if !r.pes.is_empty() {
                            next.push(r);
                        }
                    }
                }
            }
            frontier = next;
        }
        obs::counter_add("geom.rcb.levels", levels);
        obs::counter_add("geom.rcb.tasks", n as u64);
        Ok(Mapping::new(proc_of, p))
    }
}

impl Default for RcbMap {
    fn default() -> Self {
        RcbMap::new()
    }
}

impl Mapper for RcbMap {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        self.try_map(tasks, topo).unwrap_or_else(|e| panic!("{e}"))
    }

    fn name(&self) -> String {
        "RCB".to_string()
    }
}

/// Widest axis of a point subset (lowest axis index on ties).
fn widest_axis(ids: &[u32], pts: &[[f64; 3]]) -> usize {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    for &i in ids {
        for d in 0..3 {
            lo[d] = lo[d].min(pts[i as usize][d]);
            hi[d] = hi[d].max(pts[i as usize][d]);
        }
    }
    let mut best = 0usize;
    let mut best_ext = hi[0] - lo[0];
    for d in 1..3 {
        let ext = hi[d] - lo[d];
        if ext > best_ext {
            best_ext = ext;
            best = d;
        }
    }
    best
}

/// Sort ids by coordinate along `axis` (ties by id — f64 total order is
/// fine here because coordinates are validated finite).
fn sort_along(ids: &mut [u32], pts: &[[f64; 3]], axis: usize) {
    ids.sort_unstable_by(|&a, &b| {
        pts[a as usize][axis]
            .total_cmp(&pts[b as usize][axis])
            .then(a.cmp(&b))
    });
}

/// Bisect one RCB subproblem: processors at their spatial median (left
/// block gets the extra on odd counts), tasks at the weighted median
/// clamped so each half fits its processor half.
fn split_job(job: &RcbJob, task_pts: &[[f64; 3]], pe_pts: &[[f64; 3]], ws: &[f64]) -> RcbStep {
    let pp = job.pes.len();
    if pp == 1 {
        debug_assert!(job.tasks.len() <= 1);
        return RcbStep::Leaf(job.tasks.first().map(|&t| (t, job.pes[0])));
    }
    // Processor side: orthogonal bisection of the machine block.
    let mut pes = job.pes.clone();
    let pe_axis = widest_axis(&pes, pe_pts);
    sort_along(&mut pes, pe_pts, pe_axis);
    let pl = pp.div_ceil(2);

    // Task side: weighted median along the tasks' own widest axis,
    // clamped to [n - pr, pl] so both halves fit their blocks.
    let mut ts = job.tasks.clone();
    let nt = ts.len();
    let t_axis = widest_axis(&ts, task_pts);
    sort_along(&mut ts, task_pts, t_axis);
    let total: f64 = ts.iter().map(|&t| ws[t as usize]).sum();
    let target = total * (pl as f64) / (pp as f64);
    let sorted_ws: Vec<f64> = ts.iter().map(|&t| ws[t as usize]).collect();
    let k = weighted_median_split(&sorted_ws, target)
        .max(nt.saturating_sub(pp - pl))
        .min(pl.min(nt));

    let (tl, tr) = ts.split_at(k);
    let (bl, br) = pes.split_at(pl);
    RcbStep::Split(
        RcbJob {
            tasks: tl.to_vec(),
            pes: bl.to_vec(),
        },
        RcbJob {
            tasks: tr.to_vec(),
            pes: br.to_vec(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn curve_encoders_are_bijections_2d() {
        for bits in 1..=4u32 {
            let side = 1u32 << bits;
            let mut seen_h = vec![false; (side * side) as usize];
            let mut seen_m = vec![false; (side * side) as usize];
            for x in 0..side {
                for y in 0..side {
                    let h = hilbert_index([x, y], bits);
                    let m = morton_index([x, y], bits);
                    assert!(!seen_h[h as usize], "hilbert collision at ({x},{y})");
                    assert!(!seen_m[m as usize], "morton collision at ({x},{y})");
                    seen_h[h as usize] = true;
                    seen_m[m as usize] = true;
                    assert_eq!(hilbert_point::<2>(h, bits), [x, y]);
                    assert_eq!(morton_point::<2>(m, bits), [x, y]);
                }
            }
        }
    }

    #[test]
    fn hilbert_consecutive_indices_are_grid_neighbors_3d() {
        let bits = 3u32;
        let total = 1u64 << (3 * bits);
        let mut prev = hilbert_point::<3>(0, bits);
        for d in 1..total {
            let cur = hilbert_point::<3>(d, bits);
            let l1: u32 = (0..3).map(|i| cur[i].abs_diff(prev[i])).sum();
            assert_eq!(l1, 1, "jump at index {d}: {prev:?} -> {cur:?}");
            prev = cur;
        }
    }

    #[test]
    fn sfc_on_matching_stencil_is_identity_quality() {
        // 8x8 stencil on an 8x8 torus: both sides take the same Hilbert
        // order, so the mapping is the identity embedding — hpb == 1.
        let tasks = gen::stencil2d(8, 8, 1024.0, false);
        let topo = Torus::torus_2d(8, 8);
        let m = SfcMap::hilbert().map(&tasks, &topo);
        assert!((metrics::hops_per_byte(&tasks, &topo, &m) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rcb_on_matching_stencil_beats_random_badly() {
        let tasks = gen::stencil2d(8, 8, 1024.0, false);
        let topo = Torus::torus_2d(8, 8);
        let m = RcbMap::new().map(&tasks, &topo);
        let hpb = metrics::hops_per_byte(&tasks, &topo, &m);
        assert!(hpb < 2.0, "RCB hpb {hpb} should be near-optimal");
    }

    #[test]
    fn strict_mappers_error_without_coords() {
        let tasks = gen::ring(8, 64.0); // no geometry
        let topo = Torus::torus_2d(4, 4);
        let err = SfcMap::strict(Curve::Hilbert)
            .try_map(&tasks, &topo)
            .unwrap_err();
        assert!(matches!(err, GeomError::MissingCoordinates { .. }));
        assert!(err.to_string().contains("coordinates"));
        assert!(RcbMap::strict().try_map(&tasks, &topo).is_err());
    }

    #[test]
    fn fallback_maps_coordinate_free_graphs() {
        let tasks = gen::random_graph(30, 3.0, 1.0, 10.0, 7);
        let topo = Torus::torus_2d(6, 6);
        let a = SfcMap::hilbert().map(&tasks, &topo);
        let b = RcbMap::new().map(&tasks, &topo);
        assert_eq!(a.num_tasks(), 30);
        assert_eq!(b.num_tasks(), 30);
    }

    #[test]
    fn weighted_median_is_within_one_task() {
        let ws = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
        let total: f64 = ws.iter().sum();
        let target = total / 2.0;
        let k = weighted_median_split(&ws, target);
        let left: f64 = ws[..k].iter().sum();
        let max_w = ws.iter().cloned().fold(0.0, f64::max);
        assert!((left - target).abs() <= max_w);
    }

    #[test]
    fn more_procs_than_tasks_is_fine() {
        let tasks = gen::stencil2d(3, 3, 8.0, false);
        let topo = Torus::torus_2d(8, 8);
        for m in [
            SfcMap::hilbert().map(&tasks, &topo),
            RcbMap::new().map(&tasks, &topo),
        ] {
            assert_eq!(m.num_tasks(), 9);
            assert_eq!(m.num_procs(), 64);
        }
    }

    #[test]
    fn synthesized_coords_reflect_bfs_layers() {
        let g = gen::ring(6, 1.0);
        let cs = synthesize_coords(&g);
        assert_eq!(cs.len(), 6);
        // Ring: all layers within diameter.
        assert!(cs.iter().all(|c| c[0] <= 3.0 && c[1] <= 3.0));
        // Two components get disjoint x ranges.
        let two = topomap_taskgraph::transform::disjoint_union(&g, &g);
        let cs2 = synthesize_coords(&two);
        let max_a = (0..6).map(|t| cs2[t][0]).fold(0.0, f64::max);
        let min_b = (6..12).map(|t| cs2[t][0]).fold(f64::INFINITY, f64::min);
        assert!(min_b > max_a);
    }
}
