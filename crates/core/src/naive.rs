//! Naive (pre-optimization) mapper twins for the differential test suite.
//!
//! [`NaiveTopoLb`] and [`NaiveTopoCentLb`] implement exactly the same
//! selection/placement semantics as the production [`crate::TopoLb`] and
//! [`crate::TopoCentLb`], but from their straightforward defining
//! recurrences: dense id-indexed tables, per-element distance calls, no
//! row pooling, no dirty tracking, no parallelism. They are the *oracles*
//! of `tests/incremental_equivalence.rs`, which pins the incremental
//! kernels **bit-identical** to them. Compiled unconditionally (but
//! `#[doc(hidden)]`) so every future PR can cross-check.

use crate::estimation::EstimationOrder;
use crate::estimation_naive::NaiveEstimationState;
use crate::topocentlb::{seed_task, Entry};
use crate::{Mapper, Mapping};
use std::collections::BinaryHeap;
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{stats::AvgDistTable, Topology};

/// Dense-table oracle twin of [`crate::TopoLb`]. Serial, no obs output.
#[derive(Debug, Clone, Copy)]
pub struct NaiveTopoLb {
    pub order: EstimationOrder,
}

impl Default for NaiveTopoLb {
    fn default() -> Self {
        NaiveTopoLb {
            order: EstimationOrder::Second,
        }
    }
}

impl Mapper for NaiveTopoLb {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        let mut state = NaiveEstimationState::new(tasks, topo, self.order);
        let mut proc_of = vec![usize::MAX; n];
        for _ in 0..n {
            let t = state.select_task();
            let q = state.best_proc(t);
            proc_of[t] = q;
            state.assign(t, q);
        }
        Mapping::new(proc_of, p)
    }

    fn name(&self) -> String {
        format!("NaiveTopoLB({})", self.order.label())
    }
}

/// Full-rescan oracle twin of [`crate::TopoCentLb`]: same heap-based
/// selection, but placement cost is recomputed from a dense id-indexed
/// contribution table scanned over all processors in id order.
#[derive(Debug, Clone, Copy, Default)]
pub struct NaiveTopoCentLb;

impl Mapper for NaiveTopoCentLb {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");

        let mut proc_of = vec![usize::MAX; n];
        let mut placed = vec![false; n];
        let mut is_free = vec![true; p];
        let mut comm_assigned = vec![0f64; n];
        let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(n * 2);
        // cost[t * p + q] = Σ over placed neighbors j of c · d(q, P(j)),
        // accumulated per placement event in the same order as the fast
        // kernel's pooled rows — bit-equal values by construction.
        let mut cost = vec![0.0f64; n * p];

        // Identical placement event schedule to the fast kernel.
        #[allow(clippy::too_many_arguments)]
        fn place(
            tasks: &TaskGraph,
            topo: &dyn Topology,
            t: TaskId,
            q: usize,
            proc_of: &mut [usize],
            placed: &mut [bool],
            is_free: &mut [bool],
            comm_assigned: &mut [f64],
            heap: &mut BinaryHeap<Entry>,
            cost: &mut [f64],
        ) {
            let p = topo.num_nodes();
            proc_of[t] = q;
            placed[t] = true;
            is_free[q] = false;
            for (j, c) in tasks.neighbors(t) {
                if placed[j] {
                    continue;
                }
                comm_assigned[j] += c;
                heap.push(Entry {
                    key: comm_assigned[j],
                    task: j,
                });
                for (r, slot) in cost[j * p..(j + 1) * p].iter_mut().enumerate() {
                    *slot += c * topo.distance(r, q) as f64;
                }
            }
        }

        let first = seed_task(tasks);
        let center = AvgDistTable::new(topo).center();
        place(
            tasks,
            topo,
            first,
            center,
            &mut proc_of,
            &mut placed,
            &mut is_free,
            &mut comm_assigned,
            &mut heap,
            &mut cost,
        );

        for _ in 1..n {
            let t = loop {
                match heap.pop() {
                    Some(Entry { key, task }) if !placed[task] && key == comm_assigned[task] => {
                        break Some(task);
                    }
                    Some(_) => continue,
                    None => break None,
                }
            };
            let t = t.unwrap_or_else(|| (0..n).find(|&x| !placed[x]).unwrap());

            // Full scan in processor-id order; strict `<` keeps the lowest
            // id among ties — the same (cost, id) lexmin as the fast fold.
            let mut best_q = usize::MAX;
            let mut best_cost = f64::INFINITY;
            for q in 0..p {
                if !is_free[q] {
                    continue;
                }
                let cq = cost[t * p + q];
                if cq < best_cost {
                    best_cost = cq;
                    best_q = q;
                }
            }
            place(
                tasks,
                topo,
                t,
                best_q,
                &mut proc_of,
                &mut placed,
                &mut is_free,
                &mut comm_assigned,
                &mut heap,
                &mut cost,
            );
        }
        Mapping::new(proc_of, p)
    }

    fn name(&self) -> String {
        "NaiveTopoCentLB".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn naive_mappers_produce_valid_mappings() {
        let tasks = gen::stencil2d(4, 4, 10.0, false);
        let topo = Torus::torus_2d(4, 4);
        for m in [
            NaiveTopoLb::default().map(&tasks, &topo),
            NaiveTopoCentLb.map(&tasks, &topo),
        ] {
            let mut seen = [false; 16];
            for t in 0..16 {
                assert!(!seen[m.proc_of(t)]);
                seen[m.proc_of(t)] = true;
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(NaiveTopoLb::default().name(), "NaiveTopoLB(second-order)");
        assert_eq!(NaiveTopoCentLb.name(), "NaiveTopoCentLB");
    }
}
