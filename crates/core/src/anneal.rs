//! Simulated-annealing mapping — the "physical optimization" comparison
//! point.
//!
//! The paper's introduction: "Two kinds of algorithms have been developed
//! in the past ... Heuristic algorithms and Physical optimization
//! algorithms. Though physical optimization algorithms produce
//! high-quality solutions (better than heuristic algorithms), they tend
//! to be very slow." (§1, citing Bollinger & Midkiff's process-annealing
//! phase \[6\]).
//!
//! [`SimulatedAnnealingMap`] implements the classic scheme over the
//! hop-bytes objective: start from a seed mapping, propose random task
//! swaps (or moves to free processors), accept improvements always and
//! regressions with probability `exp(-Δ/T)`, cool geometrically. The
//! `exp_physopt` bench quantifies the paper's quality-vs-time trade-off
//! against TopoLB.

use crate::obs;
use crate::par::{Executor, Parallelism};
use crate::refine::swap_delta;
use crate::{metrics, Mapper, Mapping, RandomMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use topomap_taskgraph::TaskGraph;
use topomap_topology::Topology;

/// Simulated-annealing mapper over hop-bytes.
///
/// Proposals and acceptance decisions draw from two *independent* RNG
/// streams: one temperature step's worth of proposals is generated up
/// front against the step's starting mapping, their deltas are evaluated
/// in parallel against that frozen mapping, and the main thread then
/// walks the batch in order — recomputing any delta whose tasks were
/// dirtied by an earlier acceptance — drawing acceptance randomness as it
/// goes. Splitting the streams is what makes the batch well-defined: the
/// proposal sequence no longer depends on how many acceptance draws
/// interleave, so the result is identical for every thread count.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealingMap {
    /// RNG seed (deterministic per seed).
    pub seed: u64,
    /// Swap proposals per temperature step.
    pub moves_per_temp: usize,
    /// Initial temperature as a fraction of the seed mapping's hop-bytes
    /// per edge (scale-free across workloads).
    pub initial_temp_factor: f64,
    /// Geometric cooling rate per temperature step (e.g. 0.95).
    pub cooling: f64,
    /// Stop once temperature falls below this fraction of the initial.
    pub min_temp_fraction: f64,
    /// Thread configuration for the batched delta evaluation
    /// (result-invariant).
    pub par: Parallelism,
}

impl Default for SimulatedAnnealingMap {
    fn default() -> Self {
        SimulatedAnnealingMap {
            seed: 0xA11EA1,
            moves_per_temp: 400,
            initial_temp_factor: 2.0,
            cooling: 0.95,
            min_temp_fraction: 1e-3,
            par: Parallelism::default(),
        }
    }
}

/// One proposed exchange, generated against the batch-start mapping.
#[derive(Debug, Clone, Copy)]
enum Proposal {
    Swap(usize, usize),
    Relocate(usize, usize),
}

impl SimulatedAnnealingMap {
    pub fn new(seed: u64) -> Self {
        SimulatedAnnealingMap {
            seed,
            ..Default::default()
        }
    }

    /// A lighter configuration for tests and examples.
    pub fn quick(seed: u64) -> Self {
        SimulatedAnnealingMap {
            seed,
            moves_per_temp: 100,
            cooling: 0.90,
            ..Default::default()
        }
    }
}

impl Mapper for SimulatedAnnealingMap {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        let _map_span = obs::span("anneal.map");
        // Independent streams: proposals must not shift when acceptance
        // draws are reordered by the batch walk (see the type docs).
        let mut prop_rng = StdRng::seed_from_u64(self.seed);
        let mut acc_rng = StdRng::seed_from_u64(self.seed ^ 0xACCE_0000);
        let exec = Executor::new(self.par);

        // Seed from random placement (the classic SA setup; seeding from
        // TopoLB would conflate the comparison).
        let seed_span = obs::span("anneal.seed");
        let mut m = RandomMap::new(self.seed ^ 0x5eed).map(tasks, topo);
        let mut best = m.clone();
        let mut cur_hb = metrics::hop_bytes(tasks, topo, &m);
        let mut best_hb = cur_hb;
        drop(seed_span);

        if n < 2 || tasks.num_edges() == 0 {
            return m;
        }

        let _search_span = obs::span("anneal.search");
        let (mut n_acc, mut n_rej, mut n_void, mut n_steps) = (0u64, 0u64, 0u64, 0u64);

        // Scale-free initial temperature: proportional to the average
        // per-edge hop-bytes of the seed.
        let t0 = self.initial_temp_factor * cur_hb / tasks.num_edges() as f64;
        let mut temp = t0;
        let t_min = t0 * self.min_temp_fraction;

        let wpi = 1 + 2 * tasks.num_edges() / n;
        let mut dirty = vec![false; n];
        let mark = |dirty: &mut Vec<bool>, t: usize| {
            dirty[t] = true;
            for (j, _) in tasks.neighbors(t) {
                dirty[j] = true;
            }
        };

        while temp > t_min {
            // Generate one temperature step's proposals against the
            // batch-start mapping.
            let proposals: Vec<Proposal> = (0..self.moves_per_temp)
                .map(|_| {
                    let a = prop_rng.gen_range(0..n);
                    // Candidate partner: another task (swap), or a free
                    // processor (move) when the machine has spare nodes.
                    if p > n && prop_rng.gen_bool(0.25) {
                        // Pick a random free processor by rejection
                        // sampling (free fraction is at least (p-n)/p).
                        let q = loop {
                            let q = prop_rng.gen_range(0..p);
                            if m.task_on(q).is_none() {
                                break q;
                            }
                        };
                        Proposal::Relocate(a, q)
                    } else {
                        let mut b = prop_rng.gen_range(0..n);
                        if b == a {
                            b = (b + 1) % n;
                        }
                        Proposal::Swap(a, b)
                    }
                })
                .collect();

            // Parallel delta evaluation against the frozen mapping; each
            // proposal is scored by exactly one worker.
            let frozen = &m;
            let chunks = exec.map_chunks(proposals.len(), wpi, |range| {
                range
                    .map(|i| proposal_delta(tasks, topo, frozen, proposals[i]))
                    .collect::<Vec<_>>()
            });
            let mut deltas = Vec::with_capacity(proposals.len());
            for c in chunks {
                deltas.extend(c);
            }

            // Serial walk: revalidate stale deltas, draw acceptance.
            for (i, &prop) in proposals.iter().enumerate() {
                let delta = match prop {
                    Proposal::Swap(a, b) => {
                        if dirty[a] || dirty[b] {
                            swap_delta(tasks, topo, &m, a, b)
                        } else {
                            deltas[i]
                        }
                    }
                    Proposal::Relocate(a, q) => {
                        // An earlier acceptance may have filled q; the
                        // proposal is then void (no acceptance draw).
                        if m.task_on(q).is_some() {
                            n_void += 1;
                            continue;
                        }
                        if dirty[a] {
                            move_cost(tasks, topo, &m, a, q)
                        } else {
                            deltas[i]
                        }
                    }
                };
                let accept = delta < 0.0 || acc_rng.gen_bool((-delta / temp).exp().min(1.0));
                if !accept {
                    n_rej += 1;
                }
                if accept {
                    n_acc += 1;
                    match prop {
                        Proposal::Swap(a, b) => {
                            m.swap_tasks(a, b);
                            mark(&mut dirty, a);
                            mark(&mut dirty, b);
                        }
                        Proposal::Relocate(a, q) => {
                            m.move_task(a, q);
                            mark(&mut dirty, a);
                        }
                    }
                    cur_hb += delta;
                    if cur_hb < best_hb {
                        best_hb = cur_hb;
                        best = m.clone();
                    }
                }
            }
            n_steps += 1;
            obs::series_push("anneal.hb", cur_hb);
            dirty.fill(false);
            temp *= self.cooling;
        }
        obs::counter_add("anneal.proposals", n_steps * self.moves_per_temp as u64);
        obs::counter_add("anneal.accepted", n_acc);
        obs::counter_add("anneal.rejected", n_rej);
        obs::counter_add("anneal.voided", n_void);
        obs::counter_add("anneal.temp_steps", n_steps);
        best
    }

    fn name(&self) -> String {
        "SimAnneal".to_string()
    }
}

/// Delta of a proposal against a frozen mapping.
fn proposal_delta(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping, p: Proposal) -> f64 {
    match p {
        Proposal::Swap(a, b) => swap_delta(tasks, topo, m, a, b),
        Proposal::Relocate(a, q) => move_cost(tasks, topo, m, a, q),
    }
}

/// Hop-byte change from relocating task `t` to free processor `q`.
fn move_cost(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping, t: usize, q: usize) -> f64 {
    let pt = m.proc_of(t);
    tasks
        .neighbors(t)
        .map(|(j, c)| {
            let pj = m.proc_of(j);
            c * (topo.distance(q, pj) as f64 - topo.distance(pt, pj) as f64)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn beats_its_own_random_seed() {
        let tasks = gen::stencil2d(5, 5, 100.0, false);
        let topo = Torus::torus_2d(5, 5);
        let sa = SimulatedAnnealingMap::quick(3).map(&tasks, &topo);
        let seed = RandomMap::new(3 ^ 0x5eed).map(&tasks, &topo);
        let h_sa = metrics::hop_bytes(&tasks, &topo, &sa);
        let h_seed = metrics::hop_bytes(&tasks, &topo, &seed);
        assert!(h_sa < 0.6 * h_seed, "SA {h_sa} vs seed {h_seed}");
    }

    #[test]
    fn near_optimal_on_small_stencil() {
        // SA should find (near-)dilation-1 embeddings of a 4x4 mesh in a
        // 4x4 torus given enough moves.
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let m = SimulatedAnnealingMap::new(1).map(&tasks, &topo);
        let hpb = metrics::hops_per_byte(&tasks, &topo, &m);
        assert!(hpb <= 1.35, "SA hpb {hpb}");
    }

    #[test]
    fn deterministic_per_seed() {
        let tasks = gen::random_graph(16, 3.0, 1.0, 100.0, 7);
        let topo = Torus::torus_2d(4, 4);
        let a = SimulatedAnnealingMap::quick(9).map(&tasks, &topo);
        let b = SimulatedAnnealingMap::quick(9).map(&tasks, &topo);
        assert_eq!(a, b);
    }

    #[test]
    fn uses_free_processors() {
        // 2 heavy communicators on an 8-node line with 6 free nodes:
        // relocation moves must bring them adjacent.
        let mut b = TaskGraph::builder(2);
        b.add_comm(0, 1, 1000.0);
        let tasks = b.build();
        let topo = Torus::mesh_1d(8);
        let m = SimulatedAnnealingMap::new(5).map(&tasks, &topo);
        assert_eq!(topo.distance(m.proc_of(0), m.proc_of(1)), 1);
    }

    use topomap_taskgraph::TaskGraph;

    #[test]
    fn edgeless_graph_short_circuits() {
        let tasks = TaskGraph::builder(4).build();
        let topo = Torus::torus_2d(2, 2);
        let m = SimulatedAnnealingMap::new(1).map(&tasks, &topo);
        assert_eq!(m.num_tasks(), 4);
    }
}
