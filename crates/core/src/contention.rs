//! Contention-aware refinement: map → simulate → unload hot links.
//!
//! Every mapper in this crate optimizes *hop-bytes*, which the source
//! paper itself presents only as a proxy for the real cost — contention on
//! shared links. [`ContentionRefine`] is the first optimizer here whose
//! objective is the simulator's actual completion time: it runs the
//! network simulation on a candidate mapping, reads the per-link
//! busy-time ledger back, identifies the hottest links, and greedily
//! swaps or migrates the task pairs contributing the most bytes to those
//! links — accepting an exchange only when it strictly improves the
//! *simulated makespan*, and only when it does not blow up hop-bytes
//! (the incremental `swap_delta`/`move_delta` kernels from the refiner
//! guard the proxy within a slack factor).
//!
//! ## Crate layering
//!
//! The simulator lives in `topomap-netsim`, which depends on this crate —
//! so the loop takes the simulator as a closure `FnMut(&Mapping) ->
//! SimObservation` rather than calling it directly.
//! `topomap_netsim::contention_oracle` builds that closure from a
//! topology + config + trace; tests can substitute analytic models.
//!
//! ## Loop invariants
//!
//! - The mapping is always injective (exchanges are swaps between mapped
//!   tasks or moves onto free processors).
//! - The accepted makespan sequence is strictly decreasing, so the loop
//!   terminates and the final mapping is never worse than the input
//!   (under the same simulator).
//! - Hop-bytes never exceeds `(1 + hb_slack)` × the per-iteration value
//!   it started from: candidates failing the guard are never simulated.
//! - The result is bit-identical at every thread count: only the
//!   hop-bytes guard fans out (chunk results are merged in candidate
//!   order), while hot-link ranking, candidate enumeration (`BTreeMap`
//!   accumulation, stable sorts, first-strictly-better acceptance) and
//!   the simulations themselves are serial and deterministic.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::metrics;
use crate::obs;
use crate::par::{Executor, Parallelism};
use crate::refine::{move_delta, swap_delta};
use crate::Mapping;
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{Link, NodeId, RoutedTopology};

/// What the refiner reads back from one simulator run: the makespan it
/// optimizes plus the per-link ledger it mines for hot links. Link vectors
/// are indexed in `topo.links()` order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimObservation {
    /// Simulated completion time of the whole trace.
    pub makespan_ns: u64,
    /// Per-link busy time (serialization + backpressure), `links()` order.
    pub link_busy_ns: Vec<u64>,
    /// Per-link bytes carried, `links()` order.
    pub link_bytes: Vec<u64>,
    /// Total time messages spent queued behind busy links.
    pub queue_wait_ns: u64,
}

/// One candidate exchange between processors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Exchange {
    /// Swap the processors of two tasks (normalized: lower task first).
    Swap(TaskId, TaskId),
    /// Migrate a task to a free processor.
    Move(TaskId, NodeId),
}

impl Exchange {
    fn apply(self, m: &mut Mapping) {
        match self {
            Exchange::Swap(a, b) => m.swap_tasks(a, b),
            Exchange::Move(t, q) => m.move_task(t, q),
        }
    }

    fn hb_delta(self, tasks: &TaskGraph, topo: &dyn RoutedTopology, m: &Mapping) -> f64 {
        match self {
            Exchange::Swap(a, b) => swap_delta(tasks, topo, m, a, b),
            Exchange::Move(t, q) => move_delta(tasks, topo, m, t, q),
        }
    }
}

/// Outcome of one [`ContentionRefine::refine`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionReport {
    /// Refinement iterations entered (each = one hot-link analysis).
    pub iterations: usize,
    /// Total simulator invocations, including the initial baseline run.
    pub sims_run: usize,
    /// Exchanges accepted (== strict makespan improvements applied).
    pub accepted: usize,
    /// Makespan of the input mapping.
    pub initial_makespan_ns: u64,
    /// Makespan of the refined mapping (== initial when nothing helped).
    pub final_makespan_ns: u64,
}

impl ContentionReport {
    /// Relative makespan improvement in percent (0 when nothing helped).
    pub fn improvement_pct(&self) -> f64 {
        if self.initial_makespan_ns == 0 {
            return 0.0;
        }
        100.0 * (self.initial_makespan_ns - self.final_makespan_ns) as f64
            / self.initial_makespan_ns as f64
    }
}

/// The contention-aware refinement loop. See the module docs for the
/// algorithm; construct with [`Default`] and override fields as needed.
#[derive(Debug, Clone)]
pub struct ContentionRefine {
    /// Maximum refinement iterations (hot-link analyses).
    pub max_iters: usize,
    /// Total simulator-invocation budget, counting the baseline run —
    /// the CLI's `--sim-iters`. At least 2 to do anything.
    pub sim_budget: usize,
    /// How many of the busiest links to analyze per iteration.
    pub hot_links: usize,
    /// How many top-contributing task pairs to consider per hot link.
    pub pairs_per_link: usize,
    /// Cap on candidate exchanges per iteration (after dedup).
    pub max_candidates: usize,
    /// Allowed hop-bytes regression per accepted exchange, as a fraction
    /// of the current hop-bytes: candidates with `delta_hb > hb_slack·HB`
    /// are discarded before simulation. Trading a *bounded* amount of the
    /// proxy for real makespan is the point of the loop.
    pub hb_slack: f64,
    /// Thread configuration for the hop-bytes guard fan-out.
    pub par: Parallelism,
}

impl Default for ContentionRefine {
    fn default() -> Self {
        ContentionRefine {
            max_iters: 16,
            sim_budget: 64,
            hot_links: 4,
            pairs_per_link: 2,
            max_candidates: 24,
            hb_slack: 0.10,
            par: Parallelism::default(),
        }
    }
}

impl ContentionRefine {
    /// Default parameters with an explicit thread configuration.
    pub fn with_parallelism(par: Parallelism) -> Self {
        ContentionRefine {
            par,
            ..Self::default()
        }
    }

    /// Refine `m` in place against the simulator `sim`; returns the run
    /// report. `sim` must be deterministic (same mapping → same
    /// observation) with ledgers in `topo.links()` order; routes used for
    /// byte attribution are the topology's deterministic ones, which is
    /// exact under deterministic routing and a minimal-route approximation
    /// under adaptive routing.
    pub fn refine<F>(
        &self,
        tasks: &TaskGraph,
        topo: &dyn RoutedTopology,
        m: &mut Mapping,
        mut sim: F,
    ) -> ContentionReport
    where
        F: FnMut(&Mapping) -> SimObservation,
    {
        let _span = obs::span("contention.refine");
        let prof = obs::enabled();
        let exec = Executor::new(self.par);
        let links = topo.links();

        let mut sims_run = 0usize;
        let mut iterations = 0usize;
        let mut accepted = 0usize;
        let mut candidates_total = 0u64;

        let mut cur = sim(m);
        sims_run += 1;
        assert_eq!(
            cur.link_busy_ns.len(),
            links.len(),
            "simulator ledger does not match topo.links()"
        );
        let initial_makespan_ns = cur.makespan_ns;

        while iterations < self.max_iters && sims_run < self.sim_budget {
            let _iter_span = obs::span("contention.iter");
            iterations += 1;

            let hot = hot_link_ranking(&cur.link_busy_ns, self.hot_links);
            if hot.is_empty() {
                break; // nothing crossed the network
            }
            let cands = self.candidates(tasks, topo, m, &links, &hot);
            candidates_total += cands.len() as u64;
            if cands.is_empty() {
                break;
            }

            // Hop-bytes guard, fanned over the candidate list. Chunk
            // results are flattened in chunk (= candidate) order, so the
            // survivor set is independent of the thread count.
            let hb = metrics::hop_bytes(tasks, topo, m);
            let slack = self.hb_slack * hb.max(1.0);
            let deltas: Vec<f64> = exec
                .map_chunks(cands.len(), tasks.num_tasks().max(1), |range| {
                    range
                        .map(|i| cands[i].hb_delta(tasks, topo, m))
                        .collect::<Vec<f64>>()
                })
                .into_iter()
                .flatten()
                .collect();

            // Simulated-makespan acceptance: try survivors in enumeration
            // order, keep the best strict improvement (ties → earliest).
            let mut best: Option<(u64, Exchange, SimObservation)> = None;
            for (c, _) in cands
                .iter()
                .zip(&deltas)
                .filter(|&(_, &d)| d <= slack)
                .map(|(&c, &d)| (c, d))
            {
                if sims_run >= self.sim_budget {
                    break;
                }
                let mut trial = m.clone();
                c.apply(&mut trial);
                let o = sim(&trial);
                sims_run += 1;
                let better_than_best = best.as_ref().is_none_or(|(b, _, _)| o.makespan_ns < *b);
                if o.makespan_ns < cur.makespan_ns && better_than_best {
                    best = Some((o.makespan_ns, c, o));
                }
            }

            match best {
                Some((_, c, o)) => {
                    c.apply(m);
                    cur = o;
                    accepted += 1;
                    obs::series_push("contention.makespan_ns", cur.makespan_ns as f64);
                }
                None => break, // no hot-link exchange improves the makespan
            }
        }

        if prof {
            obs::counter_add("contention.iterations", iterations as u64);
            obs::counter_add("contention.sims", sims_run as u64);
            obs::counter_add("contention.accepted", accepted as u64);
            obs::counter_add("contention.candidates", candidates_total);
        }
        ContentionReport {
            iterations,
            sims_run,
            accepted,
            initial_makespan_ns,
            final_makespan_ns: cur.makespan_ns,
        }
    }

    /// Enumerate candidate exchanges that pull the endpoints of the
    /// top-contributing task pairs of each hot link next to each other:
    /// for pair `(u, v)`, every neighbor processor of `proc(v)` offers
    /// either a swap (occupied) or a migration (free) for `u`, and
    /// symmetrically for `v`. Deterministic order: hot links by rank,
    /// pairs by contributed bytes, neighbors in enumeration order; dedup
    /// keeps first occurrence.
    fn candidates(
        &self,
        tasks: &TaskGraph,
        topo: &dyn RoutedTopology,
        m: &Mapping,
        links: &[Link],
        hot: &[usize],
    ) -> Vec<Exchange> {
        let link_id: HashMap<Link, usize> =
            links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let hot_rank: HashMap<usize, usize> =
            hot.iter().enumerate().map(|(r, &li)| (li, r)).collect();

        // Attribute each task edge's bytes to the hot links its
        // deterministic route crosses. BTreeMap keeps the per-link
        // contributor sets in a platform-independent order.
        let mut contrib: Vec<BTreeMap<(TaskId, TaskId), f64>> = vec![BTreeMap::new(); hot.len()];
        let mut route = Vec::new();
        for (a, b, c) in tasks.edges() {
            let (pa, pb) = (m.proc_of(a), m.proc_of(b));
            if pa == pb {
                continue;
            }
            let half = c / 2.0;
            for (src, dst) in [(pa, pb), (pb, pa)] {
                topo.route_into(src, dst, &mut route);
                for l in &route {
                    if let Some(&r) = hot_rank.get(&link_id[l]) {
                        *contrib[r].entry((a, b)).or_insert(0.0) += half;
                    }
                }
            }
        }

        let mut cands = Vec::new();
        let mut seen = HashSet::new();
        let mut push = |c: Exchange| {
            if seen.insert(c) {
                cands.push(c);
            }
        };
        for per_link in &contrib {
            let mut pairs: Vec<(&(TaskId, TaskId), &f64)> = per_link.iter().collect();
            pairs.sort_by(|x, y| y.1.total_cmp(x.1).then(x.0.cmp(y.0)));
            for (&(u, v), _) in pairs.into_iter().take(self.pairs_per_link) {
                for (t, peer) in [(u, v), (v, u)] {
                    let (pt, pp) = (m.proc_of(t), m.proc_of(peer));
                    for q in topo.neighbors(pp) {
                        if q == pt {
                            continue;
                        }
                        match m.task_on(q) {
                            Some(w) if w != t && w != peer => {
                                push(Exchange::Swap(t.min(w), t.max(w)))
                            }
                            Some(_) => {}
                            None => push(Exchange::Move(t, q)),
                        }
                    }
                }
            }
        }
        cands.truncate(self.max_candidates);
        cands
    }
}

/// Indices of the `k` busiest links (busy time descending, ties → lower
/// link index), skipping idle links.
fn hot_link_ranking(busy: &[u64], k: usize) -> Vec<usize> {
    let mut ranked: Vec<usize> = (0..busy.len()).filter(|&i| busy[i] > 0).collect();
    ranked.sort_by_key(|&i| (std::cmp::Reverse(busy[i]), i));
    ranked.truncate(k);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mapper, RandomMap};
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    /// An analytic stand-in simulator: makespan = max per-link bytes under
    /// deterministic routing, with a per-link weight so tests can mark
    /// links "slow". Ledger bytes double as busy time.
    fn toy_sim<'a>(
        tasks: &'a TaskGraph,
        topo: &'a dyn RoutedTopology,
        slow: &'a [(usize, f64)],
    ) -> impl FnMut(&Mapping) -> SimObservation + 'a {
        move |m: &Mapping| {
            let ll = metrics::LinkLoads::compute(tasks, topo, m);
            let mut busy: Vec<u64> = ll.loads().iter().map(|&b| b as u64).collect();
            for &(li, w) in slow {
                busy[li] = (busy[li] as f64 * w) as u64;
            }
            SimObservation {
                makespan_ns: busy.iter().copied().max().unwrap_or(0),
                link_bytes: ll.loads().iter().map(|&b| b as u64).collect(),
                link_busy_ns: busy,
                queue_wait_ns: 0,
            }
        }
    }

    #[test]
    fn hot_link_ranking_orders_and_skips_idle() {
        assert_eq!(hot_link_ranking(&[0, 5, 9, 5, 0], 3), vec![2, 1, 3]);
        assert_eq!(hot_link_ranking(&[0, 0], 4), Vec::<usize>::new());
        assert_eq!(hot_link_ranking(&[7, 7], 1), vec![0]);
    }

    #[test]
    fn converged_refine_is_identity() {
        let tasks = gen::stencil2d(3, 3, 64.0, false);
        let topo = Torus::torus_2d(4, 4);
        let mut m = RandomMap::new(5).map(&tasks, &topo);
        let r = ContentionRefine::default();
        let rep1 = r.refine(&tasks, &topo, &mut m, toy_sim(&tasks, &topo, &[]));
        let before = m.clone();
        let rep2 = r.refine(&tasks, &topo, &mut m, toy_sim(&tasks, &topo, &[]));
        assert_eq!(rep1.final_makespan_ns, rep2.initial_makespan_ns);
        assert_eq!(rep2.accepted, 0, "converged run must accept nothing");
        assert_eq!(m, before, "converged run must not touch the mapping");
        assert_eq!(rep2.final_makespan_ns, rep2.initial_makespan_ns);
    }

    #[test]
    fn never_worse_and_monotone() {
        for seed in [1u64, 3, 8] {
            let tasks = gen::random_graph(10, 2.5, 1.0, 100.0, seed);
            let topo = Torus::torus_2d(4, 4);
            let mut m = RandomMap::new(seed).map(&tasks, &topo);
            let rep = ContentionRefine::default().refine(
                &tasks,
                &topo,
                &mut m,
                toy_sim(&tasks, &topo, &[]),
            );
            assert!(rep.final_makespan_ns <= rep.initial_makespan_ns);
            assert!(rep.sims_run <= ContentionRefine::default().sim_budget);
            let check = toy_sim(&tasks, &topo, &[])(&m);
            assert_eq!(check.makespan_ns, rep.final_makespan_ns);
        }
    }

    #[test]
    fn hb_guard_bounds_proxy_regression() {
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let mut m = RandomMap::new(2).map(&tasks, &topo);
        let hb0 = metrics::hop_bytes(&tasks, &topo, &m);
        let r = ContentionRefine {
            hb_slack: 0.05,
            ..Default::default()
        };
        let rep = r.refine(&tasks, &topo, &mut m, toy_sim(&tasks, &topo, &[]));
        let hb1 = metrics::hop_bytes(&tasks, &topo, &m);
        // Each accepted exchange regresses HB by at most 5% of the HB at
        // its own iteration; with a decreasing makespan the compounded
        // bound over `accepted` steps still holds.
        let bound = hb0 * (1.0 + r.hb_slack).powi(rep.accepted as i32);
        assert!(hb1 <= bound + 1e-9, "hb {hb1} vs bound {bound}");
    }

    #[test]
    fn report_improvement_pct() {
        let rep = ContentionReport {
            iterations: 2,
            sims_run: 5,
            accepted: 1,
            initial_makespan_ns: 200,
            final_makespan_ns: 150,
        };
        assert!((rep.improvement_pct() - 25.0).abs() < 1e-12);
    }
}
