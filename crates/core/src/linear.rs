//! Linear-ordering mapper — the Taura & Chien scheme from the paper's
//! related work (§2, ref \[21\]): "tasks are linearly ordered with more
//! communicating tasks placed closer, and the tasks are mapped in this
//! order" onto a linearized processor sequence.
//!
//! Both sides become one-dimensional:
//!
//! - **Tasks** are ordered by a greedy communication-weighted BFS: start
//!   from the heaviest communicator, repeatedly append the unplaced task
//!   most strongly connected to the already-ordered prefix (a cheap
//!   linear arrangement).
//! - **Processors** are ordered by a locality-preserving curve: snake
//!   (boustrophedon) order on tori/meshes — the classic space-filling
//!   placement used on BlueGene — and BFS order from the topology center
//!   on anything else.
//!
//! O(n²) worst case but with tiny constants; lands between random and
//! TopoCentLB in quality, which is exactly the role the related-work
//! comparison needs.

use crate::{Mapper, Mapping};
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{stats::AvgDistTable, NodeId, Topology, Torus};

/// Snake (boustrophedon) linearization of an N-D grid: dimension 0 runs
/// slowest; each row reverses direction when the preceding coordinate sum
/// is odd, so consecutive positions are always grid neighbors.
pub fn snake_order(machine: &Torus) -> Vec<NodeId> {
    let dims = machine.dims();
    let n = machine.num_nodes();
    let mut order = Vec::with_capacity(n);
    let mut coords = vec![0usize; dims.len()];
    // Odometer over snake coordinates.
    for _ in 0..n {
        // Actual coordinate: reverse dimension d when the sum of higher
        // (slower) coordinates is odd.
        let mut actual = vec![0usize; dims.len()];
        let mut parity = 0usize;
        for d in 0..dims.len() {
            actual[d] = if parity.is_multiple_of(2) {
                coords[d]
            } else {
                dims[d] - 1 - coords[d]
            };
            parity += actual[d];
        }
        order.push(machine.node_at(&actual));
        // Increment odometer (last dim fastest).
        for d in (0..dims.len()).rev() {
            coords[d] += 1;
            if coords[d] < dims[d] {
                break;
            }
            coords[d] = 0;
        }
    }
    order
}

/// Greedy communication-weighted linear arrangement of tasks.
fn task_order(tasks: &TaskGraph) -> Vec<TaskId> {
    let n = tasks.num_tasks();
    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Connection of each unplaced task to the ordered prefix.
    let mut conn = vec![0f64; n];
    for _ in 0..n {
        // Next: strongest connection to prefix; fall back to heaviest
        // communicator (starts a new component / the very first task).
        let next = (0..n)
            .filter(|&t| !placed[t])
            .max_by(|&a, &b| {
                (conn[a], tasks.weighted_degree(a), std::cmp::Reverse(a))
                    .partial_cmp(&(conn[b], tasks.weighted_degree(b), std::cmp::Reverse(b)))
                    .unwrap()
            })
            .expect("tasks remain");
        placed[next] = true;
        order.push(next);
        for (u, w) in tasks.neighbors(next) {
            if !placed[u] {
                conn[u] += w;
            }
        }
    }
    order
}

/// The Taura–Chien-style linear-ordering mapper.
///
/// Constructed over an explicit processor order; use
/// [`LinearOrderMap::snake`] for torus machines or
/// [`LinearOrderMap::bfs`] to derive a center-out BFS order from any
/// topology at map time.
#[derive(Debug, Clone, Default)]
pub struct LinearOrderMap {
    /// Explicit processor visit order; empty = derive BFS-from-center
    /// order from distances at map time.
    pub proc_order: Vec<NodeId>,
}

impl LinearOrderMap {
    /// Snake order over a torus/mesh machine.
    pub fn snake(machine: &Torus) -> Self {
        LinearOrderMap {
            proc_order: snake_order(machine),
        }
    }

    /// Distance-sorted order from the topology center (works for any
    /// metric, including fat-trees).
    pub fn bfs() -> Self {
        LinearOrderMap {
            proc_order: Vec::new(),
        }
    }

    fn effective_order(&self, topo: &dyn Topology) -> Vec<NodeId> {
        if !self.proc_order.is_empty() {
            assert_eq!(
                self.proc_order.len(),
                topo.num_nodes(),
                "processor order does not match machine size"
            );
            return self.proc_order.clone();
        }
        let center = AvgDistTable::new(topo).center();
        let mut order: Vec<NodeId> = (0..topo.num_nodes()).collect();
        order.sort_by_key(|&q| (topo.distance(center, q), q));
        order
    }
}

impl Mapper for LinearOrderMap {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        let procs = self.effective_order(topo);
        let torder = task_order(tasks);
        let mut proc_of = vec![usize::MAX; n];
        for (i, &t) in torder.iter().enumerate() {
            proc_of[t] = procs[i];
        }
        Mapping::new(proc_of, p)
    }

    fn name(&self) -> String {
        if self.proc_order.is_empty() {
            "LinearOrder(bfs)".to_string()
        } else {
            "LinearOrder(snake)".to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, RandomMap, TopoLb};
    use topomap_taskgraph::gen;

    #[test]
    fn snake_order_is_a_hamiltonian_walk() {
        for machine in [
            Torus::mesh_2d(4, 5),
            Torus::mesh_3d(3, 3, 3),
            Torus::torus_2d(4, 4),
        ] {
            let order = snake_order(&machine);
            assert_eq!(order.len(), machine.num_nodes());
            let mut seen = std::collections::HashSet::new();
            for &q in &order {
                assert!(seen.insert(q), "duplicate node {q}");
            }
            // Consecutive snake positions are grid neighbors.
            for w in order.windows(2) {
                assert_eq!(
                    machine.distance(w[0], w[1]),
                    1,
                    "{} broke between {} and {}",
                    machine.name(),
                    w[0],
                    w[1]
                );
            }
        }
    }

    #[test]
    fn beats_random_on_stencils() {
        let tasks = gen::stencil2d(8, 8, 100.0, false);
        let machine = Torus::torus_2d(8, 8);
        let lin = LinearOrderMap::snake(&machine).map(&tasks, &machine);
        let rnd = RandomMap::new(1).map(&tasks, &machine);
        let h_lin = metrics::hops_per_byte(&tasks, &machine, &lin);
        let h_rnd = metrics::hops_per_byte(&tasks, &machine, &rnd);
        assert!(h_lin < 0.75 * h_rnd, "linear {h_lin} vs random {h_rnd}");
        // ...but a 1-D arrangement of a 2-D pattern cannot reach TopoLB.
        let h_lb =
            metrics::hops_per_byte(&tasks, &machine, &TopoLb::default().map(&tasks, &machine));
        assert!(h_lin >= h_lb);
    }

    #[test]
    fn ring_on_snake_is_optimal() {
        // A 1-D pattern along a Hamiltonian walk embeds at dilation 1
        // (except possibly the closing edge).
        let tasks = gen::ring(24, 100.0);
        let machine = Torus::mesh_2d(4, 6);
        let m = LinearOrderMap::snake(&machine).map(&tasks, &machine);
        let hpb = metrics::hops_per_byte(&tasks, &machine, &m);
        assert!(hpb <= 1.5, "ring along the snake: {hpb}");
    }

    #[test]
    fn bfs_order_works_on_metric_only_topology() {
        let tasks = gen::ring(8, 10.0);
        let ft = topomap_topology::FatTree::new(2, 3);
        let m = LinearOrderMap::bfs().map(&tasks, &ft);
        assert_eq!(m.num_tasks(), 8);
        let rnd = RandomMap::new(2).map(&tasks, &ft);
        assert!(
            metrics::hop_bytes(&tasks, &ft, &m) <= metrics::hop_bytes(&tasks, &ft, &rnd) + 1e-9
        );
    }

    #[test]
    fn deterministic() {
        let tasks = gen::random_graph(30, 4.0, 1.0, 10.0, 3);
        let machine = Torus::torus_2d(6, 5);
        let a = LinearOrderMap::snake(&machine).map(&tasks, &machine);
        let b = LinearOrderMap::snake(&machine).map(&tasks, &machine);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn wrong_sized_order_rejected() {
        let tasks = gen::ring(4, 1.0);
        let machine = Torus::torus_2d(2, 2);
        let other = Torus::torus_2d(3, 3);
        LinearOrderMap::snake(&other).map(&tasks, &machine);
    }
}
