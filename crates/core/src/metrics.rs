//! Mapping-quality metrics (§3 of the paper).
//!
//! The primary metric is **hop-bytes** — communication volume weighted by
//! the number of network links it crosses — and its normalized form
//! **hops-per-byte** ("the average number of network links a byte has to
//! travel under a task mapping"). The per-link load metrics connect
//! hop-bytes to contention: with deterministic routing, hop-bytes equals
//! the total byte-load summed over all links, so reducing it reduces the
//! *average* link load directly.

use crate::par::{Executor, Parallelism};
use crate::Mapping;
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{Link, RoutedTopology, Topology};

/// Total hop-bytes: `Σ_{e_ab ∈ Et} c_ab · d_p(P(a), P(b))`.
pub fn hop_bytes(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping) -> f64 {
    assert_eq!(tasks.num_tasks(), m.num_tasks());
    tasks
        .edges()
        .map(|(a, b, c)| c * topo.distance(m.proc_of(a), m.proc_of(b)) as f64)
        .sum()
}

/// [`hop_bytes`] for a batch of mappings, evaluated in parallel — one
/// mapping per work item, so every mapping's edge sum keeps the serial
/// accumulation order and each result is bit-identical to a
/// [`hop_bytes`] call. Used by the genetic mapper's population fitness
/// and the bench drivers.
pub fn hop_bytes_many(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    maps: &[Mapping],
    par: Parallelism,
) -> Vec<f64> {
    hop_bytes_many_in(&Executor::new(par), tasks, topo, maps)
}

/// [`hop_bytes_many`] on an existing executor (lets callers amortize the
/// worker pool over many batches, e.g. one per GA generation).
pub fn hop_bytes_many_in(
    exec: &Executor,
    tasks: &TaskGraph,
    topo: &dyn Topology,
    maps: &[Mapping],
) -> Vec<f64> {
    let wpi = 1 + tasks.num_edges();
    let chunks = exec.map_chunks(maps.len(), wpi, |range| {
        range
            .map(|i| hop_bytes(tasks, topo, &maps[i]))
            .collect::<Vec<_>>()
    });
    let mut out = Vec::with_capacity(maps.len());
    for c in chunks {
        out.extend(c);
    }
    out
}

/// Hop-bytes contributed by a single task:
/// `HB(t) = Σ_{(t,j) ∈ Et} c_tj · d_p(P(t), P(j))`.
///
/// Note `Σ_t HB(t) = 2 · HB` — each edge is counted from both endpoints,
/// matching the paper's `HB = ½ Σ_v HB(v)`.
pub fn task_hop_bytes(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping, t: TaskId) -> f64 {
    tasks
        .neighbors(t)
        .map(|(j, c)| c * topo.distance(m.proc_of(t), m.proc_of(j)) as f64)
        .sum()
}

/// Hops-per-byte: `HB / Σ c_ab` — the paper's headline figure-of-merit
/// (Figures 1–6). Returns 0 for graphs with no communication.
pub fn hops_per_byte(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping) -> f64 {
    let total = tasks.total_comm();
    if total == 0.0 {
        return 0.0;
    }
    hop_bytes(tasks, topo, m) / total
}

/// Maximum edge dilation: the largest distance any task-graph edge is
/// stretched over. The ideal mapping of a pattern that embeds in the
/// topology has dilation 1.
pub fn max_dilation(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping) -> u32 {
    tasks
        .edges()
        .map(|(a, b, _)| topo.distance(m.proc_of(a), m.proc_of(b)))
        .max()
        .unwrap_or(0)
}

/// Histogram of edge dilations: `hist[d]` = total bytes travelling `d`
/// hops. `hist[0]` counts colocated (same-processor) communication.
pub fn dilation_histogram(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping) -> Vec<f64> {
    let mut hist = vec![0f64; topo.diameter() as usize + 1];
    for (a, b, c) in tasks.edges() {
        let d = topo.distance(m.proc_of(a), m.proc_of(b)) as usize;
        hist[d] += c;
    }
    hist
}

/// The dilation below which fraction `q` of all communicated bytes stay
/// (e.g. `q = 0.99` gives the 99th byte-percentile hop count).
pub fn dilation_percentile(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping, q: f64) -> u32 {
    assert!((0.0..=1.0).contains(&q));
    let hist = dilation_histogram(tasks, topo, m);
    let total: f64 = hist.iter().sum();
    if total == 0.0 {
        return 0;
    }
    let mut acc = 0.0;
    for (d, &bytes) in hist.iter().enumerate() {
        acc += bytes;
        if acc >= q * total {
            return d as u32;
        }
    }
    (hist.len() - 1) as u32
}

/// A compact quality summary of a mapping, for reports and experiment
/// output.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingQuality {
    pub hop_bytes: f64,
    pub hops_per_byte: f64,
    pub max_dilation: u32,
    /// Byte-weighted median dilation.
    pub median_dilation: u32,
    /// Fraction of bytes that stay within one hop.
    pub local_fraction: f64,
}

/// Compute the [`MappingQuality`] summary.
pub fn quality(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping) -> MappingQuality {
    let hist = dilation_histogram(tasks, topo, m);
    let total: f64 = hist.iter().sum();
    let near: f64 = hist.iter().take(2).sum();
    MappingQuality {
        hop_bytes: hop_bytes(tasks, topo, m),
        hops_per_byte: hops_per_byte(tasks, topo, m),
        max_dilation: max_dilation(tasks, topo, m),
        median_dilation: dilation_percentile(tasks, topo, m, 0.5),
        local_fraction: if total > 0.0 { near / total } else { 1.0 },
    }
}

/// Per-link byte loads under the topology's deterministic routing.
#[derive(Debug, Clone)]
pub struct LinkLoads {
    links: Vec<Link>,
    loads: Vec<f64>,
}

impl LinkLoads {
    /// Route every task-graph edge (both directions carry `c/2` bytes —
    /// edge weights are totals of the bidirectional exchange) and
    /// accumulate bytes per directed link.
    pub fn compute<T: RoutedTopology + ?Sized>(tasks: &TaskGraph, topo: &T, m: &Mapping) -> Self {
        let links = topo.links();
        let index: std::collections::HashMap<Link, usize> =
            links.iter().enumerate().map(|(i, &l)| (l, i)).collect();
        let mut loads = vec![0f64; links.len()];
        let mut route = Vec::new();
        for (a, b, c) in tasks.edges() {
            let (pa, pb) = (m.proc_of(a), m.proc_of(b));
            if pa == pb {
                continue;
            }
            let half = c / 2.0;
            topo.route_into(pa, pb, &mut route);
            for l in &route {
                loads[index[l]] += half;
            }
            topo.route_into(pb, pa, &mut route);
            for l in &route {
                loads[index[l]] += half;
            }
        }
        LinkLoads { links, loads }
    }

    pub fn links(&self) -> &[Link] {
        &self.links
    }

    pub fn loads(&self) -> &[f64] {
        &self.loads
    }

    /// Heaviest-loaded link (bytes). This is the contention bottleneck the
    /// paper's §5.3 bandwidth sweeps expose.
    pub fn max_load(&self) -> f64 {
        self.loads.iter().fold(0.0f64, |m, &l| m.max(l))
    }

    /// Mean load over all links (bytes).
    pub fn avg_load(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        self.loads.iter().sum::<f64>() / self.loads.len() as f64
    }

    /// Total bytes×links — equals hop-bytes when routes are shortest paths.
    pub fn total(&self) -> f64 {
        self.loads.iter().sum()
    }

    /// Fraction of links carrying zero traffic.
    pub fn idle_fraction(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        self.loads.iter().filter(|&&l| l == 0.0).count() as f64 / self.loads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mapping;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    fn identity(n: usize) -> Mapping {
        Mapping::new((0..n).collect(), n)
    }

    #[test]
    fn identity_stencil_on_matching_torus_has_hpb_one() {
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let m = identity(16);
        assert_eq!(hops_per_byte(&tasks, &topo, &m), 1.0);
        assert_eq!(max_dilation(&tasks, &topo, &m), 1);
    }

    #[test]
    fn hop_bytes_additivity_over_tasks() {
        let tasks = gen::random_graph(20, 3.0, 1.0, 50.0, 2);
        let topo = Torus::torus_2d(4, 5);
        let m = identity(20);
        let total = hop_bytes(&tasks, &topo, &m);
        let per_task: f64 = (0..20).map(|t| task_hop_bytes(&tasks, &topo, &m, t)).sum();
        assert!((per_task - 2.0 * total).abs() < 1e-6 * total.max(1.0));
    }

    #[test]
    fn reversed_mapping_changes_hop_bytes() {
        let tasks = gen::stencil2d(3, 3, 10.0, false);
        let topo = Torus::mesh_2d(3, 3);
        let id = identity(9);
        // A scrambled mapping (reverse) strictly increases HB for a stencil.
        let rev = Mapping::new((0..9).rev().collect(), 9);
        // Reversal of a mesh is an automorphism (180° rotation) — HB equal!
        assert_eq!(
            hop_bytes(&tasks, &topo, &id),
            hop_bytes(&tasks, &topo, &rev)
        );
        // A genuinely scrambled mapping increases it.
        let scrambled = Mapping::new(vec![4, 7, 2, 8, 0, 5, 1, 6, 3], 9);
        assert!(hop_bytes(&tasks, &topo, &scrambled) > hop_bytes(&tasks, &topo, &id));
    }

    #[test]
    fn link_loads_total_equals_hop_bytes() {
        let tasks = gen::stencil2d(4, 4, 64.0, true);
        let topo = Torus::torus_2d(4, 4);
        // Scramble deterministically: multiply by 5 mod 16 (coprime).
        let m = Mapping::new((0..16).map(|t| (t * 5) % 16).collect(), 16);
        let hb = hop_bytes(&tasks, &topo, &m);
        let ll = LinkLoads::compute(&tasks, &topo, &m);
        assert!((ll.total() - hb).abs() < 1e-9, "{} vs {hb}", ll.total());
        assert!(ll.max_load() >= ll.avg_load());
    }

    #[test]
    fn optimal_mapping_spreads_load() {
        // Under identity mapping of a periodic stencil every link carries
        // exactly one message's worth each way: max == avg, idle == 0 on
        // used axes.
        let tasks = gen::stencil2d(4, 4, 10.0, true);
        let topo = Torus::torus_2d(4, 4);
        let ll = LinkLoads::compute(&tasks, &topo, &identity(16));
        assert!((ll.max_load() - ll.avg_load()).abs() < 1e-9);
        assert_eq!(ll.idle_fraction(), 0.0);
    }

    #[test]
    fn dilation_histogram_partitions_bytes() {
        let tasks = gen::random_graph(20, 3.0, 10.0, 100.0, 6);
        let topo = Torus::torus_2d(5, 4);
        let m = identity(20);
        let hist = dilation_histogram(&tasks, &topo, &m);
        assert!((hist.iter().sum::<f64>() - tasks.total_comm()).abs() < 1e-9);
        // Hop-bytes equals the histogram's first moment.
        let moment: f64 = hist.iter().enumerate().map(|(d, &b)| d as f64 * b).sum();
        assert!((moment - hop_bytes(&tasks, &topo, &m)).abs() < 1e-6);
    }

    #[test]
    fn dilation_percentiles_monotone() {
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let m = Mapping::new((0..16).map(|t| (t * 7) % 16).collect(), 16);
        let p50 = dilation_percentile(&tasks, &topo, &m, 0.5);
        let p99 = dilation_percentile(&tasks, &topo, &m, 0.99);
        assert!(p50 <= p99);
        assert!(p99 <= topo.diameter());
        assert_eq!(dilation_percentile(&tasks, &topo, &m, 0.001), {
            // Tiny percentile = smallest dilation with any bytes.
            let hist = dilation_histogram(&tasks, &topo, &m);
            hist.iter().position(|&b| b > 0.0).unwrap() as u32
        });
    }

    #[test]
    fn quality_summary_for_optimal_mapping() {
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let q = quality(&tasks, &topo, &identity(16));
        assert_eq!(q.hops_per_byte, 1.0);
        assert_eq!(q.max_dilation, 1);
        assert_eq!(q.median_dilation, 1);
        assert_eq!(q.local_fraction, 1.0);
    }

    #[test]
    fn colocated_tasks_contribute_zero() {
        let mut b = topomap_taskgraph::TaskGraph::builder(2);
        b.add_comm(0, 1, 1000.0);
        let tasks = b.build();
        let topo = Torus::torus_2d(2, 2);
        // Tasks on procs 0 and 1: distance 1 -> HB = 1000.
        let m = Mapping::new(vec![0, 1], 4);
        assert_eq!(hop_bytes(&tasks, &topo, &m), 1000.0);
        // hops_per_byte of an empty graph is 0.
        let empty = topomap_taskgraph::TaskGraph::builder(2).build();
        assert_eq!(hops_per_byte(&empty, &topo, &m), 0.0);
    }
}
