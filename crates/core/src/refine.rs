//! RefineTopoLB — the pairwise-swap refiner of §5.2.3.
//!
//! "The refiner swaps tasks between processors to see if hop-bytes are
//! reduced or not. It swaps only when hop-bytes get reduced." Intended to
//! run *after* an initial mapper like TopoLB; the paper reports a further
//! ~12% hop-byte reduction on the LeanMD workloads.
//!
//! This implementation sweeps over all task pairs (and, when processors
//! outnumber tasks, task→free-processor moves), accepting strictly
//! improving exchanges, until a full sweep finds no improvement or the
//! pass limit is hit. Swap gains are evaluated incrementally in O(δ(a) +
//! δ(b)) from the hop-byte definition.
//!
//! Two layers keep the sweep off the quadratic cliff without changing its
//! result:
//!
//! - **Dirty-set tracking** ([`DirtyTracker`]): `swap_delta(a, b)` depends
//!   only on the placements of `{a, b} ∪ N(a) ∪ N(b)`, so an accepted
//!   exchange of `(x, y)` can change the verdict only of candidates whose
//!   relevant set meets `{x, y}` — exactly the tasks whose *epoch* the
//!   tracker bumps. A candidate whose tasks (and, for moves, target
//!   processor) are untouched since the start of the previous pass was
//!   already evaluated there (or skipped by the same argument) against an
//!   identical delta and provably still rejects, so later passes evaluate
//!   only the dirty frontier of the previous pass's accepts.
//! - **Windowed speculation**: workers evaluate a window of the filtered
//!   candidate stream in serial enumeration order against the current
//!   (frozen) mapping; the main thread applies the first improving
//!   candidate and restarts the stream just past it.
//!
//! Skipped candidates are provably rejecting and evaluated candidates are
//! exactly those the serial full sweep would reject before the next
//! accept, so the accepted exchange sequence — and the final mapping — is
//! bit-identical to the naive full sweep ([`refine_mapping_naive`], the
//! differential-suite oracle) for every thread count.

use crate::obs;
use crate::par::{Executor, Parallelism};
use crate::{Mapper, Mapping};
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::Topology;

/// Pairwise-swap hop-byte refiner wrapping an inner mapper.
pub struct RefineTopoLb<M> {
    inner: M,
    /// Maximum full sweeps (each sweep covers all task pairs).
    pub max_passes: usize,
    /// Thread configuration for the candidate scans (result-invariant).
    pub par: Parallelism,
}

impl<M: Mapper> RefineTopoLb<M> {
    pub fn new(inner: M) -> Self {
        RefineTopoLb {
            inner,
            max_passes: 8,
            par: Parallelism::default(),
        }
    }

    pub fn with_passes(inner: M, max_passes: usize) -> Self {
        RefineTopoLb {
            inner,
            max_passes,
            par: Parallelism::default(),
        }
    }

    pub fn with_parallelism(inner: M, par: Parallelism) -> Self {
        RefineTopoLb {
            inner,
            max_passes: 8,
            par,
        }
    }
}

/// Change in hop-bytes if tasks `a` and `b` swapped processors
/// (negative = improvement). The `(a,b)` edge itself is unaffected.
pub(crate) fn swap_delta(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    m: &Mapping,
    a: TaskId,
    b: TaskId,
) -> f64 {
    let (pa, pb) = (m.proc_of(a), m.proc_of(b));
    let mut delta = 0.0;
    for (j, c) in tasks.neighbors(a) {
        if j == b {
            continue;
        }
        let pj = m.proc_of(j);
        delta += c * (topo.distance(pb, pj) as f64 - topo.distance(pa, pj) as f64);
    }
    for (j, c) in tasks.neighbors(b) {
        if j == a {
            continue;
        }
        let pj = m.proc_of(j);
        delta += c * (topo.distance(pa, pj) as f64 - topo.distance(pb, pj) as f64);
    }
    delta
}

/// Change in hop-bytes if task `t` moved to the free processor `q`.
pub(crate) fn move_delta(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    m: &Mapping,
    t: TaskId,
    q: usize,
) -> f64 {
    let pt = m.proc_of(t);
    let mut delta = 0.0;
    for (j, c) in tasks.neighbors(t) {
        let pj = m.proc_of(j);
        delta += c * (topo.distance(q, pj) as f64 - topo.distance(pt, pj) as f64);
    }
    delta
}

/// A sweep candidate in serial enumeration order: for each task `a`, all
/// swaps `(a, b)` with `b > a`, then (when `p > n`) all moves `(a, q)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Candidate {
    Swap(TaskId, TaskId),
    Move(TaskId, usize),
}

/// Whether the serial sweep would accept `c` under the current mapping.
fn improves(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping, c: Candidate) -> bool {
    match c {
        Candidate::Swap(a, b) => swap_delta(tasks, topo, m, a, b) < -1e-12,
        Candidate::Move(a, q) => {
            m.task_on(q).is_none() && move_delta(tasks, topo, m, a, q) < -1e-12
        }
    }
}

/// Epoch bookkeeping for the dirty-set sweep.
///
/// `task_epoch(t)` is the generation of the last accepted exchange whose
/// delta-relevant set `{x, y} ∪ N(x) ∪ N(y)` contained `t`;
/// `proc_epoch(q)` the generation of the last accepted exchange that
/// changed processor `q`'s occupancy (only moves do). A swap candidate
/// `(a, b)` is *clean* w.r.t. a threshold generation `s` iff both task
/// epochs are ≤ `s` — its delta is bit-identical to what it was at any
/// evaluation at generation ≥ `s`. Hidden but public: the dirty-set unit
/// tests audit it against a brute-force affected-set computation.
#[doc(hidden)]
pub struct DirtyTracker {
    epoch: Vec<u64>,
    proc_epoch: Vec<u64>,
    g: u64,
}

impl DirtyTracker {
    pub fn new(num_tasks: usize, num_procs: usize) -> Self {
        // Generation 1 with threshold 0 marks everything dirty: the first
        // pass is always a full sweep.
        DirtyTracker {
            epoch: vec![1; num_tasks],
            proc_epoch: vec![1; num_procs],
            g: 1,
        }
    }

    /// Current generation (bumped once per accepted exchange).
    pub fn generation(&self) -> u64 {
        self.g
    }

    pub fn task_epoch(&self, t: TaskId) -> u64 {
        self.epoch[t]
    }

    pub fn proc_epoch(&self, q: usize) -> u64 {
        self.proc_epoch[q]
    }

    /// Record an accepted swap of `a` and `b`: their own deltas and those
    /// of every candidate touching a neighbor changed.
    pub fn record_swap(&mut self, tasks: &TaskGraph, a: TaskId, b: TaskId) {
        self.g += 1;
        let g = self.g;
        self.epoch[a] = g;
        self.epoch[b] = g;
        for (j, _) in tasks.neighbors(a) {
            self.epoch[j] = g;
        }
        for (j, _) in tasks.neighbors(b) {
            self.epoch[j] = g;
        }
    }

    /// Record an accepted move of `t` from `from_q` to `to_q`: besides
    /// the task epochs, both processors changed occupancy.
    pub fn record_move(&mut self, tasks: &TaskGraph, t: TaskId, from_q: usize, to_q: usize) {
        self.g += 1;
        let g = self.g;
        self.epoch[t] = g;
        for (j, _) in tasks.neighbors(t) {
            self.epoch[j] = g;
        }
        self.proc_epoch[from_q] = g;
        self.proc_epoch[to_q] = g;
    }

    pub fn swap_is_clean(&self, a: TaskId, b: TaskId, s: u64) -> bool {
        self.epoch[a] <= s && self.epoch[b] <= s
    }

    pub fn move_is_clean(&self, t: TaskId, q: usize, s: u64) -> bool {
        self.epoch[t] <= s && self.proc_epoch[q] <= s
    }
}

/// Position in the serial candidate enumeration: row `a`, next swap
/// partner `b`, next move target `q` (moves follow all of a row's swaps).
struct SweepCursor {
    a: usize,
    b: usize,
    q: usize,
}

/// Refine an existing mapping in place; returns the number of accepted
/// exchanges. Exposed so the refiner can be applied to mappings from any
/// source (e.g. replayed LB databases). Runs with the default
/// [`Parallelism`]; the thread count never changes the result.
pub fn refine_mapping(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    m: &mut Mapping,
    max_passes: usize,
) -> usize {
    refine_mapping_with(tasks, topo, m, max_passes, Parallelism::default())
}

/// [`refine_mapping`] with an explicit thread configuration.
pub fn refine_mapping_with(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    m: &mut Mapping,
    max_passes: usize,
    par: Parallelism,
) -> usize {
    let _sweep_span = obs::span("refine.sweep");
    // Sampled once so the counters emitted at the end are all-or-nothing
    // for this run (internally consistent even if toggled mid-run).
    let prof = obs::enabled();
    let exec = Executor::new(par);
    let n = tasks.num_tasks();
    let p = topo.num_nodes();
    let moves = p > n;
    // Candidate evaluation is O(δ̄); used for the serial-fallback check.
    let wpi = 1 + 2 * tasks.num_edges() / n.max(1);
    // Window sizing: small after an accepted exchange (the next
    // improvement tends to be nearby, so speculation past it is wasted),
    // growing while a region of the sweep yields nothing. Window sizes
    // depend only on the accept/reject history, never on thread count.
    let min_window = 64 * exec.threads().max(1);
    let max_window = 4096 * exec.threads().max(1);

    let mut dirty = DirtyTracker::new(n, p);
    // Clean threshold: a candidate untouched since the start of the
    // *previous* pass was evaluated (or skipped, inductively) there
    // against a bit-identical delta and still rejects. 0 = nothing clean.
    let mut s: u64 = 0;

    // All candidate bookkeeping (filtering, accept/reject counting) runs
    // on the main thread in serial enumeration order, so the counters are
    // thread-invariant by construction: rejected counts exactly the
    // candidates the dirty serial sweep would evaluate and decline, not
    // the speculative extras workers touched.
    let (mut c_acc, mut c_rej, mut c_skip) = (0u64, 0u64, 0u64);
    let mut passes_run = 0u64;
    let mut accepted = 0usize;
    let mut batch: Vec<Candidate> = Vec::new();
    for _ in 0..max_passes {
        passes_run += 1;
        let pass_start_g = dirty.generation();
        let mut improved = false;

        // Ascending dirty id lists: a clean row's candidates against clean
        // partners are skipped wholesale without touching them.
        let mut dirty_tasks: Vec<TaskId> = (0..n).filter(|&t| dirty.task_epoch(t) > s).collect();
        let mut dirty_procs: Vec<usize> = if moves {
            (0..p).filter(|&q| dirty.proc_epoch(q) > s).collect()
        } else {
            Vec::new()
        };

        let mut cur = SweepCursor { a: 0, b: 1, q: 0 };
        let mut window = min_window;
        loop {
            // Fill the next window of the filtered stream in serial order.
            batch.clear();
            while batch.len() < window && cur.a < n {
                let a = cur.a;
                if dirty.task_epoch(a) > s {
                    // Dirty row: every remaining candidate evaluates.
                    while cur.b < n && batch.len() < window {
                        batch.push(Candidate::Swap(a, cur.b));
                        cur.b += 1;
                    }
                    if cur.b >= n && moves {
                        while cur.q < p && batch.len() < window {
                            batch.push(Candidate::Move(a, cur.q));
                            cur.q += 1;
                        }
                    }
                } else {
                    // Clean row: only dirty partners can have changed.
                    while cur.b < n && batch.len() < window {
                        let i = dirty_tasks.partition_point(|&t| t < cur.b);
                        match dirty_tasks.get(i) {
                            Some(&t) => {
                                c_skip += (t - cur.b) as u64;
                                batch.push(Candidate::Swap(a, t));
                                cur.b = t + 1;
                            }
                            None => {
                                c_skip += (n - cur.b) as u64;
                                cur.b = n;
                            }
                        }
                    }
                    if cur.b >= n && moves {
                        while cur.q < p && batch.len() < window {
                            let i = dirty_procs.partition_point(|&q| q < cur.q);
                            match dirty_procs.get(i) {
                                Some(&q) => {
                                    c_skip += (q - cur.q) as u64;
                                    batch.push(Candidate::Move(a, q));
                                    cur.q = q + 1;
                                }
                                None => {
                                    c_skip += (p - cur.q) as u64;
                                    cur.q = p;
                                }
                            }
                        }
                    }
                }
                if cur.b >= n && (!moves || cur.q >= p) {
                    cur.a += 1;
                    cur.b = cur.a + 1;
                    cur.q = 0;
                }
            }
            if batch.is_empty() {
                break;
            }

            // First improving candidate in the window, if any: each worker
            // takes its chunk's first hit, the min over chunks is the
            // global first — independent of the chunking.
            let frozen = &*m;
            let cands = &batch;
            let hit = exec
                .map_chunks(cands.len(), wpi, |range| {
                    range
                        .clone()
                        .find(|&k| improves(tasks, topo, frozen, cands[k]))
                })
                .into_iter()
                .flatten()
                .min();
            match hit {
                Some(k) => {
                    let c = batch[k];
                    c_rej += k as u64;
                    c_acc += 1;
                    if prof {
                        // Pure re-evaluation against the pre-swap mapping:
                        // cannot perturb the refinement itself.
                        let d = match c {
                            Candidate::Swap(a, b) => swap_delta(tasks, topo, m, a, b),
                            Candidate::Move(a, q) => move_delta(tasks, topo, m, a, q),
                        };
                        obs::series_push("refine.delta_hb", d);
                    }
                    // Apply, bump epochs, and restart the stream just past
                    // the accepted candidate; re-filtering the remainder
                    // against the grown epochs picks up candidates this
                    // exchange dirtied mid-pass.
                    match c {
                        Candidate::Swap(a, b) => {
                            m.swap_tasks(a, b);
                            dirty.record_swap(tasks, a, b);
                            cur = SweepCursor { a, b: b + 1, q: 0 };
                        }
                        Candidate::Move(a, q) => {
                            let from = m.proc_of(a);
                            m.move_task(a, q);
                            dirty.record_move(tasks, a, from, q);
                            cur = SweepCursor { a, b: n, q: q + 1 };
                        }
                    }
                    if cur.b >= n && (!moves || cur.q >= p) {
                        cur.a += 1;
                        cur.b = cur.a + 1;
                        cur.q = 0;
                    }
                    dirty_tasks = (0..n).filter(|&t| dirty.task_epoch(t) > s).collect();
                    if moves {
                        dirty_procs = (0..p).filter(|&q| dirty.proc_epoch(q) > s).collect();
                    }
                    accepted += 1;
                    improved = true;
                    window = min_window;
                }
                None => {
                    c_rej += batch.len() as u64;
                    window = (window * 2).min(max_window);
                }
            }
        }
        if !improved {
            break;
        }
        s = pass_start_g;
    }
    if prof {
        obs::counter_add("refine.candidates_evaluated", c_acc + c_rej);
        obs::counter_add("refine.candidates_skipped", c_skip);
        obs::counter_add("refine.swaps_accepted", c_acc);
        obs::counter_add("refine.swaps_rejected", c_rej);
        obs::counter_add("refine.passes", passes_run);
    }
    accepted
}

/// The pre-rewrite semantics: a plain serial full sweep evaluating every
/// candidate in enumeration order, no dirty tracking, no speculation, no
/// obs output. The differential suite pins [`refine_mapping_with`]
/// bit-identical to this for every thread count.
#[doc(hidden)]
pub fn refine_mapping_naive(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    m: &mut Mapping,
    max_passes: usize,
) -> usize {
    let n = tasks.num_tasks();
    let p = topo.num_nodes();
    let moves = p > n;
    let mut accepted = 0usize;
    for _ in 0..max_passes {
        let mut improved = false;
        for a in 0..n {
            for b in (a + 1)..n {
                if improves(tasks, topo, m, Candidate::Swap(a, b)) {
                    m.swap_tasks(a, b);
                    accepted += 1;
                    improved = true;
                }
            }
            if moves {
                for q in 0..p {
                    if improves(tasks, topo, m, Candidate::Move(a, q)) {
                        m.move_task(a, q);
                        accepted += 1;
                        improved = true;
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    accepted
}

impl<M: Mapper> Mapper for RefineTopoLb<M> {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let _map_span = obs::span("refine.map");
        let mut m = {
            let _initial_span = obs::span("refine.initial");
            self.inner.map(tasks, topo)
        };
        refine_mapping_with(tasks, topo, &mut m, self.max_passes, self.par);
        m
    }

    fn name(&self) -> String {
        format!("{}+Refine", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::par::Threads;
    use crate::{metrics, RandomMap, TopoCentLb, TopoLb};
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn never_increases_hop_bytes() {
        let tasks = gen::random_graph(24, 4.0, 1.0, 100.0, 7);
        let topo = Torus::torus_2d(5, 5);
        let base = RandomMap::new(3).map(&tasks, &topo);
        let before = metrics::hop_bytes(&tasks, &topo, &base);
        let mut refined = base.clone();
        refine_mapping(&tasks, &topo, &mut refined, 8);
        let after = metrics::hop_bytes(&tasks, &topo, &refined);
        assert!(
            after <= before + 1e-9,
            "refine must not worsen: {before} -> {after}"
        );
    }

    #[test]
    fn improves_random_mapping_substantially() {
        let tasks = gen::stencil2d(6, 6, 100.0, false);
        let topo = Torus::torus_2d(6, 6);
        let refined = RefineTopoLb::new(RandomMap::new(11)).map(&tasks, &topo);
        let raw = RandomMap::new(11).map(&tasks, &topo);
        let h_ref = metrics::hops_per_byte(&tasks, &topo, &refined);
        let h_raw = metrics::hops_per_byte(&tasks, &topo, &raw);
        assert!(h_ref < 0.7 * h_raw, "refined {h_ref} vs raw random {h_raw}");
    }

    #[test]
    fn refines_topolb_without_regression() {
        // Paper: RefineTopoLB after TopoLB gives a further reduction.
        let tasks = gen::random_geometric(49, 0.25, 10.0, 100.0, 5);
        let topo = Torus::torus_2d(7, 7);
        let lb = TopoLb::default().map(&tasks, &topo);
        let refined = RefineTopoLb::new(TopoLb::default()).map(&tasks, &topo);
        let h_lb = metrics::hop_bytes(&tasks, &topo, &lb);
        let h_ref = metrics::hop_bytes(&tasks, &topo, &refined);
        assert!(h_ref <= h_lb + 1e-9);
    }

    #[test]
    fn swap_delta_matches_recompute() {
        let tasks = gen::random_graph(12, 3.0, 1.0, 50.0, 2);
        let topo = Torus::torus_2d(4, 3);
        let m = RandomMap::new(1).map(&tasks, &topo);
        for a in 0..12 {
            for b in (a + 1)..12 {
                let predicted = swap_delta(&tasks, &topo, &m, a, b);
                let mut m2 = m.clone();
                m2.swap_tasks(a, b);
                let actual =
                    metrics::hop_bytes(&tasks, &topo, &m2) - metrics::hop_bytes(&tasks, &topo, &m);
                assert!(
                    (predicted - actual).abs() < 1e-6,
                    "swap({a},{b}): predicted {predicted}, actual {actual}"
                );
            }
        }
    }

    #[test]
    fn move_delta_matches_recompute() {
        let tasks = gen::ring(5, 10.0);
        let topo = Torus::torus_2d(3, 3);
        let m = RandomMap::new(4).map(&tasks, &topo);
        for t in 0..5 {
            for q in 0..9 {
                if m.task_on(q).is_some() {
                    continue;
                }
                let predicted = move_delta(&tasks, &topo, &m, t, q);
                let mut m2 = m.clone();
                m2.move_task(t, q);
                let actual =
                    metrics::hop_bytes(&tasks, &topo, &m2) - metrics::hop_bytes(&tasks, &topo, &m);
                assert!((predicted - actual).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn uses_free_processors_when_available() {
        // Two heavily-communicating tasks placed far apart, with free
        // processors in between: moves should pull them together.
        let mut b = topomap_taskgraph::TaskGraph::builder(2);
        b.add_comm(0, 1, 1000.0);
        let tasks = b.build();
        let topo = Torus::mesh_1d(8);
        let mut m = crate::Mapping::new(vec![0, 7], 8);
        refine_mapping(&tasks, &topo, &mut m, 8);
        assert_eq!(
            topo.distance(m.proc_of(0), m.proc_of(1)),
            1,
            "refiner should colocate the pair at distance 1"
        );
    }

    /// Brute-force affected set of swapping (a, b): {a, b} ∪ N(a) ∪ N(b).
    fn affected_set(tasks: &TaskGraph, a: TaskId, b: TaskId) -> Vec<TaskId> {
        let mut set: Vec<TaskId> = vec![a, b];
        set.extend(tasks.neighbors(a).map(|(j, _)| j));
        set.extend(tasks.neighbors(b).map(|(j, _)| j));
        set.sort_unstable();
        set.dedup();
        set
    }

    #[test]
    fn dirty_tracker_matches_bruteforce_affected_sets() {
        // Scripted swap sequence on a graph with varied neighborhoods:
        // after each recorded swap the tasks at the current generation
        // must be exactly the brute-force affected-pairs set.
        let tasks = gen::random_graph(14, 3.0, 1.0, 50.0, 21);
        let mut dirty = DirtyTracker::new(14, 20);
        let script = [(0usize, 5usize), (3, 9), (1, 2), (0, 13), (7, 8), (5, 6)];
        for &(a, b) in &script {
            let before_g = dirty.generation();
            dirty.record_swap(&tasks, a, b);
            assert_eq!(dirty.generation(), before_g + 1);
            let want = affected_set(&tasks, a, b);
            let got: Vec<TaskId> = (0..14)
                .filter(|&t| dirty.task_epoch(t) == dirty.generation())
                .collect();
            assert_eq!(got, want, "dirty set after swap({a},{b})");
            // Swaps never change processor occupancy.
            assert!((0..20).all(|q| dirty.proc_epoch(q) == 1));
        }
        // A clean pair far from the last swap stays clean relative to the
        // pre-swap generation; the swapped pair does not.
        let s = dirty.generation() - 1;
        assert!(!dirty.swap_is_clean(5, 6, s));
        let untouched: Vec<TaskId> = (0..14).filter(|&t| dirty.task_epoch(t) <= s).collect();
        if untouched.len() >= 2 {
            assert!(dirty.swap_is_clean(untouched[0], untouched[1], s));
        }
    }

    #[test]
    fn dirty_tracker_moves_bump_proc_epochs() {
        let tasks = gen::ring(6, 10.0);
        let mut dirty = DirtyTracker::new(6, 12);
        dirty.record_move(&tasks, 2, 4, 9);
        let g = dirty.generation();
        // Task side: {2} ∪ N(2) = {1, 2, 3}.
        let got: Vec<TaskId> = (0..6).filter(|&t| dirty.task_epoch(t) == g).collect();
        assert_eq!(got, vec![1, 2, 3]);
        // Proc side: exactly the vacated and occupied processors.
        let got_q: Vec<usize> = (0..12).filter(|&q| dirty.proc_epoch(q) == g).collect();
        assert_eq!(got_q, vec![4, 9]);
        assert!(!dirty.move_is_clean(5, 9, g - 1), "dirty target processor");
        assert!(dirty.move_is_clean(5, 7, g - 1), "clean task, clean target");
    }

    #[test]
    fn dirty_sweep_matches_naive_sweep() {
        // The in-module smoke version of the differential suite: same
        // graphs, the full windowed dirty sweep at 1 and 4 threads versus
        // the serial full-enumeration oracle.
        for (seed, n, (rows, cols)) in [(1u64, 24usize, (5usize, 5usize)), (2, 18, (4, 6))] {
            let tasks = gen::random_graph(n, 3.0, 1.0, 100.0, seed);
            let topo = Torus::torus_2d(rows, cols);
            let base = RandomMap::new(seed).map(&tasks, &topo);
            let mut want = base.clone();
            let acc_naive = refine_mapping_naive(&tasks, &topo, &mut want, 8);
            for threads in [1usize, 4] {
                let par = Parallelism {
                    threads: Threads::Fixed(threads),
                    min_work: 1,
                };
                let mut got = base.clone();
                let acc = refine_mapping_with(&tasks, &topo, &mut got, 8, par);
                assert_eq!(acc, acc_naive, "accept count (seed {seed}, {threads}t)");
                assert_eq!(got, want, "mapping (seed {seed}, {threads}t)");
            }
        }
    }

    #[test]
    fn name_includes_inner() {
        assert_eq!(RefineTopoLb::new(TopoLb::default()).name(), "TopoLB+Refine");
        assert_eq!(RefineTopoLb::new(TopoCentLb).name(), "TopoCentLB+Refine");
    }
}
