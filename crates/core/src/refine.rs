//! RefineTopoLB — the pairwise-swap refiner of §5.2.3.
//!
//! "The refiner swaps tasks between processors to see if hop-bytes are
//! reduced or not. It swaps only when hop-bytes get reduced." Intended to
//! run *after* an initial mapper like TopoLB; the paper reports a further
//! ~12% hop-byte reduction on the LeanMD workloads.
//!
//! This implementation sweeps over all task pairs (and, when processors
//! outnumber tasks, task→free-processor moves), accepting strictly
//! improving exchanges, until a full sweep finds no improvement or the
//! pass limit is hit. Swap gains are evaluated incrementally in O(δ(a) +
//! δ(b)) from the hop-byte definition, so a sweep costs O(p²·δ̄).
//!
//! The sweep parallelizes by *windowed speculation*: workers evaluate a
//! window of candidates in the exact serial enumeration order against
//! the current (frozen) mapping, the main thread applies the first
//! improving candidate and restarts the window just past it. Candidates
//! before the first improvement are exactly those the serial sweep would
//! have evaluated under the same mapping and rejected, so the accepted
//! exchange sequence — and the final mapping — is bit-identical to the
//! serial sweep for every thread count.

use crate::obs;
use crate::par::{Executor, Parallelism};
use crate::{Mapper, Mapping};
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::Topology;

/// Pairwise-swap hop-byte refiner wrapping an inner mapper.
pub struct RefineTopoLb<M> {
    inner: M,
    /// Maximum full sweeps (each sweep is O(p²) pair evaluations).
    pub max_passes: usize,
    /// Thread configuration for the candidate scans (result-invariant).
    pub par: Parallelism,
}

impl<M: Mapper> RefineTopoLb<M> {
    pub fn new(inner: M) -> Self {
        RefineTopoLb {
            inner,
            max_passes: 8,
            par: Parallelism::default(),
        }
    }

    pub fn with_passes(inner: M, max_passes: usize) -> Self {
        RefineTopoLb {
            inner,
            max_passes,
            par: Parallelism::default(),
        }
    }

    pub fn with_parallelism(inner: M, par: Parallelism) -> Self {
        RefineTopoLb {
            inner,
            max_passes: 8,
            par,
        }
    }
}

/// Change in hop-bytes if tasks `a` and `b` swapped processors
/// (negative = improvement). The `(a,b)` edge itself is unaffected.
pub(crate) fn swap_delta(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    m: &Mapping,
    a: TaskId,
    b: TaskId,
) -> f64 {
    let (pa, pb) = (m.proc_of(a), m.proc_of(b));
    let mut delta = 0.0;
    for (j, c) in tasks.neighbors(a) {
        if j == b {
            continue;
        }
        let pj = m.proc_of(j);
        delta += c * (topo.distance(pb, pj) as f64 - topo.distance(pa, pj) as f64);
    }
    for (j, c) in tasks.neighbors(b) {
        if j == a {
            continue;
        }
        let pj = m.proc_of(j);
        delta += c * (topo.distance(pa, pj) as f64 - topo.distance(pb, pj) as f64);
    }
    delta
}

/// Change in hop-bytes if task `t` moved to the free processor `q`.
fn move_delta(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping, t: TaskId, q: usize) -> f64 {
    let pt = m.proc_of(t);
    let mut delta = 0.0;
    for (j, c) in tasks.neighbors(t) {
        let pj = m.proc_of(j);
        delta += c * (topo.distance(q, pj) as f64 - topo.distance(pt, pj) as f64);
    }
    delta
}

/// A sweep candidate in serial enumeration order: for each task `a`, all
/// swaps `(a, b)` with `b > a`, then (when `p > n`) all moves `(a, q)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Candidate {
    Swap(TaskId, TaskId),
    Move(TaskId, usize),
}

/// Bijection between flat candidate indices and candidates. `seg` is the
/// number of candidates per leading task `a`: `(n - 1 - a)` swaps plus
/// (if `p > n`) `p` move targets.
struct Candidates {
    n: usize,
    moves: bool,
    /// `offsets[a]` = flat index of task `a`'s first candidate.
    offsets: Vec<usize>,
}

impl Candidates {
    fn new(n: usize, p: usize) -> Self {
        let moves = p > n;
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        for a in 0..n {
            offsets.push(acc);
            acc += (n - 1 - a) + if moves { p } else { 0 };
        }
        offsets.push(acc);
        Candidates { n, moves, offsets }
    }

    fn total(&self) -> usize {
        self.offsets[self.n]
    }

    fn get(&self, idx: usize) -> Candidate {
        // partition_point returns the first a with offsets[a] > idx; the
        // candidate's leading task is the one before it.
        let a = self.offsets.partition_point(|&o| o <= idx) - 1;
        let within = idx - self.offsets[a];
        let swaps = self.n - 1 - a;
        if within < swaps {
            Candidate::Swap(a, a + 1 + within)
        } else {
            debug_assert!(self.moves);
            Candidate::Move(a, within - swaps)
        }
    }
}

/// Whether the serial sweep would accept `c` under the current mapping.
fn improves(tasks: &TaskGraph, topo: &dyn Topology, m: &Mapping, c: Candidate) -> bool {
    match c {
        Candidate::Swap(a, b) => swap_delta(tasks, topo, m, a, b) < -1e-12,
        Candidate::Move(a, q) => {
            m.task_on(q).is_none() && move_delta(tasks, topo, m, a, q) < -1e-12
        }
    }
}

/// Refine an existing mapping in place; returns the number of accepted
/// exchanges. Exposed so the refiner can be applied to mappings from any
/// source (e.g. replayed LB databases). Runs with the default
/// [`Parallelism`]; the thread count never changes the result.
pub fn refine_mapping(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    m: &mut Mapping,
    max_passes: usize,
) -> usize {
    refine_mapping_with(tasks, topo, m, max_passes, Parallelism::default())
}

/// [`refine_mapping`] with an explicit thread configuration.
pub fn refine_mapping_with(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    m: &mut Mapping,
    max_passes: usize,
    par: Parallelism,
) -> usize {
    let _sweep_span = obs::span("refine.sweep");
    // Sampled once so the counters emitted at the end are all-or-nothing
    // for this run (internally consistent even if toggled mid-run).
    let prof = obs::enabled();
    let exec = Executor::new(par);
    let n = tasks.num_tasks();
    let p = topo.num_nodes();
    let cands = Candidates::new(n, p);
    let total = cands.total();
    // Candidate evaluation is O(δ̄); used for the serial-fallback check.
    let wpi = 1 + 2 * tasks.num_edges() / n.max(1);
    // Window sizing: small after an accepted exchange (the next
    // improvement tends to be nearby, so speculation past it is wasted),
    // growing while a region of the sweep yields nothing. Window sizes
    // depend only on the accept/reject history, never on thread count.
    let min_window = 64 * exec.threads().max(1);
    let max_window = 4096 * exec.threads().max(1);

    // Counters derived from the serial-semantics bookkeeping (cursor/hit)
    // on the main thread, so they are thread-invariant by construction:
    // rejected counts exactly the candidates the *serial* sweep would have
    // evaluated and declined, not the speculative extras workers touched.
    let (mut c_acc, mut c_rej) = (0u64, 0u64);
    let mut passes_run = 0u64;
    let mut accepted = 0usize;
    for _ in 0..max_passes {
        passes_run += 1;
        let mut improved = false;
        let mut cursor = 0usize;
        let mut window = min_window;
        while cursor < total {
            let end = (cursor + window).min(total);
            // First improving candidate in [cursor, end), if any: each
            // worker takes its chunk's first hit, the min over chunks is
            // the global first — independent of the chunking.
            let frozen = &*m;
            let hit = exec
                .map_chunks(end - cursor, wpi, |range| {
                    range
                        .map(|i| cursor + i)
                        .find(|&i| improves(tasks, topo, frozen, cands.get(i)))
                })
                .into_iter()
                .flatten()
                .min();
            match hit {
                Some(i) => {
                    let c = cands.get(i);
                    if prof {
                        c_rej += (i - cursor) as u64;
                        c_acc += 1;
                        // Pure re-evaluation against the pre-swap mapping:
                        // cannot perturb the refinement itself.
                        let d = match c {
                            Candidate::Swap(a, b) => swap_delta(tasks, topo, m, a, b),
                            Candidate::Move(a, q) => move_delta(tasks, topo, m, a, q),
                        };
                        obs::series_push("refine.delta_hb", d);
                    }
                    match c {
                        Candidate::Swap(a, b) => m.swap_tasks(a, b),
                        Candidate::Move(a, q) => m.move_task(a, q),
                    }
                    accepted += 1;
                    improved = true;
                    cursor = i + 1;
                    window = min_window;
                }
                None => {
                    if prof {
                        c_rej += (end - cursor) as u64;
                    }
                    cursor = end;
                    window = (window * 2).min(max_window);
                }
            }
        }
        if !improved {
            break;
        }
    }
    if prof {
        obs::counter_add("refine.candidates_evaluated", c_acc + c_rej);
        obs::counter_add("refine.swaps_accepted", c_acc);
        obs::counter_add("refine.swaps_rejected", c_rej);
        obs::counter_add("refine.passes", passes_run);
    }
    accepted
}

impl<M: Mapper> Mapper for RefineTopoLb<M> {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let _map_span = obs::span("refine.map");
        let mut m = {
            let _initial_span = obs::span("refine.initial");
            self.inner.map(tasks, topo)
        };
        refine_mapping_with(tasks, topo, &mut m, self.max_passes, self.par);
        m
    }

    fn name(&self) -> String {
        format!("{}+Refine", self.inner.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, RandomMap, TopoCentLb, TopoLb};
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn never_increases_hop_bytes() {
        let tasks = gen::random_graph(24, 4.0, 1.0, 100.0, 7);
        let topo = Torus::torus_2d(5, 5);
        let base = RandomMap::new(3).map(&tasks, &topo);
        let before = metrics::hop_bytes(&tasks, &topo, &base);
        let mut refined = base.clone();
        refine_mapping(&tasks, &topo, &mut refined, 8);
        let after = metrics::hop_bytes(&tasks, &topo, &refined);
        assert!(
            after <= before + 1e-9,
            "refine must not worsen: {before} -> {after}"
        );
    }

    #[test]
    fn improves_random_mapping_substantially() {
        let tasks = gen::stencil2d(6, 6, 100.0, false);
        let topo = Torus::torus_2d(6, 6);
        let refined = RefineTopoLb::new(RandomMap::new(11)).map(&tasks, &topo);
        let raw = RandomMap::new(11).map(&tasks, &topo);
        let h_ref = metrics::hops_per_byte(&tasks, &topo, &refined);
        let h_raw = metrics::hops_per_byte(&tasks, &topo, &raw);
        assert!(h_ref < 0.7 * h_raw, "refined {h_ref} vs raw random {h_raw}");
    }

    #[test]
    fn refines_topolb_without_regression() {
        // Paper: RefineTopoLB after TopoLB gives a further reduction.
        let tasks = gen::random_geometric(49, 0.25, 10.0, 100.0, 5);
        let topo = Torus::torus_2d(7, 7);
        let lb = TopoLb::default().map(&tasks, &topo);
        let refined = RefineTopoLb::new(TopoLb::default()).map(&tasks, &topo);
        let h_lb = metrics::hop_bytes(&tasks, &topo, &lb);
        let h_ref = metrics::hop_bytes(&tasks, &topo, &refined);
        assert!(h_ref <= h_lb + 1e-9);
    }

    #[test]
    fn swap_delta_matches_recompute() {
        let tasks = gen::random_graph(12, 3.0, 1.0, 50.0, 2);
        let topo = Torus::torus_2d(4, 3);
        let m = RandomMap::new(1).map(&tasks, &topo);
        for a in 0..12 {
            for b in (a + 1)..12 {
                let predicted = swap_delta(&tasks, &topo, &m, a, b);
                let mut m2 = m.clone();
                m2.swap_tasks(a, b);
                let actual =
                    metrics::hop_bytes(&tasks, &topo, &m2) - metrics::hop_bytes(&tasks, &topo, &m);
                assert!(
                    (predicted - actual).abs() < 1e-6,
                    "swap({a},{b}): predicted {predicted}, actual {actual}"
                );
            }
        }
    }

    #[test]
    fn move_delta_matches_recompute() {
        let tasks = gen::ring(5, 10.0);
        let topo = Torus::torus_2d(3, 3);
        let m = RandomMap::new(4).map(&tasks, &topo);
        for t in 0..5 {
            for q in 0..9 {
                if m.task_on(q).is_some() {
                    continue;
                }
                let predicted = move_delta(&tasks, &topo, &m, t, q);
                let mut m2 = m.clone();
                m2.move_task(t, q);
                let actual =
                    metrics::hop_bytes(&tasks, &topo, &m2) - metrics::hop_bytes(&tasks, &topo, &m);
                assert!((predicted - actual).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn uses_free_processors_when_available() {
        // Two heavily-communicating tasks placed far apart, with free
        // processors in between: moves should pull them together.
        let mut b = topomap_taskgraph::TaskGraph::builder(2);
        b.add_comm(0, 1, 1000.0);
        let tasks = b.build();
        let topo = Torus::mesh_1d(8);
        let mut m = crate::Mapping::new(vec![0, 7], 8);
        refine_mapping(&tasks, &topo, &mut m, 8);
        assert_eq!(
            topo.distance(m.proc_of(0), m.proc_of(1)),
            1,
            "refiner should colocate the pair at distance 1"
        );
    }

    #[test]
    fn name_includes_inner() {
        assert_eq!(RefineTopoLb::new(TopoLb::default()).name(), "TopoLB+Refine");
        assert_eq!(RefineTopoLb::new(TopoCentLb).name(), "TopoCentLB+Refine");
    }
}
