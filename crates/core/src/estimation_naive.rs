//! The naive full-table estimation oracle for the differential test
//! suite (`tests/incremental_equivalence.rs`).
//!
//! [`NaiveEstimationState`] implements exactly the selection and
//! placement semantics of [`crate::estimation::EstimationState`] — the
//! frontier-first task choice, the fold orders, every floating-point
//! expression — but in the straightforward pre-optimization style: one
//! dense `n × p` contribution table indexed by (task, processor id),
//! per-element `Topology::distance` calls, no row pooling, no positional
//! tricks, no parallelism. Where the fast kernel maintains a value with
//! an O(1) delta, the oracle recomputes it from the same defining
//! recurrence, so any divergence between the two is a bug in the
//! incremental bookkeeping, not floating-point noise: the differential
//! suite pins them **bit-identical**.
//!
//! This module is `#[doc(hidden)]` but compiled unconditionally, so
//! future PRs that touch the kernels can always cross-check against it.

use crate::estimation::{uniform_kernel, EstimationOrder};
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{stats::AvgDistTable, NodeId, Topology};

const NONE: usize = usize::MAX;

/// Dense-table oracle twin of [`crate::estimation::EstimationState`].
///
/// Mirrors the facade's kernel dispatch: when
/// [`crate::estimation::uniform_kernel`] (the same predicate the fast
/// side calls) detects the uniform-weight integer path, the oracle keeps
/// a dense `n × p` table of *unweighted integer* distance sums and
/// recomputes every minimum, sum and gain from it on demand — integer
/// arithmetic has no evaluation-order sensitivity, so the fast kernel's
/// incremental bookkeeping must match it bit-for-bit with no trajectory
/// mirroring at all. Otherwise it runs the general f64 path described
/// above.
pub struct NaiveEstimationState<'a> {
    tasks: &'a TaskGraph,
    topo: &'a dyn Topology,
    order: EstimationOrder,
    p: usize,
    avg_all: AvgDistTable,
    /// `contrib[t * p + q]` = Σ over placed neighbors j of t of
    /// `c · d(q, P(j))`, accumulated in placement order over all q.
    contrib: Vec<f64>,
    unassigned_wgt: Vec<f64>,
    placed_nbrs: Vec<u32>,
    /// Same positional free-list bookkeeping as the fast kernel — fold
    /// order over the free list is part of the shared semantics.
    free: Vec<NodeId>,
    free_pos: Vec<usize>,
    unassigned: Vec<TaskId>,
    placement: Vec<NodeId>,
    fmin: Vec<f64>,
    fmin_proc: Vec<NodeId>,
    fsum: Vec<f64>,
    sum_free: Vec<f64>,
    /// Uniform-integer path (mirrors `estimation_uniform`): the uniform
    /// edge weight `c`, the constant factor `K`, and the unweighted
    /// integer distance-sum table `r(t, q)`.
    uni: bool,
    uc: f64,
    ukfac: f64,
    contrib_int: Vec<u32>,
}

impl<'a> NaiveEstimationState<'a> {
    pub fn new(tasks: &'a TaskGraph, topo: &'a dyn Topology, order: EstimationOrder) -> Self {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        let avg_all = AvgDistTable::new(topo);
        let sum_free = match order {
            EstimationOrder::Third => (0..p).map(|r| avg_all.sum(r) as f64).collect(),
            _ => Vec::new(),
        };
        let (uni, uc, ukfac) = match uniform_kernel(tasks, topo, order) {
            Some((c, k)) => (true, c, k),
            None => (false, 0.0, 0.0),
        };
        NaiveEstimationState {
            tasks,
            topo,
            order,
            p,
            avg_all,
            contrib: if uni { Vec::new() } else { vec![0.0; n * p] },
            unassigned_wgt: (0..n).map(|t| tasks.weighted_degree(t)).collect(),
            placed_nbrs: vec![0; n],
            free: (0..p).collect(),
            free_pos: (0..p).collect(),
            unassigned: (0..n).collect(),
            placement: vec![NONE; n],
            fmin: vec![0.0; n],
            fmin_proc: vec![0; n],
            fsum: vec![0.0; n],
            sum_free,
            uni,
            uc,
            ukfac,
            contrib_int: if uni { vec![0; n * p] } else { Vec::new() },
        }
    }

    /// Which kernel this oracle dispatched to (must agree with the fast
    /// facade's [`crate::estimation::EstimationState::kernel_label`]).
    pub fn kernel_label(&self) -> &'static str {
        if self.uni {
            "uniform-int"
        } else {
            "general"
        }
    }

    /// Integer-path from-scratch fold: `(r_min, S_r)` over the free set.
    fn scan_int(&self, t: TaskId) -> (u32, u64) {
        let mut min = u32::MAX;
        let mut sum = 0u64;
        for &q in &self.free {
            let r = self.contrib_int[t * self.p + q];
            min = min.min(r);
            sum += r as u64;
        }
        (min, sum)
    }

    #[inline]
    fn unplaced_factor(&self, q: NodeId) -> f64 {
        match self.order {
            EstimationOrder::First => 0.0,
            EstimationOrder::Second => self.avg_all.avg(q),
            EstimationOrder::Third => {
                let f = self.free.len();
                if f == 0 {
                    0.0
                } else {
                    self.sum_free[q] / f as f64
                }
            }
        }
    }

    #[inline]
    pub fn fest(&self, t: TaskId, q: NodeId) -> f64 {
        debug_assert!(self.placement[t] == NONE);
        debug_assert!(self.free_pos[q] != NONE);
        if self.uni {
            return self.uc * self.contrib_int[t * self.p + q] as f64
                + (self.uc * self.placed_nbrs[t] as f64) * self.ukfac;
        }
        self.contrib[t * self.p + q] + self.unassigned_wgt[t] * self.unplaced_factor(q)
    }

    pub fn is_active(&self, t: TaskId) -> bool {
        self.placed_nbrs[t] > 0
    }

    /// `(FMin, FSum)` — recomputed from the integer table on the uniform
    /// path, read from the maintained values on the general path.
    pub fn stats(&self, t: TaskId) -> (f64, f64) {
        debug_assert!(self.is_active(t));
        if self.uni {
            let (rmin, sr) = self.scan_int(t);
            let shift = (self.uc * self.placed_nbrs[t] as f64) * self.ukfac;
            return (
                self.uc * rmin as f64 + shift,
                self.uc * sr as f64 + shift * self.free.len() as f64,
            );
        }
        (self.fmin[t], self.fsum[t])
    }

    #[inline]
    pub fn gain(&self, t: TaskId) -> f64 {
        if !self.is_active(t) {
            return 0.0;
        }
        let f = self.free.len();
        if f == 0 {
            return 0.0;
        }
        if self.uni {
            let (rmin, sr) = self.scan_int(t);
            return self.uc * (sr as f64 / f as f64 - rmin as f64);
        }
        self.fsum[t] / f as f64 - self.fmin[t]
    }

    /// Same selection rule as the fast kernel: max-gain frontier task
    /// (ties → lowest id), else the lowest-id virgin (every virgin's gain
    /// is defined 0, so the id tie-break rules).
    pub fn select_task(&self) -> TaskId {
        debug_assert!(!self.unassigned.is_empty());
        let any_active = self.unassigned.iter().any(|&t| self.is_active(t));
        let flen = self.free.len() as f64;
        let mut best_t = NONE;
        let mut best_key = f64::NEG_INFINITY;
        for t in 0..self.tasks.num_tasks() {
            if self.placement[t] != NONE {
                continue;
            }
            if !any_active {
                // No frontier: every unassigned task is virgin; scanning
                // ascending, the first one is the lowest id.
                return t;
            }
            if !self.is_active(t) {
                continue;
            }
            let g = if self.uni {
                let (rmin, sr) = self.scan_int(t);
                self.uc * (sr as f64 / flen - rmin as f64)
            } else {
                self.fsum[t] / flen - self.fmin[t]
            };
            if g > best_key || (g == best_key && t < best_t) {
                best_key = g;
                best_t = t;
            }
        }
        best_t
    }

    pub fn best_proc(&self, t: TaskId) -> NodeId {
        if self.uni {
            // Active: lexicographic (r, id) minimum of the integer row.
            // Virgin: the constant factor ties every free processor, so
            // the lowest id wins.
            let mut min = u32::MAX;
            let mut argmin = NONE;
            for &q in &self.free {
                let r = if self.is_active(t) {
                    self.contrib_int[t * self.p + q]
                } else {
                    0
                };
                if r < min || (r == min && q < argmin) {
                    min = r;
                    argmin = q;
                }
            }
            return argmin;
        }
        if self.is_active(t) {
            return self.fmin_proc[t];
        }
        let w = self.unassigned_wgt[t];
        let mut min = f64::INFINITY;
        let mut argmin = NONE;
        for &q in &self.free {
            let f = w * self.unplaced_factor(q);
            if f < min || (f == min && q < argmin) {
                min = f;
                argmin = q;
            }
        }
        argmin
    }

    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    pub fn num_unassigned(&self) -> usize {
        self.unassigned.len()
    }

    /// Full fold of `(FMin, argmin, FSum)` over the free list in position
    /// order — the defining recurrence the fast kernel's folds mirror.
    /// `FSum` is the shared 4-lane striped sum (position `i` adds into lane
    /// `i mod 4`, total `(s0 + s1) + (s2 + s3)`); `(FMin, argmin)` is the
    /// order-independent lexicographic minimum of `(fest, proc)`.
    fn refold(&mut self, t: TaskId) {
        let mut min = f64::INFINITY;
        let mut argmin = NONE;
        let mut s = [0.0f64; 4];
        for (i, &q) in self.free.iter().enumerate() {
            let f = self.fest(t, q);
            s[i & 3] += f;
            if f < min || (f == min && q < argmin) {
                min = f;
                argmin = q;
            }
        }
        self.fmin[t] = min;
        self.fmin_proc[t] = argmin;
        self.fsum[t] = (s[0] + s[1]) + (s[2] + s[3]);
    }

    pub fn assign(&mut self, t: TaskId, q: NodeId) {
        assert!(self.placement[t] == NONE, "task {t} already placed");
        assert!(self.free_pos[q] != NONE, "processor {q} not free");
        self.placement[t] = q;
        self.unassigned.retain(|&u| u != t);

        // Identical free-list swap-remove bookkeeping: the fold order over
        // the free list is shared semantics.
        let qi = self.free_pos[q];
        let lastq = *self.free.last().unwrap();
        self.free.swap_remove(qi);
        if lastq != q {
            self.free_pos[lastq] = qi;
        }
        self.free_pos[q] = NONE;

        if self.unassigned.is_empty() {
            return;
        }

        let nbrs: Vec<(TaskId, f64)> = self
            .tasks
            .neighbors(t)
            .filter(|&(j, _)| self.placement[j] == NONE)
            .collect();

        if self.uni {
            // Integer path: the only state is the unweighted distance-sum
            // table and the placed-neighbor counts — everything else is
            // recomputed on demand.
            for &(j, _) in &nbrs {
                self.placed_nbrs[j] += 1;
                for r in 0..self.p {
                    self.contrib_int[j * self.p + r] += self.topo.distance(r, q);
                }
            }
            return;
        }

        for &(j, c) in &nbrs {
            self.unassigned_wgt[j] -= c;
        }

        if self.order == EstimationOrder::Third {
            for r in 0..self.p {
                self.sum_free[r] -= self.topo.distance(r, q) as f64;
            }
            for &(j, c) in &nbrs {
                self.placed_nbrs[j] += 1;
                for r in 0..self.p {
                    self.contrib[j * self.p + r] += c * self.topo.distance(r, q) as f64;
                }
            }
            // The free-set average moved for every processor: refold the
            // whole frontier (id order; folds are per-task independent).
            for u in 0..self.tasks.num_tasks() {
                if self.placement[u] == NONE && self.is_active(u) {
                    self.refold(u);
                }
            }
            return;
        }

        // Edge events in adjacency order: contribution column + full fold.
        let mut is_nbr = vec![false; self.tasks.num_tasks()];
        for &(j, c) in &nbrs {
            is_nbr[j] = true;
            self.placed_nbrs[j] += 1;
            for r in 0..self.p {
                self.contrib[j * self.p + r] += c * self.topo.distance(r, q) as f64;
            }
            self.refold(j);
        }

        // Every other frontier task lost only processor q: FSum follows
        // the same subtraction recurrence as the fast kernel (recomputing
        // the dropped fest from the definition), and (FMin, argmin)
        // survive unless the argmin was q.
        let factor_pre = match self.order {
            EstimationOrder::First => 0.0,
            _ => self.avg_all.avg(q),
        };
        for (u, &u_is_nbr) in is_nbr.iter().enumerate() {
            if self.placement[u] != NONE || !self.is_active(u) || u_is_nbr {
                continue;
            }
            let old = self.contrib[u * self.p + q] + self.unassigned_wgt[u] * factor_pre;
            if self.fmin_proc[u] == q {
                self.refold(u);
            } else {
                self.fsum[u] -= old;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    /// The oracle agrees with its own from-scratch definition at every
    /// step (the fast-kernel equivalence lives in the differential suite).
    /// Uniform weights on a torus exercise the integer path for orders
    /// one/two; varied weights force the general f64 path everywhere.
    #[test]
    fn oracle_stats_match_definition() {
        for order in [
            EstimationOrder::First,
            EstimationOrder::Second,
            EstimationOrder::Third,
        ] {
            for varied in [false, true] {
                let tasks = if varied {
                    let mut b = topomap_taskgraph::TaskGraph::builder(12);
                    for t in 0..12usize {
                        b.add_comm(t, (t + 1) % 12, 10.0 + t as f64);
                    }
                    b.build()
                } else {
                    gen::stencil2d(3, 4, 100.0, false)
                };
                let topo = Torus::torus_2d(4, 3);
                let mut s = NaiveEstimationState::new(&tasks, &topo, order);
                let want_uni = !varied && order != EstimationOrder::Third;
                assert_eq!(
                    s.kernel_label(),
                    if want_uni { "uniform-int" } else { "general" }
                );
                for _ in 0..12 {
                    let t = s.select_task();
                    let q = s.best_proc(t);
                    s.assign(t, q);
                    for &u in &s.unassigned {
                        if !s.is_active(u) {
                            continue;
                        }
                        let mut sum = 0.0;
                        let mut min = f64::INFINITY;
                        for &r in &s.free {
                            let f = s.fest(u, r);
                            sum += f;
                            min = min.min(f);
                        }
                        let (fmin, fsum) = s.stats(u);
                        assert_eq!(fmin, min, "FMin drifted for task {u} ({order:?})");
                        assert!(
                            (fsum - sum).abs() <= 1e-9 * sum.abs().max(1.0),
                            "FSum drifted for task {u} ({order:?}): {fsum} vs {sum}"
                        );
                    }
                }
                assert_eq!(s.num_unassigned(), 0);
            }
        }
    }
}
