//! TopoLB — Algorithm 1 of the paper.
//!
//! Iteratively builds the mapping: in each cycle, compute for every
//! unplaced task the *gain* it stands to achieve by being placed now —
//! the difference between its expected cost on an arbitrary free processor
//! (`FAvg`) and its cost on its best processor (`FMin`) — then place the
//! maximum-gain task on its cheapest free processor. The intuition (§4.1):
//! if a task would do almost as well anywhere, placing it can wait; if its
//! best spot is much better than average, claiming that spot now is
//! critical.

use crate::estimation::{EstimationOrder, EstimationState};
use crate::obs;
use crate::par::Parallelism;
use crate::{Mapper, Mapping};
use topomap_taskgraph::TaskGraph;
use topomap_topology::Topology;

/// The TopoLB mapping strategy.
///
/// `order` selects the estimation function; the default is the paper's
/// production choice (second order, O(p·|Et|) total work). Third order is
/// tighter but O(p³) — the paper keeps it for comparison, and so do we
/// (see the `estimation_order` ablation bench).
///
/// `par` selects the thread count for the estimation scans; any setting
/// produces the same mapping bit-for-bit (see [`crate::par`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoLb {
    pub order: EstimationOrder,
    pub par: Parallelism,
}

impl TopoLb {
    pub fn new(order: EstimationOrder) -> Self {
        TopoLb {
            order,
            par: Parallelism::default(),
        }
    }

    /// Second-order TopoLB (the paper's configuration).
    pub fn second_order() -> Self {
        TopoLb::new(EstimationOrder::Second)
    }

    pub fn with_parallelism(order: EstimationOrder, par: Parallelism) -> Self {
        TopoLb { order, par }
    }
}

impl Mapper for TopoLb {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        let _map_span = obs::span("topolb.map");
        if obs::enabled() {
            obs::counter_add(&format!("topolb.order.{}", self.order.label()), 1);
        }
        let mut state = EstimationState::with_parallelism(tasks, topo, self.order, self.par);
        let mut proc_of = vec![usize::MAX; n];
        let _place_span = obs::span("topolb.place");
        for _ in 0..n {
            let t = obs::time_counter("topolb.select_ns", || state.select_task());
            let q = state.best_proc(t);
            proc_of[t] = q;
            obs::time_counter("topolb.assign_ns", || state.assign(t, q));
        }
        obs::counter_add("topolb.placements", n as u64);
        Mapping::new(proc_of, p)
    }

    fn name(&self) -> String {
        match self.order {
            EstimationOrder::Second => "TopoLB".to_string(),
            o => format!("TopoLB({})", o.label()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{metrics, RandomMap};
    use topomap_taskgraph::gen;
    use topomap_topology::{GraphTopology, Hypercube, Torus};

    #[test]
    fn maps_every_task_injectively() {
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let m = TopoLb::default().map(&tasks, &topo);
        let mut seen = [false; 16];
        for t in 0..16 {
            let p = m.proc_of(t);
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn beats_random_on_stencil() {
        let tasks = gen::stencil2d(6, 6, 100.0, false);
        let topo = Torus::torus_2d(6, 6);
        let lb = TopoLb::default().map(&tasks, &topo);
        let rnd = RandomMap::new(3).map(&tasks, &topo);
        let h_lb = metrics::hops_per_byte(&tasks, &topo, &lb);
        let h_rnd = metrics::hops_per_byte(&tasks, &topo, &rnd);
        assert!(
            h_lb < 0.6 * h_rnd,
            "TopoLB {h_lb} should be well below random {h_rnd}"
        );
    }

    #[test]
    fn near_optimal_on_mesh_to_torus() {
        // Paper §5.2.1: "TopoLB actually produces an optimal mapping in
        // most cases" for 2D-mesh onto 2D-torus. Accept near-optimal.
        for side in [4usize, 6, 8] {
            let tasks = gen::stencil2d(side, side, 100.0, false);
            let topo = Torus::torus_2d(side, side);
            let m = TopoLb::default().map(&tasks, &topo);
            let hpb = metrics::hops_per_byte(&tasks, &topo, &m);
            assert!(
                hpb <= 1.35,
                "side {side}: TopoLB hops-per-byte {hpb} should be near 1"
            );
        }
    }

    #[test]
    fn works_on_all_estimation_orders() {
        let tasks = gen::stencil2d(4, 4, 10.0, false);
        let topo = Torus::torus_2d(4, 4);
        for order in [
            EstimationOrder::First,
            EstimationOrder::Second,
            EstimationOrder::Third,
        ] {
            let m = TopoLb::new(order).map(&tasks, &topo);
            let hpb = metrics::hops_per_byte(&tasks, &topo, &m);
            assert!(hpb >= 1.0, "hops-per-byte below the embedding bound?");
            assert!(hpb < 3.0, "{}: hpb {hpb} unexpectedly poor", order.label());
        }
    }

    #[test]
    fn works_with_fewer_tasks_than_procs() {
        let tasks = gen::ring(5, 10.0);
        let topo = Torus::torus_2d(3, 3);
        let m = TopoLb::default().map(&tasks, &topo);
        assert_eq!(m.num_tasks(), 5);
        // A 5-ring cannot embed at dilation 1 in a 3x3 torus... it can:
        // rings embed in any 2D torus with a cycle of length 5? A 3x3
        // torus is vertex-transitive with girth 3; a closed walk of length
        // 5 exists (3 + 2 wrap), so optimal hpb can reach 1. Accept <= 1.5.
        let hpb = metrics::hops_per_byte(&tasks, &topo, &m);
        assert!(hpb <= 1.5, "hpb = {hpb}");
    }

    #[test]
    fn works_on_irregular_topology() {
        let topo = GraphTopology::ring(9);
        let tasks = gen::ring(9, 10.0);
        let m = TopoLb::default().map(&tasks, &topo);
        let hpb = metrics::hops_per_byte(&tasks, &topo, &m);
        assert!(hpb <= 1.5, "ring-on-ring should be near optimal, got {hpb}");
    }

    #[test]
    fn works_on_hypercube() {
        let topo = Hypercube::new(4);
        let tasks = gen::stencil2d(4, 4, 10.0, true);
        let m = TopoLb::default().map(&tasks, &topo);
        // A 4x4 periodic stencil embeds in a 4-cube (it *is* Q4 ⊇ C4×C4).
        let hpb = metrics::hops_per_byte(&tasks, &topo, &m);
        let rnd = metrics::hops_per_byte(&tasks, &topo, &RandomMap::new(0).map(&tasks, &topo));
        assert!(hpb < rnd);
    }

    #[test]
    fn deterministic() {
        let tasks = gen::random_graph(30, 4.0, 1.0, 100.0, 5);
        let topo = Torus::torus_2d(6, 5);
        let a = TopoLb::default().map(&tasks, &topo);
        let b = TopoLb::default().map(&tasks, &topo);
        assert_eq!(a, b);
    }

    #[test]
    fn names() {
        assert_eq!(TopoLb::default().name(), "TopoLB");
        assert_eq!(
            TopoLb::new(EstimationOrder::Third).name(),
            "TopoLB(third-order)"
        );
    }
}
