//! Isomorphism ("optimal") mappings.
//!
//! Table 1 compares random placement against "the optimal mapping (a
//! simple isomorphism mapping)": when the task pattern is generated with
//! the same row-major numbering as the target mesh/torus, the identity
//! map places every pair of communicating tasks on adjacent processors,
//! achieving the ideal hops-per-byte of 1.

use crate::{Mapper, Mapping};
use topomap_taskgraph::TaskGraph;
use topomap_topology::Topology;

/// Identity mapping: task `i` on processor `i`.
///
/// Only *optimal* when the task graph is (a subgraph of) the topology
/// graph under identity numbering — e.g. a row-major `a×b` stencil onto a
/// row-major `a×b` mesh or torus. [`IdentityMap::verify_dilation_one`]
/// checks that property.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdentityMap;

impl IdentityMap {
    /// Does the identity map achieve dilation 1 for this pair (i.e. is
    /// every task edge a topology edge)?
    pub fn verify_dilation_one(tasks: &TaskGraph, topo: &dyn Topology) -> bool {
        tasks.num_tasks() <= topo.num_nodes()
            && tasks.edges().all(|(a, b, _)| topo.distance(a, b) == 1)
    }
}

impl Mapper for IdentityMap {
    fn map(&self, tasks: &TaskGraph, topo: &dyn Topology) -> Mapping {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        Mapping::new((0..n).collect(), p)
    }

    fn name(&self) -> String {
        "Optimal(identity)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    #[test]
    fn identity_on_matching_stencil_is_optimal() {
        let tasks = gen::stencil3d(8, 8, 8, 1000.0, false);
        let topo = Torus::mesh_3d(8, 8, 8);
        assert!(IdentityMap::verify_dilation_one(&tasks, &topo));
        let m = IdentityMap.map(&tasks, &topo);
        assert_eq!(metrics::hops_per_byte(&tasks, &topo, &m), 1.0);
    }

    #[test]
    fn mesh_pattern_on_torus_is_still_dilation_one() {
        // The torus contains the mesh: wraparound links are simply unused.
        let tasks = gen::stencil2d(6, 6, 1.0, false);
        let topo = Torus::torus_2d(6, 6);
        assert!(IdentityMap::verify_dilation_one(&tasks, &topo));
    }

    #[test]
    fn periodic_pattern_on_open_mesh_is_not() {
        // Wraparound task edges stretch across the open mesh.
        let tasks = gen::stencil2d(4, 4, 1.0, true);
        let topo = Torus::mesh_2d(4, 4);
        assert!(!IdentityMap::verify_dilation_one(&tasks, &topo));
    }

    #[test]
    fn shape_mismatch_detected() {
        let tasks = gen::stencil2d(4, 4, 1.0, false); // 16 tasks, 4x4 numbering
        let topo = Torus::mesh_2d(2, 8); // same size, different shape
        assert!(!IdentityMap::verify_dilation_one(&tasks, &topo));
    }
}
