//! The uniform-weight integer estimation kernel.
//!
//! When every task-graph edge carries the same weight `c` and the
//! unplaced-neighbor factor of §4.3 is one constant `K` over the whole
//! machine (always true for the first order; true for the second order
//! exactly when the topology is distance-regular enough that
//! `Σ_q d(p, q)` is the same for every `p` — tori, rings, hypercubes),
//! the estimation function collapses:
//!
//! ```text
//! fest(t, q) = c · r(t, q) + (c · cnt(t)) · K
//! r(t, q)    = Σ over placed neighbors j of t of d(q, P(j))   (integer!)
//! ```
//!
//! The weight factors out of every comparison, so the whole gain
//! structure lives in **exact integer arithmetic**: u32 distance-sum rows,
//! a u64 row total `S_r`, and a u32 row minimum `r_min`. Exactness buys
//! two things the f64 kernel cannot have:
//!
//! - The naive oracle ([`crate::estimation_naive`]) is bit-identical *by
//!   construction* — integer sums and minima do not depend on evaluation
//!   order, so there is no floating-point trajectory to mirror. The few
//!   f64 values exposed (`gain`, `fest`, `stats`) are fixed formulas over
//!   those integers.
//! - The per-placement work drops further than the general kernel's:
//!   `S_r` updates in O(1) from a shared per-placement column sum, the
//!   subtraction fast path recomputes the dropped entry from the task's
//!   placed-neighbor list and the current distance column (never touching
//!   the row), and rows are only synced with the free list lazily —
//!   replaying a global swap log — when an edge event or refold actually
//!   folds them. A placement touches O(δ·F) row entries and O(|active|)
//!   scalars, with u32 rows halving the memory traffic of the f64 path.
//!
//! `r_min` maintenance is exact: between edge events a task's row values
//! never change, only free-set membership shrinks, so the minimum — and
//! the lexicographic `(r, id)` argmin — over the survivors is unchanged
//! unless the dropped processor *is* the argmin (a tying entry may drop,
//! but the argmin still holds the minimum). The argmin-hit check
//! `q == argmin` (exact ids, no tolerance) triggers the only refolds,
//! and [`Self::best_proc`] is an O(1) lookup.
//!
//! Kernel choice is decided by [`crate::estimation::uniform_kernel`],
//! which the oracle shares, so both sides of the differential suite
//! always pick the same path.

use crate::obs;
use crate::par::{Executor, Parallelism};
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{NodeId, Topology};

const NONE: usize = usize::MAX;

/// Integer-exact estimation structure for uniform-weight task graphs on
/// factor-uniform machines. Same surface as the general kernel.
pub struct UniEstimationState<'a> {
    tasks: &'a TaskGraph,
    topo: &'a dyn Topology,
    /// The uniform edge weight.
    c: f64,
    /// The constant unplaced-neighbor factor (0 for first order).
    kfac: f64,
    free: Vec<NodeId>,
    /// u32 mirror of `free`, kept in lockstep — the row folds read ids
    /// from this to halve the per-element id traffic (ids fit u32,
    /// checked at construction).
    free32: Vec<u32>,
    free_pos: Vec<usize>,
    unassigned: usize,
    placement: Vec<NodeId>,
    virgin_cursor: usize,
    /// Active frontier bookkeeping, as in the general kernel.
    active: Vec<TaskId>,
    active_pos: Vec<usize>,
    row_slot: Vec<usize>,
    free_slots: Vec<usize>,
    /// Pooled u32 rows: `rows[slot][i]` = Σ over placed neighbors of
    /// `d(free[i], P(j))` — positionally indexed against the free list
    /// *as of `synced[slot]` entries of the swap log*.
    rows: Vec<Vec<u32>>,
    /// Per slot: how many swap-log entries have been applied to the row.
    synced: Vec<usize>,
    /// One entry per placement: the free-list position vacated by
    /// `swap_remove`. Rows replay this to catch up with the free list.
    swap_log: Vec<u32>,
    /// Per *placed* task: its unplaced neighbors at placement time,
    /// compacted lazily as they get placed. The transpose of the frontier
    /// tasks' placed-neighbor lists — the subtraction pass scatters one
    /// distance per placed task through these instead of gathering one
    /// distance per (frontier task, placed neighbor) pair.
    uset: Vec<Vec<TaskId>>,
    /// Placed tasks whose `uset` still has (or may have) live entries.
    pfront: Vec<TaskId>,
    /// Scratch: `pfront` processors / their gathered distances to the
    /// just-filled processor.
    plist: Vec<NodeId>,
    pdist: Vec<u32>,
    /// Per processor: the active tasks whose argmin is that processor,
    /// with per-task positions for O(1) moves. A placement refolds
    /// exactly `ambucket[q]` — every other maintained argmin survives —
    /// so refold candidates are found without scanning the frontier.
    ambucket: Vec<Vec<TaskId>>,
    ampos: Vec<usize>,
    /// Per task: exact row minimum / lexicographic argmin processor /
    /// row total over the current free set. The argmin stays valid under
    /// subtraction: a drop can only invalidate it when the dropped value
    /// equals the minimum, which is exactly the value-hit refold trigger.
    rmin: Vec<u32>,
    argmin: Vec<NodeId>,
    sr: Vec<u64>,
    /// Per task: number of placed neighbors (drives the `cnt` views).
    placed_cnt: Vec<u32>,
    nbr_stamp: Vec<usize>,
    step: usize,
    /// Positional d(free[i], q) gather of the most recent placement
    /// (feeds the edge folds).
    dist: Vec<u32>,
    exec: Executor,
}

/// Lexicographic `(r, id)` min over a row and its positionally aligned
/// free list, in one branchless pass: each pair packs into the u64 key
/// `(r << 32) | id` (ids fit u32 — checked at construction), and the
/// u64 minimum of the keys *is* the lexicographic minimum. Four
/// independent lanes keep it vectorizable.
#[inline]
fn row_lexmin(row: &[u32], free: &[u32]) -> (u32, NodeId) {
    debug_assert_eq!(row.len(), free.len());
    let mut m = [u64::MAX; 4];
    let mut rc = row.chunks_exact(4);
    let mut fc = free.chunks_exact(4);
    for (r4, f4) in rc.by_ref().zip(fc.by_ref()) {
        m[0] = m[0].min(((r4[0] as u64) << 32) | f4[0] as u64);
        m[1] = m[1].min(((r4[1] as u64) << 32) | f4[1] as u64);
        m[2] = m[2].min(((r4[2] as u64) << 32) | f4[2] as u64);
        m[3] = m[3].min(((r4[3] as u64) << 32) | f4[3] as u64);
    }
    let mut min = m[0].min(m[1]).min(m[2]).min(m[3]);
    for (&r, &q) in rc.remainder().iter().zip(fc.remainder()) {
        min = min.min(((r as u64) << 32) | q as u64);
    }
    ((min >> 32) as u32, (min & u32::MAX as u64) as NodeId)
}

impl<'a> UniEstimationState<'a> {
    pub fn new(
        tasks: &'a TaskGraph,
        topo: &'a dyn Topology,
        c: f64,
        kfac: f64,
        par: Parallelism,
    ) -> Self {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        assert!(p <= u32::MAX as usize, "processor ids must fit u32");
        let _init_span = obs::span("estimation.init");
        UniEstimationState {
            tasks,
            topo,
            c,
            kfac,
            free: (0..p).collect(),
            free32: (0..p as u32).collect(),
            free_pos: (0..p).collect(),
            unassigned: n,
            placement: vec![NONE; n],
            virgin_cursor: 0,
            active: Vec::new(),
            active_pos: vec![NONE; n],
            row_slot: vec![NONE; n],
            free_slots: Vec::new(),
            rows: Vec::new(),
            synced: Vec::new(),
            swap_log: Vec::new(),
            uset: vec![Vec::new(); n],
            pfront: Vec::new(),
            plist: Vec::new(),
            pdist: Vec::new(),
            ambucket: vec![Vec::new(); p],
            ampos: vec![NONE; n],
            rmin: vec![0; n],
            argmin: vec![NONE; n],
            sr: vec![0; n],
            placed_cnt: vec![0; n],
            nbr_stamp: vec![0; n],
            step: 0,
            dist: Vec::new(),
            exec: Executor::new(par),
        }
    }

    #[inline]
    pub fn is_active(&self, t: TaskId) -> bool {
        self.row_slot[t] != NONE
    }

    /// `fest(t, q) = c·r + (c·cnt)·K`, with `r` recomputed from the
    /// placed-neighbor list (a view; not on the hot path).
    pub fn fest(&self, t: TaskId, q: NodeId) -> f64 {
        debug_assert!(self.placement[t] == NONE, "task already placed");
        debug_assert!(self.free_pos[q] != NONE, "processor not free");
        let mut r: u32 = 0;
        for (j, _) in self.tasks.neighbors(t) {
            if self.placement[j] != NONE {
                r += self.topo.distance(q, self.placement[j]);
            }
        }
        self.c * r as f64 + (self.c * self.placed_cnt[t] as f64) * self.kfac
    }

    /// `(FMin, FSum)` views of the maintained integers.
    pub fn stats(&self, t: TaskId) -> (f64, f64) {
        debug_assert!(self.is_active(t));
        let shift = (self.c * self.placed_cnt[t] as f64) * self.kfac;
        let fmin = self.c * self.rmin[t] as f64 + shift;
        let fsum = self.c * self.sr[t] as f64 + shift * self.free.len() as f64;
        (fmin, fsum)
    }

    /// Gain view: the constant factor shifts FAvg and FMin equally, so
    /// `gain = c · (S_r/F − r_min)` exactly.
    #[inline]
    pub fn gain(&self, t: TaskId) -> f64 {
        if self.row_slot[t] == NONE || self.free.is_empty() {
            return 0.0;
        }
        self.c * (self.sr[t] as f64 / self.free.len() as f64 - self.rmin[t] as f64)
    }

    pub fn select_task(&self) -> TaskId {
        debug_assert!(self.unassigned > 0);
        if self.active.is_empty() {
            let mut c = self.virgin_cursor;
            while self.placement[c] != NONE {
                c += 1;
            }
            return c;
        }
        let flen = self.free.len() as f64;
        let parts = self.exec.map_chunks(self.active.len(), 1, |range| {
            let mut best_t = NONE;
            let mut best_gain = f64::NEG_INFINITY;
            for i in range {
                let t = self.active[i];
                let g = self.c * (self.sr[t] as f64 / flen - self.rmin[t] as f64);
                if g > best_gain || (g == best_gain && t < best_t) {
                    best_gain = g;
                    best_t = t;
                }
            }
            (best_gain, best_t)
        });
        let mut best_t = NONE;
        let mut best_gain = f64::NEG_INFINITY;
        for (g, t) in parts {
            if g > best_gain || (g == best_gain && t < best_t) {
                best_gain = g;
                best_t = t;
            }
        }
        best_t
    }

    /// The maintained lexicographic `(r, id)` argmin for an active task;
    /// the lowest free id for a virgin one (the constant factor ties
    /// every candidate).
    pub fn best_proc(&mut self, t: TaskId) -> NodeId {
        if self.row_slot[t] == NONE {
            return self.free.iter().copied().min().expect("no free processor");
        }
        self.argmin[t]
    }

    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    pub fn num_unassigned(&self) -> usize {
        self.unassigned
    }

    pub fn free_procs(&self) -> &[NodeId] {
        &self.free
    }

    pub fn is_free(&self, q: NodeId) -> bool {
        self.free_pos[q] != NONE
    }

    /// Replay the swap log so `rows[slot]` is positionally aligned with
    /// the current free list. Amortized O(1) per (row, placement).
    fn sync_row(&mut self, slot: usize) {
        let row = &mut self.rows[slot];
        for k in self.synced[slot]..self.swap_log.len() {
            row.swap_remove(self.swap_log[k] as usize);
        }
        self.synced[slot] = self.swap_log.len();
    }

    /// Unhook `u` from its argmin bucket (no-op if unbucketed).
    fn bucket_remove(&mut self, u: TaskId) {
        let pos = self.ampos[u];
        if pos == NONE {
            return;
        }
        let list = &mut self.ambucket[self.argmin[u]];
        let last = *list.last().unwrap();
        list.swap_remove(pos);
        if last != u {
            self.ampos[last] = pos;
        }
        self.ampos[u] = NONE;
    }

    /// File `u` under its (current) argmin processor.
    fn bucket_push(&mut self, u: TaskId) {
        let b = self.argmin[u];
        self.ampos[u] = self.ambucket[b].len();
        self.ambucket[b].push(u);
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(s) = self.free_slots.pop() {
            s
        } else {
            self.rows.push(Vec::new());
            self.synced.push(0);
            self.rows.len() - 1
        }
    }

    pub fn assign(&mut self, t: TaskId, q: NodeId) {
        assert!(self.placement[t] == NONE, "task {t} already placed");
        assert!(self.free_pos[q] != NONE, "processor {q} not free");
        obs::counter_add("estimation.assigns", 1);
        self.placement[t] = q;
        self.step += 1;
        self.unassigned -= 1;

        // Retire t from the frontier, releasing its row to the pool.
        if self.row_slot[t] != NONE {
            self.bucket_remove(t);
            let slot = self.row_slot[t];
            self.free_slots.push(slot);
            self.row_slot[t] = NONE;
            let ai = self.active_pos[t];
            let lasta = *self.active.last().unwrap();
            self.active.swap_remove(ai);
            if lasta != t {
                self.active_pos[lasta] = ai;
            }
            self.active_pos[t] = NONE;
        }

        while self.virgin_cursor < self.placement.len()
            && self.placement[self.virgin_cursor] != NONE
        {
            self.virgin_cursor += 1;
        }

        // Remove q from the free list; live rows catch up lazily via the
        // swap log instead of being touched here.
        let qi = self.free_pos[q];
        let lastq = *self.free.last().unwrap();
        self.free.swap_remove(qi);
        self.free32.swap_remove(qi);
        if lastq != q {
            self.free_pos[lastq] = qi;
        }
        self.free_pos[q] = NONE;
        self.swap_log.push(qi as u32);

        if self.unassigned == 0 {
            debug_assert!(self.active.is_empty());
            return;
        }
        let flen = self.free.len();

        let nbrs: Vec<TaskId> = self
            .tasks
            .neighbors(t)
            .map(|(j, _)| j)
            .filter(|&j| self.placement[j] == NONE)
            .collect();
        for &j in &nbrs {
            self.nbr_stamp[j] = self.step;
        }

        if self.active.is_empty() && nbrs.is_empty() {
            return;
        }

        // The positional d(free[i], q) gather feeding the edge folds, with
        // the shared row-total increment Σ_{i ∈ free} d(free[i], q)
        // accumulated inside the same pass.
        let mut colsum: u64 = 0;
        if !nbrs.is_empty() {
            let mut dist = std::mem::take(&mut self.dist);
            colsum = self.topo.distances_sum_into(q, &self.free, &mut dist);
            self.dist = dist;
        }

        // Subtraction pass, transposed: every unplaced task adjacent to a
        // placed one loses the row entry v = Σ_k d(q, P(k)) from S_r when
        // q leaves the free set. Instead of gathering one distance per
        // (frontier task, placed neighbor) pair, gather ONE distance per
        // placed frontier task and scatter `S_r -= d` through that task's
        // unplaced neighbors — the same pair set walked from the other
        // side, with O(|pfront|) distance lookups instead of O(pairs).
        // Integer subtraction makes the scatter order irrelevant. Dead
        // `uset` entries (neighbors placed since) are skipped and
        // compacted away once they are the majority, so each edge is
        // cleaned up O(1) amortized.
        let step = self.step;
        let mut pfront = std::mem::take(&mut self.pfront);
        let mut plist = std::mem::take(&mut self.plist);
        let mut pdist = std::mem::take(&mut self.pdist);
        plist.clear();
        plist.extend(pfront.iter().map(|&j| self.placement[j]));
        if !plist.is_empty() {
            self.topo.distances_into(q, &plist, &mut pdist);
        }
        let (mut full, mut fast) = (0u64, 0u64);
        let mut w = 0usize;
        for i in 0..pfront.len() {
            let j = pfront[i];
            let d = pdist[i] as u64;
            let us = &mut self.uset[j];
            let mut dead = 0usize;
            for &u in us.iter() {
                if self.placement[u] == NONE {
                    self.sr[u] -= d;
                    fast += 1;
                } else {
                    dead += 1;
                }
            }
            if dead * 2 > us.len() {
                let placement = &self.placement;
                us.retain(|&u| placement[u] == NONE);
            }
            if !us.is_empty() {
                pfront[w] = j;
                w += 1;
            }
        }
        pfront.truncate(w);
        self.pfront = pfront;
        self.plist = plist;
        self.pdist = pdist;

        // Refolds: exactly the tasks whose argmin was q — dropping any
        // other entry leaves a task's argmin in place still holding the
        // minimum, even when the dropped value ties it. Edge-event targets
        // found here are left for their edge fold (which refolds anyway).
        let mut drained = std::mem::take(&mut self.ambucket[q]);
        for &u in &drained {
            self.ampos[u] = NONE;
            if self.nbr_stamp[u] == step {
                continue;
            }
            let slot = self.row_slot[u];
            self.sync_row(slot);
            let (min, am) = row_lexmin(&self.rows[slot], &self.free32);
            self.rmin[u] = min;
            self.argmin[u] = am;
            self.bucket_push(u);
            full += 1;
        }
        drained.clear();
        self.ambucket[q] = drained;
        obs::counter_add("estimation.fest_full_scan", full);
        obs::counter_add("estimation.fest_incremental", fast);

        // Edge events: sync the row, add the distance column, refold the
        // row minimum, and bump S_r by the shared column sum. The add and
        // min passes are separate so both auto-vectorize over the
        // L1/L2-resident u32 row.
        for &j in &nbrs {
            let is_new = self.row_slot[j] == NONE;
            let slot = if is_new {
                let slot = self.alloc_slot();
                self.row_slot[j] = slot;
                self.active_pos[j] = self.active.len();
                self.active.push(j);
                self.synced[slot] = self.swap_log.len();
                slot
            } else {
                let slot = self.row_slot[j];
                self.sync_row(slot);
                slot
            };
            // Two passes on purpose: the pure u32 add vectorizes 8-wide,
            // and the packed-key fold in row_lexmin vectorizes on its own
            // — fusing them was measurably slower.
            let mut row = std::mem::take(&mut self.rows[slot]);
            let (min, am) = if is_new {
                row.clear();
                row.extend_from_slice(&self.dist[..flen]);
                row_lexmin(&row, &self.free32)
            } else {
                for (rv, &d) in row[..flen].iter_mut().zip(&self.dist[..flen]) {
                    *rv += d;
                }
                row_lexmin(&row[..flen], &self.free32)
            };
            self.bucket_remove(j);
            self.rmin[j] = min;
            self.argmin[j] = am;
            self.bucket_push(j);
            self.rows[slot] = row;
            self.sr[j] += colsum;
            self.placed_cnt[j] += 1;
        }
        // Register t's own unplaced neighbors for future scatters — after
        // this placement's scatter, so t never scatters d(q, q) = 0 into
        // rows that never held a q entry.
        let nlen = nbrs.len() as u64;
        if !nbrs.is_empty() {
            self.uset[t] = nbrs;
            self.pfront.push(t);
        }
        obs::counter_add("estimation.row_events", nlen);
        obs::counter_add("estimation.fest_full_scan", nlen);
    }

    /// Brute-force integer row recomputation for the in-module tests.
    #[cfg(test)]
    fn r_bruteforce(&self, t: TaskId, q: NodeId) -> u32 {
        self.tasks
            .neighbors(t)
            .filter(|&(j, _)| self.placement[j] != NONE)
            .map(|(j, _)| self.topo.distance(q, self.placement[j]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    /// Drive the full loop on a torus, auditing the maintained integers
    /// against brute-force recomputation after every placement.
    #[test]
    fn integers_match_bruteforce_every_step() {
        let tasks = gen::stencil2d(4, 5, 100.0, false);
        let topo = Torus::torus_2d(5, 4);
        let mut s = UniEstimationState::new(&tasks, &topo, 100.0, 1.5, Parallelism::serial());
        for _ in 0..20 {
            let t = s.select_task();
            let q = s.best_proc(t);
            s.assign(t, q);
            for u in 0..tasks.num_tasks() {
                if s.placement[u] != NONE || !s.is_active(u) {
                    continue;
                }
                let mut min = u32::MAX;
                let mut sum = 0u64;
                for &r in &s.free {
                    let v = s.r_bruteforce(u, r);
                    min = min.min(v);
                    sum += v as u64;
                }
                assert_eq!(s.rmin[u], min, "rmin drifted for task {u}");
                assert_eq!(s.sr[u], sum, "S_r drifted for task {u}");
            }
        }
        assert_eq!(s.num_unassigned(), 0);
    }

    #[test]
    fn virgin_rule_lowest_id_lowest_proc() {
        let tasks = gen::ring(5, 7.0);
        let topo = Torus::torus_2d(3, 3);
        let mut s = UniEstimationState::new(&tasks, &topo, 7.0, 2.0, Parallelism::serial());
        assert_eq!(s.select_task(), 0, "lowest-id virgin first");
        assert_eq!(s.best_proc(0), 0, "constant factor ties break to lowest id");
    }
}
