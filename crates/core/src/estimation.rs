//! Estimation functions for TopoLB (§4.3 of the paper), maintained
//! incrementally.
//!
//! During iteration `k` of the mapping algorithm only a *partial* mapping
//! exists. The estimation function `fest(t, p, P)` approximates the
//! contribution of task `t` to the overall hop-bytes if it were placed on
//! free processor `p` now:
//!
//! - **First order** — drop terms for unplaced tasks:
//!   `fest = Σ_{j ∈ assigned} c_tj · d(p, P(j))`.
//! - **Second order** — assume unplaced neighbors land on a uniformly
//!   random processor of the whole machine:
//!   `fest = Σ_{j ∈ assigned} c_tj · d(p, P(j)) + Σ_{j ∈ unassigned} c_tj · avg_Vp(p)`
//!   where `avg_Vp(p) = Σ_q d(p,q)/|Vp|`. This is the order TopoLB ships
//!   with.
//! - **Third order** — assume unplaced neighbors land on a uniformly
//!   random *free* processor: replaces `avg_Vp(p)` with
//!   `avg_Pk(p) = Σ_{q ∈ Pk} d(p,q)/|Pk|`, tracked incrementally. Tighter,
//!   but O(p²) per iteration (O(p³) total), as analyzed in §4.4.
//!
//! ## Incremental-gain structure
//!
//! The original implementation kept a dense `n × p` fest table and
//! rescanned every unassigned task's row after each placement — the
//! quadratic cliff of ROADMAP Open item 1. [`EstimationState`] instead
//! maintains gain structure only for the **active frontier** (unassigned
//! tasks with at least one placed neighbor):
//!
//! - Each active task owns a pooled, cache-friendly row of assigned
//!   contributions indexed by *position in the free list* (kept in sync
//!   with the free list's `swap_remove`s), allocated lazily on activation.
//! - A placement triggers one **edge event** per unplaced neighbor of the
//!   placed task: a fused row-update + stats fold over the free list.
//! - Every other active task takes the O(1) subtraction fast path (its
//!   fest only lost the entry of the processor just occupied), falling
//!   back to a full refold only when its argmin processor was taken.
//! - Task selection follows §4.1: while the frontier is non-empty the
//!   max-gain active task wins; otherwise (start of the run or of a new
//!   connected component) the lowest-id virgin task is picked — for virgin
//!   tasks `FAvg ≈ FMin` (exactly equal on vertex-transitive machines), so
//!   their gains carry no signal, are defined as 0, and fall to the
//!   lowest-id tie-break without being materialized at all.
//!
//! Per placement this costs O(δ(t)·F + |active|) for orders one/two
//! instead of O(n·F); initialization drops from O(n·p) to O(n + p).
//! The pre-rewrite full-rescan semantics live on as the differential test
//! oracle in [`crate::estimation_naive`], which implements the *same*
//! selection and floating-point update trajectory naively — the two are
//! bit-identical, see `tests/incremental_equivalence.rs`.

use crate::estimation_uniform::UniEstimationState;
use crate::obs;
use crate::par::{Executor, Parallelism};
use topomap_taskgraph::{TaskGraph, TaskId};
use topomap_topology::{stats::AvgDistTable, NodeId, Topology};

/// Which approximation of §4.3 to use for unplaced-neighbor terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EstimationOrder {
    /// Ignore unplaced neighbors entirely.
    First,
    /// Unplaced neighbors at the machine-wide average distance (the
    /// paper's production choice).
    #[default]
    Second,
    /// Unplaced neighbors at the average distance over *free* processors.
    Third,
}

impl EstimationOrder {
    pub fn label(self) -> &'static str {
        match self {
            EstimationOrder::First => "first-order",
            EstimationOrder::Second => "second-order",
            EstimationOrder::Third => "third-order",
        }
    }
}

const NONE: usize = usize::MAX;

/// Incrementally maintained estimation structure for one mapping run —
/// the **general** f64 kernel, correct for arbitrary edge weights,
/// topologies and orders. [`EstimationState`] wraps it and swaps in the
/// integer kernel ([`crate::estimation_uniform`]) when
/// [`uniform_kernel`] detects that the run qualifies.
pub struct GenEstimationState<'a> {
    tasks: &'a TaskGraph,
    topo: &'a dyn Topology,
    order: EstimationOrder,
    p: usize,
    /// Machine-wide average distance table (second order; also seeds the
    /// third order's free-set sums).
    avg_all: AvgDistTable,
    /// Free processors, positionally synced with every row below.
    free: Vec<NodeId>,
    free_pos: Vec<usize>,
    /// `avg_all.avg(free[i])` per position (second-order factor gather).
    avg_free: Vec<f64>,
    /// Σ_{q ∈ free} d(r, q) for each processor r (third order only).
    sum_free: Vec<f64>,
    /// Third-order factor per free-list position, rebuilt each placement.
    factor_free: Vec<f64>,
    unassigned: Vec<TaskId>,
    unassigned_pos: Vec<usize>,
    /// Total edge weight from t to its still-unassigned neighbors.
    unassigned_wgt: Vec<f64>,
    placement: Vec<NodeId>,
    /// The active frontier: unassigned tasks with ≥ 1 placed neighbor.
    active: Vec<TaskId>,
    active_pos: Vec<usize>,
    /// Row pool. `rows[slot][i]` = Σ over placed neighbors j of the owning
    /// task of `c · d(free[i], P(j))`, accumulated in placement order.
    rows: Vec<Vec<f64>>,
    /// Per slot: the row entry dropped at the most recent free-list
    /// shrink (feeds the subtraction fast path).
    removed_val: Vec<f64>,
    free_slots: Vec<usize>,
    row_slot: Vec<usize>,
    /// Per-active-task FMin value / argmin processor / Σ fest over free.
    fmin: Vec<f64>,
    fmin_proc: Vec<NodeId>,
    fsum: Vec<f64>,
    /// Lowest task id that may still be virgin; advanced past placed
    /// entries on assign (the virgin-selection rule is lowest id first).
    virgin_cursor: usize,
    /// Stamp of the step in which a task last was an edge-event target.
    nbr_stamp: Vec<usize>,
    step: usize,
    /// Scratch for bulk distance queries.
    dist_scratch: Vec<u32>,
    /// `0..p`, the target list for third-order full columns.
    all_ids: Vec<NodeId>,
    /// Worker pool for the parallel scans (serial when 1 thread).
    exec: Executor,
}

/// Fold `FMin`/argmin/`FSum` over `(fest, proc)` pairs in free-list
/// position order with the lowest-id tie-break.
///
/// `FSum` uses a **4-lane striped** accumulation: position `i` adds into
/// lane `i mod 4` and the total is `(s0 + s1) + (s2 + s3)`. This breaks
/// the serial add-latency chain of a plain running sum (the dominant cost
/// of the fused edge-event folds) while staying a *fixed* floating-point
/// expression. The `(FMin, argmin)` pair is the lexicographic minimum of
/// the `(fest, proc)` multiset — a unique value independent of fold order.
///
/// Every stats fold — serial or inside a worker — goes through this one
/// accumulation pattern, and a task's fold is never split across workers,
/// so the floating-point result is independent of the thread count. The
/// naive oracle shares the same pattern, which is what makes the two
/// kernels bit-identical.
#[inline]
fn fold_stats(iter: impl Iterator<Item = (f64, NodeId)>) -> (f64, NodeId, f64) {
    let mut min = f64::INFINITY;
    let mut argmin = NONE;
    let mut s = [0.0f64; 4];
    for (i, (f, q)) in iter.enumerate() {
        s[i & 3] += f;
        if f < min || (f == min && q < argmin) {
            min = f;
            argmin = q;
        }
    }
    (min, argmin, (s[0] + s[1]) + (s[2] + s[3]))
}

impl<'a> GenEstimationState<'a> {
    pub fn new(tasks: &'a TaskGraph, topo: &'a dyn Topology, order: EstimationOrder) -> Self {
        Self::with_parallelism(tasks, topo, order, Parallelism::default())
    }

    pub fn with_parallelism(
        tasks: &'a TaskGraph,
        topo: &'a dyn Topology,
        order: EstimationOrder,
        par: Parallelism,
    ) -> Self {
        let n = tasks.num_tasks();
        let p = topo.num_nodes();
        assert!(n <= p, "need at least as many processors as tasks");
        // Covers the distance tables; no initial fest scan exists anymore —
        // the frontier is empty until the first placement.
        let _init_span = obs::span("estimation.init");
        let avg_all = AvgDistTable::new(topo);
        let sum_free: Vec<f64> = match order {
            EstimationOrder::Third => (0..p).map(|r| avg_all.sum(r) as f64).collect(),
            _ => Vec::new(),
        };
        // Third order's positional factor column must exist before the
        // first placement (virgin best_proc folds it).
        let factor_free = match order {
            EstimationOrder::Third => sum_free.iter().map(|&s| s / p as f64).collect(),
            _ => Vec::new(),
        };
        let avg_free = match order {
            EstimationOrder::Second => (0..p).map(|q| avg_all.avg(q)).collect(),
            _ => vec![0.0; p],
        };
        let w: Vec<f64> = (0..n).map(|t| tasks.weighted_degree(t)).collect();
        GenEstimationState {
            tasks,
            topo,
            order,
            p,
            avg_all,
            free: (0..p).collect(),
            free_pos: (0..p).collect(),
            avg_free,
            sum_free,
            factor_free,
            unassigned: (0..n).collect(),
            unassigned_pos: (0..n).collect(),
            unassigned_wgt: w,
            placement: vec![NONE; n],
            active: Vec::new(),
            active_pos: vec![NONE; n],
            rows: Vec::new(),
            removed_val: Vec::new(),
            free_slots: Vec::new(),
            row_slot: vec![NONE; n],
            fmin: vec![0.0; n],
            fmin_proc: vec![0; n],
            fsum: vec![0.0; n],
            virgin_cursor: 0,
            nbr_stamp: vec![0; n],
            step: 0,
            dist_scratch: Vec::new(),
            all_ids: match order {
                EstimationOrder::Third => (0..p).collect(),
                _ => Vec::new(),
            },
            exec: Executor::new(par),
        }
    }

    /// The per-byte distance assumed for an unplaced neighbor when the
    /// candidate processor is `q`.
    #[inline]
    fn unplaced_factor(&self, q: NodeId) -> f64 {
        match self.order {
            EstimationOrder::First => 0.0,
            EstimationOrder::Second => self.avg_all.avg(q),
            EstimationOrder::Third => {
                let f = self.free.len();
                if f == 0 {
                    0.0
                } else {
                    self.sum_free[q] / f as f64
                }
            }
        }
    }

    /// The factor at free-list position `i` (gathered, so the hot folds
    /// skip the per-element match).
    #[inline]
    fn factor_at(&self, i: usize) -> f64 {
        match self.order {
            EstimationOrder::First => 0.0,
            EstimationOrder::Second => self.avg_free[i],
            EstimationOrder::Third => self.factor_free[i],
        }
    }

    /// Current `fest(t, q)` for unassigned task `t` and free processor `q`.
    #[inline]
    pub fn fest(&self, t: TaskId, q: NodeId) -> f64 {
        debug_assert!(self.placement[t] == NONE, "task already placed");
        debug_assert!(self.free_pos[q] != NONE, "processor not free");
        let contrib = match self.row_slot[t] {
            NONE => 0.0,
            slot => self.rows[slot][self.free_pos[q]],
        };
        contrib + self.unassigned_wgt[t] * self.unplaced_factor(q)
    }

    /// Is `t` on the active frontier (unassigned with a placed neighbor)?
    /// The maintained `FMin`/`FSum` stats exist only for active tasks.
    #[doc(hidden)]
    pub fn is_active(&self, t: TaskId) -> bool {
        self.row_slot[t] != NONE
    }

    /// The maintained `(FMin, argmin, FSum)` triple of an active task —
    /// exposed for the differential test suite's checkpoint audits.
    #[doc(hidden)]
    pub fn stats(&self, t: TaskId) -> (f64, NodeId, f64) {
        debug_assert!(self.is_active(t));
        (self.fmin[t], self.fmin_proc[t], self.fsum[t])
    }

    /// Gain of placing `t` now: `FAvg(t) − FMin(t)` (Algorithm 1's
    /// criticality measure). Virgin tasks carry no gain signal (§4.1:
    /// `FAvg ≈ FMin` when nothing is placed near them) — their gain is 0.
    #[inline]
    pub fn gain(&self, t: TaskId) -> f64 {
        if self.row_slot[t] == NONE {
            return 0.0;
        }
        let f = self.free.len();
        if f == 0 {
            return 0.0;
        }
        self.fsum[t] / f as f64 - self.fmin[t]
    }

    /// The next task to place: the max-gain frontier task (ties → lowest
    /// id) while the frontier is non-empty; otherwise the lowest-id virgin
    /// task (every virgin's gain is defined 0, so the id tie-break rules).
    ///
    /// Parallel: each worker scans a contiguous chunk of the active list;
    /// (gain desc, id asc) is a total order, so the argmax is the same
    /// wherever the chunk boundaries fall — bit-identical to the serial
    /// scan.
    pub fn select_task(&self) -> TaskId {
        debug_assert!(!self.unassigned.is_empty());
        if self.active.is_empty() {
            let mut c = self.virgin_cursor;
            while self.placement[c] != NONE {
                c += 1;
            }
            return c;
        }
        let flen = self.free.len() as f64;
        let parts = self.exec.map_chunks(self.active.len(), 1, |range| {
            let mut best_t = NONE;
            let mut best_gain = f64::NEG_INFINITY;
            for i in range {
                let t = self.active[i];
                let g = self.fsum[t] / flen - self.fmin[t];
                if g > best_gain || (g == best_gain && t < best_t) {
                    best_gain = g;
                    best_t = t;
                }
            }
            (best_gain, best_t)
        });
        let mut best_t = NONE;
        let mut best_gain = f64::NEG_INFINITY;
        for (g, t) in parts {
            if g > best_gain || (g == best_gain && t < best_t) {
                best_gain = g;
                best_t = t;
            }
        }
        best_t
    }

    /// The free processor where `t` costs least (ties → lowest id). O(1)
    /// for frontier tasks; virgin tasks fold their factor column once.
    #[inline]
    pub fn best_proc(&self, t: TaskId) -> NodeId {
        if self.row_slot[t] != NONE {
            return self.fmin_proc[t];
        }
        let w = self.unassigned_wgt[t];
        let (_, argmin, _) =
            fold_stats((0..self.free.len()).map(|i| (w * self.factor_at(i), self.free[i])));
        argmin
    }

    pub fn num_free(&self) -> usize {
        self.free.len()
    }

    pub fn num_unassigned(&self) -> usize {
        self.unassigned.len()
    }

    pub fn free_procs(&self) -> &[NodeId] {
        &self.free
    }

    pub fn is_free(&self, q: NodeId) -> bool {
        self.free_pos[q] != NONE
    }

    fn alloc_slot(&mut self) -> usize {
        if let Some(s) = self.free_slots.pop() {
            s
        } else {
            self.rows.push(Vec::new());
            self.removed_val.push(0.0);
            self.rows.len() - 1
        }
    }

    /// Commit the placement `t → q` and update the frontier structure:
    /// one fused row-update + stats fold per unplaced neighbor of `t`
    /// (edge events), the O(1) subtraction fast path for every other
    /// frontier task, O(p) + a frontier-wide refold for order three.
    pub fn assign(&mut self, t: TaskId, q: NodeId) {
        assert!(self.placement[t] == NONE, "task {t} already placed");
        assert!(self.free_pos[q] != NONE, "processor {q} not free");
        obs::counter_add("estimation.assigns", 1);
        self.placement[t] = q;
        self.step += 1;

        // Retire t from the frontier, releasing its row to the pool.
        if self.row_slot[t] != NONE {
            self.free_slots.push(self.row_slot[t]);
            self.row_slot[t] = NONE;
            let ai = self.active_pos[t];
            let lasta = *self.active.last().unwrap();
            self.active.swap_remove(ai);
            if lasta != t {
                self.active_pos[lasta] = ai;
            }
            self.active_pos[t] = NONE;
        }

        // Remove t from unassigned (swap-remove keeps O(1)).
        let ti = self.unassigned_pos[t];
        let last = *self.unassigned.last().unwrap();
        self.unassigned.swap_remove(ti);
        if last != t {
            self.unassigned_pos[last] = ti;
        }
        self.unassigned_pos[t] = NONE;

        // Advance the virgin cursor past placed entries (amortized O(n)
        // over the whole run).
        while self.virgin_cursor < self.placement.len()
            && self.placement[self.virgin_cursor] != NONE
        {
            self.virgin_cursor += 1;
        }

        // Remove q from the free list. Every live row shrinks at the same
        // position; those shrinks are fused into the passes below.
        let qi = self.free_pos[q];
        let lastq = *self.free.last().unwrap();
        self.free.swap_remove(qi);
        if lastq != q {
            self.free_pos[lastq] = qi;
        }
        self.free_pos[q] = NONE;
        self.avg_free.swap_remove(qi);

        if self.unassigned.is_empty() {
            // The frontier is a subset of the unassigned set, so there are
            // no live rows left to shrink.
            debug_assert!(self.active.is_empty());
            return;
        }
        let flen = self.free.len();

        // Unplaced neighbors of t: their rows gain the c·d(·, q) column
        // and their unassigned weight drops by c (adjacency order).
        let nbrs: Vec<(TaskId, f64)> = self
            .tasks
            .neighbors(t)
            .filter(|&(j, _)| self.placement[j] == NONE)
            .collect();
        for &(j, c) in &nbrs {
            self.unassigned_wgt[j] -= c;
            self.nbr_stamp[j] = self.step;
        }

        if self.order == EstimationOrder::Third {
            for &u in &self.active {
                let s = self.row_slot[u];
                self.removed_val[s] = self.rows[s].swap_remove(qi);
            }
            self.assign_third_order(q, &nbrs);
            return;
        }

        // The d(·, q) column over the post-removal free list, one bulk
        // topology query.
        if !nbrs.is_empty() {
            let mut scratch = std::mem::take(&mut self.dist_scratch);
            self.topo.distances_into(q, &self.free, &mut scratch);
            self.dist_scratch = scratch;
        }

        // Subtraction fast path for every frontier task that is not an
        // edge-event target this step: its fest column only lost processor
        // q, so FSum drops by the dropped entry and (FMin, argmin) survive
        // unless the argmin was q. A non-neighbor's row and weight are
        // untouched by the edge events below, so this pass commutes with
        // them — the serial path fuses it with the row shrink (one pass
        // over the frontier instead of two), the parallel path shrinks
        // here and scans in workers after the edge events.
        let factor_pre = match self.order {
            EstimationOrder::First => 0.0,
            _ => self.avg_all.avg(q),
        };
        let step = self.step;
        if self.exec.threads() <= 1 {
            let (mut full, mut fast) = (0u64, 0u64);
            for i in 0..self.active.len() {
                let u = self.active[i];
                let s = self.row_slot[u];
                let v = self.rows[s].swap_remove(qi);
                if self.nbr_stamp[u] == step {
                    continue; // handled by its edge event below
                }
                let wu = self.unassigned_wgt[u];
                if self.fmin_proc[u] == q {
                    let row = &self.rows[s];
                    let (min, argmin, sum) = fold_stats(
                        row[..flen]
                            .iter()
                            .zip(&self.avg_free[..flen])
                            .zip(&self.free[..flen])
                            .map(|((&r, &fq), &qq)| (r + wu * fq, qq)),
                    );
                    self.fmin[u] = min;
                    self.fmin_proc[u] = argmin;
                    self.fsum[u] = sum;
                    full += 1;
                } else {
                    self.fsum[u] -= v + wu * factor_pre;
                    fast += 1;
                }
            }
            obs::counter_add("estimation.fest_full_scan", full);
            obs::counter_add("estimation.fest_incremental", fast);
        } else {
            for &u in &self.active {
                let s = self.row_slot[u];
                self.removed_val[s] = self.rows[s].swap_remove(qi);
            }
        }

        // Edge events: fused row update + stats fold per unplaced
        // neighbor. Activations allocate a pooled row and write it on
        // first touch — the free set only shrinks, so entries for procs
        // taken later are simply dropped, never read stale.
        // `avg_free` is the positional factor column for orders one/two
        // (all-zero for first order); third order exited above, so the hot
        // loops below read it directly instead of dispatching per element.
        let mut full_scans = 0u64;
        for &(j, c) in &nbrs {
            let wj = self.unassigned_wgt[j];
            let mut min = f64::INFINITY;
            let mut argmin = NONE;
            let mut s = [0.0f64; 4];
            if self.row_slot[j] == NONE {
                let slot = self.alloc_slot();
                self.row_slot[j] = slot;
                self.active_pos[j] = self.active.len();
                self.active.push(j);
                let mut row = std::mem::take(&mut self.rows[slot]);
                row.clear();
                row.reserve(flen);
                let dist = &self.dist_scratch[..flen];
                let fac = &self.avg_free[..flen];
                let free = &self.free[..flen];
                for (i, ((&d, &fq), &qi2)) in dist.iter().zip(fac).zip(free).enumerate() {
                    let r = c * d as f64;
                    row.push(r);
                    let f = r + wj * fq;
                    s[i & 3] += f;
                    if f < min || (f == min && qi2 < argmin) {
                        min = f;
                        argmin = qi2;
                    }
                }
                self.rows[slot] = row;
            } else {
                let slot = self.row_slot[j];
                let mut row = std::mem::take(&mut self.rows[slot]);
                let dist = &self.dist_scratch[..flen];
                let fac = &self.avg_free[..flen];
                let free = &self.free[..flen];
                for (i, (((rv, &d), &fq), &qi2)) in row[..flen]
                    .iter_mut()
                    .zip(dist)
                    .zip(fac)
                    .zip(free)
                    .enumerate()
                {
                    let r = *rv + c * d as f64;
                    *rv = r;
                    let f = r + wj * fq;
                    s[i & 3] += f;
                    if f < min || (f == min && qi2 < argmin) {
                        min = f;
                        argmin = qi2;
                    }
                }
                self.rows[slot] = row;
            }
            self.fmin[j] = min;
            self.fmin_proc[j] = argmin;
            self.fsum[j] = (s[0] + s[1]) + (s[2] + s[3]);
            full_scans += 1;
        }
        obs::counter_add("estimation.row_events", nbrs.len() as u64);
        obs::counter_add("estimation.fest_full_scan", full_scans);
        if self.exec.threads() <= 1 {
            return; // the fused pass above already did the subtraction
        }
        let this = &*self;
        let wpi = 8;
        let parts = this.exec.map_chunks(this.active.len(), wpi, |range| {
            let mut out = Vec::with_capacity(range.len());
            let (mut full, mut fast) = (0u64, 0u64);
            for i in range {
                let u = this.active[i];
                if this.nbr_stamp[u] == step {
                    continue; // handled by its edge event above
                }
                let s = this.row_slot[u];
                let wu = this.unassigned_wgt[u];
                let old = this.removed_val[s] + wu * factor_pre;
                if this.fmin_proc[u] == q {
                    let row = &this.rows[s];
                    let (min, argmin, sum) = fold_stats(
                        row[..flen]
                            .iter()
                            .zip(&this.avg_free[..flen])
                            .zip(&this.free[..flen])
                            .map(|((&r, &fq), &qq)| (r + wu * fq, qq)),
                    );
                    out.push((u, min, argmin, sum));
                    full += 1;
                } else {
                    out.push((u, this.fmin[u], this.fmin_proc[u], this.fsum[u] - old));
                    fast += 1;
                }
            }
            obs::counter_add("estimation.fest_full_scan", full);
            obs::counter_add("estimation.fest_incremental", fast);
            out
        });
        for chunk in parts {
            for (u, min, argmin, sum) in chunk {
                self.fmin[u] = min;
                self.fmin_proc[u] = argmin;
                self.fsum[u] = sum;
            }
        }
    }

    /// Third-order tail of [`Self::assign`]: the free-set average changes
    /// for every processor, so after the O(p) column subtraction the whole
    /// frontier refolds (the §4.4 O(p²)-per-iteration bound — unchanged,
    /// but now over the frontier instead of all unassigned tasks).
    fn assign_third_order(&mut self, q: NodeId, nbrs: &[(TaskId, f64)]) {
        let flen = self.free.len();
        let mut scratch = std::mem::take(&mut self.dist_scratch);
        self.topo.distances_into(q, &self.all_ids, &mut scratch);
        self.dist_scratch = scratch;
        for r in 0..self.p {
            self.sum_free[r] -= self.dist_scratch[r] as f64;
        }

        // Row updates per edge event (folds happen frontier-wide below).
        for &(j, c) in nbrs {
            if self.row_slot[j] == NONE {
                let slot = self.alloc_slot();
                self.row_slot[j] = slot;
                self.active_pos[j] = self.active.len();
                self.active.push(j);
                let mut row = std::mem::take(&mut self.rows[slot]);
                row.clear();
                row.extend((0..flen).map(|i| c * self.dist_scratch[self.free[i]] as f64));
                self.rows[slot] = row;
            } else {
                let slot = self.row_slot[j];
                let mut row = std::mem::take(&mut self.rows[slot]);
                for (i, v) in row.iter_mut().enumerate() {
                    *v += c * self.dist_scratch[self.free[i]] as f64;
                }
                self.rows[slot] = row;
            }
        }
        obs::counter_add("estimation.row_events", nbrs.len() as u64);

        self.factor_free.clear();
        let fdiv = flen as f64;
        for i in 0..flen {
            self.factor_free.push(self.sum_free[self.free[i]] / fdiv);
        }

        let this = &*self;
        let parts = this.exec.map_chunks(this.active.len(), flen + 1, |range| {
            range
                .map(|i| {
                    let u = this.active[i];
                    let s = this.row_slot[u];
                    let row = &this.rows[s];
                    let wu = this.unassigned_wgt[u];
                    let (min, argmin, sum) = fold_stats(
                        (0..flen).map(|i2| (row[i2] + wu * this.factor_free[i2], this.free[i2])),
                    );
                    (u, min, argmin, sum)
                })
                .collect::<Vec<_>>()
        });
        obs::counter_add("estimation.fest_full_scan", self.active.len() as u64);
        for chunk in parts {
            for (u, min, argmin, sum) in chunk {
                self.fmin[u] = min;
                self.fmin_proc[u] = argmin;
                self.fsum[u] = sum;
            }
        }
    }

    /// Brute-force fest for validation: recompute from the definition.
    #[cfg(test)]
    fn fest_bruteforce(&self, t: TaskId, q: NodeId) -> f64 {
        let mut v = 0.0;
        for (j, c) in self.tasks.neighbors(t) {
            if self.placement[j] != NONE {
                v += c * self.topo.distance(q, self.placement[j]) as f64;
            } else {
                v += c * self.unplaced_factor(q);
            }
        }
        v
    }
}

/// Detect the uniform-weight integer fast path: `Some((c, K))` when every
/// edge of the task graph carries the same weight `c` (bit-equal, so no
/// rounding judgment is involved) and the unplaced-neighbor factor is the
/// single constant `K` for every processor — always true for the first
/// order (`K = 0`), true for the second order exactly when the machine is
/// distance-regular (`Σ_q d(p, q)` identical for all `p`, an integer
/// comparison — tori, rings, hypercubes qualify; open meshes do not).
/// The third order's factor varies with the shrinking free set, so it
/// never qualifies.
///
/// Both the fast kernel ([`EstimationState`]) and the differential oracle
/// ([`crate::estimation_naive`]) call this one predicate, so the two
/// sides of the equivalence suite always agree on the kernel choice.
pub(crate) fn uniform_kernel(
    tasks: &TaskGraph,
    topo: &dyn Topology,
    order: EstimationOrder,
) -> Option<(f64, f64)> {
    if order == EstimationOrder::Third {
        return None;
    }
    let mut it = tasks.edges();
    let (_, _, c) = it.next()?;
    if !c.is_finite() || c <= 0.0 {
        return None;
    }
    if it.any(|(_, _, w)| w.to_bits() != c.to_bits()) {
        return None;
    }
    let k = match order {
        EstimationOrder::First => 0.0,
        EstimationOrder::Second => {
            let table = AvgDistTable::new(topo);
            let s0 = table.sum(0);
            if (1..topo.num_nodes()).any(|q| table.sum(q) != s0) {
                return None;
            }
            table.avg(0)
        }
        EstimationOrder::Third => unreachable!(),
    };
    Some((c, k))
}

enum Kernel<'a> {
    Gen(GenEstimationState<'a>),
    Uni(UniEstimationState<'a>),
}

/// The estimation structure driving [`crate::TopoLb`]: a facade that
/// picks the right kernel for the run. Uniform-weight graphs on
/// distance-regular machines (orders one/two) run on the exact-integer
/// kernel of [`crate::estimation_uniform`]; everything else runs on the
/// general f64 kernel [`GenEstimationState`]. Both kernels share the
/// selection and placement semantics, and each has a naive oracle twin in
/// [`crate::estimation_naive`] pinned bit-identical by
/// `tests/incremental_equivalence.rs`.
pub struct EstimationState<'a> {
    inner: Kernel<'a>,
}

impl<'a> EstimationState<'a> {
    pub fn new(tasks: &'a TaskGraph, topo: &'a dyn Topology, order: EstimationOrder) -> Self {
        Self::with_parallelism(tasks, topo, order, Parallelism::default())
    }

    pub fn with_parallelism(
        tasks: &'a TaskGraph,
        topo: &'a dyn Topology,
        order: EstimationOrder,
        par: Parallelism,
    ) -> Self {
        let inner = match uniform_kernel(tasks, topo, order) {
            Some((c, k)) => Kernel::Uni(UniEstimationState::new(tasks, topo, c, k, par)),
            None => Kernel::Gen(GenEstimationState::with_parallelism(
                tasks, topo, order, par,
            )),
        };
        obs::counter_add(
            match inner {
                Kernel::Gen(_) => "estimation.kernel_general",
                Kernel::Uni(_) => "estimation.kernel_uniform_int",
            },
            1,
        );
        EstimationState { inner }
    }

    /// Which kernel this run dispatched to (profiling / test evidence).
    pub fn kernel_label(&self) -> &'static str {
        match &self.inner {
            Kernel::Gen(_) => "general",
            Kernel::Uni(_) => "uniform-int",
        }
    }

    /// Current `fest(t, q)` for unassigned task `t` and free processor `q`.
    #[inline]
    pub fn fest(&self, t: TaskId, q: NodeId) -> f64 {
        match &self.inner {
            Kernel::Gen(g) => g.fest(t, q),
            Kernel::Uni(u) => u.fest(t, q),
        }
    }

    /// Is `t` on the active frontier (unassigned with a placed neighbor)?
    #[doc(hidden)]
    pub fn is_active(&self, t: TaskId) -> bool {
        match &self.inner {
            Kernel::Gen(g) => g.is_active(t),
            Kernel::Uni(u) => u.is_active(t),
        }
    }

    /// The maintained `(FMin, FSum)` pair of an active task — exposed for
    /// the differential test suite's checkpoint audits. (The argmin
    /// processor is observable through [`Self::best_proc`]; the integer
    /// kernel computes it lazily there rather than maintaining it.)
    #[doc(hidden)]
    pub fn stats(&self, t: TaskId) -> (f64, f64) {
        match &self.inner {
            Kernel::Gen(g) => {
                let (fmin, _, fsum) = g.stats(t);
                (fmin, fsum)
            }
            Kernel::Uni(u) => u.stats(t),
        }
    }

    /// Gain of placing `t` now (Algorithm 1's criticality measure).
    #[inline]
    pub fn gain(&self, t: TaskId) -> f64 {
        match &self.inner {
            Kernel::Gen(g) => g.gain(t),
            Kernel::Uni(u) => u.gain(t),
        }
    }

    /// The next task to place — see the kernels for the shared rule.
    pub fn select_task(&self) -> TaskId {
        match &self.inner {
            Kernel::Gen(g) => g.select_task(),
            Kernel::Uni(u) => u.select_task(),
        }
    }

    /// The free processor where `t` costs least (ties → lowest id).
    pub fn best_proc(&mut self, t: TaskId) -> NodeId {
        match &mut self.inner {
            Kernel::Gen(g) => g.best_proc(t),
            Kernel::Uni(u) => u.best_proc(t),
        }
    }

    /// Commit the placement `t → q` and update the gain structure.
    pub fn assign(&mut self, t: TaskId, q: NodeId) {
        match &mut self.inner {
            Kernel::Gen(g) => g.assign(t, q),
            Kernel::Uni(u) => u.assign(t, q),
        }
    }

    pub fn num_free(&self) -> usize {
        match &self.inner {
            Kernel::Gen(g) => g.num_free(),
            Kernel::Uni(u) => u.num_free(),
        }
    }

    pub fn num_unassigned(&self) -> usize {
        match &self.inner {
            Kernel::Gen(g) => g.num_unassigned(),
            Kernel::Uni(u) => u.num_unassigned(),
        }
    }

    pub fn free_procs(&self) -> &[NodeId] {
        match &self.inner {
            Kernel::Gen(g) => g.free_procs(),
            Kernel::Uni(u) => u.free_procs(),
        }
    }

    pub fn is_free(&self, q: NodeId) -> bool {
        match &self.inner {
            Kernel::Gen(g) => g.is_free(q),
            Kernel::Uni(u) => u.is_free(q),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topomap_taskgraph::gen;
    use topomap_topology::Torus;

    fn check_invariants(state: &GenEstimationState<'_>) {
        for &t in state.unassigned.iter() {
            let mut min = f64::INFINITY;
            let mut argmin = NONE;
            let mut sum = 0.0;
            for &q in state.free.iter() {
                let f = state.fest(t, q);
                let bf = state.fest_bruteforce(t, q);
                assert!(
                    (f - bf).abs() < 1e-6 * bf.abs().max(1.0),
                    "fest({t},{q}) = {f} but brute force = {bf}"
                );
                sum += f;
                if f < min || (f == min && q < argmin) {
                    min = f;
                    argmin = q;
                }
            }
            if !state.is_active(t) {
                continue; // stats are maintained for the frontier only
            }
            assert!(
                (state.fmin[t] - min).abs() < 1e-6 * min.abs().max(1.0),
                "FMin[{t}] = {} but brute force = {min}",
                state.fmin[t]
            );
            assert!(
                (state.fsum[t] - sum).abs() < 1e-6 * sum.abs().max(1.0),
                "FSum[{t}] = {} but brute force = {sum}",
                state.fsum[t]
            );
            // argmin agreement modulo float ties
            let f_arg = state.fest(t, state.fmin_proc[t]);
            assert!((f_arg - min).abs() < 1e-9 * min.abs().max(1.0));
        }
    }

    fn run_incremental_check(order: EstimationOrder) {
        let tasks = gen::stencil2d(4, 4, 100.0, false);
        let topo = Torus::torus_2d(4, 4);
        let mut state = GenEstimationState::new(&tasks, &topo, order);
        check_invariants(&state);
        // Drive the full Algorithm-1 loop, checking after every step.
        for _ in 0..16 {
            let t = state.select_task();
            let q = state.best_proc(t);
            state.assign(t, q);
            check_invariants(&state);
        }
        assert_eq!(state.num_unassigned(), 0);
        assert_eq!(state.num_free(), 0);
    }

    #[test]
    fn incremental_matches_bruteforce_first_order() {
        run_incremental_check(EstimationOrder::First);
    }

    #[test]
    fn incremental_matches_bruteforce_second_order() {
        run_incremental_check(EstimationOrder::Second);
    }

    #[test]
    fn incremental_matches_bruteforce_third_order() {
        run_incremental_check(EstimationOrder::Third);
    }

    #[test]
    fn more_procs_than_tasks() {
        let tasks = gen::ring(5, 10.0);
        let topo = Torus::torus_2d(3, 3);
        let mut state = GenEstimationState::new(&tasks, &topo, EstimationOrder::Second);
        for _ in 0..5 {
            let t = state.select_task();
            let q = state.best_proc(t);
            state.assign(t, q);
            check_invariants(&state);
        }
        assert_eq!(state.num_free(), 4);
    }

    #[test]
    fn second_order_first_virgin_to_center() {
        // A star task graph: the lowest-id virgin (the hub, id 0) is
        // picked first; its best processor is the topology center (min
        // average distance, so min second-order factor).
        let mut b = topomap_taskgraph::TaskGraph::builder(5);
        for leaf in 1..5 {
            b.add_comm(0, leaf, 100.0);
        }
        let tasks = b.build();
        let topo = Torus::mesh_2d(3, 3); // center = (1,1) = node 4
        let state = GenEstimationState::new(&tasks, &topo, EstimationOrder::Second);
        let t = state.select_task();
        assert_eq!(t, 0, "lowest-id virgin starts the run");
        assert_eq!(state.best_proc(0), 4, "hub goes to the mesh center");
    }

    #[test]
    fn frontier_growth_and_retirement() {
        // Placing a task activates exactly its unplaced neighbors; placing
        // an active task retires it from the frontier.
        let tasks = gen::ring(6, 10.0);
        let topo = Torus::torus_2d(3, 3);
        let mut state = GenEstimationState::new(&tasks, &topo, EstimationOrder::Second);
        assert!(state.active.is_empty());
        let t = state.select_task();
        let q = state.best_proc(t);
        state.assign(t, q);
        let mut want: Vec<TaskId> = tasks.neighbors(t).map(|(j, _)| j).collect();
        want.sort_unstable();
        let mut got: Vec<TaskId> = state.active.clone();
        got.sort_unstable();
        assert_eq!(got, want, "frontier must equal the placed task's neighbors");
        let t2 = state.select_task();
        assert!(state.is_active(t2), "selection stays on the frontier");
        state.assign(t2, state.best_proc(t2));
        assert!(!state.is_active(t2));
    }

    #[test]
    #[should_panic(expected = "at least as many processors")]
    fn too_few_processors_rejected() {
        let tasks = gen::ring(10, 1.0);
        let topo = Torus::torus_2d(3, 3);
        GenEstimationState::new(&tasks, &topo, EstimationOrder::Second);
    }

    #[test]
    #[should_panic(expected = "already placed")]
    fn double_assign_rejected() {
        let tasks = gen::ring(4, 1.0);
        let topo = Torus::torus_2d(2, 2);
        let mut state = GenEstimationState::new(&tasks, &topo, EstimationOrder::Second);
        state.assign(0, 0);
        state.assign(0, 1);
    }

    #[test]
    fn order_labels() {
        assert_eq!(EstimationOrder::First.label(), "first-order");
        assert_eq!(EstimationOrder::Second.label(), "second-order");
        assert_eq!(EstimationOrder::Third.label(), "third-order");
        assert_eq!(EstimationOrder::default(), EstimationOrder::Second);
    }
}
